"""Legacy setup shim so `pip install -e .` works without the wheel package."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Pure-Python reproduction of Ringo: Interactive Graph Analytics "
        "on Big-Memory Machines (SIGMOD 2015)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
)
