"""Root conftest: make the package importable even without installation.

The execution environment has no network and no `wheel` package, so
``pip install -e .`` (PEP 660) cannot build editable metadata there;
``python setup.py develop`` works and is what CI uses. This shim keeps
``pytest tests/`` / ``pytest benchmarks/`` working from a bare checkout.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
