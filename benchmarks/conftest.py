"""Session-scoped dataset fixtures shared by all benchmark modules."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.algorithms.common import as_csr  # noqa: E402
from repro.workflows.datasets import (  # noqa: E402
    LJ_SCALED,
    TW_SCALED,
    make_edge_table,
    make_graph,
)


@pytest.fixture(scope="session")
def lj_table():
    return make_edge_table(LJ_SCALED)


@pytest.fixture(scope="session")
def tw_table():
    return make_edge_table(TW_SCALED)


@pytest.fixture(scope="session")
def lj_graph():
    return make_graph(LJ_SCALED)


@pytest.fixture(scope="session")
def tw_graph():
    return make_graph(TW_SCALED)


@pytest.fixture(scope="session")
def lj_csr(lj_graph):
    return as_csr(lj_graph)


@pytest.fixture(scope="session")
def tw_csr(tw_graph):
    return as_csr(tw_graph)
