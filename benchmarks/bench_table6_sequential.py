"""Table 6 — single-threaded algorithms on the LiveJournal graph.

Paper rows:
    Algorithm   Runtime
    3-core        31.0s
    SSSP           7.4s   (averaged over 10 random sources)
    SCC           18.0s

All three run on the lj-scaled stand-in, single-threaded (the paper's
point: "even sequential implementations ... are fast enough for
interactive analysis"). SSSP averages 10 random sources, as the paper
does. Shape assertions: SSSP is the cheapest of the three, and all
finish within an interactive budget on the scaled dataset.
"""

import pytest

from benchmarks.util import record, reset
from repro.algorithms.components import strongly_connected_components
from repro.algorithms.cores import k_core
from repro.algorithms.randomwalk import sample_nodes
from repro.algorithms.sssp import dijkstra

PAPER = {"3-core": "31.0s", "SSSP": "7.4s", "SCC": "18.0s"}
_times: dict[str, float] = {}


def test_table6_three_core(benchmark, lj_graph):
    core = benchmark.pedantic(k_core, args=(lj_graph, 3), rounds=1, iterations=1)

    assert 0 < core.num_nodes < lj_graph.num_nodes
    _times["3-core"] = benchmark.stats.stats.mean
    reset("table6", "Table 6: single-threaded algorithms on lj-scaled")
    record("table6", f"{'Algorithm':<10} {'paper':>8} {'ours':>10}")
    record("table6", f"{'3-core':<10} {PAPER['3-core']:>8} {_times['3-core']:>9.2f}s")


def test_table6_sssp_ten_random_sources(benchmark, lj_graph):
    sources = sample_nodes(lj_graph, 10, seed=6)

    def run_all():
        for source in sources:
            dijkstra(lj_graph, source)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    # Per-source average, matching the paper's reporting.
    _times["SSSP"] = benchmark.stats.stats.mean / len(sources)
    record("table6", f"{'SSSP':<10} {PAPER['SSSP']:>8} {_times['SSSP']:>9.2f}s")


def test_table6_scc(benchmark, lj_graph):
    labels = benchmark.pedantic(
        strongly_connected_components, args=(lj_graph,), rounds=1, iterations=1
    )

    assert len(labels) == lj_graph.num_nodes
    _times["SCC"] = benchmark.stats.stats.mean
    record("table6", f"{'SCC':<10} {PAPER['SCC']:>8} {_times['SCC']:>9.2f}s")
    # Shape: the paper's ordering is 3-core > SCC > SSSP.
    assert _times["SSSP"] < _times["3-core"]
    assert _times["SSSP"] < _times["SCC"]
    record(
        "table6",
        "ordering: SSSP cheapest, 3-core most expensive "
        f"(paper: 7.4 < 18.0 < 31.0): "
        f"{_times['SSSP']:.2f} / {_times['SCC']:.2f} / {_times['3-core']:.2f}",
    )
