"""Ablation A1 — conversion strategies (paper §2.4).

"We experimented with several approaches and found that a 'sort-first'
algorithm works the best." This bench measures sort-first against the
two natural alternatives the paper's description implies:

* per-edge dynamic insertion (each edge pays a binary search plus an
  O(degree) vector shift), and
* hash-accumulation with a final per-node sort.

Asserted shape: sort-first wins, and the per-edge path loses badly on
skewed degree distributions (the hub's adjacency vector is reshifted
thousands of times).
"""

import pytest

from benchmarks.util import record, reset
from repro.convert.table_to_graph import (
    hash_accumulate_build,
    per_edge_build,
    sort_first_directed,
)
from repro.workflows.datasets import LJ_SCALED, edge_arrays

_times: dict[str, float] = {}

BUILDERS = {
    "sort-first": sort_first_directed,
    "hash-accumulate": hash_accumulate_build,
    "per-edge": per_edge_build,
}


@pytest.mark.parametrize("strategy", list(BUILDERS))
def test_a1_conversion_strategy(benchmark, strategy):
    sources, targets = edge_arrays(LJ_SCALED)
    builder = BUILDERS[strategy]

    graph = benchmark.pedantic(builder, args=(sources, targets), rounds=1, iterations=1)

    _times[strategy] = benchmark.stats.stats.mean
    if strategy == "sort-first":
        reset("ablation_a1", "A1: table->graph build strategies (lj-scaled)")
        record("ablation_a1", f"{'Strategy':<16} {'seconds':>9}")
    record("ablation_a1", f"{strategy:<16} {_times[strategy]:>9.3f}")
    assert graph.num_edges > 0

    if strategy == "per-edge":
        # All three built by now (pytest preserves parametrize order).
        assert _times["sort-first"] < _times["hash-accumulate"]
        assert _times["sort-first"] < _times["per-edge"]
        record(
            "ablation_a1",
            f"sort-first speedup: {_times['per-edge'] / _times['sort-first']:.1f}x "
            f"over per-edge, "
            f"{_times['hash-accumulate'] / _times['sort-first']:.1f}x over hash-accumulate",
        )
