"""Table 5 — conversions between tables and graphs.

Paper rows:
    Graph            LiveJournal   Twitter2010
    Table to graph          8.5s         81.0s
    Edges/s                13.0M         18.0M
    Graph to table          1.5s         29.2s
    Edges/s                46.0M         50.4M

Shape claims asserted: graph→table is several times faster than
table→graph (the paper's 5.7×/2.8×), and rates do not degrade on the
larger dataset (the "conversion scales well" observation).
"""

import pytest

from benchmarks.util import rate_m_per_s, record, reset
from repro.convert.graph_to_table import to_edge_table
from repro.convert.table_to_graph import to_graph

PAPER = {
    ("lj-scaled", "to_graph"): ("8.5s", "13.0M"),
    ("tw-scaled", "to_graph"): ("81.0s", "18.0M"),
    ("lj-scaled", "to_table"): ("1.5s", "46.0M"),
    ("tw-scaled", "to_table"): ("29.2s", "50.4M"),
}

_rates: dict[tuple[str, str], float] = {}
_times: dict[tuple[str, str], float] = {}


@pytest.mark.parametrize("name", ["lj-scaled", "tw-scaled"])
def test_table5_table_to_graph(benchmark, name, lj_table, tw_table):
    table = lj_table if name == "lj-scaled" else tw_table

    graph = benchmark.pedantic(
        to_graph, args=(table, "SrcId", "DstId"), rounds=3, iterations=1
    )

    elapsed = benchmark.stats.stats.mean
    rate = rate_m_per_s(table.num_rows, elapsed)
    _rates[(name, "to_graph")] = rate
    _times[(name, "to_graph")] = elapsed
    if name == "lj-scaled":
        reset("table5", "Table 5: table <-> graph conversions")
        record(
            "table5",
            f"{'Conversion':<16} {'dataset':<10} {'paper':>7} {'paper rate':>10} "
            f"{'ours':>9} {'our rate':>10}",
        )
    paper_time, paper_rate = PAPER[(name, "to_graph")]
    record(
        "table5",
        f"{'Table to graph':<16} {name:<10} {paper_time:>7} {paper_rate:>10} "
        f"{elapsed:>8.2f}s {rate:>8.2f}M",
    )
    assert graph.num_nodes > 0


@pytest.mark.parametrize("name", ["lj-scaled", "tw-scaled"])
def test_table5_graph_to_table(benchmark, name, lj_graph, tw_graph):
    graph = lj_graph if name == "lj-scaled" else tw_graph

    table = benchmark.pedantic(to_edge_table, args=(graph,), rounds=3, iterations=1)

    assert table.num_rows == graph.num_edges
    elapsed = benchmark.stats.stats.mean
    rate = rate_m_per_s(graph.num_edges, elapsed)
    _rates[(name, "to_table")] = rate
    paper_time, paper_rate = PAPER[(name, "to_table")]
    record(
        "table5",
        f"{'Graph to table':<16} {name:<10} {paper_time:>7} {paper_rate:>10} "
        f"{elapsed:>8.2f}s {rate:>8.2f}M",
    )
    # Shape: graph->table beats table->graph on the same dataset
    # (paper: 46 vs 13 M edges/s on LJ).
    assert rate > _rates[(name, "to_graph")]
    if name == "tw-scaled":
        # Paper: "the processing rate does not degrade for large graphs".
        # Generous slack; the claim is no collapse, not monotone growth.
        assert _rates[("tw-scaled", "to_graph")] > 0.5 * _rates[("lj-scaled", "to_graph")]
        assert _rates[("tw-scaled", "to_table")] > 0.5 * _rates[("lj-scaled", "to_table")]
        record(
            "table5",
            "scaling: rates hold within 2x across dataset sizes "
            "(paper: no degradation)",
        )
