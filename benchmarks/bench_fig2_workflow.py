"""Figure 2 — the graph-analytics workflow loop, timed stage by stage.

Figure 2 is the paper's workflow diagram: raw data → relational tables →
graph construction → graph analytics → results back to tables. This
bench executes one full lap of that loop on the synthetic StackOverflow
dataset (the §4.1 demo pipeline) and records per-stage timings, showing
the interactive-use claim: every stage completes in interactive time.
"""

import pytest

from benchmarks.util import record, reset, timed
from repro.core.engine import Ringo
from repro.workflows.stackoverflow import (
    POSTS_SCHEMA,
    StackOverflowConfig,
    generate_stackoverflow,
    write_posts_tsv,
)


@pytest.fixture(scope="module")
def posts_file(tmp_path_factory):
    data = generate_stackoverflow(
        StackOverflowConfig(num_users=800, num_questions=5000, seed=2015)
    )
    path = tmp_path_factory.mktemp("so") / "posts.tsv"
    write_posts_tsv(data, path)
    return path


def run_workflow(path) -> dict[str, float]:
    stages: dict[str, float] = {}
    with Ringo(workers=1) as ringo:
        posts, stages["load TSV"] = timed(ringo.LoadTableTSV, POSTS_SCHEMA, path)
        java, stages["select tag"] = timed(ringo.Select, posts, "Tag=Java")
        questions, stages["select questions"] = timed(ringo.Select, java, "Type=question")
        answers, stages["select answers"] = timed(ringo.Select, java, "Type=answer")
        qa, stages["join"] = timed(ringo.Join, questions, answers, "AnswerId", "PostId")
        graph, stages["ToGraph"] = timed(ringo.ToGraph, qa, "UserId-1", "UserId-2")
        ranks, stages["PageRank"] = timed(ringo.GetPageRank, graph)
        _, stages["TableFromHashMap"] = timed(
            ringo.TableFromHashMap, ranks, "User", "Scr"
        )
    return stages


def test_fig2_workflow_lap(benchmark, posts_file):
    stages = benchmark.pedantic(run_workflow, args=(posts_file,), rounds=3, iterations=1)

    reset("fig2", "Figure 2: workflow loop stage timings (StackOverflow demo)")
    record("fig2", f"{'Stage':<20} {'seconds':>9}")
    for stage, elapsed in stages.items():
        record("fig2", f"{stage:<20} {elapsed:>9.4f}")
    total = sum(stages.values())
    record("fig2", f"{'TOTAL':<20} {total:>9.4f}")
    # The interactive-use claim: a full lap of the loop is sub-second at
    # this scale, and no single stage dominates pathologically.
    assert total < 10.0
