"""Ablation A6 — the §2.5 concurrent containers.

"The OpenMP layer relies on fast, thread-safe operations on concurrent
hash tables and vectors, which are critical for achieving high
performance." This bench profiles the two §2.5 containers against the
native unsynchronised structures they stand in for, so the cost of
thread-safety is explicit: bulk insert/lookup of the linear-probing
hash table vs a Python dict, and block appends of the concurrent vector
vs list.extend.
"""

import numpy as np
import pytest

from benchmarks.util import record, reset
from repro.parallel.concurrent_hash import LinearProbingHashTable
from repro.parallel.concurrent_vector import ConcurrentVector

N_KEYS = 100_000

_times: dict[str, float] = {}


@pytest.fixture(scope="module")
def keys():
    rng = np.random.default_rng(23)
    return rng.permutation(N_KEYS).astype(np.int64)


def test_a6_hash_insert_many(benchmark, keys):
    def run():
        table = LinearProbingHashTable(expected=N_KEYS)
        table.insert_many(keys, keys)
        return table

    table = benchmark.pedantic(run, rounds=3, iterations=1)

    assert len(table) == N_KEYS
    _times["lp_insert"] = benchmark.stats.stats.mean
    reset("ablation_a6", "A6: concurrent containers vs native structures")
    record("ablation_a6", f"{'Operation':<34} {'seconds':>9}")
    record("ablation_a6", f"{'linear-probing insert (100K)':<34} {_times['lp_insert']:>9.3f}")


def test_a6_dict_insert(benchmark, keys):
    key_list = keys.tolist()

    def run():
        return {key: key for key in key_list}

    mapping = benchmark.pedantic(run, rounds=3, iterations=1)

    assert len(mapping) == N_KEYS
    _times["dict_insert"] = benchmark.stats.stats.mean
    record("ablation_a6", f"{'python dict insert (100K)':<34} {_times['dict_insert']:>9.3f}")
    ratio = _times["lp_insert"] / _times["dict_insert"]
    record(
        "ablation_a6",
        f"thread-safety overhead on insert: {ratio:.1f}x over native dict",
    )


def test_a6_hash_lookup_many(benchmark, keys):
    table = LinearProbingHashTable(expected=N_KEYS)
    table.insert_many(keys, keys * 2)

    values = benchmark.pedantic(table.lookup_many, args=(keys,), rounds=3, iterations=1)

    assert np.array_equal(values, keys * 2)
    _times["lp_lookup"] = benchmark.stats.stats.mean
    record("ablation_a6", f"{'linear-probing lookup (100K)':<34} {_times['lp_lookup']:>9.3f}")


def test_a6_concurrent_vector_extend(benchmark, keys):
    def run():
        vector = ConcurrentVector(capacity=16)
        for start in range(0, N_KEYS, 1000):
            vector.extend(keys[start:start + 1000])
        return vector

    vector = benchmark.pedantic(run, rounds=3, iterations=1)

    assert len(vector) == N_KEYS
    _times["vector"] = benchmark.stats.stats.mean
    record("ablation_a6", f"{'concurrent vector extend (100K)':<34} {_times['vector']:>9.3f}")


def test_a6_list_extend(benchmark, keys):
    chunks = [keys[start:start + 1000].tolist() for start in range(0, N_KEYS, 1000)]

    def run():
        out: list[int] = []
        for chunk in chunks:
            out.extend(chunk)
        return out

    out = benchmark.pedantic(run, rounds=3, iterations=1)

    assert len(out) == N_KEYS
    elapsed = benchmark.stats.stats.mean
    record("ablation_a6", f"{'python list extend (100K)':<34} {elapsed:>9.3f}")
    # The claim-level assertion: the atomic-claim vector's block append
    # stays within interactive reach (not orders of magnitude off).
    assert _times["vector"] < 100 * max(elapsed, 1e-6)
