"""Ablation A5 — bulk kernels vs straightforward per-node loops.

The paper stresses that its implementations are "straightforward,
sequential algorithm[s] with a few OpenMP statements". Here the bulk
(numpy) kernel plays the OpenMP role; this bench quantifies what the
bulk-execution layer buys over honest per-node Python for PageRank, and
what sketching (ANF) buys over exact BFS for the effective diameter.
"""

import pytest

from benchmarks.util import record, reset
from repro.algorithms.anf import anf_effective_diameter
from repro.algorithms.diameter import effective_diameter
from repro.algorithms.pagerank import pagerank, pagerank_sequential

_times: dict[str, float] = {}


def test_a5_pagerank_bulk_kernel(benchmark, lj_graph):
    ranks = benchmark.pedantic(
        pagerank, args=(lj_graph,), kwargs={"iterations": 10}, rounds=3, iterations=1
    )

    _times["bulk"] = benchmark.stats.stats.mean
    _times["bulk_top"] = max(ranks, key=ranks.get)
    reset("ablation_a5", "A5: bulk kernels vs per-node loops (lj-scaled)")
    record("ablation_a5", f"{'Kernel':<30} {'seconds':>9}")
    record("ablation_a5", f"{'PageRank (numpy bulk)':<30} {_times['bulk']:>9.3f}")


def test_a5_pagerank_sequential_loop(benchmark, lj_graph):
    ranks = benchmark.pedantic(
        pagerank_sequential, args=(lj_graph,), kwargs={"iterations": 10},
        rounds=1, iterations=1,
    )

    _times["loop"] = benchmark.stats.stats.mean
    record("ablation_a5", f"{'PageRank (per-node Python)':<30} {_times['loop']:>9.3f}")
    # Identical answers, very different costs.
    assert max(ranks, key=ranks.get) == _times["bulk_top"]
    assert _times["bulk"] < _times["loop"]
    record(
        "ablation_a5",
        f"bulk-kernel speedup: {_times['loop'] / _times['bulk']:.0f}x "
        "(the role OpenMP plays in the paper)",
    )


def test_a5_effective_diameter_exact_sampled(benchmark, lj_graph):
    value = benchmark.pedantic(
        effective_diameter, args=(lj_graph,),
        kwargs={"samples": 32, "seed": 1}, rounds=1, iterations=1,
    )

    _times["exact_sampled"] = benchmark.stats.stats.mean
    _times["exact_value"] = value
    record(
        "ablation_a5",
        f"{'eff. diameter (32 BFS)':<30} {_times['exact_sampled']:>9.3f}"
        f"  -> {value:.2f}",
    )


def test_a5_effective_diameter_anf(benchmark, lj_graph):
    value = benchmark.pedantic(
        anf_effective_diameter, args=(lj_graph,),
        kwargs={"approximations": 32, "seed": 1}, rounds=1, iterations=1,
    )

    elapsed = benchmark.stats.stats.mean
    record(
        "ablation_a5",
        f"{'eff. diameter (ANF sketch)':<30} {elapsed:>9.3f}  -> {value:.2f}",
    )
    # The sketch must land near the BFS estimate.
    assert abs(value - _times["exact_value"]) <= 2.0
