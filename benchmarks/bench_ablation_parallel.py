"""Ablation A3 — the parallel substrate (paper §2.5).

Ringo's performance rests on OpenMP parallel loops over 80 hyperthreads.
The Python analogue is the :class:`WorkerPool`; this bench runs the
parallelised operations (sort-first conversion, triangle counting,
edge-table export) at several worker counts, recording wall-clock and
verifying result equivalence across pool sizes.

On a single-core host the curve is flat — the recorded table then
documents pool overhead rather than speedup, and the equivalence
assertions still exercise the concurrency machinery.
"""

import pytest

from benchmarks.util import record, reset
from repro.algorithms.triangles import total_triangles
from repro.convert.graph_to_table import to_edge_table
from repro.convert.table_to_graph import sort_first_directed
from repro.parallel.executor import WorkerPool
from repro.workflows.datasets import LJ_SCALED, edge_arrays

WORKER_COUNTS = (1, 2, 4)

_reference: dict[str, object] = {}


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_a3_parallel_conversion(benchmark, workers):
    sources, targets = edge_arrays(LJ_SCALED)

    def run():
        with WorkerPool(workers) as pool:
            return sort_first_directed(sources, targets, pool=pool)

    graph = benchmark.pedantic(run, rounds=1, iterations=1)

    elapsed = benchmark.stats.stats.mean
    if workers == 1:
        reset("ablation_a3", "A3: worker-pool scaling (lj-scaled)")
        record("ablation_a3", f"{'Operation':<22} {'workers':>8} {'seconds':>9}")
        _reference["conversion_edges"] = graph.num_edges
    record("ablation_a3", f"{'sort-first build':<22} {workers:>8} {elapsed:>9.3f}")
    assert graph.num_edges == _reference["conversion_edges"]


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_a3_parallel_triangles(benchmark, workers, lj_graph):
    def run():
        with WorkerPool(workers) as pool:
            return total_triangles(lj_graph, pool=pool)

    count = benchmark.pedantic(run, rounds=1, iterations=1)

    elapsed = benchmark.stats.stats.mean
    if workers == 1:
        _reference["triangles"] = count
    record("ablation_a3", f"{'triangle counting':<22} {workers:>8} {elapsed:>9.3f}")
    assert count == _reference["triangles"]


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_a3_parallel_edge_table(benchmark, workers, lj_graph):
    def run():
        with WorkerPool(workers) as pool:
            return to_edge_table(lj_graph, pool=pool)

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    elapsed = benchmark.stats.stats.mean
    if workers == 1:
        _reference["edge_rows"] = table.num_rows
    record("ablation_a3", f"{'graph -> edge table':<22} {workers:>8} {elapsed:>9.3f}")
    assert table.num_rows == _reference["edge_rows"]
