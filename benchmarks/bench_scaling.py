"""Scaling sweep — conversion and PageRank rates across dataset sizes.

Table 5's accompanying claim is that "the conversion scales well as the
processing rate does not degrade for large graphs". The two-dataset
table gives two points; this sweep adds a size series (R-MAT graphs from
25K to 800K edges) and asserts the rate stays within a constant factor
across the whole range, for both the sort-first conversion and the
PageRank kernel.
"""

import numpy as np
import pytest

from benchmarks.util import rate_m_per_s, record, reset, timed
from repro.algorithms.generators import DEFAULT_RMAT, rmat_edges
from repro.algorithms.pagerank import pagerank_array
from repro.convert.table_to_graph import sort_first_directed
from repro.graphs.csr import CSRGraph

SIZES = (25_000, 100_000, 400_000, 800_000)

_rates: dict[str, dict[int, float]] = {"convert": {}, "pagerank": {}}


def _edges(num_edges: int):
    scale = max(int(np.ceil(np.log2(num_edges / 12))), 4)
    return rmat_edges(scale, num_edges, DEFAULT_RMAT, seed=7)


@pytest.mark.parametrize("num_edges", SIZES)
def test_scaling_sort_first(benchmark, num_edges):
    sources, targets = _edges(num_edges)

    graph = benchmark.pedantic(
        sort_first_directed, args=(sources, targets), rounds=1, iterations=1
    )

    elapsed = benchmark.stats.stats.mean
    rate = rate_m_per_s(num_edges, elapsed)
    _rates["convert"][num_edges] = rate
    if num_edges == SIZES[0]:
        reset("scaling", "Scaling sweep: rates across dataset sizes (R-MAT)")
        record("scaling", f"{'Operation':<16} {'edges':>8} {'seconds':>9} {'Medges/s':>9}")
    record(
        "scaling",
        f"{'sort-first':<16} {num_edges:>8} {elapsed:>9.3f} {rate:>9.2f}",
    )
    assert graph.num_edges > 0
    if num_edges == SIZES[-1]:
        rates = list(_rates["convert"].values())
        assert max(rates) < 4 * min(rates)
        record("scaling", "sort-first rate spread < 4x across 32x size range")


@pytest.mark.parametrize("num_edges", SIZES)
def test_scaling_pagerank(benchmark, num_edges):
    sources, targets = _edges(num_edges)
    csr = CSRGraph.from_edges(sources, targets)

    benchmark.pedantic(
        pagerank_array, args=(csr,), kwargs={"iterations": 10}, rounds=1, iterations=1
    )

    elapsed = benchmark.stats.stats.mean
    rate = rate_m_per_s(csr.num_edges * 10, elapsed)
    _rates["pagerank"][num_edges] = rate
    record(
        "scaling",
        f"{'PageRank(10 it)':<16} {num_edges:>8} {elapsed:>9.3f} {rate:>9.2f}",
    )
    if num_edges == SIZES[-1]:
        rates = list(_rates["pagerank"].values())
        assert max(rates) < 4 * min(rates)
        record("scaling", "PageRank edge-rate spread < 4x across 32x size range")
