"""Ablation A4 — the Ringo-specific construction operators (paper §2.3).

SimJoin and NextK are the paper's "advanced operations unique to Ringo".
This bench measures the engineered implementations against their naive
formulations:

* SimJoin's 1-D sorted-window probe vs an O(n^2) all-pairs scan, and
* NextK's vectorised shift-pairing vs a per-row Python scan.

Asserted shape: the engineered versions win by a growing margin, which
is what makes the operators usable interactively.
"""

import numpy as np
import pytest

from benchmarks.util import record, reset
from repro.tables.nextk import next_k_indices
from repro.tables.simjoin import sim_join_indices

N_POINTS = 4000
THRESHOLD = 0.01
N_EVENTS = 30_000
K = 3

_times: dict[str, float] = {}


def naive_sim_join(left: np.ndarray, right: np.ndarray, threshold: float):
    pairs = []
    for i, lv in enumerate(left[:, 0].tolist()):
        for j, rv in enumerate(right[:, 0].tolist()):
            if abs(lv - rv) < threshold:
                pairs.append((i, j))
    return pairs


def naive_next_k(order_values: np.ndarray, k: int):
    order = np.argsort(order_values, kind="stable").tolist()
    pairs = []
    for position, pred in enumerate(order):
        for step in range(1, k + 1):
            if position + step < len(order):
                pairs.append((pred, order[position + step]))
    return pairs


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(17)
    return rng.uniform(0, 10, size=(N_POINTS, 1)), rng.uniform(0, 10, size=(N_POINTS, 1))


@pytest.fixture(scope="module")
def events():
    rng = np.random.default_rng(18)
    return rng.integers(0, 10**9, size=N_EVENTS)


def test_a4_simjoin_sorted_window(benchmark, points):
    left, right = points

    li, ri, _ = benchmark.pedantic(
        sim_join_indices, args=(left, right, THRESHOLD), rounds=3, iterations=1
    )

    _times["simjoin_fast"] = benchmark.stats.stats.mean
    _times["simjoin_pairs"] = len(li)
    reset("ablation_a4", "A4: construction operators vs naive formulations")
    record("ablation_a4", f"{'Operator':<28} {'seconds':>10}")
    record(
        "ablation_a4",
        f"{'SimJoin (sorted window)':<28} {_times['simjoin_fast']:>10.4f}",
    )


def test_a4_simjoin_naive(benchmark, points):
    left, right = points

    pairs = benchmark.pedantic(
        naive_sim_join, args=(left, right, THRESHOLD), rounds=1, iterations=1
    )

    _times["simjoin_naive"] = benchmark.stats.stats.mean
    record(
        "ablation_a4",
        f"{'SimJoin (all pairs)':<28} {_times['simjoin_naive']:>10.4f}",
    )
    assert len(pairs) == _times["simjoin_pairs"]
    assert _times["simjoin_fast"] < _times["simjoin_naive"]
    record(
        "ablation_a4",
        f"sorted-window speedup: "
        f"{_times['simjoin_naive'] / _times['simjoin_fast']:.0f}x",
    )


def test_a4_nextk_vectorised(benchmark, events):
    pred, succ, _ = benchmark.pedantic(
        next_k_indices, args=(events, K), rounds=3, iterations=1
    )

    _times["nextk_fast"] = benchmark.stats.stats.mean
    _times["nextk_pairs"] = len(pred)
    record(
        "ablation_a4",
        f"{'NextK (vectorised shifts)':<28} {_times['nextk_fast']:>10.4f}",
    )
    assert len(pred) == len(succ)


def test_a4_nextk_naive(benchmark, events):
    pairs = benchmark.pedantic(naive_next_k, args=(events, K), rounds=1, iterations=1)

    _times["nextk_naive"] = benchmark.stats.stats.mean
    record(
        "ablation_a4",
        f"{'NextK (per-row scan)':<28} {_times['nextk_naive']:>10.4f}",
    )
    assert len(pairs) == _times["nextk_pairs"]
    assert _times["nextk_fast"] < _times["nextk_naive"]
    record(
        "ablation_a4",
        f"vectorised speedup: {_times['nextk_naive'] / _times['nextk_fast']:.0f}x",
    )
