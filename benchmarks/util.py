"""Shared benchmark plumbing.

Each bench regenerates one paper table/figure. Besides pytest-benchmark's
own timing report, every bench appends its paper-style rows to
``benchmarks/results/<artifact>.txt`` so the regenerated tables survive
output capture and can be diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def record(artifact: str, line: str) -> None:
    """Append one formatted row to the artifact's results file."""
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / f"{artifact}.txt", "a", encoding="utf-8") as handle:
        handle.write(line + "\n")


def reset(artifact: str, header: str) -> None:
    """Start the artifact's results file fresh with a header line."""
    RESULTS_DIR.mkdir(exist_ok=True)
    stamp = time.strftime("%Y-%m-%d %H:%M:%S")
    with open(RESULTS_DIR / f"{artifact}.txt", "w", encoding="utf-8") as handle:
        handle.write(f"# {header} (generated {stamp})\n")


def rate_m_per_s(items: int, seconds: float) -> float:
    """Throughput in millions of items per second."""
    return items / max(seconds, 1e-12) / 1e6


def timed(func, *args, **kwargs) -> tuple[object, float]:
    """Run ``func`` once, returning ``(result, seconds)``."""
    start = time.perf_counter()
    result = func(*args, **kwargs)
    return result, time.perf_counter() - start
