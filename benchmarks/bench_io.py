"""§4.2 — data input/output performance.

"Several types of operations are critical for graph analytics: graph
operations, table operations, conversions between tables and graphs,
and data input/output." This bench covers the fourth: TSV parse/write
rates for the edge tables, and the binary snapshot path that makes
reloading a prepared dataset cheap.

Asserted shape: binary reload is much faster than re-parsing text —
the reason Ringo keeps binary snapshots of prepared data.
"""

import pytest

from benchmarks.util import rate_m_per_s, record, reset
from repro.tables.io_npz import load_table_npz, save_table_npz
from repro.tables.io_tsv import load_table_tsv, save_table_tsv
from repro.tables.schema import Schema
from repro.workflows.datasets import LJ_SCALED, make_edge_table

EDGE_SCHEMA = Schema([("SrcId", "int"), ("DstId", "int")])

_times: dict[str, float] = {}


@pytest.fixture(scope="module")
def table():
    return make_edge_table(LJ_SCALED)


@pytest.fixture(scope="module")
def tsv_path(table, tmp_path_factory):
    path = tmp_path_factory.mktemp("io") / "edges.tsv"
    save_table_tsv(table, path)
    return path


@pytest.fixture(scope="module")
def npz_path(table, tmp_path_factory):
    path = tmp_path_factory.mktemp("io") / "edges.npz"
    save_table_npz(table, path)
    return path


def test_io_save_tsv(benchmark, table, tmp_path):
    path = tmp_path / "out.tsv"

    rows = benchmark.pedantic(save_table_tsv, args=(table, path), rounds=3, iterations=1)

    elapsed = benchmark.stats.stats.mean
    reset("io", "Section 4.2: data input/output (lj-scaled edge table)")
    record("io", f"{'Operation':<18} {'seconds':>9} {'Mrows/s':>9}")
    record("io", f"{'save TSV':<18} {elapsed:>9.3f} {rate_m_per_s(rows, elapsed):>9.2f}")


def test_io_load_tsv(benchmark, tsv_path, table):
    loaded = benchmark.pedantic(
        load_table_tsv, args=(EDGE_SCHEMA, tsv_path), rounds=3, iterations=1
    )

    assert loaded.num_rows == table.num_rows
    _times["load_tsv"] = benchmark.stats.stats.mean
    record(
        "io",
        f"{'load TSV':<18} {_times['load_tsv']:>9.3f} "
        f"{rate_m_per_s(loaded.num_rows, _times['load_tsv']):>9.2f}",
    )


def test_io_save_npz(benchmark, table, tmp_path):
    path = tmp_path / "out.npz"

    benchmark.pedantic(save_table_npz, args=(table, path), rounds=3, iterations=1)

    elapsed = benchmark.stats.stats.mean
    record(
        "io",
        f"{'save binary':<18} {elapsed:>9.3f} "
        f"{rate_m_per_s(table.num_rows, elapsed):>9.2f}",
    )


def test_io_load_npz(benchmark, npz_path, table):
    loaded = benchmark.pedantic(load_table_npz, args=(npz_path,), rounds=3, iterations=1)

    assert loaded.num_rows == table.num_rows
    elapsed = benchmark.stats.stats.mean
    record(
        "io",
        f"{'load binary':<18} {elapsed:>9.3f} "
        f"{rate_m_per_s(loaded.num_rows, elapsed):>9.2f}",
    )
    # Shape: binary reload beats TSV re-parsing decisively.
    assert elapsed < _times["load_tsv"] / 5
    record(
        "io",
        f"binary reload speedup over TSV parse: {_times['load_tsv'] / elapsed:.0f}x",
    )
