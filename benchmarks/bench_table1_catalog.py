"""Table 1 — graph-size statistics of the 71-graph collection.

Paper rows (edge-count buckets → graph counts):
    <0.1M: 16, 0.1M-1M: 25, 1M-10M: 17, 10M-100M: 7, 100M-1B: 5, >1B: 1

The bench regenerates the catalog, recomputes the histogram, and times
the classification step. The histogram must match the paper exactly
(the catalog is constructed to the published bucket counts; the bench
verifies the recomputation path reproduces them).
"""

from benchmarks.util import record, reset
from repro.workflows.catalog import (
    BUCKET_LABELS,
    PAPER_BUCKET_COUNTS,
    catalog_histogram,
    catalog_table,
    fraction_fitting_in_ram,
    generate_catalog,
)

ONE_TB = 1 << 40


def test_table1_bucket_histogram(benchmark):
    entries = generate_catalog(seed=0)

    histogram = benchmark(catalog_histogram, entries)

    assert histogram == PAPER_BUCKET_COUNTS
    reset("table1", "Table 1: graph size statistics (71 graphs)")
    record("table1", f"{'Number of Edges':<14} {'Graphs (paper)':>14} {'Graphs (ours)':>14}")
    for label, paper, ours in zip(BUCKET_LABELS, PAPER_BUCKET_COUNTS, histogram):
        record("table1", f"{label:<14} {paper:>14} {ours:>14}")
    small = sum(histogram[:4]) / sum(histogram)
    record("table1", f"graphs under 100M edges: {small:.0%} (paper: 90%)")


def test_table1_all_fit_one_tb_machine(benchmark):
    entries = generate_catalog(seed=0)

    fraction = benchmark(fraction_fitting_in_ram, entries, ONE_TB)

    # The paper's point: even the largest public graph fits in 1TB RAM
    # at 20 bytes/edge.
    assert fraction == 1.0
    record("table1", f"graphs fitting a 1TB machine at 20B/edge: {fraction:.0%}")


def test_table1_catalog_as_ringo_table(benchmark):
    entries = generate_catalog(seed=0)

    table = benchmark(catalog_table, entries)

    assert table.num_rows == 71
