"""Snapshot-cache benchmark — cold vs warm laps of the Fig 2 loop.

The PR's claim, measured: the first (cold) run of the algorithm phase
pays the dynamic→CSR conversion plus every derived array; a second
(warm) run on the unchanged graph must perform **zero** conversions
(asserted via the cache's ``conversions`` counter) and finish in at most
half the cold time. Results land in ``BENCH_snapshot_cache.json`` at the
repo root so CI can archive and gate on them.

Runs standalone (``PYTHONPATH=src:. python benchmarks/bench_snapshot_cache.py``)
or under pytest.
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
from pathlib import Path

from benchmarks.util import record, reset
from repro.core.engine import Ringo
from repro.graphs.snapshot import snapshot_cache
from repro.workflows.stackoverflow import (
    POSTS_SCHEMA,
    StackOverflowConfig,
    generate_stackoverflow,
    write_posts_tsv,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_snapshot_cache.json"
CONFIG = StackOverflowConfig(num_users=5000, num_questions=40000, seed=2015)
REPETITIONS = 3


def _algorithm_phase(ringo: Ringo, graph, source: int) -> dict[str, float]:
    """One lap of the Fig 2 analytics phase; per-stage seconds."""
    stages: dict[str, float] = {}
    for name, call in (
        ("pagerank", lambda: ringo.GetPageRank(graph, iterations=20)),
        ("triangles", lambda: ringo.GetTriangleCounts(graph)),
        ("bfs_levels", lambda: ringo.GetBfsLevels(graph, source)),
    ):
        start = time.perf_counter()
        call()
        stages[name] = time.perf_counter() - start
    return stages


def run_cold_warm(posts_path) -> dict:
    """Build the Fig 2 graph, then time cold/warm algorithm laps.

    Each repetition clears the snapshot cache, runs a cold lap (pays the
    conversion) and a warm lap (must not convert); the best lap of each
    kind is reported, the conversion deltas are recorded per lap.
    """
    cache = snapshot_cache()
    with Ringo(workers=1) as ringo:
        posts = ringo.LoadTableTSV(POSTS_SCHEMA, posts_path)
        java = ringo.Select(posts, "Tag=Java")
        questions = ringo.Select(java, "Type=question")
        answers = ringo.Select(java, "Type=answer")
        qa = ringo.Join(questions, answers, "AnswerId", "PostId")
        graph = ringo.ToGraph(qa, "UserId-1", "UserId-2")
        source = int(graph.node_array()[0])

        cold_laps, warm_laps = [], []
        cold_conversions, warm_conversions = [], []
        for _ in range(REPETITIONS):
            cache.clear(reset_stats=True)
            cold_stages = _algorithm_phase(ringo, graph, source)
            cold_conversions.append(cache.stats()["conversions"])
            warm_stages = _algorithm_phase(ringo, graph, source)
            warm_conversions.append(
                cache.stats()["conversions"] - cold_conversions[-1]
            )
            cold_laps.append(cold_stages)
            warm_laps.append(warm_stages)

        best_cold = min(sum(lap.values()) for lap in cold_laps)
        best_warm = min(sum(lap.values()) for lap in warm_laps)
        payload = {
            "dataset": {
                "num_users": CONFIG.num_users,
                "num_questions": CONFIG.num_questions,
                "seed": CONFIG.seed,
            },
            "graph": {"nodes": graph.num_nodes, "edges": graph.num_edges},
            "repetitions": REPETITIONS,
            "cold": {
                "seconds": best_cold,
                "stages": min(cold_laps, key=lambda lap: sum(lap.values())),
                "conversions_per_lap": cold_conversions,
            },
            "warm": {
                "seconds": best_warm,
                "stages": min(warm_laps, key=lambda lap: sum(lap.values())),
                "conversions_per_lap": warm_conversions,
            },
            "warm_over_cold": best_warm / best_cold,
            "cache": cache.stats(),
            "timings": ringo.call_timings(),
        }
    return payload


def write_report(payload: dict) -> None:
    """Persist the JSON artifact and the paper-style results rows."""
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    reset("snapshot_cache", "Snapshot cache: cold vs warm Fig 2 algorithm phase")
    record("snapshot_cache", f"{'lap':<6} {'seconds':>9} {'conversions':>12}")
    for lap in ("cold", "warm"):
        record(
            "snapshot_cache",
            f"{lap:<6} {payload[lap]['seconds']:>9.4f} "
            f"{max(payload[lap]['conversions_per_lap']):>12}",
        )
    record("snapshot_cache", f"warm/cold ratio: {payload['warm_over_cold']:.3f}")


def check(payload: dict) -> None:
    """The acceptance gates CI enforces."""
    assert all(n == 0 for n in payload["warm"]["conversions_per_lap"]), (
        "warm laps performed CSR conversions: "
        f"{payload['warm']['conversions_per_lap']}"
    )
    assert payload["warm_over_cold"] <= 0.5, (
        f"warm lap too slow: {payload['warm_over_cold']:.3f} of cold"
    )


def test_snapshot_cache_cold_warm(tmp_path):
    """Warm lap converts nothing and runs in <= 0.5x the cold lap."""
    posts_path = tmp_path / "posts.tsv"
    write_posts_tsv(generate_stackoverflow(CONFIG), posts_path)
    payload = run_cold_warm(posts_path)
    write_report(payload)
    check(payload)


def main() -> int:
    """Script entry point: run, report, gate; nonzero exit on failure."""
    with tempfile.TemporaryDirectory() as tmp:
        posts_path = Path(tmp) / "posts.tsv"
        write_posts_tsv(generate_stackoverflow(CONFIG), posts_path)
        payload = run_cold_warm(posts_path)
    write_report(payload)
    print(json.dumps(payload, indent=2))
    try:
        check(payload)
    except AssertionError as err:
        print(f"FAIL: {err}", file=sys.stderr)
        return 1
    print(
        f"OK: warm/cold = {payload['warm_over_cold']:.3f}, "
        "warm conversions = 0"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
