"""Table 2 — experiment graphs: nodes, edges, text/graph/table sizes.

Paper rows:
                     LiveJournal   Twitter2010
    Nodes                  4.8M           42M
    Edges                   69M          1.5B
    Text File Size        1.1GB        26.2GB
    In-memory Graph       0.7GB        13.2GB
    In-memory Table       1.1GB        23.5GB

The scaled stand-ins regenerate the same five rows. The shape claims the
paper draws from this table — the graph object is *smaller* in memory
than both the text file and the table object — are asserted.
"""

import pytest

from benchmarks.util import record, reset
from repro.memory.sizeof import format_bytes, object_size_bytes
from repro.workflows.datasets import LJ_SCALED, TW_SCALED, make_graph, write_text_file


@pytest.mark.parametrize("spec", [LJ_SCALED, TW_SCALED], ids=lambda s: s.name)
def test_table2_dataset_profile(benchmark, spec, tmp_path, lj_table, tw_table):
    table = lj_table if spec is LJ_SCALED else tw_table

    graph = benchmark.pedantic(make_graph, args=(spec,), rounds=1, iterations=1)

    text_path = tmp_path / f"{spec.name}.txt"
    text_bytes = write_text_file(spec, text_path)
    graph_bytes = object_size_bytes(graph)
    table_bytes = object_size_bytes(table)

    if spec is LJ_SCALED:
        reset("table2", "Table 2: experiment graphs (scaled stand-ins)")
        record("table2", f"{'Row':<22} {'paper LJ':>10} {'paper TW':>10} {'ours':>12}")
    paper = {
        LJ_SCALED: ("4.8M", "69M", "1.1GB", "0.7GB", "1.1GB"),
        TW_SCALED: ("42M", "1.5B", "26.2GB", "13.2GB", "23.5GB"),
    }[spec]
    record("table2", f"-- {spec.name} (stand-in for {spec.paper_name})")
    record("table2", f"{'Nodes':<22} {paper[0]:>10} {'':>10} {graph.num_nodes:>12}")
    record("table2", f"{'Edges':<22} {paper[1]:>10} {'':>10} {graph.num_edges:>12}")
    record("table2", f"{'Text File Size':<22} {paper[2]:>10} {'':>10} {format_bytes(text_bytes):>12}")
    record("table2", f"{'In-memory Graph Size':<22} {paper[3]:>10} {'':>10} {format_bytes(graph_bytes):>12}")
    record("table2", f"{'In-memory Table Size':<22} {paper[4]:>10} {'':>10} {format_bytes(table_bytes):>12}")

    # Shape assertion from the paper's table: the graph object is smaller
    # in memory than the table object for the same edges.
    assert graph_bytes < table_bytes
    # The paper also has graph < text file; at our scale that ordering
    # flips because scaled node ids are 4-5 decimal digits (vs the
    # paper's 7-8), making the text encoding unusually compact. Record
    # the ratio rather than asserting it (see EXPERIMENTS.md).
    record(
        "table2",
        f"{'graph/text ratio':<22} {'<1':>10} {'':>10} "
        f"{graph_bytes / text_bytes:>11.2f}x",
    )
    # And the dataset contrast is preserved: tw-scaled is several times
    # larger than lj-scaled.
    if spec is TW_SCALED:
        assert graph.num_edges > 3 * LJ_SCALED.scaled_edges * 0.5
