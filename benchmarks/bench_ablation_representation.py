"""Ablation A2 — graph representation trade-off (paper §2.2).

The paper rejects CSR for its dynamic graphs: "graph updates cause
prohibitive maintenance costs ... deleting a single edge requires time
linear in the total number of edges", while with the hash-of-nodes
design "deleting a single edge only requires time linear in the node
degree". This bench measures exactly that pair of claims, plus the
flip side (bulk traversal, where CSR's contiguity wins).
"""

import numpy as np
import pytest

from benchmarks.util import record, reset
from repro.graphs.csr import CSRGraph
from repro.workflows.datasets import LJ_SCALED, make_graph

DELETIONS = 50

_times: dict[str, float] = {}


@pytest.fixture(scope="module")
def sample_edges(lj_graph):
    rng = np.random.default_rng(4)
    sources, targets = lj_graph.edge_arrays()
    picks = rng.choice(len(sources), size=DELETIONS, replace=False)
    return [(int(sources[i]), int(targets[i])) for i in picks]


def test_a2_delete_edges_dynamic(benchmark, sample_edges):
    def run():
        graph = make_graph(LJ_SCALED)
        for src, dst in sample_edges:
            graph.del_edge(src, dst)
        return graph

    graph = benchmark.pedantic(run, rounds=1, iterations=1)

    # Subtract nothing: the rebuild dominates equally in both tests'
    # setup, so record per-deletion times from a separate measurement.
    import time

    fresh = make_graph(LJ_SCALED)
    start = time.perf_counter()
    for src, dst in sample_edges:
        fresh.del_edge(src, dst)
    per_delete = (time.perf_counter() - start) / DELETIONS
    _times["dynamic"] = per_delete
    reset("ablation_a2", "A2: representation trade-off (lj-scaled)")
    record("ablation_a2", f"{'Operation':<34} {'seconds':>12}")
    record("ablation_a2", f"{'delete edge (hash-of-nodes)':<34} {per_delete:>12.6f}")
    assert graph.num_edges == fresh.num_edges


def test_a2_delete_edges_csr(benchmark, lj_csr, sample_edges):
    node_ids = lj_csr.node_ids
    src, dst = sample_edges[0]

    csr = benchmark.pedantic(
        lj_csr.with_edge_deleted, args=(src, dst), rounds=3, iterations=1
    )

    per_delete = benchmark.stats.stats.mean
    _times["csr"] = per_delete
    record("ablation_a2", f"{'delete edge (CSR rebuild)':<34} {per_delete:>12.6f}")
    assert csr.num_edges == lj_csr.num_edges - 1
    # The §2.2 claim: O(degree) beats O(E) decisively.
    assert _times["dynamic"] < _times["csr"] / 10
    record(
        "ablation_a2",
        f"dynamic deletion is {_times['csr'] / _times['dynamic']:.0f}x cheaper "
        "(paper: O(degree) vs O(E))",
    )


def test_a2_traversal_csr_vs_dynamic(benchmark, lj_graph, lj_csr):
    """The flip side: CSR's contiguous scan beats per-node dict walks."""

    def scan_csr():
        return int(lj_csr.out_indices.sum())

    def scan_dynamic():
        total = 0
        for node in lj_graph.nodes():
            total += int(lj_graph.out_neighbors(node).sum())
        return total

    import time

    start = time.perf_counter()
    dynamic_sum = scan_dynamic()
    dynamic_time = time.perf_counter() - start

    csr_sum = benchmark.pedantic(scan_csr, rounds=3, iterations=1)
    csr_time = benchmark.stats.stats.mean

    record("ablation_a2", f"{'full adjacency scan (CSR)':<34} {csr_time:>12.6f}")
    record("ablation_a2", f"{'full adjacency scan (hash-of-nodes)':<34} {dynamic_time:>12.6f}")
    # CSR traversal is faster; the paper accepts the dynamic structure
    # because the gap "does not dramatically impact" algorithms.
    assert csr_time < dynamic_time
    # Sums differ in id space (dense vs original); both must be positive.
    assert csr_sum > 0 and dynamic_sum > 0
