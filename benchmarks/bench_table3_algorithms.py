"""Table 3 — parallel graph algorithms: PageRank and triangle counting.

Paper rows:
    Operation          LiveJournal   Twitter2010
    PageRank (10 it.)        2.76s         60.5s
    Triangle Counting        6.13s        263.6s

Shape claims checked here: PageRank (10 iterations) is faster than
triangle counting on the same graph, and both scale with dataset size
(tw-scaled slower than lj-scaled). The §3 footprint claim (X1) — the
working set of 10 PageRank iterations stays under twice the graph
snapshot's size — is also recorded.
"""

import pytest

from benchmarks.util import rate_m_per_s, record, reset, timed
from repro.algorithms.pagerank import pagerank_array
from repro.algorithms.triangles import total_triangles
from repro.memory.footprint import peak_footprint
from repro.memory.sizeof import format_bytes

PAPER = {
    "lj-scaled": {"pagerank": "2.76s", "triangles": "6.13s"},
    "tw-scaled": {"pagerank": "60.5s", "triangles": "263.6s"},
}

_measured: dict[tuple[str, str], float] = {}


@pytest.mark.parametrize("name", ["lj-scaled", "tw-scaled"])
def test_table3_pagerank_10_iterations(benchmark, name, lj_csr, tw_csr):
    csr = lj_csr if name == "lj-scaled" else tw_csr

    benchmark.pedantic(
        pagerank_array, args=(csr,), kwargs={"iterations": 10}, rounds=3, iterations=1
    )

    elapsed = benchmark.stats.stats.mean
    _measured[(name, "pagerank")] = elapsed
    if name == "lj-scaled":
        reset("table3", "Table 3: parallel graph algorithms")
        record("table3", f"{'Operation':<20} {'dataset':<10} {'paper':>8} {'ours':>10}")
    record(
        "table3",
        f"{'PageRank (10 it.)':<20} {name:<10} {PAPER[name]['pagerank']:>8} "
        f"{elapsed:>9.2f}s",
    )


@pytest.mark.parametrize("name", ["lj-scaled", "tw-scaled"])
def test_table3_triangle_counting(benchmark, name, lj_graph, tw_graph):
    graph = lj_graph if name == "lj-scaled" else tw_graph

    count = benchmark.pedantic(total_triangles, args=(graph,), rounds=1, iterations=1)

    elapsed = benchmark.stats.stats.mean
    _measured[(name, "triangles")] = elapsed
    record(
        "table3",
        f"{'Triangle Counting':<20} {name:<10} {PAPER[name]['triangles']:>8} "
        f"{elapsed:>9.2f}s  ({count} triangles)",
    )
    assert count > 0

    # Shape: triangles cost more than 10 PageRank iterations (paper:
    # 6.13 vs 2.76 on LJ, 263.6 vs 60.5 on TW).
    pagerank_time = _measured.get((name, "pagerank"))
    if pagerank_time is not None:
        assert elapsed > pagerank_time


def test_table3_x1_pagerank_footprint(benchmark, tw_csr):
    """§3 text: footprint of 10 PageRank iterations < 2x graph size."""

    def run():
        _, peak = peak_footprint(lambda: pagerank_array(tw_csr, iterations=10))
        return peak

    peak = benchmark.pedantic(run, rounds=1, iterations=1)

    graph_bytes = tw_csr.memory_bytes()
    ratio = peak / graph_bytes
    record(
        "table3",
        f"X1 footprint: PageRank peak {format_bytes(peak)} on "
        f"{format_bytes(graph_bytes)} graph = {ratio:.2f}x (paper: <2x)",
    )
    assert ratio < 2.0
