"""Table 4 — Select and Join performance on tables.

Paper rows (times and M rows/s):
    Dataset                LiveJournal   Twitter2010
    Select 10K, in place         <0.2s          1.6s
    Select all-10K, in place     <0.1s          1.6s
    Join 10K                      0.6s          4.2s
    Join all-10K                  3.1s         29.7s

Setup mirrors the paper: selects compare a column against a constant
chosen so the output is either 10,000 rows or all-but-10,000 rows, in
place; joins pair the edge table with a single-column table whose values
select either 10,000 or all-but-10,000 matches, always producing a new
table. Join rates count both input tables' rows, as the paper does.

Shape claims asserted: selects are (much) faster than joins, small-output
join beats large-output join, and the larger dataset takes longer.
"""

import numpy as np
import pytest

from benchmarks.util import rate_m_per_s, record, reset
from repro.tables.join import join
from repro.tables.schema import ColumnType, Schema
from repro.tables.select import select
from repro.tables.table import Table

SMALL = 10_000

PAPER = {
    ("lj-scaled", "select_small"): "<0.2s",
    ("lj-scaled", "select_large"): "<0.1s",
    ("lj-scaled", "join_small"): "0.6s",
    ("lj-scaled", "join_large"): "3.1s",
    ("tw-scaled", "select_small"): "1.6s",
    ("tw-scaled", "select_large"): "1.6s",
    ("tw-scaled", "join_small"): "4.2s",
    ("tw-scaled", "join_large"): "29.7s",
}

_times: dict[tuple[str, str], float] = {}


def bench_table(base: Table) -> Table:
    """The dataset's edge table plus a unique ``Val`` column.

    A permutation column gives exact constant-comparison selectivity:
    ``Val < 10000`` keeps exactly 10,000 rows.
    """
    rng = np.random.default_rng(99)
    values = rng.permutation(base.num_rows).astype(np.int64)
    table = base.clone()
    table.add_column("Val", values, ColumnType.INT)
    return table


@pytest.fixture(scope="module")
def lj_bench(lj_table):
    return bench_table(lj_table)


@pytest.fixture(scope="module")
def tw_bench(tw_table):
    return bench_table(tw_table)


def single_column(values: np.ndarray) -> Table:
    schema = Schema([("Key", ColumnType.INT)])
    return Table(schema, {"Key": values})


def _record_header_once():
    if not _times:
        reset("table4", "Table 4: Select and Join performance")
        record(
            "table4",
            f"{'Operation':<26} {'dataset':<10} {'paper':>8} {'ours':>10} {'Mrows/s':>9}",
        )


@pytest.mark.parametrize("name", ["lj-scaled", "tw-scaled"])
def test_table4_select_10k_in_place(benchmark, name, lj_bench, tw_bench):
    table = lj_bench if name == "lj-scaled" else tw_bench

    def run():
        work = table.clone()
        select(work, f"Val < {SMALL}", in_place=True)
        return work

    result = benchmark.pedantic(run, rounds=3, iterations=1)

    assert result.num_rows == SMALL
    elapsed = benchmark.stats.stats.mean
    _record_header_once()
    _times[(name, "select_small")] = elapsed
    record(
        "table4",
        f"{'Select 10K, in place':<26} {name:<10} {PAPER[(name, 'select_small')]:>8} "
        f"{elapsed:>9.3f}s {rate_m_per_s(table.num_rows, elapsed):>9.1f}",
    )


@pytest.mark.parametrize("name", ["lj-scaled", "tw-scaled"])
def test_table4_select_all_minus_10k_in_place(benchmark, name, lj_bench, tw_bench):
    table = lj_bench if name == "lj-scaled" else tw_bench

    def run():
        work = table.clone()
        select(work, f"Val >= {SMALL}", in_place=True)
        return work

    result = benchmark.pedantic(run, rounds=3, iterations=1)

    assert result.num_rows == table.num_rows - SMALL
    elapsed = benchmark.stats.stats.mean
    _times[(name, "select_large")] = elapsed
    record(
        "table4",
        f"{'Select all-10K, in place':<26} {name:<10} {PAPER[(name, 'select_large')]:>8} "
        f"{elapsed:>9.3f}s {rate_m_per_s(table.num_rows, elapsed):>9.1f}",
    )


@pytest.mark.parametrize("name", ["lj-scaled", "tw-scaled"])
def test_table4_join_10k(benchmark, name, lj_bench, tw_bench):
    table = lj_bench if name == "lj-scaled" else tw_bench
    probe = single_column(np.arange(SMALL, dtype=np.int64))

    result = benchmark.pedantic(
        join, args=(table, probe, "Val", "Key"), rounds=3, iterations=1
    )

    assert result.num_rows == SMALL
    elapsed = benchmark.stats.stats.mean
    _times[(name, "join_small")] = elapsed
    both = table.num_rows + probe.num_rows
    record(
        "table4",
        f"{'Join 10K':<26} {name:<10} {PAPER[(name, 'join_small')]:>8} "
        f"{elapsed:>9.3f}s {rate_m_per_s(both, elapsed):>9.1f}",
    )
    # Shape: select is faster than join on the same dataset.
    assert elapsed > _times[(name, "select_small")]


@pytest.mark.parametrize("name", ["lj-scaled", "tw-scaled"])
def test_table4_join_all_minus_10k(benchmark, name, lj_bench, tw_bench):
    table = lj_bench if name == "lj-scaled" else tw_bench
    probe = single_column(np.arange(SMALL, table.num_rows, dtype=np.int64))

    result = benchmark.pedantic(
        join, args=(table, probe, "Val", "Key"), rounds=3, iterations=1
    )

    assert result.num_rows == table.num_rows - SMALL
    elapsed = benchmark.stats.stats.mean
    both = table.num_rows + probe.num_rows
    record(
        "table4",
        f"{'Join all-10K':<26} {name:<10} {PAPER[(name, 'join_large')]:>8} "
        f"{elapsed:>9.3f}s {rate_m_per_s(both, elapsed):>9.1f}",
    )
    # Shape: producing the big output costs more than the small one.
    assert elapsed > _times[(name, "join_small")]
