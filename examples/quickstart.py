"""Quickstart: the Ringo workflow in twenty lines.

Builds a small follower table, converts it to a graph with the
sort-first algorithm, runs PageRank, and lands the scores back in a
table — the paper's Figure 2 loop end to end.

Run:  python examples/quickstart.py
"""

from repro import Ringo


def main() -> None:
    with Ringo() as ringo:
        # A tiny "who follows whom" edge table.
        follows = ringo.TableFromColumns(
            {
                "Follower": [1, 2, 2, 3, 4, 4, 5, 5, 5],
                "Followee": [2, 3, 4, 1, 1, 3, 1, 2, 3],
            }
        )
        print("Input table:")
        print(follows.head())

        # Table -> graph (sort-first conversion, §2.4).
        graph = ringo.ToGraph(follows, "Follower", "Followee")
        print(f"\nGraph: {graph.num_nodes} nodes, {graph.num_edges} edges")

        # Analytics (two of the 200+ registered functions).
        ranks = ringo.GetPageRank(graph)
        triangles = ringo.GetTriangles(graph)
        print(f"Triangles: {triangles}")

        # Graph results -> table (§4.1's TableFromHashMap), then sort.
        scores = ringo.TableFromHashMap(ranks, "User", "Scr")
        top = ringo.OrderBy(scores, "Scr", ascending=False)
        print("\nPageRank scores:")
        print(top.head())

        print(f"\nThis session exposes {ringo.NumFunctions()} functions, e.g.:")
        for name in ringo.Functions(category="algorithm")[:5]:
            print(f"  {name}")


if __name__ == "__main__":
    main()
