"""Advanced graph construction with SimJoin and NextK (paper §2.3).

Two scenarios from the paper's introduction:

1. **Information propagation** — an event log of users sharing a story.
   ``NextK`` connects each share to the next shares of the *same story*,
   giving a plausible propagation graph whose components are cascades.
2. **Internet topology from traceroutes** — routers emit probe
   timestamps and coordinates; ``SimJoin`` links probes that are close
   in RTT space, approximating co-located routers.

Run:  python examples/graph_construction.py
"""

import numpy as np

from repro import Ringo
from repro.algorithms.components import component_sizes, weakly_connected_components


def propagation_cascades(ringo: Ringo) -> None:
    print("=== Scenario 1: information-propagation cascades (NextK) ===")
    rng = np.random.default_rng(7)
    num_events = 400
    stories = rng.integers(0, 12, size=num_events)
    shares = ringo.TableFromColumns(
        {
            "Time": np.sort(rng.integers(0, 100_000, size=num_events)),
            "Story": stories,
            "UserId": rng.integers(0, 150, size=num_events),
        }
    )
    # Connect each share to the next 2 shares of the same story.
    pairs = ringo.NextK(shares, "Time", k=2, group_col="Story")
    print(f"share events: {shares.num_rows}, propagation edges: {pairs.num_rows}")

    graph = ringo.ToGraph(pairs, "UserId-1", "UserId-2")
    labels = weakly_connected_components(graph)
    sizes = sorted(component_sizes(labels).values(), reverse=True)
    print(f"propagation graph: {graph.num_nodes} users, {graph.num_edges} edges")
    print(f"largest cascades (weak components): {sizes[:5]}")


def traceroute_topology(ringo: Ringo) -> None:
    print("\n=== Scenario 2: router co-location from probes (SimJoin) ===")
    rng = np.random.default_rng(13)
    num_routers = 60
    probes_per_router = 5
    # Routers live at latent positions; probes observe them with jitter.
    latent = rng.uniform(0, 100, size=num_routers)
    probe_router = np.repeat(np.arange(num_routers), probes_per_router)
    probe_rtt = latent[probe_router] + rng.normal(0, 0.05, size=len(probe_router))
    probes = ringo.TableFromColumns(
        {
            "ProbeId": np.arange(len(probe_router)),
            "RouterId": probe_router,
            "Rtt": probe_rtt,
        }
    )
    close = ringo.SimJoin(probes, probes, "Rtt", threshold=0.3)
    # Drop self-pairs, then build the co-location graph on router ids.
    distinct = ringo.Select(
        close, close.column("ProbeId-1") != close.column("ProbeId-2")
    )
    graph = ringo.ToGraph(distinct, "RouterId-1", "RouterId-2", directed=False)
    labels = weakly_connected_components(graph)
    print(f"probes: {probes.num_rows}, close pairs: {distinct.num_rows}")
    print(
        f"co-location graph: {graph.num_nodes} routers, "
        f"{graph.num_edges} edges, {len(set(labels.values()))} clusters"
    )


def main() -> None:
    with Ringo() as ringo:
        propagation_cascades(ringo)
        traceroute_topology(ringo)


if __name__ == "__main__":
    main()
