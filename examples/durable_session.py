"""Durable session walkthrough: WAL, checkpoint, crash, recover.

Arms crash-consistent durability on a session, builds a small analysis
(table -> select -> graph -> PageRank), checkpoints halfway, keeps
working, then simulates a crash by throwing the live session away
without any cleanup and reconstructs it with ``Ringo.recover()`` —
verifying the recovered catalog matches the original object for
object.

Run:  python examples/durable_session.py [state-dir]
"""

import sys
import tempfile

from repro import Ringo
from repro.recovery import catalog_digest


def build(ringo: Ringo) -> None:
    posts = ringo.TableFromColumns(
        {
            "User": [1, 2, 3, 4, 2, 1, 3, 5],
            "Score": [5.0, 1.0, 3.5, 2.0, 4.0, 0.5, 2.5, 3.0],
            "Tag": ["java", "py", "java", "go", "py", "java", "go", "java"],
        }
    )
    java = ringo.Select(posts, "Tag=java")
    joined = ringo.Join(java, posts, "User")
    ringo.ToGraph(joined, "User-1", "User-2")


def main() -> None:
    state = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(prefix="ringo-")

    print(f"Durability directory: {state}")
    ringo = Ringo(durability=state)
    build(ringo)
    print(f"Built {len(ringo.Objects())} objects: {ringo.Objects()}")

    manifest = ringo.checkpoint()
    print(f"Checkpoint {manifest['checkpoint']} at WAL LSN {manifest['wal_lsn']}")

    # Keep working past the checkpoint — these ops live only in the WAL.
    graph = ringo.GetObject("graph-4")
    ranks = ringo.GetPageRank(graph)
    ringo.TableFromHashMap(ranks, "User", "Rank")
    before = catalog_digest(ringo)
    wal = ringo.health()["recovery"]["wal"]
    print(f"WAL: {wal['appends']} appends, last LSN {wal['last_lsn']}")

    # Simulate a crash: no close(), no flushes — the process state is
    # simply gone. (A real SIGKILL test lives in tests/test_recovery_crash.py.)
    del ringo
    print("\n-- crash --\n")

    recovered = Ringo.recover(state)
    report = recovered.health()["recovery"]["last_recovery"]
    print(
        f"Recovered from {report['checkpoint']}: "
        f"{report['restored_objects']} objects restored, "
        f"{report['replayed_ops']} WAL records replayed"
    )
    after = catalog_digest(recovered)
    assert after == before, "recovered catalog diverged from the original"
    print(f"Catalog verified: {len(after)} objects identical")
    recovered.close()


if __name__ == "__main__":
    main()
