"""Temporal snapshots: watching an interaction network grow.

Builds a synthetic interaction log whose activity accelerates over
time (preferential attachment arriving in timestamped batches), then
uses the snapshot machinery to slice it into windows and track how the
network's structure evolves — the "tracing the propagation of
information" workflow from the paper's introduction.

Run:  python examples/temporal_cascades.py
"""

import numpy as np

from repro import Ringo
from repro.algorithms.components import component_sizes, weakly_connected_components
from repro.workflows.temporal import growth_curve

NUM_EVENTS = 3000
HORIZON = 100.0


def synthesize_log(ringo: Ringo):
    """Timestamped interactions with preferential attachment."""
    rng = np.random.default_rng(2015)
    # Quadratic arrival times: activity accelerates.
    times = np.sort(HORIZON * rng.random(NUM_EVENTS) ** 0.5)
    sources = np.zeros(NUM_EVENTS, dtype=np.int64)
    targets = np.zeros(NUM_EVENTS, dtype=np.int64)
    endpoints = [0, 1]
    for index in range(NUM_EVENTS):
        src = endpoints[rng.integers(0, len(endpoints))]
        # New participant with probability 0.3, else preferential.
        if rng.random() < 0.3:
            dst = index + 2  # fresh id
        else:
            dst = endpoints[rng.integers(0, len(endpoints))]
        sources[index] = src
        targets[index] = dst
        endpoints.extend((src, dst))
    return ringo.TableFromColumns({"t": times, "src": sources, "dst": targets})


def main() -> None:
    with Ringo() as ringo:
        log = synthesize_log(ringo)
        print(f"interaction log: {log.num_rows} events over {HORIZON:.0f} time units")

        print("\n=== windowed snapshots (20-unit windows) ===")
        snaps = ringo.GetSnapshots(log, "t", "src", "dst", window=20.0)
        print(f"{'window':>12} {'nodes':>7} {'edges':>7} {'largest WCC':>12}")
        for snap in snaps:
            if snap.graph.num_nodes:
                labels = weakly_connected_components(snap.graph)
                largest = max(component_sizes(labels).values())
            else:
                largest = 0
            print(f"[{snap.start:4.0f},{snap.stop:4.0f}) "
                  f"{snap.graph.num_nodes:>7} {snap.graph.num_edges:>7} {largest:>12}")

        print("\n=== cumulative growth ===")
        cumulative = ringo.GetSnapshots(
            log, "t", "src", "dst", window=20.0, cumulative=True
        )
        for start, nodes, edges in growth_curve(cumulative):
            bar = "#" * (edges // 60)
            print(f"t<{start + 20.0:4.0f}: {nodes:>6} nodes {edges:>6} edges {bar}")

        final = cumulative[-1].graph
        ranks = ringo.GetPageRank(final)
        top = sorted(ranks, key=ranks.get, reverse=True)[:5]
        print(f"\nmost central participants in the final graph: {top}")


if __name__ == "__main__":
    main()
