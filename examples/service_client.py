"""Two tenants sharing one session service: the multi-tenant walkthrough.

Starts the service in-process (the same server ``repro serve`` runs),
then drives two tenants over real TCP connections:

* ``alice`` and ``bob`` each load their own edge table, build a graph,
  and rank it — two isolated catalogs on one machine;
* ``alice`` is evicted to her checkpoint while idle and transparently
  revived by her next request (resident sessions << known sessions);
* a deliberately tiny deadline shows a typed, on-time expiry instead of
  a stuck client;
* the drain checkpoints both sessions, and the spool alone is then
  enough to verify nothing committed was lost.

Run:  python examples/service_client.py [spool-dir]
"""

import sys
import tempfile
import time
from pathlib import Path

from repro import Ringo
from repro.recovery import catalog_digest
from repro.service import ServiceClient, ServiceConfig, ServiceHandle

SCHEMA = [["src", "int"], ["dst", "int"]]


def write_edges(path: Path, n: int, stride: int) -> str:
    with open(path, "w") as fh:
        for i in range(n):
            fh.write(f"{i}\t{(i * stride + 1) % n}\n")
    return str(path)


def tenant_workload(client: ServiceClient, edges: str) -> dict:
    table = client.call("LoadTableTSV", path=edges, schema=SCHEMA)
    graph = client.call(
        "ToGraph", table={"$ref": table["$ref"]}, src_col="src", dst_col="dst"
    )
    ranks = client.call("GetPageRank", graph={"$ref": graph["$ref"]})
    top = max(ranks, key=ranks.get)
    print(
        f"  [{client.tenant}] {graph['nodes']} nodes, {graph['edges']} edges; "
        f"top PageRank node {top} ({ranks[top]:.4f})"
    )
    return client.call("digest")


def main() -> None:
    spool = Path(
        sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(prefix="ringo-svc-")
    )
    data = Path(tempfile.mkdtemp(prefix="ringo-data-"))
    alice_edges = write_edges(data / "alice.tsv", 20_000, 7)
    bob_edges = write_edges(data / "bob.tsv", 300, 11)

    config = ServiceConfig(
        spool_dir=str(spool),
        global_budget_bytes=256 << 20,
        default_tenant_budget_bytes=64 << 20,
        idle_evict_s=0.5,
        tick_s=0.05,
    )
    handle = ServiceHandle(config).start()
    host, port = handle.address
    print(f"Service listening on {host}:{port} (spool: {spool})")

    with ServiceClient(host, port, tenant="alice") as alice, \
            ServiceClient(host, port, tenant="bob") as bob:
        print("Running both tenant workloads:")
        alice_digest = tenant_workload(alice, alice_edges)
        bob_digest = tenant_workload(bob, bob_edges)

        # Pipeline a slow request with a 1 ms probe queued behind it:
        # the probe cannot start in time, so the service answers it
        # with a typed expiry within a tick instead of running it late.
        slow = alice.send("GetBfsLevels", graph={"$ref": "graph-2"}, root=0)
        probe = alice.send("digest", deadline_ms=1)
        envelope = alice.wait(probe)
        kind = envelope["error"]["type"] if not envelope["ok"] else "ok"
        print(f"1 ms-deadline probe queued behind a slow request: {kind}")
        alice.wait(slow)

        # Idle long enough and alice is evicted to her checkpoint...
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            tenants = handle.health()["service"]["tenants"]
            if not tenants["alice"]["resident"]:
                break
            time.sleep(0.05)
        health = handle.health()["service"]
        print(
            f"Resident sessions: {health['resident_sessions']} of "
            f"{health['known_sessions']} known "
            f"(alice evicted: {not health['tenants']['alice']['resident']})"
        )

        # ...and her next request revives the session transparently.
        assert alice.call("digest") == alice_digest, "revival changed the catalog"
        revivals = handle.health()["service"]["tenants"]["alice"]["revivals"]
        print(f"Alice revived from checkpoint (revivals: {revivals}); "
              f"catalog digest unchanged")

    report = handle.stop()
    print(
        f"Drained: {report['checkpointed']} session(s) checkpointed, "
        f"{report['checkpoint_failures']} failure(s)"
    )

    # The service is gone; the spool alone reconstructs both catalogs.
    for tenant, digest in (("alice", alice_digest), ("bob", bob_digest)):
        with Ringo.recover(spool / tenant, workers=1) as revived:
            assert catalog_digest(revived) == digest, tenant
    print("Spool verified: both tenant catalogs identical after drain")


if __name__ == "__main__":
    main()
