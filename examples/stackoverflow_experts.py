"""Finding Java experts on StackOverflow (paper §4.1, end to end).

Reproduces the SIGMOD demo: load a posts table, filter to one tag,
join questions with their accepted answers, build the asker→answerer
graph, and rank users with PageRank. The dataset is synthetic (the real
dump is not redistributable) with planted per-tag experts, so the
script can report how well PageRank recovers the ground truth.

Run:  python examples/stackoverflow_experts.py [tag]
      (tag defaults to Java; try Python, SQL, C++, JavaScript)
"""

import sys
import tempfile
from pathlib import Path

from repro import Ringo
from repro.util.timing import Timer
from repro.workflows.stackoverflow import (
    POSTS_SCHEMA,
    StackOverflowConfig,
    generate_stackoverflow,
    write_posts_tsv,
)


def find_experts(ringo: Ringo, posts, tag: str, top_k: int = 10) -> list[int]:
    """The paper's §4.1 listing, verbatim in structure."""
    tagged = ringo.Select(posts, f"Tag='{tag}'")
    questions = ringo.Select(tagged, "Type=question")
    answers = ringo.Select(tagged, "Type=answer")
    qa = ringo.Join(questions, answers, "AnswerId", "PostId")
    graph = ringo.ToGraph(qa, "UserId-1", "UserId-2")
    ranks = ringo.GetPageRank(graph)
    scores = ringo.TableFromHashMap(ranks, "User", "Scr")
    top = ringo.OrderBy(scores, "Scr", ascending=False)
    return top.column("User").tolist()[:top_k]


def main() -> None:
    tag = sys.argv[1] if len(sys.argv) > 1 else "Java"
    config = StackOverflowConfig(num_users=800, num_questions=5000, seed=2015)
    if tag not in config.tags:
        raise SystemExit(f"unknown tag {tag!r}; pick one of {config.tags}")

    timer = Timer()
    with timer.stage("generate synthetic forum"):
        data = generate_stackoverflow(config)

    with tempfile.TemporaryDirectory() as tmp:
        posts_path = Path(tmp) / "posts.tsv"
        with timer.stage("write posts.tsv"):
            rows = write_posts_tsv(data, posts_path)
        print(f"posts.tsv: {rows} rows ({posts_path.stat().st_size} bytes)")

        with Ringo() as ringo:
            with timer.stage("load posts.tsv"):
                posts = ringo.LoadTableTSV(POSTS_SCHEMA, posts_path)
            with timer.stage("pipeline (select/join/ToGraph/PageRank)"):
                top = find_experts(ringo, posts, tag)

    truth = set(data.experts_for(tag))
    hits = [user for user in top if user in truth]
    print(f"\nTop-10 {tag} experts by PageRank: {top}")
    print(f"Planted {tag} experts:            {sorted(truth)}")
    print(f"Precision@10: {len(hits) / 10:.0%}")
    print("\nStage timings:")
    print(timer.report())


if __name__ == "__main__":
    main()
