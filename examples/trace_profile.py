"""Observability demonstration: trace the interactive loop end to end.

Runs the paper's core workflow — load an edge file, build the graph
with sort-first, snapshot it to CSR, run PageRank — on the lj-scaled
dataset under ``Ringo(trace=True)``, then prints the span-tree profile
and the throughput metrics (rows/s, edges/s) from ``health()["obs"]``.

Run:  python examples/trace_profile.py
      RINGO_TRACE=trace.jsonl python examples/trace_profile.py
      (the env form also writes every span as JSON lines; validate
      with ``python -m repro.obs trace.jsonl``)

Exits nonzero if the trace is missing any pipeline stage, so CI can
use it as the observability smoke test.
"""

import sys
import tempfile
from pathlib import Path

from repro import Ringo, obs
from repro.workflows.datasets import LJ_SCALED, SRC_COLUMN, DST_COLUMN, write_text_file

# Every stage of load -> conversion -> snapshot build -> algorithm must
# appear in the trace for the run to count as covered.
REQUIRED_SPANS = {
    "io.load_tsv",
    "engine.ToGraph",
    "convert.sort_first",
    "convert.sort",
    "convert.count",
    "convert.copy",
    "snapshot.build",
    "engine.GetPageRank",
    "alg.pagerank",
}


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / f"{LJ_SCALED.name}.tsv"
        nbytes = write_text_file(LJ_SCALED, path)
        print(f"dataset: {LJ_SCALED.name} ({nbytes >> 10} KiB on disk)")

        # RINGO_TRACE (e.g. a JSONL output path) wins over the default.
        with Ringo(trace=None if obs.env_enabled() else True) as ringo:
            table = ringo.LoadTableTSV(
                [(SRC_COLUMN, "int"), (DST_COLUMN, "int")], path
            )
            graph = ringo.ToGraph(table, SRC_COLUMN, DST_COLUMN)
            ranks = ringo.GetPageRank(graph)
            top = max(ranks, key=ranks.get)
            print(
                f"graph: {graph.num_nodes} nodes / {graph.num_edges} edges; "
                f"top PageRank node {top} ({ranks[top]:.6f})"
            )

            print("\n--- span-tree profile ---")
            print(ringo.profile())

            obs_report = ringo.health()["obs"]
            metrics = obs_report["metrics"]
            print("--- throughput (health()['obs']) ---")
            for name in sorted(metrics):
                if name.endswith("_per_s"):
                    snap = metrics[name]
                    if snap["count"]:
                        print(f"{name:>32}: {snap['mean']:,.0f} mean "
                              f"(p95 {snap['p95']:,.0f})")
            ratio = obs_report["derived"]["snapshot_hit_ratio"]
            print(f"{'snapshot_hit_ratio':>32}: {ratio}")

            names = {r["name"] for r in obs.current_tracer().ring_records()}
        missing = REQUIRED_SPANS - names
        if missing:
            print(f"FAIL: trace missing spans: {sorted(missing)}", file=sys.stderr)
            return 1
        print(f"\nOK: trace covers all {len(REQUIRED_SPANS)} required stages")
        return 0


if __name__ == "__main__":
    sys.exit(main())
