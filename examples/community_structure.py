"""Community and structure analysis on a planted-partition graph.

Exercises the breadth of the analytics suite the way §4.1's "open
exploration" segment invites: generate a graph with known community
structure, recover it with label propagation, score it with modularity,
then profile the structure (cores, triads, bridges, colouring) and
predict missing links.

Run:  python examples/community_structure.py
"""

from repro import Ringo
from repro.algorithms.community import community_sizes, label_propagation, modularity
from repro.algorithms.connectivity import bridges
from repro.algorithms.coloring import chromatic_upper_bound
from repro.algorithms.cores import degeneracy
from repro.algorithms.linkpred import top_predicted_links
from repro.algorithms.motifs import triad_census
from repro.algorithms.statistics import summarize

NUM_COMMUNITIES = 4
COMMUNITY_SIZE = 30


def main() -> None:
    with Ringo() as ringo:
        graph = ringo.GenPlantedPartition(
            NUM_COMMUNITIES, COMMUNITY_SIZE, p_in=0.35, p_out=0.005, seed=42
        )
        print(summarize(graph))

        # Recover the planted communities.
        found = label_propagation(graph, seed=7)
        planted = {node: node // COMMUNITY_SIZE for node in graph.nodes()}
        print(f"\ncommunities found: {len(set(found.values()))} "
              f"(planted: {NUM_COMMUNITIES})")
        print(f"sizes: {sorted(community_sizes(found).values(), reverse=True)}")
        print(f"modularity found/planted: "
              f"{modularity(graph, found):.3f} / {modularity(graph, planted):.3f}")

        # Structural profile.
        print(f"\ndegeneracy (max k-core): {degeneracy(graph)}")
        print(f"greedy chromatic bound: {chromatic_upper_bound(graph)}")
        print(f"bridges: {len(bridges(graph))}")
        census = triad_census(graph)
        closed = {name: count for name, count in census.items()
                  if name in ("300", "210", "120D", "120U", "120C") and count}
        print(f"closed-triad classes present: {closed or '300-only graphs: none'}")

        # Predict the most likely missing links; with strong communities
        # they should fall inside a planted block.
        predictions = top_predicted_links(graph, k=5)
        intra = sum(
            1 for (u, v), _ in predictions
            if u // COMMUNITY_SIZE == v // COMMUNITY_SIZE
        )
        print(f"\ntop-5 predicted links (Jaccard): "
              f"{[pair for pair, _ in predictions]}")
        print(f"predictions inside a planted community: {intra}/5")


if __name__ == "__main__":
    main()
