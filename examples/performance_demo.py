"""Performance demonstration (paper §4.2).

Runs the paper's operation menu — table ops, conversions, and graph
algorithms — on the scaled benchmark datasets, printing wall-clock
times, processing rates, and object sizes the way Tables 2-6 do.

Run:  python examples/performance_demo.py [--big]
      (--big also runs the larger tw-scaled dataset)
"""

import sys

from repro import Ringo
from repro.algorithms.pagerank import pagerank
from repro.algorithms.triangles import total_triangles
from repro.convert.graph_to_table import to_edge_table
from repro.convert.table_to_graph import to_graph
from repro.memory.sizeof import format_bytes, object_size_bytes
from repro.util.timing import Stopwatch, format_duration
from repro.workflows.datasets import (
    LJ_SCALED,
    TW_SCALED,
    DatasetSpec,
    make_edge_table,
)


def run_dataset(ringo: Ringo, spec: DatasetSpec) -> None:
    print(f"\n=== {spec.name} (stand-in for {spec.paper_name}: "
          f"{spec.paper_nodes} nodes / {spec.paper_edges} edges) ===")

    table = make_edge_table(spec, pool=ringo.pool)
    print(f"edge table: {table.num_rows} rows, "
          f"{format_bytes(object_size_bytes(table))} in memory")

    with Stopwatch() as sw:
        graph = to_graph(table, "SrcId", "DstId", pool=ringo.workers)
    rate = table.num_rows / max(sw.elapsed, 1e-9) / 1e6
    print(f"table -> graph:  {format_duration(sw.elapsed):>8}  "
          f"({rate:.1f}M rows/s); graph {format_bytes(object_size_bytes(graph))}")

    with Stopwatch() as sw:
        edge_table = to_edge_table(graph, pool=ringo.workers, string_pool=ringo.pool)
    rate = graph.num_edges / max(sw.elapsed, 1e-9) / 1e6
    print(f"graph -> table:  {format_duration(sw.elapsed):>8}  ({rate:.1f}M edges/s)")

    with Stopwatch() as sw:
        pagerank(graph, iterations=10)
    print(f"PageRank (10 it):{format_duration(sw.elapsed):>8}")

    with Stopwatch() as sw:
        count = total_triangles(graph, pool=ringo.workers)
    print(f"triangles:       {format_duration(sw.elapsed):>8}  ({count} triangles)")

    threshold = int(edge_table.column("SrcId").max()) // 2
    with Stopwatch() as sw:
        selected = ringo.Select(edge_table, f"SrcId < {threshold}")
    rate = edge_table.num_rows / max(sw.elapsed, 1e-9) / 1e6
    print(f"select:          {format_duration(sw.elapsed):>8}  "
          f"({rate:.1f}M rows/s, kept {selected.num_rows})")


def main() -> None:
    specs = [LJ_SCALED]
    if "--big" in sys.argv:
        specs.append(TW_SCALED)
    with Ringo() as ringo:
        print(f"Ringo session ready: {ringo.NumFunctions()} registered functions, "
              f"{ringo.workers.workers} workers")
        for spec in specs:
            run_dataset(ringo, spec)
    print("\n(Absolute times are pure-Python scale; the paper's shapes —"
          "\n conversion ~10M+ rows/s slower than select, PageRank faster"
          "\n than triangles — should still hold.)")


if __name__ == "__main__":
    main()
