"""Threads-vs-processes digest equality for the partitioned kernels.

The acceptance property of the process backend: for PageRank (numpy and
pure-Python formulations), triangle counting, and WCC, the process path
produces **bitwise-identical** results to the thread path — on clean
runs and under seeded faults at every multi-core fault site (where the
dispatcher degrades to threads rather than changing the answer).
"""

import hashlib

import numpy as np
import pytest

from repro.algorithms.components import _wcc_labels, _wcc_labels_parallel
from repro.algorithms.pagerank import pagerank_array, pagerank_python_array
from repro.algorithms.triangles import triangle_count_array
from repro.faults import inject_faults
from repro.graphs.snapshot import csr_snapshot
from repro.parallel.executor import kernel_dispatcher
from repro.parallel.shm import leaked_segments, shm_registry
from tests.helpers import random_directed

FAULT_SITES = [
    {"parallel.shm.export": {"rate": 0.5}},
    {"parallel.proc.dispatch": {"rate": 0.5}},
    {"parallel.proc.worker_crash": {"rate": 1.0, "max_triggers": 1}},
]


def _digest(array: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(array).tobytes()).hexdigest()


@pytest.fixture(scope="module")
def csr():
    return csr_snapshot(random_directed(400, 3000, seed=11))


@pytest.fixture(autouse=True)
def _clean_backend():
    """Leave the process-wide dispatcher and registry leak-free."""
    yield
    kernel_dispatcher().shutdown()
    shm_registry().drop_all()
    assert leaked_segments() == []


class TestCleanRunDigests:
    def test_pagerank_numpy_bitwise_equal(self, csr):
        threads = pagerank_array(csr, backend="threads")
        processes = pagerank_array(csr, backend="processes")
        assert _digest(threads) == _digest(processes)

    def test_pagerank_python_bitwise_equal(self, csr):
        threads = pagerank_python_array(csr, backend="threads")
        processes = pagerank_python_array(csr, backend="processes")
        assert _digest(threads) == _digest(processes)

    def test_triangles_bitwise_equal(self, csr):
        sym = csr.undirected_projection()
        threads = triangle_count_array(sym, backend="threads")
        processes = triangle_count_array(sym, backend="processes")
        assert _digest(threads) == _digest(processes)

    def test_wcc_labels_equal_serial_bfs(self, csr):
        serial = _wcc_labels(csr)
        parallel = _wcc_labels_parallel(csr, backend="processes")
        assert _digest(serial) == _digest(parallel)


class TestDigestsUnderFaults:
    @pytest.mark.parametrize("sites", FAULT_SITES)
    def test_pagerank_digest_stable_under_faults(self, csr, sites):
        baseline = pagerank_array(csr, backend="threads")
        with inject_faults(sites, seed=3):
            faulted = pagerank_array(csr, backend="processes")
        assert _digest(baseline) == _digest(faulted)

    @pytest.mark.parametrize("sites", FAULT_SITES)
    def test_triangles_digest_stable_under_faults(self, csr, sites):
        sym = csr.undirected_projection()
        baseline = triangle_count_array(sym, backend="threads")
        with inject_faults(sites, seed=3):
            faulted = triangle_count_array(sym, backend="processes")
        assert _digest(baseline) == _digest(faulted)

    @pytest.mark.parametrize("sites", FAULT_SITES)
    def test_wcc_digest_stable_under_faults(self, csr, sites):
        baseline = _wcc_labels(csr)
        with inject_faults(sites, seed=3):
            faulted = _wcc_labels_parallel(csr, backend="processes")
        assert _digest(baseline) == _digest(faulted)

    def test_pagerank_python_digest_stable_under_crash(self, csr):
        baseline = pagerank_python_array(csr, iterations=3, backend="threads")
        with inject_faults(
            {"parallel.proc.worker_crash": {"rate": 1.0, "max_triggers": 1}},
            seed=3,
        ):
            faulted = pagerank_python_array(
                csr, iterations=3, backend="processes"
            )
        assert _digest(baseline) == _digest(faulted)
