"""Hot-standby replication: epochs, fencing, shipping, divergence, lag.

The unit layer drives :mod:`repro.recovery.epoch` and the
:class:`ReplicaApplier` directly; the integration layer runs a real
primary/replica :class:`ServiceHandle` pair and proves the ship stream
keeps the standby's catalog digest equal to the primary's, that a
diverged replica is quarantined and automatically re-seeded, and that
``promote`` turns the standby into a writable primary. The satellite
regressions live here too: ``TailWal`` absorbing seeded faults under a
retry policy, and :class:`ServiceClient` failing over an ordered
address list mid-request.
"""

import time
from pathlib import Path

import pytest

from repro.core.engine import Ringo
from repro.exceptions import (
    DivergenceError,
    FencedError,
    InjectedFaultError,
    RecoveryError,
    ReplicaLagError,
    ReplicationError,
    TransientError,
)
from repro.faults import KNOWN_SITES, inject_faults
from repro.parallel.resilience import RetryPolicy
from repro.recovery.digest import catalog_digest, object_digest
from repro.recovery.epoch import EpochState, fence, read_epoch, write_epoch
from repro.recovery.wal import WAL_FILENAME, read_wal
from repro.replication import ReplicaApplier, WalShipper
from repro.replication.ship import record_frame
from repro.service.client import EndpointFailure, ServiceClient
from repro.service.protocol import RemoteError
from repro.service.server import ServiceConfig, ServiceHandle

REPLICATION_SITES = (
    "replication.ship",
    "replication.apply",
    "replication.promote",
)


def wait_until(predicate, timeout=30.0, interval=0.02, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {message}")


def test_replication_sites_are_registered():
    for site in REPLICATION_SITES:
        assert site in KNOWN_SITES, site


class TestEpoch:
    def test_missing_file_is_epoch_zero_unfenced(self, tmp_path):
        assert read_epoch(tmp_path) == EpochState(epoch=0, fenced=False)

    def test_write_and_read_round_trip(self, tmp_path):
        write_epoch(tmp_path, 3)
        assert read_epoch(tmp_path) == EpochState(epoch=3, fenced=False)

    def test_backwards_epoch_is_refused(self, tmp_path):
        write_epoch(tmp_path, 5)
        with pytest.raises(RecoveryError):
            write_epoch(tmp_path, 4)

    def test_fence_marks_and_keeps_the_higher_epoch(self, tmp_path):
        write_epoch(tmp_path, 2)
        fence(tmp_path, 7)
        assert read_epoch(tmp_path) == EpochState(epoch=7, fenced=True)
        fence(tmp_path, 1)  # a stale fence never lowers the term
        assert read_epoch(tmp_path).epoch == 7


class TestWalFencing:
    def test_fenced_directory_refuses_appends(self, tmp_path):
        with Ringo(workers=1, durability=tmp_path) as session:
            session.TableFromColumns({"a": [1, 2]})
            fence(tmp_path, 1)
            with pytest.raises(FencedError) as excinfo:
                session.TableFromColumns({"b": [3]})
            assert excinfo.value.current_epoch == 1
        # Nothing past the fence reached the log.
        records, _ = read_wal(tmp_path / WAL_FILENAME)
        assert [r.op for r in records] == ["TableFromColumns"]

    def test_epoch_zero_frames_stay_byte_stable(self, tmp_path):
        with Ringo(workers=1, durability=tmp_path) as session:
            session.TableFromColumns({"a": [1]})
        line = (tmp_path / WAL_FILENAME).read_bytes()
        assert b'"epoch"' not in line  # pre-replication logs are unchanged

    def test_promoted_epoch_is_stamped_into_frames(self, tmp_path):
        write_epoch(tmp_path, 2)
        with Ringo(workers=1, durability=tmp_path) as session:
            session.TableFromColumns({"a": [1]})
            assert session.health()["recovery"]["wal"]["epoch"] == 2
        records, _ = read_wal(tmp_path / WAL_FILENAME)
        assert records[-1].epoch == 2

    def test_checkpoint_manifest_records_the_epoch(self, tmp_path):
        import json

        from repro.recovery.checkpoint import find_checkpoints

        write_epoch(tmp_path, 4)
        with Ringo(workers=1, durability=tmp_path) as session:
            session.TableFromColumns({"a": [1]})
            session.checkpoint()
        newest = find_checkpoints(tmp_path)[0]
        manifest = json.loads((newest / "MANIFEST.json").read_text())
        assert manifest["epoch"] == 4

    def test_revived_fenced_primary_cannot_append(self, tmp_path):
        with Ringo(workers=1, durability=tmp_path) as session:
            session.TableFromColumns({"a": [1, 2]})
        fence(tmp_path, 3)
        revived = Ringo.recover(tmp_path, workers=1)
        with revived:
            with pytest.raises(FencedError):
                revived.TableFromColumns({"b": [9]})


def _primary_records(directory):
    """Build a committed WAL under ``directory`` and return its records."""
    with Ringo(workers=1, durability=directory) as session:
        table = session.TableFromColumns({"a": [1, 2, 3], "b": [2, 3, 4]})
        graph = session.ToGraph(table, "a", "b")
        session.ApplyOps(graph, [["add_edge", 9, 10], ["del_edge", 1, 2]])
        digest = catalog_digest(session)
    records, _ = read_wal(Path(directory) / WAL_FILENAME)
    return records, digest


class TestReplicaApplier:
    def test_apply_replays_to_an_equal_catalog(self, tmp_path):
        records, digest = _primary_records(tmp_path / "p" / "alice")
        applier = ReplicaApplier(tmp_path / "r")
        status = applier.apply_batch(
            "alice",
            frames=[record_frame(r) for r in records],
            tip_lsn=records[-1].lsn,
            digest={"lsn": records[-1].lsn, "digest": digest},
        )
        assert status["applied"] == len(records)
        assert status["digest_checked"] is True
        tenant = applier.tenant("alice")
        assert catalog_digest(tenant.session) == digest
        # The replica's own WAL is byte-identical to the primary's.
        assert (tmp_path / "r" / "alice" / WAL_FILENAME).read_bytes() == (
            tmp_path / "p" / "alice" / WAL_FILENAME
        ).read_bytes()
        applier.close()

    def test_resent_frames_are_idempotent(self, tmp_path):
        records, _ = _primary_records(tmp_path / "p" / "alice")
        applier = ReplicaApplier(tmp_path / "r")
        frames = [record_frame(r) for r in records]
        applier.apply_batch("alice", frames=frames)
        status = applier.apply_batch("alice", frames=frames)
        assert status["applied"] == 0
        assert applier.tenant("alice").skipped_frames == len(frames)
        applier.close()

    def test_lsn_gap_demands_a_resync(self, tmp_path):
        records, _ = _primary_records(tmp_path / "p" / "alice")
        applier = ReplicaApplier(tmp_path / "r")
        with pytest.raises(ReplicationError):
            applier.apply_batch("alice", frames=[record_frame(records[-1])])
        applier.close()

    def test_corrupt_frame_quarantines_until_reseed(self, tmp_path):
        records, digest = _primary_records(tmp_path / "p" / "alice")
        applier = ReplicaApplier(tmp_path / "r")
        frames = [record_frame(r) for r in records]
        frames[1]["crc"] ^= 0xFF
        with pytest.raises(DivergenceError):
            applier.apply_batch("alice", frames=frames)
        # Quarantined: neither reads nor further applies are served.
        with pytest.raises(DivergenceError):
            applier.ensure_readable("alice")
        with pytest.raises(DivergenceError):
            applier.apply_batch("alice", frames=[record_frame(records[1])])
        # Re-seed from the primary's artifacts clears the quarantine.
        import base64

        wal_bytes = (tmp_path / "p" / "alice" / WAL_FILENAME).read_bytes()
        seed = {WAL_FILENAME: base64.b64encode(wal_bytes).decode("ascii")}
        status = applier.apply_seed("alice", files=seed)
        assert status["applied_lsn"] == records[-1].lsn
        assert status["quarantined_to"] is not None
        tenant = applier.ensure_readable("alice")
        assert catalog_digest(tenant.session) == digest
        assert tenant.reseeds == 1
        applier.close()

    def test_digest_mismatch_at_watermark_quarantines(self, tmp_path):
        records, _ = _primary_records(tmp_path / "p" / "alice")
        applier = ReplicaApplier(tmp_path / "r")
        wrong = {"lsn": records[-1].lsn, "digest": {"bogus": "0" * 16}}
        with pytest.raises(DivergenceError):
            applier.apply_batch(
                "alice",
                frames=[record_frame(r) for r in records],
                digest=wrong,
            )
        assert applier.tenant("alice").quarantined is not None
        applier.close()

    def test_lag_past_threshold_degrades_reads(self, tmp_path):
        records, _ = _primary_records(tmp_path / "p" / "alice")
        applier = ReplicaApplier(tmp_path / "r", lag_degrade_records=2)
        applier.apply_batch(
            "alice",
            frames=[record_frame(records[0])],
            tip_lsn=records[0].lsn + 10,
        )
        with pytest.raises(ReplicaLagError) as excinfo:
            applier.ensure_readable("alice")
        assert excinfo.value.lag_records == 10
        assert isinstance(excinfo.value, ReplicationError)
        applier.close()

    def test_stale_epoch_batch_is_fenced(self, tmp_path):
        records, _ = _primary_records(tmp_path / "p" / "alice")
        applier = ReplicaApplier(tmp_path / "r")
        applier.apply_batch("alice", epoch=2, frames=[])
        with pytest.raises(FencedError):
            applier.apply_batch(
                "alice", epoch=1, frames=[record_frame(records[0])]
            )
        applier.close()

    def test_promote_drains_fences_and_arms(self, tmp_path):
        records, digest = _primary_records(tmp_path / "p" / "alice")
        applier = ReplicaApplier(tmp_path / "r")
        # Ship only a prefix; promotion must drain the rest from disk.
        applier.apply_batch(
            "alice", frames=[record_frame(r) for r in records[:1]]
        )
        report, sessions = applier.promote(fence_spool=str(tmp_path / "p"))
        assert report["epoch"] == 1
        assert report["drained_records"] == len(records) - 1
        promoted = sessions["alice"]
        assert catalog_digest(promoted) == digest
        promoted.TableFromColumns({"x": [1]})  # armed and writable
        promoted.close()
        # The deposed primary is fenced at the new epoch.
        assert read_epoch(tmp_path / "p" / "alice") == EpochState(1, True)
        revived = Ringo.recover(tmp_path / "p" / "alice", workers=1)
        with revived:
            with pytest.raises(FencedError):
                revived.TableFromColumns({"q": [1]})

    def test_promote_fault_aborts_cleanly(self, tmp_path):
        records, _ = _primary_records(tmp_path / "p" / "alice")
        applier = ReplicaApplier(tmp_path / "r")
        applier.apply_batch("alice", frames=[record_frame(r) for r in records])
        with inject_faults({"replication.promote": 1.0}, seed=3):
            with pytest.raises(InjectedFaultError):
                applier.promote(fence_spool=str(tmp_path / "p"))
        # Nothing was bumped or fenced; a retry succeeds.
        assert read_epoch(tmp_path / "p" / "alice").fenced is False
        report, sessions = applier.promote(fence_spool=str(tmp_path / "p"))
        assert report["epoch"] == 1
        for session in sessions.values():
            session.close()

    def test_quarantined_tenant_blocks_promotion(self, tmp_path):
        records, _ = _primary_records(tmp_path / "p" / "alice")
        applier = ReplicaApplier(tmp_path / "r")
        frames = [record_frame(r) for r in records]
        frames[0]["crc"] ^= 1
        with pytest.raises(DivergenceError):
            applier.apply_batch("alice", frames=frames)
        with pytest.raises(DivergenceError):
            applier.promote(fence_spool=str(tmp_path / "p"))
        applier.close()

    def test_promote_fences_the_primary_before_draining(self, tmp_path, monkeypatch):
        # The zero-committed-state-loss ordering: if the drain ran
        # first, a primary that is alive but wrongly declared dead
        # could acknowledge commits after the drain read its WAL and
        # before the fence landed — records then lost forever.
        records, _ = _primary_records(tmp_path / "p" / "alice")
        applier = ReplicaApplier(tmp_path / "r")
        applier.apply_batch("alice", frames=[record_frame(records[0])])
        fenced_when_drained = {}
        original = ReplicaApplier._drain_tail

        def checked(self, record, primary_spool):
            fenced_when_drained[record.tenant] = read_epoch(
                primary_spool / record.tenant
            ).fenced
            return original(self, record, primary_spool)

        monkeypatch.setattr(ReplicaApplier, "_drain_tail", checked)
        report, sessions = applier.promote(fence_spool=str(tmp_path / "p"))
        assert fenced_when_drained == {"alice": True}
        assert report["drained_records"] == len(records) - 1
        for session in sessions.values():
            session.close()

    def test_persist_failure_quarantines_instead_of_double_apply(
        self, tmp_path, monkeypatch
    ):
        # A disk error while persisting an already-replayed frame must
        # quarantine: the in-memory catalog holds the mutation, so
        # accepting the shipper's resend would apply it twice.
        import repro.replication.apply as apply_mod

        records, _ = _primary_records(tmp_path / "p" / "alice")
        applier = ReplicaApplier(tmp_path / "r")
        frames = [record_frame(r) for r in records]
        applier.apply_batch("alice", frames=frames[:1])

        def failing_fsync(fd):
            raise OSError("injected disk failure")

        monkeypatch.setattr(apply_mod.os, "fsync", failing_fsync)
        with pytest.raises(DivergenceError):
            applier.apply_batch("alice", frames=frames[1:2])
        monkeypatch.undo()
        tenant = applier.tenant("alice")
        assert tenant.quarantined is not None
        assert tenant.applied_lsn == records[0].lsn
        # The resend is refused typed, not silently replayed again.
        with pytest.raises(DivergenceError):
            applier.apply_batch("alice", frames=frames[1:2])
        applier.close()

    def test_path_like_tenant_names_are_rejected(self, tmp_path):
        # Tenant names arrive off the wire and become path components
        # under the spool; anything path-like must be refused before it
        # touches the filesystem.
        applier = ReplicaApplier(tmp_path / "r")
        for name in ("", ".", "..", "a/b", "../../other", "a\\b", "a\x00b"):
            with pytest.raises(ReplicationError):
                applier.apply_batch(name, frames=[])
            with pytest.raises(ReplicationError):
                applier.apply_seed(name, files={})
        assert not (tmp_path / "r").exists()  # nothing was ever created
        applier.close()


class TestTailWalRetry:
    def _stream(self, tmp_path):
        state = tmp_path / "stream"
        with Ringo(workers=1, durability=state) as producer:
            table = producer.TableFromColumns({"a": [1, 2, 3], "b": [2, 3, 1]})
            graph = producer.ToGraph(table, "a", "b")
            producer.ApplyOps(graph, [["add_edge", 3, 4], ["add_edge", 4, 1]])
            producer.ApplyOps(graph, [["del_edge", 1, 2]])
            source_digest = object_digest(graph)
        follower = Ringo(workers=1, durability=tmp_path / "follower")
        table = follower.TableFromColumns({"a": [1, 2, 3], "b": [2, 3, 1]})
        mirror = follower.ToGraph(table, "a", "b")
        return state, follower, mirror, source_digest

    def test_retry_policy_absorbs_transient_tail_faults(self, tmp_path):
        state, follower, mirror, source_digest = self._stream(tmp_path)
        policy = RetryPolicy(max_attempts=6, base_delay=0.001)
        with follower:
            with inject_faults(
                {"incremental.wal.tail": {"rate": 0.5, "max_triggers": 4}},
                seed=9,
            ) as plan:
                summary = follower.TailWal(state, retry_policy=policy)
            assert plan.triggered["incremental.wal.tail"] >= 1
            # Every firing was absorbed in place: one pass, no stop.
            assert summary["error"] is None
            assert summary["applied_records"] == 2
            assert object_digest(mirror) == source_digest

    def test_exhaustion_still_stops_with_resumable_cursor(self, tmp_path):
        state, follower, mirror, source_digest = self._stream(tmp_path)
        policy = RetryPolicy(max_attempts=2, base_delay=0.001)
        with follower:
            with inject_faults({"incremental.wal.tail": 1.0}, seed=2):
                stalled = follower.TailWal(state, retry_policy=policy)
            assert stalled["error"] is not None
            assert "RetryExhaustedError" in stalled["error"]
            resumed = follower.tail_wal(state, cursor=stalled["cursor"])
            assert resumed["error"] is None
            assert object_digest(mirror) == source_digest


class TestClientFailover:
    def test_dead_first_endpoint_fails_over(self, tmp_path):
        with ServiceHandle(ServiceConfig(spool_dir=str(tmp_path))) as handle:
            host, port = handle.address
            dead = ("127.0.0.1", 1)  # reserved port: connect always fails
            client = ServiceClient(
                host,
                port,
                tenant="alice",
                retry_policy=RetryPolicy(max_attempts=4, base_delay=0.001),
                addresses=[dead, (host, port)],
            )
            assert client.call("ping") == "pong"
            assert client.last_endpoint == (host, port)
            client.close()

    def test_mid_request_failover_between_services(self, tmp_path):
        first = ServiceHandle(
            ServiceConfig(spool_dir=str(tmp_path / "a"))
        ).start()
        second = ServiceHandle(
            ServiceConfig(spool_dir=str(tmp_path / "b"))
        ).start()
        try:
            client = ServiceClient(
                *first.address,
                tenant="alice",
                retry_policy=RetryPolicy(max_attempts=5, base_delay=0.001),
                addresses=[first.address, second.address],
            )
            assert client.call("ping") == "pong"
            assert client.last_endpoint == first.address
            first.stop()
            # The established connection dies mid-request; the retry
            # policy rotates to the standby transparently.
            assert client.call("ping") == "pong"
            assert client.last_endpoint == second.address
            client.close()
        finally:
            second.stop()

    def test_without_retry_policy_failure_is_typed(self, tmp_path):
        client = ServiceClient(
            "127.0.0.1", 1, tenant="alice",
            addresses=[("127.0.0.1", 1), ("127.0.0.1", 2)],
        )
        with pytest.raises(EndpointFailure) as excinfo:
            client.call("ping")
        assert excinfo.value.endpoint == ("127.0.0.1", 1)
        # Transient by design: a retry policy would have failed over.
        assert isinstance(excinfo.value, TransientError)

    def test_wait_on_dead_connection_is_typed(self):
        # After a failure drops the connection (or before any connect),
        # wait() for a pipelined in-flight request must raise the typed
        # retryable EndpointFailure, never AttributeError on a None file.
        client = ServiceClient(
            "127.0.0.1", 1, tenant="alice",
            addresses=[("127.0.0.1", 1), ("127.0.0.1", 2)],
        )
        with pytest.raises(EndpointFailure) as excinfo:
            client.wait(7)
        assert isinstance(excinfo.value, TransientError)


class _StubReplicaClient:
    """Acks every shipped batch in-process, no network involved."""

    def __init__(self):
        self.applied_lsn = 0
        self.addresses = [("stub", 0)]

    def call(self, op, **args):
        frames = args.get("frames") or []
        if frames:
            self.applied_lsn = frames[-1]["lsn"]
        return {"applied_lsn": self.applied_lsn, "epoch": args.get("epoch", 0)}

    def close(self):
        pass


class TestShipperIncrementalTail:
    def test_cycles_tail_from_the_stored_offset(self, tmp_path, monkeypatch):
        # Each ship cycle must decode only bytes appended since the
        # last one — idle cycles decode nothing, and new commits are
        # picked up from the cursor's offset, never a full rescan.
        import repro.replication.ship as ship_mod

        records, _ = _primary_records(tmp_path / "spool" / "alice")
        decoded = []
        real_decode = ship_mod.decode_line

        def counting_decode(line, expected_lsn):
            decoded.append(expected_lsn)
            return real_decode(line, expected_lsn)

        monkeypatch.setattr(ship_mod, "decode_line", counting_decode)
        shipper = WalShipper(tmp_path / "spool", [("127.0.0.1", 1)])
        shipper.client = _StubReplicaClient()
        shipper.ship_once()
        cursor = shipper.cursors["alice"]
        assert cursor.applied_lsn == records[-1].lsn
        assert cursor.lag_bytes == 0
        assert decoded == [r.lsn for r in records]
        for _ in range(3):
            shipper.ship_once()
        assert len(decoded) == len(records)  # idle cycles re-read nothing
        with Ringo.recover(tmp_path / "spool" / "alice", workers=1) as session:
            session.TableFromColumns({"x": [1]})
        shipper.ship_once()
        assert decoded[len(records):] == [records[-1].lsn + 1]
        assert shipper.cursors["alice"].applied_lsn == records[-1].lsn + 1


def _service_pair(tmp_path, **primary_overrides):
    replica = ServiceHandle(
        ServiceConfig(spool_dir=str(tmp_path / "replica"), role="replica",
                      tick_s=0.02)
    ).start()
    rhost, rport = replica.address
    primary = ServiceHandle(
        ServiceConfig(
            spool_dir=str(tmp_path / "primary"),
            replica_address=f"{rhost}:{rport}",
            ship_interval_s=0.02,
            digest_every_batches=2,
            tick_s=0.02,
            **primary_overrides,
        )
    ).start()
    return primary, replica


def _drive_writes(primary, batches=6):
    table = primary.call(
        "alice", "TableFromColumns", data={"a": [1, 2, 3], "b": [2, 3, 4]}
    )
    graph = primary.call(
        "alice", "ToGraph", table={"$ref": table["$ref"]},
        src_col="a", dst_col="b",
    )
    for i in range(batches):
        primary.call(
            "alice", "ApplyOps", graph={"$ref": graph["$ref"]},
            ops=[["add_edge", 10 + i, 11 + i]],
        )
    return graph


def _replica_caught_up(primary, tip):
    def check():
        state = primary.health()["replication"]["tenants"].get("alice")
        return state is not None and state["applied_lsn"] >= tip
    return check


class TestServicePair:
    def test_ship_stream_keeps_digests_equal(self, tmp_path):
        primary, replica = _service_pair(tmp_path)
        try:
            _drive_writes(primary, batches=6)
            wait_until(
                _replica_caught_up(primary, 8), message="replica catch-up"
            )
            assert primary.call("alice", "digest") == replica.call(
                "alice", "digest"
            )
            # Lag and epoch are first-class in both health reports.
            shipped = primary.health()["replication"]
            assert shipped["role"] == "primary"
            state = shipped["tenants"]["alice"]
            assert state["lag_records"] == 0 and state["lag_bytes"] == 0
            applied = replica.health()["replication"]
            assert applied["role"] == "replica"
            assert applied["tenants"]["alice"]["applied_lsn"] >= 8
            # The replica refuses writes with a typed error.
            with pytest.raises(RemoteError) as excinfo:
                replica.call("alice", "TableFromColumns", data={"x": [1]})
            assert "read-only" in str(excinfo.value)
        finally:
            primary.stop()
            replica.stop()

    def test_seeded_faults_are_absorbed_as_backpressure(self, tmp_path):
        primary, replica = _service_pair(tmp_path)
        try:
            # rate=1.0 with max_triggers: the first attempts at both
            # sites fail deterministically, and the shipper's retry
            # policy (plus the idempotent LSN cursor) must absorb them.
            with inject_faults(
                {
                    "replication.ship": {"rate": 1.0, "max_triggers": 2},
                    "replication.apply": {"rate": 1.0, "max_triggers": 2},
                },
                seed=11,
            ) as plan:
                _drive_writes(primary, batches=6)
                wait_until(
                    _replica_caught_up(primary, 8),
                    message="replica catch-up under faults",
                )
            assert sum(plan.triggered.values()) >= 1
            assert primary.call("alice", "digest") == replica.call(
                "alice", "digest"
            )
        finally:
            primary.stop()
            replica.stop()

    def test_divergence_is_detected_and_auto_reseeded(self, tmp_path):
        primary, replica = _service_pair(tmp_path)
        try:
            graph = _drive_writes(primary, batches=3)
            wait_until(
                _replica_caught_up(primary, 5), message="initial catch-up"
            )
            # Corrupt the follower in place: its digest now lies.
            tenant = replica.service.applier.tenant("alice")
            with tenant.lock:
                name = [
                    n for n in tenant.session.Objects() if n.startswith("graph")
                ][0]
                tenant.session.GetObject(name).add_edge(777, 778)
            # More writes force a digest exchange at the next watermark;
            # the mismatch must quarantine and then auto re-seed.
            for i in range(4):
                primary.call(
                    "alice", "ApplyOps", graph={"$ref": graph["$ref"]},
                    ops=[["add_edge", 50 + i, 51 + i]],
                )

            def reseeded():
                state = primary.health()["replication"]["tenants"]["alice"]
                return state["reseeds"] >= 1 and state["lag_records"] == 0
            wait_until(reseeded, message="divergence detection + re-seed")
            assert primary.call("alice", "digest") == replica.call(
                "alice", "digest"
            )
        finally:
            primary.stop()
            replica.stop()

    def test_promote_verb_flips_the_replica_to_primary(self, tmp_path):
        primary, replica = _service_pair(tmp_path)
        try:
            _drive_writes(primary, batches=4)
            wait_until(_replica_caught_up(primary, 6), message="catch-up")
            reference = primary.call("alice", "digest")
            primary.stop()
            report = replica.call(
                "alice", "promote",
                fence_spool=str(tmp_path / "primary"),
            )
            assert report["epoch"] >= 1
            assert "alice" in report["adopted"]
            assert replica.call("alice", "digest") == reference
            result = replica.call(
                "alice", "TableFromColumns", data={"x": [1, 2]}
            )
            assert result["rows"] == 2
            assert replica.health()["replication"]["role"] == "primary"
        finally:
            replica.stop()
