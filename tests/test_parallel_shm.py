"""Tests for repro.parallel.shm: export lifecycle and leak-freedom.

The hard property under test: no shared-memory segment outlives the
snapshot identity it was exported for — across cache eviction,
invalidation, garbage collection, worker crashes, and interpreter exit.
"""

import gc
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.exceptions import ExecutionError
from repro.faults import inject_faults
from repro.graphs.snapshot import csr_snapshot, snapshot_cache
from repro.parallel import shm
from repro.parallel.shm import (
    ShmRegistry,
    attach_arrays,
    export_key,
    leaked_segments,
    shm_registry,
)
from tests.helpers import build_directed

EDGES = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _run_fresh_interpreter(script: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        path
        for path in (
            os.path.join(_REPO_ROOT, "src"),
            _REPO_ROOT,
            env.get("PYTHONPATH", ""),
        )
        if path
    )
    return subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        timeout=60,
        cwd=_REPO_ROOT,
        env=env,
    )


def _arrays(csr):
    return {"out_indptr": csr.out_indptr, "out_indices": csr.out_indices}


@pytest.fixture(autouse=True)
def _no_leaks_and_clean_registry():
    """Every test starts and ends with an empty registry and shm dir."""
    shm_registry().drop_all()
    yield
    shm_registry().drop_all()
    assert leaked_segments() == []


class TestExportKey:
    def test_cached_snapshot_keyed_by_graph_version(self):
        graph = build_directed(EDGES)
        csr = csr_snapshot(graph)
        kind, *_ = export_key(csr)
        assert kind == "snapshot"
        # Warm repeat: same snapshot object, same identity.
        assert export_key(csr_snapshot(graph)) == export_key(csr)

    def test_anonymous_csr_keyed_by_object_identity(self):
        graph = build_directed(EDGES)
        projection = csr_snapshot(graph).undirected_projection()
        assert export_key(projection)[0] in ("snapshot", "csr")
        assert export_key(projection) != export_key(csr_snapshot(graph))


class TestLeaseRelease:
    def test_lease_reuses_segments_and_counts_refs(self):
        registry = ShmRegistry()
        csr = csr_snapshot(build_directed(EDGES))
        export_a, desc_a = registry.lease(csr, _arrays(csr))
        export_b, desc_b = registry.lease(csr, _arrays(csr))
        assert export_a is export_b
        assert export_a.refs == 2
        assert desc_a == desc_b
        registry.release(export_a)
        registry.release(export_b)
        assert export_a.refs == 0
        registry.drop_all()

    def test_attached_views_are_readonly_and_equal(self):
        registry = shm_registry()
        csr = csr_snapshot(build_directed(EDGES))
        export, descriptor = registry.lease(csr, _arrays(csr))
        try:
            views = attach_arrays(descriptor)
            assert np.array_equal(views["out_indptr"], csr.out_indptr)
            assert np.array_equal(views["out_indices"], csr.out_indices)
            with pytest.raises(ValueError):
                views["out_indptr"][0] = 99
        finally:
            registry.release(export)

    def test_drop_while_busy_defers_unlink_to_last_release(self):
        registry = shm_registry()
        csr = csr_snapshot(build_directed(EDGES))
        export, _ = registry.lease(csr, _arrays(csr))
        assert leaked_segments() != []
        registry.drop(export_key(csr))
        # Still pinned by the in-flight dispatch: segments survive.
        assert export.dead
        assert export.segments
        registry.release(export)
        assert not export.segments
        assert leaked_segments() == []

    def test_export_fault_site_degrades_with_no_partial_segments(self):
        registry = shm_registry()
        csr = csr_snapshot(build_directed(EDGES))
        with inject_faults({"parallel.shm.export": 1.0}):
            with pytest.raises(ExecutionError):
                registry.lease(csr, _arrays(csr))
        assert leaked_segments() == []

    def test_stats_track_live_and_lifetime_counters(self):
        registry = ShmRegistry()
        csr = csr_snapshot(build_directed(EDGES))
        export, _ = registry.lease(csr, _arrays(csr))
        stats = registry.stats()
        assert stats["live_exports"] == 1
        assert stats["live_segments"] == 2
        assert stats["live_bytes"] > 0
        registry.release(export)
        registry.drop_all()
        stats = registry.stats()
        assert stats["live_exports"] == 0
        assert stats["exports_total"] == 1
        assert stats["unlinked_total"] == 1


class TestSnapshotCacheIntegration:
    def test_graph_mutation_drops_stale_export(self):
        graph = build_directed(EDGES)
        csr = csr_snapshot(graph)
        export, _ = shm_registry().lease(csr, _arrays(csr))
        shm_registry().release(export)
        assert leaked_segments() != []
        graph.add_edge(4, 0)
        csr_snapshot(graph)  # replaces the stale cache entry
        assert leaked_segments() == []

    def test_cache_invalidate_drops_export(self):
        graph = build_directed(EDGES)
        csr = csr_snapshot(graph)
        export, _ = shm_registry().lease(csr, _arrays(csr))
        shm_registry().release(export)
        snapshot_cache().invalidate(graph)
        assert leaked_segments() == []

    def test_cache_clear_drops_all_exports(self):
        graphs = [build_directed(EDGES), build_directed(EDGES[:3])]
        for graph in graphs:
            csr = csr_snapshot(graph)
            export, _ = shm_registry().lease(csr, _arrays(csr))
            shm_registry().release(export)
        assert len(leaked_segments()) == 4
        snapshot_cache().clear()
        assert leaked_segments() == []

    def test_collected_anonymous_csr_finalizer_unlinks(self):
        from repro.graphs.csr import CSRGraph

        # An anonymous CSR never enters the cache, so only its weakref
        # finalizer stands between a collection and a leaked segment.
        csr = CSRGraph.from_graph(build_directed(EDGES))
        export, _ = shm_registry().lease(csr, _arrays(csr))
        shm_registry().release(export)
        assert leaked_segments() != []
        del export, csr
        gc.collect()
        assert leaked_segments() == []


class TestInterpreterExit:
    def test_atexit_unlinks_surviving_segments(self):
        # A fresh interpreter that exports and exits without any cleanup
        # must leave /dev/shm empty — the atexit hook owns the sweep.
        script = (
            "import sys\n"
            "from tests.helpers import build_directed\n"
            "from repro.graphs.snapshot import csr_snapshot\n"
            "from repro.parallel.shm import leaked_segments, shm_registry\n"
            "csr = csr_snapshot(build_directed([(0, 1), (1, 2), (2, 0)]))\n"
            "shm_registry().lease(\n"
            "    csr, {'out_indptr': csr.out_indptr, 'out_indices': csr.out_indices}\n"
            ")\n"
            "assert leaked_segments() != []\n"
            "sys.stdout.write('exported')\n"
        )
        result = _run_fresh_interpreter(script)
        assert result.returncode == 0, result.stderr
        assert "exported" in result.stdout
        assert leaked_segments() == []

    def test_leak_detector_actually_detects(self):
        # Control: leaked_segments() must see a segment that bypasses
        # the registry entirely, or the clean-exit assertions above are
        # vacuous. (A child process leak is swept by the stdlib's
        # resource tracker, so the control plants the file directly.)
        name = "ringo-deadbeef-control"
        path = f"/dev/shm/{name}"
        with open(path, "wb") as handle:
            handle.write(b"\0")
        try:
            assert name in leaked_segments()
        finally:
            os.unlink(path)
        assert name not in leaked_segments()
