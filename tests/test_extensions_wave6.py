"""Tests for k-truss decomposition and the weighted-network builder."""

import networkx as nx
import pytest

from repro.algorithms.pagerank import pagerank_weighted
from repro.algorithms.truss import edge_trussness, k_truss, max_trussness
from repro.convert.attributes import weighted_network_from_edges
from repro.exceptions import ConversionError, RingoError
from repro.tables.table import Table

from tests.helpers import build_undirected, random_undirected, to_networkx

TRIANGLE_TAIL = [(1, 2), (2, 3), (3, 1), (3, 4)]


class TestTrussness:
    def test_triangle_and_tail(self):
        trussness = edge_trussness(build_undirected(TRIANGLE_TAIL))
        assert trussness[(1, 2)] == 3
        assert trussness[(2, 3)] == 3
        assert trussness[(3, 4)] == 2

    def test_complete_graph(self):
        from repro.algorithms.generators import complete_graph

        trussness = edge_trussness(complete_graph(5))
        assert all(level == 5 for level in trussness.values())
        assert max_trussness(complete_graph(5)) == 5

    def test_empty_graph(self):
        from repro.graphs.undirected import UndirectedGraph

        assert edge_trussness(UndirectedGraph()) == {}
        assert max_trussness(UndirectedGraph()) == 0

    def test_every_edge_labeled(self):
        graph = random_undirected(30, 120, seed=61)
        trussness = edge_trussness(graph)
        expected = {(u, v) for u, v in graph.edges() if u != v}
        assert set(trussness) == expected

    def test_truss_nested_in_lower_truss(self):
        graph = random_undirected(40, 200, seed=62)
        three = {frozenset(e) for e in k_truss(graph, 3).edges()}
        four = {frozenset(e) for e in k_truss(graph, 4).edges()}
        assert four <= three


class TestKTruss:
    def test_matches_networkx(self):
        graph = random_undirected(35, 160, seed=63)
        reference = to_networkx(graph)
        reference.remove_edges_from(nx.selfloop_edges(reference))
        for k in (3, 4):
            ours = k_truss(graph, k)
            expected = nx.k_truss(reference, k)
            our_edges = {frozenset(e) for e in ours.edges() if e[0] != e[1]}
            nx_edges = {frozenset(e) for e in expected.edges()}
            assert our_edges == nx_edges

    def test_k2_keeps_all_non_loop_edges(self):
        graph = build_undirected(TRIANGLE_TAIL)
        assert k_truss(graph, 2).num_edges == 4

    def test_high_k_is_empty(self):
        graph = build_undirected(TRIANGLE_TAIL)
        assert k_truss(graph, 6).num_edges == 0

    def test_invalid_k(self):
        with pytest.raises(RingoError):
            k_truss(build_undirected(TRIANGLE_TAIL), 1)

    def test_self_loops_dropped(self):
        graph = build_undirected(TRIANGLE_TAIL + [(1, 1)])
        truss = k_truss(graph, 3)
        assert not truss.has_edge(1, 1)

    def test_engine_facade(self):
        from repro.core.engine import Ringo

        with Ringo(workers=1) as ringo:
            graph = ringo.GenErdosRenyi(20, 60, seed=1)
            truss = ringo.GetKTruss(graph, 3)
            assert truss.num_edges <= graph.num_edges


class TestWeightedNetworkBuilder:
    def test_counts_duplicates(self):
        table = Table.from_columns({"a": [1, 1, 2], "b": [2, 2, 3]})
        net = weighted_network_from_edges(table, "a", "b")
        assert net.num_edges == 2
        assert net.edge_attr(1, 2, "weight") == 2.0
        assert net.edge_attr(2, 3, "weight") == 1.0

    def test_sums_weight_column(self):
        table = Table.from_columns(
            {"a": [1, 1], "b": [2, 2], "amount": [0.5, 1.5]}
        )
        net = weighted_network_from_edges(table, "a", "b", weight_col="amount")
        assert net.edge_attr(1, 2, "weight") == 2.0

    def test_custom_attr_name(self):
        table = Table.from_columns({"a": [1], "b": [2]})
        net = weighted_network_from_edges(table, "a", "b", weight_attr="n")
        assert net.edge_attr(1, 2, "n") == 1.0

    def test_empty_table(self):
        table = Table.empty([("a", "int"), ("b", "int")])
        assert weighted_network_from_edges(table, "a", "b").num_nodes == 0

    def test_string_weight_rejected(self):
        table = Table.from_columns({"a": [1], "b": [2], "w": ["x"]})
        with pytest.raises(ConversionError):
            weighted_network_from_edges(table, "a", "b", weight_col="w")

    def test_feeds_weighted_pagerank(self):
        # End-to-end: event log → weighted network → weighted PageRank.
        table = Table.from_columns(
            {"a": [1, 1, 1, 1, 1], "b": [2, 2, 2, 2, 3]}
        )
        net = weighted_network_from_edges(table, "a", "b")
        ranks = pagerank_weighted(net, "weight")
        assert ranks[2] > ranks[3]

    def test_engine_facade(self):
        from repro.core.engine import Ringo

        with Ringo(workers=1) as ringo:
            table = ringo.TableFromColumns({"a": [1, 1], "b": [2, 2]})
            net = ringo.ToWeightedNetwork(table, "a", "b")
            assert net.edge_attr(1, 2, "weight") == 2.0
