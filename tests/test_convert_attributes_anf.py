"""Tests for attribute flow (Figure 2) and the ANF estimator."""

import numpy as np
import pytest

from repro.algorithms.anf import anf_effective_diameter, neighbourhood_function
from repro.algorithms.diameter import effective_diameter
from repro.algorithms.generators import ring_graph
from repro.algorithms.pagerank import pagerank
from repro.convert.attributes import (
    attach_node_attribute,
    network_from_tables,
    node_attribute_table,
)
from repro.exceptions import ConversionError
from repro.graphs.network import Network
from repro.tables.table import Table

from tests.helpers import build_undirected, random_undirected


class TestNetworkFromTables:
    def test_edges_only(self):
        edges = Table.from_columns({"a": [1, 2], "b": [2, 3]})
        net = network_from_tables(edges, "a", "b")
        assert net.num_edges == 2
        assert isinstance(net, Network)

    def test_with_node_attributes(self):
        edges = Table.from_columns({"a": [1], "b": [2]})
        nodes = Table.from_columns(
            {"id": [1, 2, 9], "name": ["ann", "bo", "zed"], "age": [30, 40, 50]}
        )
        net = network_from_tables(edges, "a", "b", nodes, node_key="id")
        assert net.node_attr(1, "name") == "ann"
        assert net.node_attr(2, "age") == 40
        # Node 9 appears only in the node table → isolated node.
        assert net.has_node(9)

    def test_attr_subset(self):
        edges = Table.from_columns({"a": [1], "b": [2]})
        nodes = Table.from_columns({"id": [1], "x": [5], "y": [6]})
        net = network_from_tables(edges, "a", "b", nodes, node_key="id", node_attrs=["x"])
        assert net.node_attr(1, "x") == 5
        assert net.node_attr(1, "y") is None

    def test_missing_node_key_rejected(self):
        edges = Table.from_columns({"a": [1], "b": [2]})
        nodes = Table.from_columns({"id": [1]})
        with pytest.raises(ConversionError):
            network_from_tables(edges, "a", "b", nodes)

    def test_string_endpoint_rejected(self):
        edges = Table.from_columns({"a": ["x"], "b": [2]})
        with pytest.raises(ConversionError):
            network_from_tables(edges, "a", "b")


class TestAttachNodeAttribute:
    def test_skips_unknown_nodes(self):
        net = Network()
        net.add_edge(1, 2)
        table = Table.from_columns({"id": [1, 99], "score": [0.5, 0.9]})
        touched = attach_node_attribute(net, table, "id", "score")
        assert touched == 1
        assert net.node_attr(1, "score") == 0.5

    def test_custom_attr_name(self):
        net = Network()
        net.add_node(1)
        table = Table.from_columns({"id": [1], "v": [7]})
        attach_node_attribute(net, table, "id", "v", attr_name="renamed")
        assert net.node_attr(1, "renamed") == 7

    def test_string_key_rejected(self):
        net = Network()
        table = Table.from_columns({"id": ["a"], "v": [1]})
        with pytest.raises(ConversionError):
            attach_node_attribute(net, table, "id", "v")


class TestNodeAttributeTable:
    def test_float_attribute_roundtrip(self):
        net = Network()
        net.add_edge(1, 2)
        net.set_node_attrs("pr", {1: 0.75, 2: 0.25})
        table = node_attribute_table(net)
        assert table.schema.names == ("NodeId", "pr")
        rows = dict(zip(table.column("NodeId").tolist(), table.column("pr").tolist()))
        assert rows == {1: 0.75, 2: 0.25}

    def test_int_and_string_typing(self):
        net = Network()
        net.add_node(1)
        net.add_node(2)
        net.set_node_attr(1, "count", 5)
        net.set_node_attr(2, "count", 6)
        net.set_node_attr(1, "label", "hub")
        table = node_attribute_table(net, attrs=["count", "label"])
        assert table.schema["count"].value == "int"
        assert table.schema["label"].value == "string"
        assert table.values("label") == ["hub", ""]

    def test_default_fills_unset(self):
        net = Network()
        net.add_node(1)
        net.add_node(2)
        net.set_node_attr(1, "w", 1.5)
        table = node_attribute_table(net, attrs=["w"], default=-1.0)
        assert table.column("w").tolist() == [1.5, -1.0]

    def test_clashing_attr_name_rejected(self):
        net = Network()
        net.add_node(1)
        net.set_node_attr(1, "NodeId", 9)
        with pytest.raises(ConversionError):
            node_attribute_table(net, attrs=["NodeId"])

    def test_figure2_loop_pagerank_to_table(self):
        # Full loop: edges → network → analytics → attrs → table.
        edges = Table.from_columns({"a": [1, 2, 3], "b": [2, 3, 1]})
        net = network_from_tables(edges, "a", "b")
        net.set_node_attrs("pr", pagerank(net))
        table = node_attribute_table(net, attrs=["pr"])
        assert table.num_rows == 3
        assert sum(table.column("pr").tolist()) == pytest.approx(1.0)


class TestAnf:
    def test_monotone_nondecreasing(self):
        graph = random_undirected(60, 150, seed=31)
        totals = neighbourhood_function(graph, seed=2)
        assert all(b >= a - 1e-9 for a, b in zip(totals, totals[1:]))

    def test_converges_on_ring(self):
        graph = ring_graph(12)
        totals = neighbourhood_function(graph, max_distance=30, seed=3)
        # A 12-ring saturates by hop 6.
        assert len(totals) <= 9

    def test_estimate_scale_reasonable(self):
        graph = ring_graph(40)
        totals = neighbourhood_function(graph, approximations=128, seed=4)
        # Saturated value estimates n^2 pairs = 1600 within a factor ~2.
        assert 700 <= totals[-1] <= 3400

    def test_empty_graph(self):
        from repro.graphs.undirected import UndirectedGraph

        assert neighbourhood_function(UndirectedGraph()) == [0.0]

    def test_effective_diameter_tracks_exact(self):
        graph = random_undirected(80, 240, seed=33)
        exact = effective_diameter(graph)
        estimated = anf_effective_diameter(graph, approximations=128, seed=5)
        assert abs(estimated - exact) <= max(1.5, 0.5 * exact)

    def test_effective_diameter_of_clique_small(self):
        from repro.algorithms.generators import complete_graph

        estimated = anf_effective_diameter(complete_graph(12), approximations=128, seed=6)
        assert estimated <= 1.5
