"""Property tests: max-flow/min-cut duality and join algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.flow import max_flow, min_cut_partition
from repro.graphs.network import Network
from repro.tables.join import join
from repro.tables.table import Table

WEIGHTED_EDGES = st.lists(
    st.tuples(
        st.integers(0, 7), st.integers(0, 7),
        st.floats(min_value=0.0, max_value=10.0),
    ),
    min_size=1,
    max_size=30,
)


def build_network(edges):
    net = Network()
    net.add_node(0)
    net.add_node(7)
    for u, v, w in edges:
        if u != v:
            if net.add_edge(u, v):
                net.set_edge_attr(u, v, "cap", w)
    return net


class TestFlowDuality:
    @settings(max_examples=40, deadline=None)
    @given(WEIGHTED_EDGES)
    def test_min_cut_capacity_equals_max_flow(self, edges):
        net = build_network(edges)
        flow = max_flow(net, 0, 7, capacity="cap")
        source_side, sink_side = min_cut_partition(net, 0, 7, capacity="cap")
        assert 0 in source_side and 7 in sink_side
        crossing = sum(
            float(net.edge_attr(u, v, "cap"))
            for u, v in net.edges()
            if u in source_side and v in sink_side
        )
        assert crossing == pytest.approx(flow, abs=1e-6)

    @settings(max_examples=40, deadline=None)
    @given(WEIGHTED_EDGES)
    def test_flow_bounded_by_source_capacity(self, edges):
        net = build_network(edges)
        flow = max_flow(net, 0, 7, capacity="cap")
        out_capacity = sum(
            float(net.edge_attr(0, v, "cap")) for v in net.out_neighbors(0).tolist()
        )
        assert flow <= out_capacity + 1e-9


ROWS = st.lists(st.integers(0, 5), min_size=0, max_size=25)


class TestJoinAlgebra:
    @settings(max_examples=50, deadline=None)
    @given(ROWS, ROWS)
    def test_join_row_count_from_key_histograms(self, left_keys, right_keys):
        left = (
            Table.from_columns({"k": left_keys})
            if left_keys else Table.empty([("k", "int")])
        )
        right = (
            Table.from_columns({"k2": right_keys})
            if right_keys else Table.empty([("k2", "int")])
        )
        result = join(left, right, "k", "k2")
        expected = sum(
            left_keys.count(key) * right_keys.count(key) for key in set(left_keys)
        )
        assert result.num_rows == expected

    @settings(max_examples=50, deadline=None)
    @given(ROWS, ROWS)
    def test_left_join_count(self, left_keys, right_keys):
        left = (
            Table.from_columns({"k": left_keys})
            if left_keys else Table.empty([("k", "int")])
        )
        right = (
            Table.from_columns({"k2": right_keys})
            if right_keys else Table.empty([("k2", "int")])
        )
        result = join(left, right, "k", "k2", how="left")
        expected = sum(
            max(right_keys.count(key), 1) for key in left_keys
        )
        assert result.num_rows == expected

    @settings(max_examples=40, deadline=None)
    @given(ROWS, ROWS)
    def test_join_symmetric_up_to_column_names(self, left_keys, right_keys):
        left = (
            Table.from_columns({"k": left_keys})
            if left_keys else Table.empty([("k", "int")])
        )
        right = (
            Table.from_columns({"k2": right_keys})
            if right_keys else Table.empty([("k2", "int")])
        )
        forward = join(left, right, "k", "k2")
        backward = join(right, left, "k2", "k")
        assert forward.num_rows == backward.num_rows
        assert sorted(forward.column("k").tolist()) == sorted(
            backward.column("k").tolist()
        )
