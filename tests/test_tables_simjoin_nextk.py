"""Tests for the Ringo-specific construction operators SimJoin and NextK."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import RingoError, SchemaError, TypeMismatchError
from repro.tables.nextk import next_k, next_k_indices
from repro.tables.simjoin import sim_join, sim_join_indices
from repro.tables.table import Table


class TestSimJoinIndices:
    def test_one_dimensional_window(self):
        left = np.array([[0.0], [10.0]])
        right = np.array([[0.5], [2.0], [9.8]])
        li, ri, dist = sim_join_indices(left, right, threshold=1.0)
        pairs = sorted(zip(li.tolist(), ri.tolist()))
        assert pairs == [(0, 0), (1, 2)]
        assert dist.tolist() == pytest.approx([0.5, 0.2])

    def test_strictly_less_than_threshold(self):
        left = np.array([[0.0]])
        right = np.array([[1.0]])
        li, _, _ = sim_join_indices(left, right, threshold=1.0)
        assert len(li) == 0

    def test_empty_inputs(self):
        li, ri, dist = sim_join_indices(
            np.empty((0, 1)), np.array([[1.0]]), threshold=1.0
        )
        assert len(li) == len(ri) == len(dist) == 0

    def test_invalid_threshold(self):
        with pytest.raises(RingoError):
            sim_join_indices(np.array([[1.0]]), np.array([[1.0]]), threshold=0)

    def test_unknown_metric(self):
        with pytest.raises(TypeMismatchError):
            sim_join_indices(np.array([[1.0]]), np.array([[1.0]]), 1.0, metric="cosine")

    def test_two_dimensional_l2(self):
        left = np.array([[0.0, 0.0]])
        right = np.array([[0.3, 0.4], [1.0, 1.0]])
        li, ri, dist = sim_join_indices(left, right, threshold=0.6, metric="l2")
        assert ri.tolist() == [0]
        assert dist.tolist() == pytest.approx([0.5])

    def test_two_dimensional_linf(self):
        left = np.array([[0.0, 0.0]])
        right = np.array([[0.4, 0.9], [0.4, 1.1]])
        li, ri, _ = sim_join_indices(left, right, threshold=1.0, metric="linf")
        assert ri.tolist() == [0]

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.floats(-20, 20), max_size=25),
        st.lists(st.floats(-20, 20), max_size=25),
        st.floats(min_value=0.1, max_value=5.0),
    )
    def test_1d_matches_brute_force(self, left_vals, right_vals, threshold):
        left = np.array(left_vals, dtype=np.float64).reshape(-1, 1)
        right = np.array(right_vals, dtype=np.float64).reshape(-1, 1)
        li, ri, _ = sim_join_indices(left, right, threshold)
        got = sorted(zip(li.tolist(), ri.tolist()))
        expected = sorted(
            (i, j)
            for i, lv in enumerate(left_vals)
            for j, rv in enumerate(right_vals)
            if abs(lv - rv) < threshold
        )
        assert got == expected

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.tuples(st.floats(-5, 5), st.floats(-5, 5)), max_size=15),
        st.lists(st.tuples(st.floats(-5, 5), st.floats(-5, 5)), max_size=15),
    )
    def test_2d_grid_matches_brute_force(self, left_pts, right_pts):
        threshold = 1.5
        left = np.array(left_pts, dtype=np.float64).reshape(-1, 2) if left_pts else np.empty((0, 2))
        right = np.array(right_pts, dtype=np.float64).reshape(-1, 2) if right_pts else np.empty((0, 2))
        li, ri, _ = sim_join_indices(left, right, threshold, metric="l1")
        got = sorted(zip(li.tolist(), ri.tolist()))
        expected = sorted(
            (i, j)
            for i, lp in enumerate(left_pts)
            for j, rp in enumerate(right_pts)
            if abs(lp[0] - rp[0]) + abs(lp[1] - rp[1]) < threshold
        )
        assert got == expected


class TestSimJoinTable:
    def test_joins_close_records(self):
        events = Table.from_columns({"t": [0.0, 5.0], "id": [1, 2]})
        probes = Table.from_columns({"t": [0.4, 9.0], "pid": [7, 8]})
        result = sim_join(events, probes, "t", threshold=1.0)
        assert result.num_rows == 1
        assert result.column("id").tolist() == [1]
        assert result.column("pid").tolist() == [7]
        assert "t-1" in result.schema and "t-2" in result.schema

    def test_include_distance(self):
        left = Table.from_columns({"x": [0.0]})
        right = Table.from_columns({"y": [0.25]})
        result = sim_join(left, right, "x", 1.0, right_on="y", include_distance=True)
        assert result.column("Distance").tolist() == pytest.approx([0.25])

    def test_string_key_rejected(self):
        left = Table.from_columns({"s": ["a"]})
        with pytest.raises(TypeMismatchError):
            sim_join(left, left, "s", 1.0)

    def test_self_similarity_join(self):
        points = Table.from_columns({"x": [0.0, 0.1, 5.0]})
        result = sim_join(points, points, "x", threshold=0.5)
        # Every point matches itself, plus the close pair both ways.
        assert result.num_rows == 5

    def test_multi_column_keys(self):
        left = Table.from_columns({"x": [0.0], "y": [0.0]})
        right = Table.from_columns({"x": [0.2], "y": [0.2]})
        assert sim_join(left, right, ["x", "y"], threshold=0.5).num_rows == 1

    def test_key_list_mismatch(self):
        left = Table.from_columns({"x": [0.0], "y": [0.0]})
        with pytest.raises(TypeMismatchError):
            sim_join(left, left, ["x", "y"], 1.0, right_on="x")


class TestNextKIndices:
    def test_chain_with_k1(self):
        order_vals = np.array([10, 30, 20])
        pred, succ, rank = next_k_indices(order_vals, k=1)
        assert list(zip(pred.tolist(), succ.tolist())) == [(0, 2), (2, 1)]
        assert rank.tolist() == [1, 1]

    def test_k2_produces_skip_pairs(self):
        order_vals = np.array([1, 2, 3])
        pred, succ, rank = next_k_indices(order_vals, k=2)
        pairs = sorted(zip(pred.tolist(), succ.tolist(), rank.tolist()))
        assert pairs == [(0, 1, 1), (0, 2, 2), (1, 2, 1)]

    def test_groups_block_cross_pairs(self):
        order_vals = np.array([1, 2, 3, 4])
        groups = np.array([0, 1, 0, 1])
        pred, succ, _ = next_k_indices(order_vals, k=3, group_labels=groups)
        pairs = sorted(zip(pred.tolist(), succ.tolist()))
        assert pairs == [(0, 2), (1, 3)]

    def test_k_larger_than_table(self):
        pred, succ, _ = next_k_indices(np.array([1, 2]), k=10)
        assert list(zip(pred.tolist(), succ.tolist())) == [(0, 1)]

    def test_empty_input(self):
        pred, succ, rank = next_k_indices(np.array([]), k=2)
        assert len(pred) == len(succ) == len(rank) == 0

    def test_single_row(self):
        pred, _, _ = next_k_indices(np.array([5]), k=1)
        assert len(pred) == 0

    def test_invalid_k(self):
        with pytest.raises(RingoError):
            next_k_indices(np.array([1]), k=0)

    def test_group_length_mismatch(self):
        with pytest.raises(SchemaError):
            next_k_indices(np.array([1, 2]), k=1, group_labels=np.array([0]))


class TestNextKTable:
    def test_temporal_edges(self):
        log = Table.from_columns({"t": [3, 1, 2], "node": [30, 10, 20]})
        pairs = next_k(log, "t", k=1)
        edges = sorted(zip(pairs.column("node-1").tolist(), pairs.column("node-2").tolist()))
        assert edges == [(10, 20), (20, 30)]

    def test_rank_column_present_by_default(self):
        log = Table.from_columns({"t": [1, 2]})
        assert "Rank" in next_k(log, "t", k=1).schema

    def test_rank_column_optional(self):
        log = Table.from_columns({"t": [1, 2]})
        assert "Rank" not in next_k(log, "t", k=1, include_rank=False).schema

    def test_grouped_sessions(self):
        log = Table.from_columns(
            {"t": [1, 2, 3, 4], "user": [7, 8, 7, 8], "event": [0, 1, 2, 3]}
        )
        pairs = next_k(log, "t", k=2, group_col="user")
        edges = sorted(zip(pairs.column("event-1").tolist(), pairs.column("event-2").tolist()))
        assert edges == [(0, 2), (1, 3)]

    def test_string_order_column_sorts_by_collation(self):
        log = Table.from_columns({"name": ["b", "a", "c"], "id": [2, 1, 3]})
        pairs = next_k(log, "name", k=1)
        edges = sorted(zip(pairs.column("id-1").tolist(), pairs.column("id-2").tolist()))
        assert edges == [(1, 2), (2, 3)]
