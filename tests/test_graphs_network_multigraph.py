"""Tests for the attributed Network and the DirectedMultigraph."""

import pytest

from repro.exceptions import EdgeNotFoundError, GraphError, NodeNotFoundError
from repro.graphs.multigraph import DirectedMultigraph
from repro.graphs.network import Network


class TestNetworkAttributes:
    def test_node_attr_roundtrip(self):
        net = Network()
        net.add_node(1)
        net.set_node_attr(1, "name", "ann")
        assert net.node_attr(1, "name") == "ann"

    def test_node_attr_default(self):
        net = Network()
        net.add_node(1)
        assert net.node_attr(1, "missing", default=0) == 0

    def test_attr_on_missing_node_raises(self):
        net = Network()
        with pytest.raises(NodeNotFoundError):
            net.set_node_attr(1, "x", 1)
        with pytest.raises(NodeNotFoundError):
            net.node_attr(1, "x")

    def test_bulk_set_node_attrs(self):
        net = Network()
        net.add_edge(1, 2)
        net.set_node_attrs("pr", {1: 0.7, 2: 0.3})
        assert net.node_attr(2, "pr") == 0.3

    def test_bulk_set_unknown_node_raises(self):
        net = Network()
        net.add_node(1)
        with pytest.raises(NodeNotFoundError):
            net.set_node_attrs("pr", {9: 1.0})

    def test_attr_names_and_iteration(self):
        net = Network()
        net.add_node(1)
        net.set_node_attr(1, "a", 10)
        assert net.node_attr_names() == ("a",)
        assert list(net.iter_node_attr("a")) == [(1, 10)]

    def test_iter_unknown_attr_raises(self):
        with pytest.raises(GraphError):
            Network().iter_node_attr("nope")

    def test_edge_attr_roundtrip(self):
        net = Network()
        net.add_edge(1, 2)
        net.set_edge_attr(1, 2, "w", 2.5)
        assert net.edge_attr(1, 2, "w") == 2.5
        assert net.edge_attr_names() == ("w",)

    def test_edge_attr_missing_edge_raises(self):
        net = Network()
        with pytest.raises(EdgeNotFoundError):
            net.set_edge_attr(1, 2, "w", 1)

    def test_del_edge_clears_attrs(self):
        net = Network()
        net.add_edge(1, 2)
        net.set_edge_attr(1, 2, "w", 1)
        net.del_edge(1, 2)
        net.add_edge(1, 2)
        assert net.edge_attr(1, 2, "w") is None

    def test_del_node_clears_attrs(self):
        net = Network()
        net.add_edge(1, 2)
        net.set_node_attr(1, "x", 5)
        net.set_edge_attr(1, 2, "w", 1)
        net.del_node(1)
        net.add_node(1)
        assert net.node_attr(1, "x") is None

    def test_network_is_a_directed_graph(self):
        net = Network()
        net.add_edge(1, 2)
        assert net.has_edge(1, 2)
        assert net.out_neighbors(1).tolist() == [2]


class TestDirectedMultigraph:
    def test_parallel_edges_allowed(self):
        graph = DirectedMultigraph()
        e1 = graph.add_edge(1, 2)
        e2 = graph.add_edge(1, 2)
        assert e1 != e2
        assert graph.num_edges == 2
        assert graph.edge_count(1, 2) == 2

    def test_edge_endpoints(self):
        graph = DirectedMultigraph()
        eid = graph.add_edge(3, 4)
        assert graph.edge_endpoints(eid) == (3, 4)

    def test_degrees_count_multiplicity(self):
        graph = DirectedMultigraph()
        graph.add_edge(1, 2)
        graph.add_edge(1, 2)
        graph.add_edge(2, 1)
        assert graph.out_degree(1) == 2
        assert graph.in_degree(1) == 1

    def test_del_edge_by_id(self):
        graph = DirectedMultigraph()
        eid = graph.add_edge(1, 2)
        graph.add_edge(1, 2)
        graph.del_edge(eid)
        assert graph.num_edges == 1
        assert not graph.has_edge_id(eid)

    def test_del_deleted_edge_raises(self):
        graph = DirectedMultigraph()
        eid = graph.add_edge(1, 2)
        graph.del_edge(eid)
        with pytest.raises(EdgeNotFoundError):
            graph.del_edge(eid)

    def test_endpoints_of_deleted_edge_raises(self):
        graph = DirectedMultigraph()
        eid = graph.add_edge(1, 2)
        graph.del_edge(eid)
        with pytest.raises(EdgeNotFoundError):
            graph.edge_endpoints(eid)

    def test_edges_iterator_skips_deleted(self):
        graph = DirectedMultigraph()
        e1 = graph.add_edge(1, 2)
        e2 = graph.add_edge(2, 3)
        graph.del_edge(e1)
        assert list(graph.edges()) == [(e2, 2, 3)]

    def test_out_edges(self):
        graph = DirectedMultigraph()
        e1 = graph.add_edge(1, 2)
        e2 = graph.add_edge(1, 3)
        assert list(graph.out_edges(1)) == [(e1, 2), (e2, 3)]

    def test_edge_arrays_with_deletions(self):
        graph = DirectedMultigraph()
        e1 = graph.add_edge(1, 2)
        graph.add_edge(3, 4)
        graph.del_edge(e1)
        src, dst = graph.edge_arrays()
        assert src.tolist() == [3]
        assert dst.tolist() == [4]

    def test_to_simple_collapses_parallels(self):
        graph = DirectedMultigraph()
        graph.add_edge(1, 2)
        graph.add_edge(1, 2)
        graph.add_node(9)
        simple = graph.to_simple()
        assert simple.num_edges == 1
        assert simple.has_node(9)

    def test_negative_node_rejected(self):
        with pytest.raises(GraphError):
            DirectedMultigraph().add_node(-1)

    def test_edge_count_missing_node(self):
        assert DirectedMultigraph().edge_count(1, 2) == 0


class TestMultigraphVersioning:
    """Every structural mutation must bump the snapshot version (R001)."""

    def test_fresh_graph_starts_at_version_zero(self):
        assert DirectedMultigraph().version == 0

    def test_add_node_bumps_version(self):
        graph = DirectedMultigraph()
        before = graph.version
        assert graph.add_node(1)
        assert graph.version > before

    def test_duplicate_add_node_does_not_bump(self):
        graph = DirectedMultigraph()
        graph.add_node(1)
        before = graph.version
        assert not graph.add_node(1)
        assert graph.version == before

    def test_add_edge_bumps_version(self):
        graph = DirectedMultigraph()
        before = graph.version
        graph.add_edge(1, 2)
        assert graph.version > before

    def test_del_edge_bumps_version(self):
        graph = DirectedMultigraph()
        edge_id = graph.add_edge(1, 2)
        before = graph.version
        graph.del_edge(edge_id)
        assert graph.version > before

    def test_version_is_monotone_across_mutations(self):
        graph = DirectedMultigraph()
        seen = [graph.version]
        graph.add_edge(1, 2)
        seen.append(graph.version)
        graph.add_edge(1, 2)
        seen.append(graph.version)
        graph.del_edge(0)
        seen.append(graph.version)
        assert seen == sorted(set(seen))
