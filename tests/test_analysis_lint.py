"""ringo-lint: rule fixtures, suppressions, baselines, and CLI exit codes."""

import json
from pathlib import Path

import pytest

from repro.analysis import cli as analysis_cli
from repro.analysis import lint
from repro.cli import main as repro_main
from repro.exceptions import AnalysisError

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"
REPO_ROOT = Path(__file__).resolve().parents[1]

RULE_FIXTURES = {
    "R001": (FIXTURES / "r001_bad.py", FIXTURES / "r001_ok.py"),
    "R002": (FIXTURES / "r002_bad.py", FIXTURES / "r002_ok.py"),
    "R003": (FIXTURES / "r003_bad.py", FIXTURES / "r003_ok.py"),
    "R004": (FIXTURES / "r004_bad.py", FIXTURES / "r004_ok.py"),
    "R005": (
        FIXTURES / "algorithms" / "r005_bad.py",
        FIXTURES / "algorithms" / "r005_ok.py",
    ),
    "R006": (FIXTURES / "r006_bad.py", FIXTURES / "r006_ok.py"),
    "R007": (FIXTURES / "r007_bad.py", FIXTURES / "r007_ok.py"),
    "R008": (FIXTURES / "r008_bad.py", FIXTURES / "r008_ok.py"),
    "R009": (FIXTURES / "r009_bad.py", FIXTURES / "r009_ok.py"),
    "R010": (FIXTURES / "r010_bad.py", FIXTURES / "r010_ok.py"),
    "R011": (FIXTURES / "r011_bad.py", FIXTURES / "r011_ok.py"),
    # R012 spans a registry module plus a consumer, so its fixture is a
    # directory (precedent: R005 lives under algorithms/).
    "R012": (FIXTURES / "r012_bad", FIXTURES / "r012_ok"),
}


class TestRuleFixtures:
    @pytest.mark.parametrize("code", sorted(RULE_FIXTURES))
    def test_bad_fixture_flags_exactly_its_rule(self, code):
        bad, _ = RULE_FIXTURES[code]
        findings = lint.lint_paths([str(bad)])
        assert [f.code for f in findings] == [code]
        assert not findings[0].suppressed

    @pytest.mark.parametrize("code", sorted(RULE_FIXTURES))
    def test_ok_fixture_is_clean(self, code):
        _, ok = RULE_FIXTURES[code]
        assert lint.lint_paths([str(ok)]) == []

    def test_r005_is_advisory_and_never_gates(self):
        bad, _ = RULE_FIXTURES["R005"]
        findings = lint.lint_paths([str(bad)])
        assert findings[0].severity == lint.SEVERITY_ADVISORY
        assert lint.gating_findings(findings) == []

    def test_r005_only_applies_under_algorithms(self, tmp_path):
        source = RULE_FIXTURES["R005"][0].read_text(encoding="utf-8")
        elsewhere = tmp_path / "r005_elsewhere.py"
        elsewhere.write_text(source, encoding="utf-8")
        assert lint.lint_paths([str(elsewhere)]) == []

    def test_finding_carries_location_and_symbol(self):
        bad, _ = RULE_FIXTURES["R001"]
        finding = lint.lint_paths([str(bad)])[0]
        assert finding.line > 0
        assert finding.symbol == "ForgetfulGraph.add_edge"
        assert "ForgetfulGraph.add_edge" in finding.message


class TestSuppression:
    SOURCE = (
        "from repro.graphs.csr import CSRGraph\n"
        "\n"
        "def convert(graph):\n"
        "    return CSRGraph.from_graph(graph)  # ringo-lint: disable=R002\n"
    )

    def test_same_line_suppression(self):
        findings = lint.lint_source(self.SOURCE, "x.py")
        assert [f.code for f in findings] == ["R002"]
        assert findings[0].suppressed
        assert lint.gating_findings(findings) == []

    def test_preceding_comment_suppression(self):
        source = (
            "from repro.graphs.csr import CSRGraph\n"
            "\n"
            "def convert(graph):\n"
            "    # justified one-off  # ringo-lint: disable=R002\n"
            "    return CSRGraph.from_graph(graph)\n"
        )
        findings = lint.lint_source(source, "x.py")
        assert findings[0].suppressed

    def test_other_code_does_not_suppress(self):
        source = self.SOURCE.replace("disable=R002", "disable=R001")
        findings = lint.lint_source(source, "x.py")
        assert not findings[0].suppressed
        assert len(lint.gating_findings(findings)) == 1

    def test_disable_all(self):
        source = self.SOURCE.replace("disable=R002", "disable=all")
        assert lint.lint_source(source, "x.py")[0].suppressed


class TestBaseline:
    def test_round_trip_accepts_known_findings(self, tmp_path):
        bad, _ = RULE_FIXTURES["R002"]
        findings = lint.lint_paths([str(bad)])
        baseline_path = tmp_path / "baseline"
        assert lint.write_baseline(baseline_path, findings) == 1
        fresh = lint.lint_paths([str(bad)])
        lint.apply_baseline(fresh, lint.load_baseline(baseline_path))
        assert fresh[0].baselined
        assert lint.gating_findings(fresh) == []

    def test_missing_baseline_is_empty(self, tmp_path):
        assert lint.load_baseline(tmp_path / "nope") == set()

    def test_baseline_keys_are_line_number_free(self):
        bad, _ = RULE_FIXTURES["R002"]
        finding = lint.lint_paths([str(bad)])[0]
        assert finding.key == f"R002|{bad.as_posix()}|eager_pagerank_input"

    def test_shipped_baseline_is_empty(self):
        shipped = lint.load_baseline(REPO_ROOT / ".ringo-lint-baseline")
        assert shipped == set()

    def test_src_tree_is_clean_against_shipped_baseline(self):
        findings = lint.lint_paths([str(REPO_ROOT / "src")])
        lint.apply_baseline(
            findings, lint.load_baseline(REPO_ROOT / ".ringo-lint-baseline")
        )
        assert lint.gating_findings(findings) == []


class TestRuleSelection:
    def test_unknown_rule_raises(self):
        with pytest.raises(AnalysisError, match="unknown lint rule"):
            lint.active_rules(["R999"])

    def test_rule_filter_restricts_findings(self):
        bad, _ = RULE_FIXTURES["R002"]
        assert lint.lint_paths([str(bad)], ["R001"]) == []

    def test_all_rules_registered(self):
        codes = [rule.code for rule in lint.active_rules()]
        assert codes == [
            "R001", "R002", "R003", "R004", "R005", "R006", "R007",
            "R008", "R009", "R010", "R011", "R012",
        ]


class TestCli:
    def test_bad_fixture_exits_one(self, tmp_path, capsys):
        bad, _ = RULE_FIXTURES["R004"]
        code = analysis_cli.main([str(bad), "--baseline", str(tmp_path / "b")])
        assert code == 1
        assert "R004" in capsys.readouterr().out

    def test_ok_fixture_exits_zero(self, tmp_path, capsys):
        _, ok = RULE_FIXTURES["R004"]
        assert analysis_cli.main([str(ok), "--baseline", str(tmp_path / "b")]) == 0

    def test_bad_path_exits_two(self, tmp_path, capsys):
        assert analysis_cli.main([str(tmp_path / "missing.txt")]) == 2

    def test_json_format(self, tmp_path, capsys):
        bad, _ = RULE_FIXTURES["R006"]
        code = analysis_cli.main(
            [str(bad), "--format", "json", "--baseline", str(tmp_path / "b")]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["code"] == "R006"

    def test_list_rules(self, capsys):
        assert analysis_cli.main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "R001" in out and "R006" in out and "R012" in out

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        bad, _ = RULE_FIXTURES["R001"]
        baseline = tmp_path / "baseline"
        assert (
            analysis_cli.main([str(bad), "--baseline", str(baseline), "--write-baseline"])
            == 0
        )
        assert analysis_cli.main([str(bad), "--baseline", str(baseline)]) == 0

    def test_repro_lint_subcommand(self, tmp_path, capsys):
        bad, _ = RULE_FIXTURES["R002"]
        _, ok = RULE_FIXTURES["R002"]
        assert (
            repro_main(["lint", str(bad), "--baseline", str(tmp_path / "b")]) == 1
        )
        assert (
            repro_main(["lint", str(ok), "--baseline", str(tmp_path / "b")]) == 0
        )

    def test_markdown_requires_list_rules(self, tmp_path, capsys):
        assert analysis_cli.main([str(tmp_path), "--format", "markdown"]) == 2
        assert "requires --list-rules" in capsys.readouterr().err


class TestParseError:
    BROKEN = "def half(:\n"

    def test_syntax_error_becomes_e000(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text(self.BROKEN, encoding="utf-8")
        findings = lint.lint_paths([str(broken)])
        assert [f.code for f in findings] == [lint.CODE_PARSE_ERROR]
        finding = findings[0]
        assert finding.severity == lint.SEVERITY_ERROR
        assert finding.line >= 1
        assert "does not parse" in finding.message
        assert lint.gating_findings(findings) == [finding]

    def test_other_files_still_linted(self, tmp_path):
        (tmp_path / "broken.py").write_text(self.BROKEN, encoding="utf-8")
        bad_src = RULE_FIXTURES["R004"][0].read_text(encoding="utf-8")
        (tmp_path / "manual_acquire.py").write_text(bad_src, encoding="utf-8")
        codes = sorted(f.code for f in lint.lint_paths([str(tmp_path)]))
        assert codes == ["E000", "R004"]


class TestUnusedSuppression:
    DEAD = "def noop():\n    return None  # ringo-lint: disable=R004\n"

    def test_unused_suppression_reported(self):
        findings = lint.lint_source(self.DEAD, "x.py")
        assert [f.code for f in findings] == [lint.CODE_UNUSED_SUPPRESSION]
        finding = findings[0]
        assert finding.severity == lint.SEVERITY_ADVISORY
        assert "R004" in finding.message
        assert finding.line == 2
        assert lint.gating_findings(findings) == []

    def test_used_suppression_not_reported(self):
        findings = lint.lint_source(TestSuppression.SOURCE, "x.py")
        assert [f.code for f in findings] == ["R002"]

    def test_not_reported_under_rule_filter(self):
        assert lint.lint_source(self.DEAD, "x.py", ["R004"]) == []


class TestSarif:
    def test_sarif_document_shape(self, tmp_path, capsys):
        bad, _ = RULE_FIXTURES["R004"]
        code = analysis_cli.main(
            [str(bad), "--format", "sarif", "--baseline", str(tmp_path / "b")]
        )
        assert code == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "ringo-lint"
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        for expected in ("R001", "R008", "R012", "E000", "W001"):
            assert expected in rule_ids
        result = run["results"][0]
        assert result["ruleId"] == "R004"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("r004_bad.py")
        assert location["region"]["startLine"] > 0
        assert result["suppressions"] == []

    def test_advisory_maps_to_note_and_suppressions_marked(self):
        findings = lint.lint_source(TestSuppression.SOURCE, "x.py")
        log = analysis_cli.sarif_report(findings)
        result = log["runs"][0]["results"][0]
        assert result["suppressions"][0]["kind"] == "inSource"
        advisory = lint.lint_source(TestUnusedSuppression.DEAD, "x.py")
        log = analysis_cli.sarif_report(advisory)
        assert log["runs"][0]["results"][0]["level"] == "note"


class TestStrictBaseline:
    def test_stale_entry_fails_strict(self, tmp_path, capsys):
        _, ok = RULE_FIXTURES["R004"]
        baseline = tmp_path / "baseline"
        baseline.write_text("R004|gone.py|gone\n", encoding="utf-8")
        assert analysis_cli.main([str(ok), "--baseline", str(baseline)]) == 0
        assert (
            analysis_cli.main(
                [str(ok), "--baseline", str(baseline), "--strict-baseline"]
            )
            == 1
        )
        assert "stale baseline" in capsys.readouterr().err

    def test_live_entries_pass_strict(self, tmp_path, capsys):
        bad, _ = RULE_FIXTURES["R004"]
        baseline = tmp_path / "baseline"
        findings = lint.lint_paths([str(bad)])
        lint.write_baseline(baseline, findings)
        assert (
            analysis_cli.main(
                [str(bad), "--baseline", str(baseline), "--strict-baseline"]
            )
            == 0
        )

    def test_stale_keys_helper(self):
        _, ok = RULE_FIXTURES["R004"]
        findings = lint.lint_paths([str(ok)])
        stale = lint.stale_baseline_keys(findings, {"R001|a.py|f", "R002|b.py|g"})
        assert stale == ["R001|a.py|f", "R002|b.py|g"]


class TestDocsTable:
    def test_docs_table_matches_generator(self, capsys):
        assert analysis_cli.main(["--list-rules", "--format", "markdown"]) == 0
        generated = capsys.readouterr().out.strip()
        doc = (REPO_ROOT / "docs" / "static-analysis.md").read_text(encoding="utf-8")
        begin = doc.index("<!-- rules:begin -->") + len("<!-- rules:begin -->")
        end = doc.index("<!-- rules:end -->")
        assert doc[begin:end].strip() == generated
