"""Admission control and QoS queue units: ledger, shedding, expiry."""

import asyncio

import pytest

from repro.exceptions import AdmissionContention, AdmissionRejected, RingoError, TransientError
from repro.service.admission import MemoryLedger
from repro.service.protocol import Request
from repro.service.queueing import DeadlineQueue


# -- the memory ledger -----------------------------------------------------


def test_ledger_charges_and_releases():
    ledger = MemoryLedger(1000)
    ledger.charge("a", 400)
    ledger.charge("b", 500)
    assert ledger.charged_bytes == 900
    assert ledger.free_bytes == 100
    assert not ledger.would_fit(200)
    assert ledger.release("a") == 400
    assert ledger.would_fit(200)
    assert ledger.release("a") == 0  # idempotent


def test_ledger_contention_denial_is_transient():
    ledger = MemoryLedger(1000)
    ledger.charge("a", 800)
    # 300 would fit an empty ledger — denial is contention, retryable.
    with pytest.raises(AdmissionContention) as info:
        ledger.charge("b", 300)
    assert isinstance(info.value, AdmissionRejected)
    assert isinstance(info.value, TransientError)
    assert info.value.tenant == "b"
    assert info.value.requested == 300
    assert info.value.available == 200
    # The rejected tenant is not charged; the ledger is unchanged.
    assert ledger.charged_bytes == 800
    assert ledger.snapshot()["rejections"] == 1


def test_ledger_over_capacity_denial_is_permanent():
    ledger = MemoryLedger(1000)
    # 2000 can never fit: the permanent, non-retryable rejection.
    with pytest.raises(AdmissionRejected) as info:
        ledger.charge("giant", 2000)
    assert not isinstance(info.value, TransientError)
    assert ledger.snapshot()["rejections"] == 1


def test_ledger_double_charge_is_a_bug_not_a_rejection():
    ledger = MemoryLedger(1000)
    ledger.charge("a", 100)
    with pytest.raises(RingoError):
        ledger.charge("a", 100)


def test_ledger_snapshot_accounting():
    ledger = MemoryLedger(1000)
    ledger.charge("a", 600)
    ledger.release("a")
    ledger.charge("b", 300)
    snap = ledger.snapshot()
    assert snap == {
        "capacity_bytes": 1000, "charged_bytes": 300, "free_bytes": 700,
        "resident": 1, "admitted": 2, "rejections": 0, "peak_bytes": 600,
    }


def test_ledger_validates_inputs():
    with pytest.raises(RingoError):
        MemoryLedger(0)
    with pytest.raises(RingoError):
        MemoryLedger(10).charge("a", 0)


# -- the deadline queue ----------------------------------------------------


def _request(rid, deadline):
    return Request(id=rid, tenant="t", op="ping", deadline=deadline)


def test_queue_sheds_oldest_deadline_first():
    queue = DeadlineQueue(maxsize=2)
    assert queue.push(_request(1, deadline=10.0)) is None
    assert queue.push(_request(2, deadline=5.0)) is None
    # Full; the incoming request has the *latest* deadline, so the
    # queued earliest-deadline entry (id=2) is the victim.
    victim = queue.push(_request(3, deadline=20.0))
    assert victim.id == 2
    assert [r.id for r in queue] == [1, 3]
    assert queue.shed_total == 1


def test_queue_sheds_incoming_when_it_has_earliest_deadline():
    queue = DeadlineQueue(maxsize=2)
    queue.push(_request(1, deadline=10.0))
    queue.push(_request(2, deadline=20.0))
    incoming = _request(3, deadline=1.0)
    victim = queue.push(incoming)
    assert victim is incoming  # never enqueued
    assert [r.id for r in queue] == [1, 2]


def test_queue_pop_is_fifo_not_deadline_ordered():
    async def scenario():
        queue = DeadlineQueue(maxsize=4)
        queue.push(_request(1, deadline=30.0))
        queue.push(_request(2, deadline=10.0))
        queue.push(_request(3, deadline=20.0))
        return [(await queue.pop()).id for _ in range(3)]

    assert asyncio.run(scenario()) == [1, 2, 3]


def test_queue_pop_waits_for_a_push():
    async def scenario():
        queue = DeadlineQueue(maxsize=2)
        waiter = asyncio.ensure_future(queue.pop())
        await asyncio.sleep(0)
        assert not waiter.done()
        queue.push(_request(9, deadline=1.0))
        return (await waiter).id

    assert asyncio.run(scenario()) == 9


def test_queue_remove_expired_keeps_live_requests():
    queue = DeadlineQueue(maxsize=8)
    queue.push(_request(1, deadline=1.0))
    queue.push(_request(2, deadline=5.0))
    queue.push(_request(3, deadline=2.0))
    expired = queue.remove_expired(now=2.5)
    assert sorted(r.id for r in expired) == [1, 3]
    assert [r.id for r in queue] == [2]
    assert queue.expired_total == 2


def test_queue_drain_empties_everything():
    queue = DeadlineQueue(maxsize=4)
    queue.push(_request(1, deadline=1.0))
    queue.push(_request(2, deadline=2.0))
    assert [r.id for r in queue.drain()] == [1, 2]
    assert len(queue) == 0


def test_queue_validates_maxsize():
    with pytest.raises(RingoError):
        DeadlineQueue(0)
