"""Tests for repro.tables.strings."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tables.strings import MISSING_CODE, StringPool, default_pool


class TestStringPool:
    def test_encode_is_idempotent(self):
        pool = StringPool()
        assert pool.encode("Java") == pool.encode("Java")

    def test_codes_are_dense(self):
        pool = StringPool()
        codes = [pool.encode(s) for s in ["a", "b", "c"]]
        assert codes == [0, 1, 2]

    def test_decode_roundtrip(self):
        pool = StringPool()
        code = pool.encode("hello")
        assert pool.decode(code) == "hello"

    def test_decode_missing_code_is_empty(self):
        assert StringPool().decode(MISSING_CODE) == ""

    def test_decode_unknown_code_raises(self):
        with pytest.raises(KeyError):
            StringPool().decode(17)

    def test_try_encode_does_not_intern(self):
        pool = StringPool()
        assert pool.try_encode("never-seen") == MISSING_CODE
        assert len(pool) == 0

    def test_contains(self):
        pool = StringPool()
        pool.encode("x")
        assert "x" in pool
        assert "y" not in pool

    def test_encode_many_returns_int32(self):
        pool = StringPool()
        codes = pool.encode_many(["a", "b", "a"])
        assert codes.dtype == np.int32
        assert codes.tolist() == [0, 1, 0]

    def test_decode_many_handles_missing(self):
        pool = StringPool()
        pool.encode("a")
        decoded = pool.decode_many(np.array([0, MISSING_CODE], dtype=np.int32))
        assert decoded == ["a", ""]

    def test_memory_bytes_grows_with_content(self):
        pool = StringPool()
        before = pool.memory_bytes()
        pool.encode("some string")
        assert pool.memory_bytes() > before

    def test_default_pool_is_shared(self):
        assert default_pool() is default_pool()

    @given(st.lists(st.text(max_size=20), max_size=100))
    def test_roundtrip_arbitrary_strings(self, values):
        pool = StringPool()
        codes = pool.encode_many(values)
        assert pool.decode_many(codes) == values

    @given(st.lists(st.text(max_size=10), min_size=1, max_size=50))
    def test_pool_size_equals_distinct_values(self, values):
        pool = StringPool()
        pool.encode_many(values)
        assert len(pool) == len(set(values))
