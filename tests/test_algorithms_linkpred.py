"""Tests for link-prediction scores vs networkx references."""

import networkx as nx
import pytest

from repro.algorithms.linkpred import (
    adamic_adar,
    candidate_pairs,
    common_neighbors,
    jaccard_coefficient,
    preferential_attachment,
    resource_allocation,
    top_predicted_links,
)
from repro.exceptions import AlgorithmError

from tests.helpers import build_undirected, random_undirected, to_networkx


def reference_graph(graph):
    """networkx copy with self-loops removed (our projection drops them)."""
    result = to_networkx(graph)
    result.remove_edges_from(nx.selfloop_edges(result))
    return result

SQUARE = [(1, 2), (1, 3), (4, 2), (4, 3)]  # 1 and 4 share {2, 3}


def nonadjacent_pairs(graph, limit=40):
    nodes = sorted(graph.nodes())
    pairs = []
    for i, u in enumerate(nodes):
        for v in nodes[i + 1:]:
            if not graph.has_edge(u, v):
                pairs.append((u, v))
            if len(pairs) == limit:
                return pairs
    return pairs


class TestScores:
    def test_common_neighbors_square(self):
        graph = build_undirected(SQUARE)
        assert common_neighbors(graph, [(1, 4)])[(1, 4)] == 2.0

    def test_jaccard_square(self):
        graph = build_undirected(SQUARE)
        assert jaccard_coefficient(graph, [(1, 4)])[(1, 4)] == 1.0

    def test_jaccard_isolated_pair_is_zero(self):
        graph = build_undirected(SQUARE)
        graph.add_node(9)
        graph.add_node(10)
        assert jaccard_coefficient(graph, [(9, 10)])[(9, 10)] == 0.0

    def test_jaccard_matches_networkx(self):
        graph = random_undirected(40, 120, seed=81)
        pairs = nonadjacent_pairs(graph)
        ours = jaccard_coefficient(graph, pairs)
        expected = {
            (u, v): score
            for u, v, score in nx.jaccard_coefficient(reference_graph(graph), pairs)
        }
        for pair, score in expected.items():
            assert ours[pair] == pytest.approx(score)

    def test_adamic_adar_matches_networkx(self):
        graph = random_undirected(40, 120, seed=82)
        pairs = nonadjacent_pairs(graph)
        ours = adamic_adar(graph, pairs)
        expected = {
            (u, v): score
            for u, v, score in nx.adamic_adar_index(reference_graph(graph), pairs)
        }
        for pair, score in expected.items():
            assert ours[pair] == pytest.approx(score)

    def test_resource_allocation_matches_networkx(self):
        graph = random_undirected(40, 120, seed=83)
        pairs = nonadjacent_pairs(graph)
        ours = resource_allocation(graph, pairs)
        expected = {
            (u, v): score
            for u, v, score in nx.resource_allocation_index(reference_graph(graph), pairs)
        }
        for pair, score in expected.items():
            assert ours[pair] == pytest.approx(score)

    def test_preferential_attachment_matches_networkx(self):
        graph = random_undirected(40, 120, seed=84)
        pairs = nonadjacent_pairs(graph)
        ours = preferential_attachment(graph, pairs)
        expected = {
            (u, v): score
            for u, v, score in nx.preferential_attachment(reference_graph(graph), pairs)
        }
        for pair, score in expected.items():
            assert ours[pair] == pytest.approx(float(score))


class TestCandidatePairs:
    def test_distance_two_only(self):
        graph = build_undirected([(1, 2), (2, 3), (3, 4)])
        pairs = set(candidate_pairs(graph))
        assert (1, 3) in pairs and (2, 4) in pairs
        assert (1, 2) not in pairs  # adjacent
        assert (1, 4) not in pairs  # distance three

    def test_each_pair_once(self):
        graph = build_undirected(SQUARE)
        pairs = list(candidate_pairs(graph))
        assert len(pairs) == len(set(pairs))

    def test_max_pairs_cap(self):
        graph = random_undirected(30, 100, seed=85)
        assert len(list(candidate_pairs(graph, max_pairs=5))) == 5

    def test_invalid_cap(self):
        graph = build_undirected(SQUARE)
        with pytest.raises(AlgorithmError):
            list(candidate_pairs(graph, max_pairs=0))


class TestTopPredictedLinks:
    def test_square_predicts_the_diagonals(self):
        graph = build_undirected(SQUARE)
        ranked = top_predicted_links(graph, k=2)
        assert {pair for pair, _ in ranked} == {(1, 4), (2, 3)}

    def test_scores_descending(self):
        graph = random_undirected(30, 90, seed=86)
        ranked = top_predicted_links(graph, k=10)
        scores = [score for _, score in ranked]
        assert scores == sorted(scores, reverse=True)
