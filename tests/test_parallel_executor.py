"""Tests for repro.parallel.executor."""

import threading
import time

import pytest

from repro.exceptions import PoolClosedError, RingoError, TransientError
from repro.parallel import executor
from repro.parallel.executor import WorkerPool, effective_worker_count, serial_pool
from repro.parallel.resilience import RetryPolicy


class TestEffectiveWorkerCount:
    def test_explicit_value_wins(self):
        assert effective_worker_count(3) == 3

    def test_zero_rejected(self):
        with pytest.raises(RingoError):
            effective_worker_count(0)

    def test_env_variable_respected(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        # Env defaults are capped at the machine's usable core count
        # (an explicit argument stays uncapped).
        expected = min(7, executor.machine_cpu_count())
        assert effective_worker_count() == expected

    def test_env_value_capped_at_machine_cores(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "100000")
        assert effective_worker_count() == executor.machine_cpu_count()

    def test_explicit_argument_not_capped(self):
        assert effective_worker_count(100000) == 100000

    def test_default_capped_at_machine_cores(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert effective_worker_count() == executor.machine_cpu_count()

    def test_machine_cpu_count_positive(self):
        assert executor.machine_cpu_count() >= 1

    def test_default_at_least_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert effective_worker_count() >= 1

    def test_non_integer_env_raises_typed_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(RingoError, match="REPRO_WORKERS.*'many'"):
            effective_worker_count()

    def test_non_positive_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(RingoError):
            effective_worker_count()


class TestWorkerPool:
    def test_single_worker_runs_inline(self):
        main_thread = threading.current_thread()
        seen = []
        with WorkerPool(1) as pool:
            pool.map_range(5, lambda lo, hi: seen.append(threading.current_thread()))
        assert all(thread is main_thread for thread in seen)

    def test_map_range_partitions_and_orders_results(self):
        with WorkerPool(4) as pool:
            results = pool.map_range(100, lambda lo, hi: (lo, hi))
        assert results == [(0, 25), (25, 50), (50, 75), (75, 100)]

    def test_map_range_combines_to_full_sum(self):
        with WorkerPool(3) as pool:
            partials = pool.map_range(1000, lambda lo, hi: sum(range(lo, hi)))
        assert sum(partials) == sum(range(1000))

    def test_map_range_empty(self):
        with WorkerPool(2) as pool:
            assert pool.map_range(0, lambda lo, hi: 1) == []

    def test_map_chunks(self):
        with WorkerPool(2) as pool:
            assert pool.map_chunks([[1, 2], [3]], sum) == [3, 3]

    def test_run_tasks_preserves_order(self):
        with WorkerPool(4) as pool:
            results = pool.run_tasks([lambda i=i: i * i for i in range(8)])
        assert results == [i * i for i in range(8)]

    def test_exception_in_kernel_propagates(self):
        def boom(lo, hi):
            raise ValueError("kernel failure")

        with WorkerPool(2) as pool:
            with pytest.raises(ValueError, match="kernel failure"):
                pool.map_range(10, boom)

    def test_close_is_idempotent(self):
        pool = WorkerPool(2)
        pool.close()
        pool.close()

    def test_serial_pool_is_shared_singleton(self):
        assert serial_pool() is serial_pool()
        assert serial_pool().workers == 1

    def test_serial_pool_race_builds_exactly_one_pool(self, monkeypatch):
        monkeypatch.setattr(executor, "_SERIAL_POOL", None)
        barrier = threading.Barrier(8)
        pools = []

        def grab():
            barrier.wait()
            pools.append(serial_pool())

        threads = [threading.Thread(target=grab) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len({id(pool) for pool in pools}) == 1


class TestClosedPool:
    def test_closed_multiworker_pool_raises(self):
        pool = WorkerPool(2)
        pool.close()
        with pytest.raises(PoolClosedError):
            pool.map_range(10, lambda lo, hi: lo)

    def test_closed_serial_pool_raises(self):
        pool = WorkerPool(1)
        pool.close()
        with pytest.raises(PoolClosedError):
            pool.run_tasks([lambda: 1])

    def test_closed_pool_error_carries_worker_count(self):
        pool = WorkerPool(3)
        pool.close()
        with pytest.raises(PoolClosedError) as info:
            pool.map_chunks([1, 2], lambda c: c)
        assert info.value.workers == 3


class TestFirstErrorCancellation:
    def test_fast_failure_cancels_pending_siblings(self):
        def make_task(index):
            if index == 0:
                def fail():
                    raise ValueError("fast failure")
                return fail
            return lambda: time.sleep(0.3)

        with WorkerPool(2) as pool:
            start = time.monotonic()
            with pytest.raises(ValueError, match="fast failure"):
                pool.run_tasks([make_task(i) for i in range(8)])
            elapsed = time.monotonic() - start
        # Joining all 8 sleeps in submission order would take >1s; the
        # failing partition must short-circuit well before that.
        assert elapsed < 1.0
        assert pool.stats.snapshot()["cancelled_partitions"] >= 1
        assert pool.stats.snapshot()["failures"] == 1


class TestRetryAndDegradation:
    def test_per_call_retry_policy_recovers_transients(self):
        failures = {"left": 0}

        def flaky_once(lo, hi):
            if lo == 0 and failures["left"] == 0:
                failures["left"] += 1
                raise TransientError("transient hiccup")
            return hi - lo

        policy = RetryPolicy(max_attempts=3, base_delay=0.0)
        with WorkerPool(2) as pool:
            results = pool.map_range(10, flaky_once, retry=policy)
        assert results == [5, 5]
        assert pool.stats.snapshot()["retries"] == 1

    def test_repeated_parallel_failure_degrades_to_serial(self):
        def always_transient(lo, hi):
            raise TransientError("broken kernel")

        main_thread = threading.current_thread()
        with WorkerPool(2, degrade_after=2) as pool:
            for _ in range(2):
                with pytest.raises(TransientError):
                    pool.map_range(10, always_transient)
            assert pool.degraded
            # Degraded pools run inline on the caller's thread.
            seen = []
            pool.map_range(10, lambda lo, hi: seen.append(threading.current_thread()))
            assert all(thread is main_thread for thread in seen)
            stats = pool.stats.snapshot()
            assert stats["degraded"] is True
            assert stats["serial_fallback_calls"] >= 1

    def test_success_resets_failure_streak(self):
        def boom(lo, hi):
            raise TransientError("broken")

        with WorkerPool(2, degrade_after=2) as pool:
            with pytest.raises(TransientError):
                pool.map_range(10, boom)
            pool.map_range(10, lambda lo, hi: None)  # success resets streak
            with pytest.raises(TransientError):
                pool.map_range(10, boom)
            assert not pool.degraded

    def test_degradation_disabled_with_none(self):
        def boom(lo, hi):
            raise TransientError("broken")

        with WorkerPool(2, degrade_after=None) as pool:
            for _ in range(5):
                with pytest.raises(TransientError):
                    pool.map_range(10, boom)
            assert not pool.degraded
