"""Tests for repro.parallel.executor."""

import threading

import pytest

from repro.exceptions import RingoError
from repro.parallel.executor import WorkerPool, effective_worker_count, serial_pool


class TestEffectiveWorkerCount:
    def test_explicit_value_wins(self):
        assert effective_worker_count(3) == 3

    def test_zero_rejected(self):
        with pytest.raises(RingoError):
            effective_worker_count(0)

    def test_env_variable_respected(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert effective_worker_count() == 7

    def test_default_at_least_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert effective_worker_count() >= 1


class TestWorkerPool:
    def test_single_worker_runs_inline(self):
        main_thread = threading.current_thread()
        seen = []
        with WorkerPool(1) as pool:
            pool.map_range(5, lambda lo, hi: seen.append(threading.current_thread()))
        assert all(thread is main_thread for thread in seen)

    def test_map_range_partitions_and_orders_results(self):
        with WorkerPool(4) as pool:
            results = pool.map_range(100, lambda lo, hi: (lo, hi))
        assert results == [(0, 25), (25, 50), (50, 75), (75, 100)]

    def test_map_range_combines_to_full_sum(self):
        with WorkerPool(3) as pool:
            partials = pool.map_range(1000, lambda lo, hi: sum(range(lo, hi)))
        assert sum(partials) == sum(range(1000))

    def test_map_range_empty(self):
        with WorkerPool(2) as pool:
            assert pool.map_range(0, lambda lo, hi: 1) == []

    def test_map_chunks(self):
        with WorkerPool(2) as pool:
            assert pool.map_chunks([[1, 2], [3]], sum) == [3, 3]

    def test_run_tasks_preserves_order(self):
        with WorkerPool(4) as pool:
            results = pool.run_tasks([lambda i=i: i * i for i in range(8)])
        assert results == [i * i for i in range(8)]

    def test_exception_in_kernel_propagates(self):
        def boom(lo, hi):
            raise ValueError("kernel failure")

        with WorkerPool(2) as pool:
            with pytest.raises(ValueError, match="kernel failure"):
                pool.map_range(10, boom)

    def test_close_is_idempotent(self):
        pool = WorkerPool(2)
        pool.close()
        pool.close()

    def test_serial_pool_is_shared_singleton(self):
        assert serial_pool() is serial_pool()
        assert serial_pool().workers == 1
