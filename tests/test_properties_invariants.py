"""Cross-cutting property-based invariants.

Relational-algebra identities on the table engine, relabeling
invariance of graph analytics, and conversion round-trips — the
system-level contracts a downstream user relies on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.pagerank import pagerank
from repro.algorithms.triangles import total_triangles
from repro.convert.graph_to_table import to_edge_table
from repro.convert.table_to_graph import graph_from_edge_arrays, to_graph
from repro.tables.groupby import group_by
from repro.tables.order import order_by
from repro.tables.project import project
from repro.tables.select import select
from repro.tables.setops import union
from repro.tables.table import Table

ROWS = st.lists(
    st.tuples(st.integers(0, 9), st.integers(-20, 20)), min_size=1, max_size=60
)
EDGES = st.lists(
    st.tuples(st.integers(0, 20), st.integers(0, 20)), min_size=1, max_size=100
)


def make_table(rows):
    return Table.from_columns(
        {"k": [r[0] for r in rows], "v": [r[1] for r in rows]}
    )


def row_contents(table):
    return sorted(zip(table.column("k").tolist(), table.column("v").tolist()))


class TestRelationalIdentities:
    @settings(max_examples=50, deadline=None)
    @given(ROWS, st.integers(-20, 20), st.integers(0, 9))
    def test_select_composition_equals_conjunction(self, rows, cutoff, key):
        table = make_table(rows)
        chained = select(select(table, f"v > {cutoff}"), f"k = {key}")
        combined = select(table, f"v > {cutoff} and k = {key}")
        assert chained.row_ids.tolist() == combined.row_ids.tolist()
        assert row_contents(chained) == row_contents(combined)

    @settings(max_examples=50, deadline=None)
    @given(ROWS, st.integers(-20, 20))
    def test_select_partitions_table(self, rows, cutoff):
        table = make_table(rows)
        kept = select(table, f"v > {cutoff}")
        dropped = select(table, f"not v > {cutoff}")
        assert kept.num_rows + dropped.num_rows == table.num_rows
        merged = sorted(kept.row_ids.tolist() + dropped.row_ids.tolist())
        assert merged == table.row_ids.tolist()

    @settings(max_examples=50, deadline=None)
    @given(ROWS, ROWS)
    def test_union_commutative_on_content(self, left_rows, right_rows):
        left = make_table(left_rows)
        right = make_table(right_rows)
        forward = union(left, right)
        backward = union(right, left)
        assert row_contents(forward) == row_contents(backward)

    @settings(max_examples=50, deadline=None)
    @given(ROWS)
    def test_union_self_is_distinct(self, rows):
        table = make_table(rows)
        result = union(table, table)
        assert row_contents(result) == sorted(set(zip(
            table.column("k").tolist(), table.column("v").tolist()
        )))

    @settings(max_examples=50, deadline=None)
    @given(ROWS, st.integers(-20, 20))
    def test_project_select_commute(self, rows, cutoff):
        table = make_table(rows)
        a = project(select(table, f"v > {cutoff}"), ["v"])
        b = select(project(table, ["v"]), f"v > {cutoff}")
        assert a.column("v").tolist() == b.column("v").tolist()
        assert a.row_ids.tolist() == b.row_ids.tolist()

    @settings(max_examples=50, deadline=None)
    @given(ROWS)
    def test_groupby_sum_totals_column(self, rows):
        table = make_table(rows)
        grouped = group_by(table, "k", {"S": ("sum", "v")})
        assert int(grouped.column("S").sum()) == int(table.column("v").sum())
        assert int(grouped.num_rows) == len({r[0] for r in rows})

    @settings(max_examples=50, deadline=None)
    @given(ROWS)
    def test_sort_idempotent(self, rows):
        table = make_table(rows)
        once = order_by(table, ["k", "v"])
        twice = order_by(once, ["k", "v"])
        assert once.column("k").tolist() == twice.column("k").tolist()
        assert once.row_ids.tolist() == twice.row_ids.tolist()

    @settings(max_examples=50, deadline=None)
    @given(ROWS)
    def test_row_ids_track_content_through_pipeline(self, rows):
        # §2.3's fine-grained tracking: after select+sort, each row id
        # still names its original record.
        table = make_table(rows)
        original = {
            int(rid): (int(k), int(v))
            for rid, k, v in zip(
                table.row_ids, table.column("k"), table.column("v")
            )
        }
        result = order_by(select(table, "v >= 0"), "v")
        for rid, k, v in zip(
            result.row_ids, result.column("k"), result.column("v")
        ):
            assert original[int(rid)] == (int(k), int(v))


class TestGraphRelabelingInvariance:
    @settings(max_examples=30, deadline=None)
    @given(EDGES, st.randoms(use_true_random=False))
    def test_pagerank_invariant_under_relabeling(self, edges, rng):
        src = np.array([e[0] for e in edges])
        dst = np.array([e[1] for e in edges])
        graph = graph_from_edge_arrays(src, dst)
        nodes = sorted(graph.nodes())
        shuffled = nodes[:]
        rng.shuffle(shuffled)
        mapping = dict(zip(nodes, shuffled))
        relabeled = graph_from_edge_arrays(
            np.array([mapping[int(s)] for s in src]),
            np.array([mapping[int(d)] for d in dst]),
        )
        original = pagerank(graph, tolerance=1e-12)
        renamed = pagerank(relabeled, tolerance=1e-12)
        for node, score in original.items():
            assert renamed[mapping[node]] == pytest.approx(score, abs=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(EDGES, st.randoms(use_true_random=False))
    def test_triangles_invariant_under_relabeling(self, edges, rng):
        src = np.array([e[0] for e in edges])
        dst = np.array([e[1] for e in edges])
        graph = graph_from_edge_arrays(src, dst, directed=False)
        nodes = sorted(graph.nodes())
        shuffled = nodes[:]
        rng.shuffle(shuffled)
        mapping = dict(zip(nodes, shuffled))
        relabeled = graph_from_edge_arrays(
            np.array([mapping[int(s)] for s in src]),
            np.array([mapping[int(d)] for d in dst]),
            directed=False,
        )
        assert total_triangles(graph) == total_triangles(relabeled)


class TestConversionRoundTrips:
    @settings(max_examples=40, deadline=None)
    @given(EDGES)
    def test_graph_table_graph_identity(self, edges):
        graph = graph_from_edge_arrays(
            np.array([e[0] for e in edges]), np.array([e[1] for e in edges])
        )
        table = to_edge_table(graph)
        rebuilt = to_graph(table, "SrcId", "DstId")
        assert sorted(rebuilt.edges()) == sorted(graph.edges())

    @settings(max_examples=40, deadline=None)
    @given(EDGES)
    def test_table_graph_table_graph_preserves_edge_multiset(self, edges):
        # The full cycle the paper's workflows lean on: a table of edges
        # → ToGraph → ToTable → ToGraph must stabilise after one hop
        # (the first conversion dedups; nothing may be lost after that).
        table = Table.from_columns(
            {"src": [e[0] for e in edges], "dst": [e[1] for e in edges]}
        )
        first = to_graph(table, "src", "dst")
        exported = to_edge_table(first)
        second = to_graph(exported, "SrcId", "DstId")
        assert sorted(second.edges()) == sorted(first.edges())
        pairs = sorted(
            zip(exported.column("SrcId").tolist(), exported.column("DstId").tolist())
        )
        # The exported table is exactly the dedup'd edge multiset: one
        # row per distinct edge, content equal to the graph's edge set.
        assert pairs == sorted(first.edges())
        assert len(pairs) == len(set(pairs))

    @settings(max_examples=40, deadline=None)
    @given(EDGES)
    def test_undirected_table_graph_table_graph_round_trip(self, edges):
        table = Table.from_columns(
            {"src": [e[0] for e in edges], "dst": [e[1] for e in edges]}
        )
        first = to_graph(table, "src", "dst", directed=False)
        exported = to_edge_table(first)
        second = to_graph(exported, "SrcId", "DstId", directed=False)
        assert sorted(second.edges()) == sorted(first.edges())
        assert second.num_edges == first.num_edges

    @settings(max_examples=40, deadline=None)
    @given(EDGES)
    def test_conversions_leave_source_row_ids_intact(self, edges):
        # §2.3 persistent row ids: conversions are reads — the source
        # table's ids and content must be byte-identical afterwards, and
        # every derived table gets fresh unique ids of its own.
        table = Table.from_columns(
            {"src": [e[0] for e in edges], "dst": [e[1] for e in edges]}
        )
        ids_before = table.row_ids.tolist()
        content_before = list(
            zip(table.column("src").tolist(), table.column("dst").tolist())
        )
        graph = to_graph(table, "src", "dst")
        exported = to_edge_table(graph)
        to_graph(exported, "SrcId", "DstId")
        assert table.row_ids.tolist() == ids_before
        assert (
            list(zip(table.column("src").tolist(), table.column("dst").tolist()))
            == content_before
        )
        exported_ids = exported.row_ids.tolist()
        assert len(set(exported_ids)) == exported.num_rows

    @settings(max_examples=40, deadline=None)
    @given(EDGES)
    def test_pagerank_equal_across_representations(self, edges):
        # The same analytics answer whether computed from the dynamic
        # graph or its freshly rebuilt twin.
        src = np.array([e[0] for e in edges])
        dst = np.array([e[1] for e in edges])
        graph = graph_from_edge_arrays(src, dst)
        rebuilt = to_graph(to_edge_table(graph), "SrcId", "DstId")
        a = pagerank(graph, iterations=10)
        b = pagerank(rebuilt, iterations=10)
        for node, score in a.items():
            assert b[node] == pytest.approx(score, abs=1e-12)
