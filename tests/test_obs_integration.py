"""Observability end-to-end: the ``Ringo(trace=...)`` session surface.

Covers the acceptance pipeline (load → conversion → snapshot build →
algorithm under one trace, with rows/s and edges/s in
``health()["obs"]``), tracer ownership, the JSONL file mode, the
profile report, and the ``health()`` deep-copy contract.
"""

import pytest

from repro import obs
from repro.core.engine import Ringo
from repro.obs import spans as spans_module
from repro.obs.sinks import validate_jsonl
from repro.workflows.stackoverflow import (
    POSTS_SCHEMA,
    StackOverflowConfig,
    generate_stackoverflow,
    write_posts_tsv,
)


@pytest.fixture
def no_global_tracer():
    """Force the global tracer off around a test, restoring it after."""
    previous = spans_module._TRACER
    spans_module._TRACER = None
    yield
    if spans_module._TRACER is not None:  # a leaked tracer: test bug
        obs.disable()
    spans_module._TRACER = previous


def _traced_pipeline(ringo, tmp_path):
    """The acceptance pipeline: TSV load → ToGraph → PageRank."""
    data = generate_stackoverflow(
        StackOverflowConfig(num_users=60, num_questions=200, seed=7)
    )
    path = tmp_path / "posts.tsv"
    write_posts_tsv(data, path)
    posts = ringo.LoadTableTSV(POSTS_SCHEMA, path)
    questions = ringo.Select(posts, "Type=question")
    answers = ringo.Select(posts, "Type=answer")
    qa = ringo.Join(questions, answers, "AnswerId", "PostId")
    graph = ringo.ToGraph(qa, "UserId-1", "UserId-2")
    ranks = ringo.GetPageRank(graph)
    assert ranks
    return graph


class TestAcceptancePipeline:
    def test_span_tree_covers_load_convert_snapshot_algorithm(
        self, no_global_tracer, tmp_path
    ):
        with Ringo(workers=2, trace=True) as ringo:
            _traced_pipeline(ringo, tmp_path)
            tracer = obs.current_tracer()
            assert tracer is not None
            names = {r["name"] for r in tracer.ring_records()}
            # One trace covers every stage of the pipeline.
            assert "io.load_tsv" in names
            assert "engine.ToGraph" in names
            assert "convert.sort_first" in names
            assert {"convert.sort", "convert.count", "convert.copy"} <= names
            assert "snapshot.build" in names
            assert "alg.pagerank" in names
            assert "pool.kernel" in names
            health = ringo.health()
            obs_report = health["obs"]
            assert obs_report["enabled"] is True
            assert obs_report["spans"]["finished"] > 0
            metrics = obs_report["metrics"]
            # The paper-styled throughput units (§4.2): rows/s and edges/s.
            assert metrics["engine.tograph.rows_per_s"]["count"] >= 1
            assert metrics["engine.tograph.edges_per_s"]["count"] >= 1
            assert metrics["engine.tograph.rows_total"]["value"] > 0
            assert metrics["engine.tograph.edges_total"]["value"] > 0
            assert metrics["io.tsv.rows_total"]["value"] > 0
            assert obs_report["derived"]["snapshot_hit_ratio"] is not None
        # Session owned the tracer, so close() tore it down.
        assert not obs.enabled()

    def test_pool_kernels_nest_under_their_dispatching_operation(
        self, no_global_tracer, tmp_path
    ):
        with Ringo(workers=2, trace=True) as ringo:
            _traced_pipeline(ringo, tmp_path)
            records = obs.current_tracer().ring_records()
        by_id = {r["span_id"]: r for r in records}
        kernels = [r for r in records if r["name"] == "pool.kernel"]
        assert kernels
        for kernel in kernels:
            parent = by_id.get(kernel["parent_id"])
            assert parent is not None, "pool.kernel must not be a root span"
            assert parent["name"] in (
                "convert.copy",
                "convert.to_edge_table",
                "snapshot.build",
            )

    def test_metric_counters_are_monotone_across_calls(
        self, no_global_tracer, tmp_path
    ):
        with Ringo(workers=1, trace=True) as ringo:
            table = ringo.TableFromColumns(
                {"a": [1, 2, 3, 1], "b": [2, 3, 1, 3]}
            )
            totals = []
            for _ in range(3):
                ringo.ToGraph(table, "a", "b")
                metrics = ringo.health()["obs"]["metrics"]
                totals.append(metrics["engine.tograph.rows_total"]["value"])
            assert totals == sorted(totals)
            assert totals[0] > 0


class TestTracerOwnership:
    def test_session_owns_tracer_it_enabled(self, no_global_tracer):
        with Ringo(workers=1, trace=True):
            assert obs.enabled()
        assert not obs.enabled()

    def test_pre_armed_tracer_wins_and_survives_close(self, no_global_tracer):
        tracer = obs.enable()
        with Ringo(workers=1, trace=True) as ringo:
            assert obs.current_tracer() is tracer
            assert ringo.health()["obs"]["enabled"] is True
        assert obs.current_tracer() is tracer  # session must not tear down
        obs.disable()

    def test_trace_false_keeps_tracing_off(self, no_global_tracer):
        with Ringo(workers=1, trace=False) as ringo:
            assert not obs.enabled()
            report = ringo.health()["obs"]
            assert report["enabled"] is False
            assert report["spans"] is None

    def test_trace_path_writes_a_valid_jsonl_file(self, no_global_tracer, tmp_path):
        trace_path = tmp_path / "session.jsonl"
        with Ringo(workers=1, trace=str(trace_path)) as ringo:
            table = ringo.TableFromColumns({"a": [1, 2], "b": [2, 3]})
            ringo.ToGraph(table, "a", "b")
        count, problems = validate_jsonl(trace_path)
        assert problems == []
        assert count > 0

    def test_env_var_arms_a_session_owned_tracer(
        self, no_global_tracer, monkeypatch
    ):
        monkeypatch.setenv(obs.ENV_VAR, "1")
        with Ringo(workers=1):
            assert obs.enabled()
        assert not obs.enabled()


class TestProfileReport:
    def test_profile_renders_the_span_tree(self, no_global_tracer):
        with Ringo(workers=1, trace=True) as ringo:
            table = ringo.TableFromColumns({"a": [1, 2, 3], "b": [2, 3, 1]})
            graph = ringo.ToGraph(table, "a", "b")
            ringo.GetPageRank(graph)
            report = ringo.profile()
        assert "engine.ToGraph" in report
        assert "convert.sort_first" in report
        assert "alg.pagerank" in report
        for column in ("span", "calls", "total", "self", "rss+"):
            assert column in report
        # Children render indented under their parents.
        tograph_line = next(
            line for line in report.splitlines() if "convert.sort_first" in line
        )
        assert tograph_line.startswith("  ")

    def test_profile_without_tracing_says_so(self, no_global_tracer, monkeypatch):
        # RINGO_TRACE in the environment would arm a session tracer.
        monkeypatch.delenv(obs.ENV_VAR, raising=False)
        with Ringo(workers=1) as ringo:
            assert "tracing is not enabled" in ringo.profile()


class TestHealthDeepCopy:
    def test_mutating_health_never_reaches_engine_state(self, no_global_tracer):
        with Ringo(workers=1, trace=True) as ringo:
            table = ringo.TableFromColumns({"a": [1, 2], "b": [2, 3]})
            ringo.ToGraph(table, "a", "b")
            first = ringo.health()
            # Trash every sub-dict a caller could reach.
            first["workers"]["calls"] = -999
            first["snapshot_cache"].clear()
            first["obs"]["metrics"].clear()
            first["obs"]["derived"]["snapshot_hit_ratio"] = "corrupted"
            first["analysis"]["sanitizer"]["checks"] = -1
            first["objects"]["names"].append("ghost")
            first["timings"].clear()
            second = ringo.health()
            assert second["workers"]["calls"] >= 0
            assert "hits" in second["snapshot_cache"]
            assert second["obs"]["metrics"]
            assert second["obs"]["derived"]["snapshot_hit_ratio"] != "corrupted"
            assert second["analysis"]["sanitizer"]["checks"] >= 0
            assert "ghost" not in second["objects"]["names"]

    def test_health_sub_dicts_are_fresh_objects_each_call(self, no_global_tracer):
        with Ringo(workers=1) as ringo:
            a = ringo.health()
            b = ringo.health()
            assert a is not b
            for key in ("workers", "snapshot_cache", "analysis", "objects"):
                assert a[key] is not b[key]
