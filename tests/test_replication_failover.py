"""The failover drill: SIGKILL the primary, promote, lose nothing.

A real ``repro serve`` child process acts as the primary, shipping its
WAL to an in-process replica :class:`ServiceHandle` — the same topology
an operator runs, crossed with the chaos the ISSUE demands:

1. the child primary runs with seeded ``recovery.wal.append`` faults
   (its own WAL commit path fires transiently) while our side arms
   ``replication.apply`` faults against the ship stream;
2. a tenant commits real work over TCP through a failover-aware
   :class:`ServiceClient` whose retry policy absorbs those faults;
3. SIGKILL the primary mid-stream — no drain, no checkpoint, exactly
   the crash promotion exists for;
4. promote the replica (the first attempt is made to fail with a seeded
   ``replication.promote`` fault and must abort cleanly; the retry
   succeeds), draining the dead primary's committed WAL suffix;
5. assert **zero committed loss**: the promoted service's catalog
   digest equals a direct recovery of the dead primary's spool
   (``read_wal``'s valid prefix — the committed records);
6. assert **fencing**: the revived old primary's next append raises
   :class:`FencedError`, and a restarted old-primary *server* refuses
   the same way over the wire.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.engine import Ringo
from repro.exceptions import FencedError, InjectedFaultError
from repro.faults import inject_faults
from repro.parallel.resilience import RetryPolicy
from repro.recovery.digest import catalog_digest
from repro.recovery.wal import WAL_FILENAME, read_wal
from repro.service.client import ServiceClient
from repro.service.protocol import RemoteError
from repro.service.server import ServiceConfig, ServiceHandle

SRC = Path(__file__).resolve().parents[1] / "src"

# The child's WAL-append fault arming: transient, bounded, seeded. The
# driving client's retry policy must absorb every firing — each `call`
# that returns successfully is a *committed* record by definition.
PRIMARY_SCRIPT = """
import asyncio, sys
from repro.faults import inject_faults
from repro.service.server import ServiceConfig, serve_forever

config = ServiceConfig(
    spool_dir=sys.argv[1],
    replica_address=sys.argv[2],
    ship_interval_s=0.02,
    digest_every_batches=3,
    tick_s=0.02,
)
plan = {"recovery.wal.append": {"rate": 0.2, "max_triggers": 3}}
with inject_faults(plan, seed=7):
    asyncio.run(serve_forever(config))
"""


def _spawn_primary(spool: Path, replica_address: str):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    process = subprocess.Popen(
        [sys.executable, "-u", "-c", PRIMARY_SCRIPT, str(spool),
         replica_address],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    line = process.stdout.readline()
    assert "listening on" in line, f"unexpected startup line: {line!r}"
    port = int(line.split("listening on")[1].split()[0].rsplit(":", 1)[1])
    return process, port


def wait_until(predicate, timeout=30.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {message}")


def test_sigkill_failover_drill(tmp_path):
    primary_spool = tmp_path / "primary"
    replica_spool = tmp_path / "replica"
    replica = ServiceHandle(
        ServiceConfig(
            spool_dir=str(replica_spool), role="replica", tick_s=0.02
        )
    ).start()
    rhost, rport = replica.address
    process, primary_port = _spawn_primary(primary_spool, f"{rhost}:{rport}")
    client = None
    try:
        # -- commit real work through the faulted primary ---------------
        # Writes get a single-address client on purpose: a retryable
        # envelope must re-land on the primary (a standby would refuse
        # the write), and every absorbed fault stays a committed record.
        client = ServiceClient(
            "127.0.0.1",
            primary_port,
            tenant="alice",
            retry_policy=RetryPolicy(max_attempts=6, base_delay=0.01),
        )
        with inject_faults(
            {"replication.apply": {"rate": 1.0, "max_triggers": 2}}, seed=5
        ):
            table = client.call(
                "TableFromColumns", data={"a": [1, 2, 3], "b": [2, 3, 4]}
            )
            graph = client.call(
                "ToGraph", table={"$ref": table["$ref"]},
                src_col="a", dst_col="b",
            )
            for i in range(8):
                client.call(
                    "ApplyOps", graph={"$ref": graph["$ref"]},
                    ops=[["add_edge", 100 + i, 101 + i]],
                )

            # Let the stream catch up part-way (not necessarily fully:
            # the drain covers the rest), then kill without ceremony.
            def some_progress():
                state = replica.health()["replication"]["tenants"].get("alice")
                return state is not None and state["applied_lsn"] >= 2
            wait_until(some_progress, message="partial ship progress")
        process.send_signal(signal.SIGKILL)
        process.wait(timeout=30)
        assert process.returncode == -signal.SIGKILL

        # Every successful call() above was acknowledged after its WAL
        # commit: that on-disk valid prefix is the committed state the
        # drill must not lose.
        committed, _tail = read_wal(primary_spool / "alice" / WAL_FILENAME)
        assert len(committed) == 10  # table + graph + 8 ApplyOps
        reference = Ringo.recover(
            primary_spool / "alice", arm=False, workers=1
        )
        reference_digest = catalog_digest(reference)
        reference.close()

        # -- promote: first attempt faulted, retry succeeds -------------
        with inject_faults(
            {"replication.promote": {"rate": 1.0, "max_triggers": 1}}, seed=3
        ):
            with pytest.raises(RemoteError) as excinfo:
                replica.call(
                    "alice", "promote", fence_spool=str(primary_spool)
                )
            assert excinfo.value.error_type == "InjectedFaultError"
            report = replica.call(
                "alice", "promote", fence_spool=str(primary_spool)
            )
        assert report["epoch"] == 1
        assert "alice" in report["adopted"]
        assert report["tenants"]["alice"]["applied_lsn"] == 10

        # -- zero committed loss ----------------------------------------
        assert replica.call("alice", "digest") == reference_digest

        # -- the promoted service serves writes -------------------------
        result = replica.call(
            "alice", "TableFromColumns", data={"x": [5, 6, 7]}
        )
        assert result["rows"] == 3

        # -- fencing: the deposed primary can never commit again --------
        revived = Ringo.recover(primary_spool / "alice", workers=1)
        with revived:
            with pytest.raises(FencedError) as fenced:
                revived.TableFromColumns({"zombie": [1]})
            assert fenced.value.current_epoch == 1
        # ... including through a restarted old-primary *server*.
        zombie, zombie_port = _spawn_primary(
            primary_spool, f"{rhost}:{rport}"
        )
        try:
            with ServiceClient(
                "127.0.0.1", zombie_port, tenant="alice"
            ) as zc:
                with pytest.raises(RemoteError) as remote:
                    zc.call("TableFromColumns", data={"q": [1]})
                assert remote.value.error_type == "FencedError"
        finally:
            zombie.send_signal(signal.SIGTERM)
            zombie.wait(timeout=30)
    finally:
        if client is not None:
            client.close()
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)
        replica.stop()


def test_promote_fault_site_leaves_replica_promotable(tmp_path):
    """An injected promote fault must abort with nothing half-fenced."""
    replica = ServiceHandle(
        ServiceConfig(
            spool_dir=str(tmp_path / "replica"), role="replica", tick_s=0.02
        )
    ).start()
    try:
        with inject_faults({"replication.promote": 1.0}, seed=1):
            with pytest.raises((RemoteError, InjectedFaultError)):
                replica.call("alice", "promote")
        assert replica.health()["replication"]["role"] == "replica"
        report = replica.call("alice", "promote")
        assert report["epoch"] >= 1
        assert replica.health()["replication"]["role"] == "primary"
    finally:
        replica.stop()
