"""Tests for repro.tables.table.Table core behaviour."""

import numpy as np
import pytest

from repro.exceptions import SchemaError, TypeMismatchError
from repro.tables.schema import ColumnType, Schema
from repro.tables.strings import StringPool
from repro.tables.table import Table, check_same_layout


@pytest.fixture
def posts():
    return Table.from_columns(
        {
            "PostId": [10, 11, 12, 13],
            "UserId": [1, 2, 1, 3],
            "Score": [0.5, 1.5, -2.0, 0.0],
            "Tag": ["java", "python", "java", "go"],
        }
    )


class TestConstruction:
    def test_from_columns_infers_schema(self, posts):
        assert posts.schema["PostId"] is ColumnType.INT
        assert posts.schema["Score"] is ColumnType.FLOAT
        assert posts.schema["Tag"] is ColumnType.STRING

    def test_from_columns_explicit_schema(self):
        table = Table.from_columns(
            {"x": [1, 2]}, schema=[("x", "float")]
        )
        assert table.schema["x"] is ColumnType.FLOAT

    def test_from_columns_missing_column_rejected(self):
        with pytest.raises(SchemaError, match="missing"):
            Table.from_columns({"x": [1]}, schema=[("x", "int"), ("y", "int")])

    def test_extra_data_column_rejected(self):
        schema = Schema([("x", "int")])
        with pytest.raises(SchemaError, match="not in schema"):
            Table(schema, {"x": np.array([1]), "y": np.array([2])})

    def test_ragged_columns_rejected(self):
        with pytest.raises(SchemaError, match="rows"):
            Table.from_columns({"x": [1, 2], "y": [1]})

    def test_from_rows(self):
        table = Table.from_rows(
            [("id", "int"), ("name", "string")], [(1, "a"), (2, "b")]
        )
        assert table.num_rows == 2
        assert table.values("name") == ["a", "b"]

    def test_from_rows_wrong_width_rejected(self):
        with pytest.raises(SchemaError):
            Table.from_rows([("id", "int")], [(1, 2)])

    def test_empty(self):
        table = Table.empty([("x", "int"), ("s", "string")])
        assert table.num_rows == 0
        assert table.num_cols == 2

    def test_two_dimensional_column_rejected(self):
        with pytest.raises(SchemaError, match="one-dimensional"):
            Table(Schema([("x", "int")]), {"x": np.zeros((2, 2), dtype=np.int64)})

    def test_row_ids_default_dense(self, posts):
        assert posts.row_ids.tolist() == [0, 1, 2, 3]

    def test_row_ids_length_checked(self):
        with pytest.raises(SchemaError):
            Table(
                Schema([("x", "int")]),
                {"x": np.array([1, 2])},
                row_ids=np.array([0]),
            )


class TestAccessors:
    def test_column_is_readonly(self, posts):
        column = posts.column("PostId")
        with pytest.raises(ValueError):
            column[0] = 99

    def test_row_ids_readonly(self, posts):
        with pytest.raises(ValueError):
            posts.row_ids[0] = 7

    def test_values_decodes_strings(self, posts):
        assert posts.values("Tag") == ["java", "python", "java", "go"]

    def test_row_returns_python_types(self, posts):
        row = posts.row(0)
        assert row == {"PostId": 10, "UserId": 1, "Score": 0.5, "Tag": "java"}
        assert isinstance(row["PostId"], int)
        assert isinstance(row["Score"], float)

    def test_row_negative_index(self, posts):
        assert posts.row(-1)["PostId"] == 13

    def test_row_out_of_range(self, posts):
        with pytest.raises(IndexError):
            posts.row(4)

    def test_iter_rows(self, posts):
        rows = list(posts.iter_rows())
        assert len(rows) == 4
        assert rows[1]["Tag"] == "python"

    def test_len_and_repr(self, posts):
        assert len(posts) == 4
        assert "4 rows" in repr(posts)

    def test_head_preview_truncates(self, posts):
        preview = posts.head(2)
        assert "more rows" in preview
        assert preview.splitlines()[0].startswith("PostId")


class TestStructuralUpdates:
    def test_add_column(self, posts):
        posts.add_column("Views", [5, 6, 7, 8])
        assert posts.column("Views").tolist() == [5, 6, 7, 8]
        assert posts.schema["Views"] is ColumnType.INT

    def test_add_string_column(self, posts):
        posts.add_column("Lang", ["en", "en", "de", "fr"])
        assert posts.values("Lang") == ["en", "en", "de", "fr"]

    def test_add_column_length_mismatch(self, posts):
        with pytest.raises(SchemaError):
            posts.add_column("bad", [1])

    def test_add_column_from_numpy_float(self, posts):
        posts.add_column("w", np.array([0.1, 0.2, 0.3, 0.4]))
        assert posts.schema["w"] is ColumnType.FLOAT

    def test_drop_column(self, posts):
        posts.drop_column("Score")
        assert "Score" not in posts.schema
        assert posts.num_cols == 3

    def test_rename_column(self, posts):
        posts.rename_column("UserId", "Author")
        assert posts.column("Author").tolist() == [1, 2, 1, 3]

    def test_clone_is_independent(self, posts):
        copy = posts.clone()
        copy.filter_in_place(np.array([True, False, False, False]))
        assert posts.num_rows == 4
        assert copy.num_rows == 1


class TestSubsetting:
    def test_take_preserves_row_ids(self, posts):
        subset = posts.take(np.array([2, 0]))
        assert subset.row_ids.tolist() == [2, 0]
        assert subset.column("PostId").tolist() == [12, 10]

    def test_filter_in_place_with_mask(self, posts):
        posts.filter_in_place(posts.column("UserId") == 1)
        assert posts.num_rows == 2
        assert posts.row_ids.tolist() == [0, 2]

    def test_filter_in_place_with_indices(self, posts):
        posts.filter_in_place(np.array([3]))
        assert posts.row_ids.tolist() == [3]

    def test_filter_mask_length_checked(self, posts):
        with pytest.raises(SchemaError):
            posts.filter_in_place(np.array([True, False]))

    def test_reorder_in_place(self, posts):
        posts.reorder_in_place(np.array([3, 2, 1, 0]))
        assert posts.column("PostId").tolist() == [13, 12, 11, 10]
        assert posts.row_ids.tolist() == [3, 2, 1, 0]

    def test_reorder_length_checked(self, posts):
        with pytest.raises(SchemaError):
            posts.reorder_in_place(np.array([0, 1]))

    def test_row_ids_survive_chained_operations(self, posts):
        posts.filter_in_place(posts.column("Tag") == posts.pool.try_encode("java"))
        posts.reorder_in_place(np.array([1, 0]))
        assert posts.row_ids.tolist() == [2, 0]


class TestMemoryAccounting:
    def test_memory_bytes_counts_columns_and_ids(self, posts):
        # 4 rows: 2 int64 + 1 float64 + 1 int32 code column + int64 ids.
        expected = 4 * (8 + 8 + 8 + 4 + 8)
        assert posts.memory_bytes() == expected

    def test_empty_table_memory(self):
        assert Table.empty([("x", "int")]).memory_bytes() == 0


class TestCheckSameLayout:
    def test_same_layout_passes(self):
        a = Table.from_columns({"x": [1]})
        b = Table.from_columns({"x": [2]})
        check_same_layout(a, b)

    def test_different_schema_rejected(self):
        a = Table.from_columns({"x": [1]})
        b = Table.from_columns({"y": [2]})
        with pytest.raises(TypeMismatchError):
            check_same_layout(a, b)

    def test_different_pool_rejected(self):
        a = Table.from_columns({"s": ["x"]}, pool=StringPool())
        b = Table.from_columns({"s": ["x"]}, pool=StringPool())
        with pytest.raises(TypeMismatchError, match="pool"):
            check_same_layout(a, b)
