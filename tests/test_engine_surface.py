"""Sweep test: every session-level method runs once against live data.

Guards the public surface — a rename or signature break in any engine
method fails here even if no focused test covers it.
"""

import numpy as np
import pytest

from repro.core.engine import Ringo


@pytest.fixture(scope="module")
def ringo():
    session = Ringo(workers=1)
    yield session
    session.close()


@pytest.fixture(scope="module")
def graph(ringo):
    table = ringo.TableFromColumns(
        {"a": [1, 2, 3, 1, 4, 5], "b": [2, 3, 1, 3, 5, 4]}
    )
    return ringo.ToGraph(table, "a", "b")


def test_every_session_method_exercised(ringo, graph, tmp_path):
    t = ringo.TableFromColumns(
        {"k": [1, 2, 2], "v": [1.5, 2.5, 3.5], "s": ["x", "y", "x"]}
    )

    exercised = {
        "TableFromColumns": t,
        "Select": ringo.Select(t, "k = 2"),
        "Join": ringo.Join(t, t, "k"),
        "Project": ringo.Project(t, ["k"]),
        "Rename": ringo.Rename(t, {"v": "w"}),
        "GroupBy": ringo.GroupBy(t, "k"),
        "OrderBy": ringo.OrderBy(t, "v"),
        "Union": ringo.Union(t, t),
        "Intersect": ringo.Intersect(t, t),
        "Minus": ringo.Minus(t, t),
        "Distinct": ringo.Distinct(t),
        "Limit": ringo.Limit(t, 1),
        "TopK": ringo.TopK(t, "v", 1),
        "ValueCounts": ringo.ValueCounts(t, "s"),
        "WithColumn": ringo.WithColumn(t.clone(), "c", "k + v"),
        "Sample": ringo.Sample(t, 1),
        "Describe": ringo.Describe(t),
        "Crosstab": ringo.Crosstab(t, "k", "s"),
        "Quantiles": ringo.Quantiles(t, "v", [0.5]),
        "SimJoin": ringo.SimJoin(t, t, "v", 1.0),
        "NextK": ringo.NextK(t, "v", 1),
        "ToGraph": graph,
        "GetEdgeTable": ringo.GetEdgeTable(graph),
        "GetNodeTable": ringo.GetNodeTable(graph, include_degrees=True),
        "TableFromHashMap": ringo.TableFromHashMap({1: 1.0}, "K", "V"),
        "GetPageRank": ringo.GetPageRank(graph),
        "GetHits": ringo.GetHits(graph),
        "GetTriangles": ringo.GetTriangles(graph),
        "GetTriangleCounts": ringo.GetTriangleCounts(graph),
        "GetClusteringCoefficients": ringo.GetClusteringCoefficients(graph),
        "GetKCore": ringo.GetKCore(graph, 2),
        "GetCoreNumbers": ringo.GetCoreNumbers(graph),
        "GetSssp": ringo.GetSssp(graph, 1),
        "GetBfsLevels": ringo.GetBfsLevels(graph, 1),
        "GetScc": ringo.GetScc(graph),
        "GetWcc": ringo.GetWcc(graph),
        "GetDegreeCentrality": ringo.GetDegreeCentrality(graph),
        "GetCommunities": ringo.GetCommunities(graph),
        "GetDiameter": ringo.GetDiameter(graph),
        "GetEffectiveDiameter": ringo.GetEffectiveDiameter(graph),
        "GetDegreeDistribution": ringo.GetDegreeDistribution(graph),
        "GetKatz": ringo.GetKatz(graph),
        "GetTriadCensus": ringo.GetTriadCensus(graph),
        "GetArticulationPoints": ringo.GetArticulationPoints(graph),
        "GetBridges": ringo.GetBridges(graph),
        "GetColoring": ringo.GetColoring(graph),
        "IsBipartite": ringo.IsBipartite(graph),
        "GetLinkPredictions": ringo.GetLinkPredictions(graph, k=2),
        "GetMaxFlow": ringo.GetMaxFlow(graph, 1, 3),
        "GetMinCut": ringo.GetMinCut(graph, 1, 3),
        "GetEgonet": ringo.GetEgonet(graph, 1),
        "FindCycle": ringo.FindCycle(graph),
        "GetGirth": ringo.GetGirth(graph),
        "GenRMat": ringo.GenRMat(5, 50, seed=1),
        "GenPrefAttach": ringo.GenPrefAttach(20, 2, seed=1),
        "GenErdosRenyi": ringo.GenErdosRenyi(10, 15, seed=1),
        "GenPlantedPartition": ringo.GenPlantedPartition(2, 5, 0.9, 0.1, seed=1),
        "GenConfigurationModel": ringo.GenConfigurationModel([2, 2, 2, 2]),
        "Functions": ringo.Functions(),
        "NumFunctions": ringo.NumFunctions(),
        "Objects": ringo.Objects(),
        "GetObject": ringo.GetObject(ringo.Objects()[0]),
        "workers_info": ringo.workers_info(),
        "health": ringo.health(),
        "call_timings": ringo.call_timings(),
        "profile": ringo.profile(),
    }
    # Deferred ones needing special setup:
    from repro.graphs.network import Network

    net = Network()
    net.add_edge(1, 2)
    net.set_edge_attr(1, 2, "w", 2.0)
    exercised["GetWeightedPageRank"] = ringo.GetWeightedPageRank(net, "w")

    bip = ringo.TableFromColumns({"g": [1, 1, 2], "u": [10, 11, 10]})
    co = ringo.ToCoOccurrenceGraph(bip, "g", "u")
    exercised["ToCoOccurrenceGraph"] = co
    exercised["GetMatching"] = ringo.GetMatching(
        ringo.GenErdosRenyi(2, 1, seed=1)
    )

    events = ringo.TableFromColumns({"t": [0, 1], "x": [1, 2], "y": [2, 3]})
    exercised["GetSnapshots"] = ringo.GetSnapshots(events, "t", "x", "y", 10)
    exercised["ToWeightedNetwork"] = ringo.ToWeightedNetwork(events, "x", "y")
    exercised["GetKTruss"] = ringo.GetKTruss(graph, 3)

    spectral_graph = ringo.GenPlantedPartition(2, 6, 0.9, 0.1, seed=2)
    exercised["GetSpectralBisection"] = ringo.GetSpectralBisection(spectral_graph)
    exercised["GetAlgebraicConnectivity"] = ringo.GetAlgebraicConnectivity(spectral_graph)
    exercised["Rewire"] = ringo.Rewire(ringo.GenErdosRenyi(10, 15, seed=2))

    path = tmp_path / "t.npz"
    exercised["SaveTableBinary"] = ringo.SaveTableBinary(t, path)
    exercised["LoadTableBinary"] = ringo.LoadTableBinary(path)
    tsv = tmp_path / "t.tsv"
    exercised["SaveTableTSV"] = ringo.SaveTableTSV(t, tsv)
    exercised["LoadTableTSV"] = ringo.LoadTableTSV(
        [("k", "int"), ("v", "float"), ("s", "string")], tsv
    )

    state = tmp_path / "state"
    with Ringo(workers=1, durability=state) as durable:
        durable.TableFromColumns({"a": [1, 2]})
        exercised["checkpoint"] = durable.checkpoint()
    with Ringo.recover(state, workers=1) as recovered:
        exercised["recover"] = recovered.Objects()

    stream = tmp_path / "stream"
    with Ringo(workers=1, durability=stream) as producer:
        edges = producer.TableFromColumns({"a": [1, 2], "b": [2, 3]})
        src = producer.ToGraph(edges, "a", "b")
        exercised["ApplyOps"] = producer.ApplyOps(src, [["add_edge", 3, 4]])
        exercised["apply_ops"] = producer.apply_ops(src, [["add_edge", 4, 5]])
    with Ringo(workers=1) as follower:
        exercised["TailWal"] = follower.TailWal(stream)
        exercised["tail_wal"] = follower.tail_wal(stream)

    # Every public engine method must have been exercised above.
    public = {
        name
        for name in dir(Ringo)
        if not name.startswith("_")
        and callable(getattr(Ringo, name))
        and name not in ("close",)
    }
    missing = public - set(exercised)
    assert not missing, f"engine methods not exercised: {sorted(missing)}"
