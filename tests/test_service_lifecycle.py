"""Session lifecycle through the service: eviction, revival, isolation.

The satellite-3 contract lives here: an evicted-then-revived session
must be :func:`~repro.recovery.digest.catalog_digest`-identical to a
never-evicted reference session that ran the same operations — including
when checkpoints fail under fault injection (the WAL still covers the
committed state).
"""

import asyncio

import pytest

from repro.core.engine import Ringo
from repro.faults import inject_faults
from repro.recovery.digest import catalog_digest
from repro.service import ServiceConfig, ServiceHandle

SCHEMA = [["src", "int"], ["dst", "int"]]


@pytest.fixture
def edges_tsv(tmp_path):
    path = tmp_path / "edges.tsv"
    with open(path, "w") as fh:
        for i in range(50):
            fh.write(f"{i}\t{(i * 7 + 3) % 50}\n")
    return str(path)


@pytest.fixture
def handle(tmp_path):
    config = ServiceConfig(
        spool_dir=str(tmp_path / "spool"),
        global_budget_bytes=256 << 20,
        default_tenant_budget_bytes=64 << 20,
        idle_evict_s=3600.0,  # lifecycle tests evict explicitly
    )
    with ServiceHandle(config) as running:
        yield running


def build_workload(handle, tenant, edges_tsv):
    """The canonical tenant workload: load → graph → pagerank."""
    table = handle.call(tenant, "LoadTableTSV", path=edges_tsv, schema=SCHEMA)
    graph = handle.call(
        tenant, "ToGraph", table={"$ref": table["$ref"]},
        src_col="src", dst_col="dst",
    )
    handle.call(tenant, "GetPageRank", graph={"$ref": graph["$ref"]})
    return table, graph


def reference_digest(tmp_path, edges_tsv):
    """The same workload in a plain durable session, never evicted."""
    with Ringo(workers=1, durability=tmp_path / "reference") as ringo:
        table = ringo.LoadTableTSV(SCHEMA, edges_tsv)
        graph = ringo.ToGraph(table, "src", "dst")
        ringo.GetPageRank(graph)
        return catalog_digest(ringo)


def force_evict(handle, tenant):
    """Drive one eviction from the test thread; returns success."""
    manager = handle.service.manager
    record = manager.tenants[tenant]
    future = asyncio.run_coroutine_threadsafe(
        manager.evict(record), handle._loop
    )
    return future.result(30.0)


def tenant_health(handle, tenant):
    return handle.health()["service"]["tenants"][tenant]


def test_evict_then_revive_preserves_catalog_digest(handle, tmp_path, edges_tsv):
    build_workload(handle, "alice", edges_tsv)
    before = handle.call("alice", "digest")

    assert force_evict(handle, "alice") is True
    entry = tenant_health(handle, "alice")
    assert entry["resident"] is False
    assert entry["evictions"] == 1
    assert handle.health()["service"]["ledger"]["charged_bytes"] == 0

    # The next request lazily revives the session from its checkpoint.
    after = handle.call("alice", "digest")
    assert after == before
    assert after == reference_digest(tmp_path, edges_tsv)
    entry = tenant_health(handle, "alice")
    assert entry["resident"] is True
    assert entry["revivals"] == 1


def test_revived_session_keeps_working_and_numbering(handle, edges_tsv):
    table, _ = build_workload(handle, "alice", edges_tsv)
    assert force_evict(handle, "alice")
    # Post-revival derivations extend the same catalog namespace.
    filtered = handle.call(
        "alice", "Select", table={"$ref": table["$ref"]}, predicate="src<10"
    )
    assert filtered["rows"] == 10
    names = handle.call("alice", "objects")
    assert table["$ref"] in names and filtered["$ref"] in names


def test_eviction_survives_checkpoint_write_fault(handle, tmp_path, edges_tsv):
    build_workload(handle, "alice", edges_tsv)
    before = handle.call("alice", "digest")

    with inject_faults({"recovery.checkpoint.write": 1.0}, seed=11):
        assert force_evict(handle, "alice") is False
    entry = tenant_health(handle, "alice")
    assert entry["resident"] is True  # aborted cleanly, still usable
    assert entry["eviction_failures"] == 1

    # Disarmed, the retry succeeds and the round trip still matches.
    assert force_evict(handle, "alice") is True
    assert handle.call("alice", "digest") == before
    assert handle.call("alice", "digest") == reference_digest(tmp_path, edges_tsv)


def test_eviction_survives_service_evict_fault(handle, edges_tsv):
    build_workload(handle, "alice", edges_tsv)
    with inject_faults({"service.evict": 1.0}, seed=3):
        assert force_evict(handle, "alice") is False
    assert tenant_health(handle, "alice")["resident"] is True
    assert force_evict(handle, "alice") is True


def test_dispatch_fault_degrades_only_the_faulted_request(handle, edges_tsv):
    build_workload(handle, "alice", edges_tsv)
    build_workload(handle, "bob", edges_tsv)
    bob_digest = handle.call("bob", "digest")

    # A non-retryable fault fires exactly once: the request that drew it
    # fails typed; the tenant, the other tenant, and the server all live.
    with inject_faults(
        {"service.dispatch": {"rate": 1.0, "error": RuntimeError,
                              "max_triggers": 1}}, seed=5,
    ) as plan:
        envelope = handle.submit(
            {"id": 99, "tenant": "alice", "op": "digest", "args": {}}
        )
        assert envelope["ok"] is False
        assert envelope["error"]["type"] == "RuntimeError"
        assert envelope["error"]["retryable"] is False
    assert plan.triggered["service.dispatch"] == 1

    assert handle.call("alice", "ping") == "pong"
    assert handle.call("bob", "digest") == bob_digest
    assert tenant_health(handle, "alice")["failed"] == 1


def test_transient_dispatch_fault_is_absorbed_by_retry(handle, edges_tsv):
    build_workload(handle, "alice", edges_tsv)
    before = handle.call("alice", "digest")
    # InjectedFaultError is transient; the dispatcher's shared
    # RetryPolicy re-attempts and the request still succeeds.
    with inject_faults(
        {"service.dispatch": {"rate": 1.0, "max_triggers": 2}}, seed=7
    ) as plan:
        assert handle.call("alice", "digest") == before
    assert plan.triggered["service.dispatch"] == 2
    assert tenant_health(handle, "alice")["retries"] >= 2


def test_accept_fault_is_a_retryable_typed_response(handle):
    with inject_faults(
        {"service.accept": {"rate": 1.0, "max_triggers": 1}}, seed=2
    ):
        envelope = handle.submit(
            {"id": 1, "tenant": "alice", "op": "ping", "args": {}}
        )
        assert envelope["ok"] is False
        assert envelope["error"]["type"] == "InjectedFaultError"
        assert envelope["error"]["retryable"] is True
        # The very next accept succeeds: the loop never died.
        assert handle.call("alice", "ping") == "pong"


def test_admission_rejection_is_typed_and_isolated(tmp_path, edges_tsv):
    config = ServiceConfig(
        spool_dir=str(tmp_path / "spool"),
        global_budget_bytes=64 << 20,
        default_tenant_budget_bytes=32 << 20,
        idle_evict_s=3600.0,
    )
    with ServiceHandle(config) as handle:
        # A budget larger than the whole ledger can never be admitted.
        handle.call("greedy", "open", budget_bytes=128 << 20)
        envelope = handle.submit(
            {"id": 1, "tenant": "greedy", "op": "objects", "args": {}}
        )
        assert envelope["ok"] is False
        assert envelope["error"]["type"] == "AdmissionRejected"
        assert envelope["error"]["retryable"] is False
        # A reasonable tenant is admitted alongside the rejection.
        build_workload(handle, "modest", edges_tsv)
        assert tenant_health(handle, "modest")["resident"] is True


def test_admission_pressure_evicts_idle_sessions_lru(tmp_path, edges_tsv):
    config = ServiceConfig(
        spool_dir=str(tmp_path / "spool"),
        global_budget_bytes=80 << 20,
        default_tenant_budget_bytes=32 << 20,
        idle_evict_s=3600.0,
    )
    with ServiceHandle(config) as handle:
        build_workload(handle, "first", edges_tsv)
        build_workload(handle, "second", edges_tsv)
        # Both resident (64 MiB of 80); a third tenant does not fit
        # until the least-recently-active one is evicted for it.
        handle.call("third", "objects")
        health = handle.health()["service"]
        assert health["tenants"]["first"]["resident"] is False
        assert health["tenants"]["first"]["evictions"] == 1
        assert health["tenants"]["second"]["resident"] is True
        assert health["tenants"]["third"]["resident"] is True
        # The displaced tenant still answers (revives on demand).
        assert "table-1" in handle.call("first", "objects")


def test_idle_sessions_are_swept_to_checkpoint(tmp_path, edges_tsv):
    import time

    config = ServiceConfig(
        spool_dir=str(tmp_path / "spool"),
        idle_evict_s=0.2,
        tick_s=0.05,
    )
    with ServiceHandle(config) as handle:
        build_workload(handle, "alice", edges_tsv)
        before = handle.call("alice", "digest")
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if not tenant_health(handle, "alice")["resident"]:
                break
            time.sleep(0.05)
        assert tenant_health(handle, "alice")["resident"] is False
        # Still serving: revival is lazy and invisible to the client.
        assert handle.call("alice", "digest") == before


def test_drain_checkpoints_dirty_sessions(tmp_path, edges_tsv):
    spool = tmp_path / "spool"
    config = ServiceConfig(spool_dir=str(spool), idle_evict_s=3600.0)
    handle = ServiceHandle(config).start()
    try:
        build_workload(handle, "alice", edges_tsv)
        before = handle.call("alice", "digest")
    finally:
        report = handle.stop()
    assert report["checkpointed"] == 1
    assert report["checkpoint_failures"] == 0
    # The spool alone reconstructs the session bit-for-bit.
    with Ringo.recover(spool / "alice", workers=1) as revived:
        assert catalog_digest(revived) == before
