"""Tests for weighted PageRank, egonets, graph merging, and describe."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms.pagerank import pagerank, pagerank_weighted
from repro.exceptions import AlgorithmError, GraphError
from repro.graphs.directed import DirectedGraph
from repro.graphs.network import Network
from repro.graphs.ops import ego_network, intersect_graphs, merge_graphs
from repro.graphs.undirected import UndirectedGraph
from repro.tables.describe import describe
from repro.tables.table import Table

from tests.helpers import build_directed, build_undirected, to_networkx


def weighted_network(edges):
    net = Network()
    for u, v, w in edges:
        net.add_edge(u, v)
        net.set_edge_attr(u, v, "w", w)
    return net


class TestWeightedPageRank:
    def test_heavier_edge_carries_more_rank(self):
        net = weighted_network([(1, 2, 9.0), (1, 3, 1.0)])
        ranks = pagerank_weighted(net, "w")
        assert ranks[2] > ranks[3]
        assert sum(ranks.values()) == pytest.approx(1.0)

    def test_uniform_weights_match_unweighted(self):
        net = weighted_network([(1, 2, 2.0), (2, 3, 2.0), (3, 1, 2.0), (1, 3, 2.0)])
        weighted = pagerank_weighted(net, "w", tolerance=1e-13)
        plain = pagerank(net, tolerance=1e-13)
        for node, score in plain.items():
            assert weighted[node] == pytest.approx(score, abs=1e-9)

    def test_matches_networkx_weighted(self):
        edges = [(0, 1, 3.0), (1, 2, 1.0), (2, 0, 2.0), (0, 2, 4.0)]
        net = weighted_network(edges)
        ranks = pagerank_weighted(net, "w", tolerance=1e-13)
        reference = nx.DiGraph()
        reference.add_weighted_edges_from(edges)
        expected = nx.pagerank(reference, alpha=0.85, weight="weight", tol=1e-13)
        for node, score in expected.items():
            assert ranks[node] == pytest.approx(score, abs=1e-7)

    def test_missing_weights_use_default(self):
        net = Network()
        net.add_edge(1, 2)
        ranks = pagerank_weighted(net, "w", default_weight=1.0)
        assert sum(ranks.values()) == pytest.approx(1.0)

    def test_zero_out_weight_is_dangling(self):
        net = weighted_network([(1, 2, 0.0), (2, 1, 1.0)])
        ranks = pagerank_weighted(net, "w")
        assert sum(ranks.values()) == pytest.approx(1.0)

    def test_negative_weight_rejected(self):
        net = weighted_network([(1, 2, -1.0)])
        with pytest.raises(AlgorithmError):
            pagerank_weighted(net, "w")

    def test_plain_graph_rejected(self):
        graph = build_directed([(1, 2)])
        with pytest.raises(AlgorithmError):
            pagerank_weighted(graph, "w")

    def test_engine_facade(self):
        from repro.core.engine import Ringo

        net = weighted_network([(1, 2, 5.0)])
        with Ringo(workers=1) as ringo:
            assert sum(ringo.GetWeightedPageRank(net, "w").values()) == pytest.approx(1.0)


class TestEgoNetwork:
    def test_radius_one(self):
        graph = build_directed([(1, 2), (2, 3), (3, 4)])
        ego = ego_network(graph, 2, radius=1)
        assert sorted(ego.nodes()) == [1, 2, 3]
        assert ego.has_edge(1, 2) and ego.has_edge(2, 3)

    def test_radius_two(self):
        graph = build_directed([(1, 2), (2, 3), (3, 4)])
        assert sorted(ego_network(graph, 1, radius=2, direction="out").nodes()) == [1, 2, 3]

    def test_direction_out_only(self):
        graph = build_directed([(1, 2), (3, 1)])
        assert sorted(ego_network(graph, 1, direction="out").nodes()) == [1, 2]

    def test_undirected(self):
        graph = build_undirected([(1, 2), (2, 3)])
        assert sorted(ego_network(graph, 1).nodes()) == [1, 2]

    def test_invalid_radius(self):
        graph = build_directed([(1, 2)])
        with pytest.raises(Exception):
            ego_network(graph, 1, radius=0)


class TestMergeIntersect:
    def test_merge_unions_nodes_and_edges(self):
        a = build_directed([(1, 2)])
        b = build_directed([(2, 3)])
        b.add_node(99)
        merged = merge_graphs(a, b)
        assert merged.num_edges == 2
        assert merged.has_node(99)
        # Inputs untouched.
        assert a.num_edges == 1

    def test_merge_overlapping_edges_dedup(self):
        a = build_directed([(1, 2)])
        b = build_directed([(1, 2)])
        assert merge_graphs(a, b).num_edges == 1

    def test_intersect(self):
        a = build_directed([(1, 2), (2, 3)])
        b = build_directed([(1, 2), (3, 4)])
        common = intersect_graphs(a, b)
        assert sorted(common.edges()) == [(1, 2)]
        assert common.has_node(3)
        assert not common.has_node(4)

    def test_kind_mismatch_rejected(self):
        with pytest.raises(GraphError):
            merge_graphs(DirectedGraph(), UndirectedGraph())
        with pytest.raises(GraphError):
            intersect_graphs(UndirectedGraph(), DirectedGraph())

    def test_merge_undirected(self):
        a = build_undirected([(1, 2)])
        b = build_undirected([(2, 1), (2, 3)])
        assert merge_graphs(a, b).num_edges == 2


class TestDescribe:
    def test_shapes_and_stats(self):
        table = Table.from_columns(
            {"x": [1, 2, 2], "y": [0.5, 1.5, 2.5], "s": ["b", "a", "b"]}
        )
        result = describe(table)
        assert result.num_rows == 3
        rows = {r["Column"]: r for r in result.iter_rows()}
        assert rows["x"]["Distinct"] == 2
        assert rows["x"]["Min"] == 1.0 and rows["x"]["Max"] == 2.0
        assert rows["y"]["Mean"] == pytest.approx(1.5)
        assert rows["s"]["MinText"] == "a" and rows["s"]["MaxText"] == "b"

    def test_empty_table(self):
        result = describe(Table.empty([("x", "int")]))
        row = result.row(0)
        assert row["Count"] == 0
        assert np.isnan(row["Mean"])

    def test_engine_facade(self):
        from repro.core.engine import Ringo

        with Ringo(workers=1) as ringo:
            table = ringo.TableFromColumns({"x": [1, 2]})
            result = ringo.Describe(table)
            assert result.pool is ringo.pool
