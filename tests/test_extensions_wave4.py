"""Tests for left joins, configuration model, rewiring, and cycles."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms.cycles import find_cycle, girth, has_cycle
from repro.algorithms.generators import (
    configuration_model,
    complete_graph,
    grid_graph,
    rewire,
    ring_graph,
)
from repro.exceptions import AlgorithmError, TypeMismatchError
from repro.tables.join import join
from repro.tables.table import Table

from tests.helpers import build_directed, build_undirected, to_networkx


class TestLeftJoin:
    def test_keeps_unmatched_left_rows(self):
        users = Table.from_columns({"Id": [1, 2, 3], "Name": ["a", "b", "c"]})
        posts = Table.from_columns({"UserId": [2], "Score": [0.5]})
        result = join(users, posts, "Id", "UserId", how="left")
        assert result.num_rows == 3
        rows = {r["Id"]: r for r in result.iter_rows()}
        assert rows[2]["Score"] == 0.5
        assert rows[1]["Score"] == 0.0  # int/float fill is zero
        assert rows[1]["UserId"] == 0

    def test_string_fill_is_empty(self):
        left = Table.from_columns({"k": [1, 2]})
        right = Table.from_columns({"k2": [1], "tag": ["x"]})
        result = join(left, right, "k", "k2", how="left")
        rows = {r["k"]: r for r in result.iter_rows()}
        assert rows[2]["tag"] == ""

    def test_matched_rows_identical_to_inner(self):
        left = Table.from_columns({"k": [1, 2, 3]})
        right = Table.from_columns({"k2": [1, 3], "v": [10, 30]})
        inner = join(left, right, "k", "k2")
        outer = join(left, right, "k", "k2", how="left")
        inner_rows = sorted(zip(inner.column("k"), inner.column("v")))
        outer_matched = sorted(
            (k, v) for k, v in zip(outer.column("k"), outer.column("v")) if v != 0
        )
        assert inner_rows == outer_matched

    def test_provenance_marks_unmatched(self):
        left = Table.from_columns({"k": [1, 2]})
        right = Table.from_columns({"k2": [1]})
        result = join(left, right, "k", "k2", how="left", include_provenance=True)
        rows = {r["k"]: r for r in result.iter_rows()}
        assert rows[1]["DstRowId"] == 0
        assert rows[2]["DstRowId"] == -1

    def test_empty_right_table(self):
        left = Table.from_columns({"k": [5, 6]})
        right = Table.from_columns({"k2": np.empty(0, dtype=np.int64)})
        result = join(left, right, "k", "k2", how="left")
        assert result.num_rows == 2

    def test_duplicates_still_expand(self):
        left = Table.from_columns({"k": [1, 9]})
        right = Table.from_columns({"k2": [1, 1]})
        result = join(left, right, "k", "k2", how="left")
        assert result.num_rows == 3  # two matches + one unmatched

    def test_unknown_how_rejected(self):
        left = Table.from_columns({"k": [1]})
        with pytest.raises(TypeMismatchError):
            join(left, left, "k", how="right")


class TestConfigurationModel:
    def test_degrees_bounded_by_targets(self):
        degrees = [3, 3, 2, 2, 1, 1]
        graph = configuration_model(degrees, seed=3)
        for node, target in enumerate(degrees):
            assert graph.degree(node) <= target

    def test_sparse_sequence_mostly_exact(self):
        rng = np.random.default_rng(0)
        degrees = rng.integers(1, 4, size=100)
        if degrees.sum() % 2:
            degrees[0] += 1
        graph = configuration_model(degrees, seed=4)
        realised = sum(graph.degree(n) for n in graph.nodes())
        assert realised >= 0.8 * degrees.sum()

    def test_odd_sum_rejected(self):
        with pytest.raises(AlgorithmError):
            configuration_model([1, 1, 1])

    def test_negative_degree_rejected(self):
        with pytest.raises(AlgorithmError):
            configuration_model([-1, 1])

    def test_empty_sequence(self):
        assert configuration_model([]).num_nodes == 0

    def test_deterministic(self):
        a = configuration_model([2, 2, 2, 2], seed=5)
        b = configuration_model([2, 2, 2, 2], seed=5)
        assert sorted(a.edges()) == sorted(b.edges())


class TestRewire:
    def test_degree_sequence_preserved_exactly(self):
        graph = grid_graph(5, 5)
        shuffled = rewire(graph, seed=6)
        before = sorted(graph.degree(n) for n in graph.nodes())
        after = sorted(shuffled.degree(n) for n in shuffled.nodes())
        assert before == after

    def test_edge_count_preserved(self):
        graph = grid_graph(4, 6)
        assert rewire(graph, seed=7).num_edges == graph.num_edges

    def test_actually_randomises(self):
        graph = ring_graph(30)
        shuffled = rewire(graph, seed=8)
        assert sorted(shuffled.edges()) != sorted(graph.edges())

    def test_original_untouched(self):
        graph = ring_graph(10)
        edges_before = sorted(graph.edges())
        rewire(graph, seed=9)
        assert sorted(graph.edges()) == edges_before

    def test_too_few_edges_noop(self):
        graph = build_undirected([(1, 2)])
        assert sorted(rewire(graph).edges()) == [(1, 2)]

    def test_directed_rejected(self):
        with pytest.raises(AlgorithmError):
            rewire(build_directed([(1, 2)]))

    def test_clustering_destroyed_by_null_model(self):
        # The point of the null model: rewiring a clustered graph keeps
        # degrees but kills triangles.
        from repro.algorithms.generators import planted_partition
        from repro.algorithms.triangles import total_triangles

        graph = planted_partition(3, 12, p_in=0.8, p_out=0.02, seed=10)
        shuffled = rewire(graph, seed=11)
        assert total_triangles(shuffled) < total_triangles(graph) / 2


class TestCycles:
    def test_finds_directed_cycle(self):
        graph = build_directed([(1, 2), (2, 3), (3, 1), (3, 4)])
        cycle = find_cycle(graph)
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        for u, v in zip(cycle, cycle[1:]):
            assert graph.has_edge(u, v)

    def test_dag_has_no_cycle(self):
        graph = build_directed([(1, 2), (2, 3), (1, 3)])
        assert find_cycle(graph) is None
        assert not has_cycle(graph)

    def test_self_loop_cycle(self):
        graph = build_directed([(1, 1)])
        cycle = find_cycle(graph)
        assert cycle == [1, 1]

    def test_agrees_with_topological_sort(self):
        from repro.algorithms.ordering import is_dag
        from tests.helpers import random_directed

        for seed in range(6):
            graph = random_directed(15, 25, seed=seed)
            assert has_cycle(graph) == (not is_dag(graph))

    def test_girth_of_ring(self):
        assert girth(ring_graph(7)) == 7

    def test_girth_of_clique(self):
        assert girth(complete_graph(5)) == 3

    def test_girth_of_tree_is_none(self):
        graph = build_undirected([(1, 2), (2, 3), (2, 4)])
        assert girth(graph) is None

    def test_girth_self_loop(self):
        graph = build_directed([(1, 1), (1, 2)])
        assert girth(graph) == 1

    def test_girth_grid_is_four(self):
        assert girth(grid_graph(3, 3)) == 4

    def test_girth_matches_networkx(self):
        from tests.helpers import random_undirected

        for seed in range(5):
            graph = random_undirected(15, 25, seed=seed)
            reference = to_networkx(graph)
            reference.remove_edges_from(nx.selfloop_edges(reference))
            has_loop = any(graph.has_edge(n, n) for n in graph.nodes())
            try:
                expected = nx.girth(reference)
            except Exception:
                expected = float("inf")
            if has_loop:
                assert girth(graph) == 1
            elif expected == float("inf"):
                assert girth(graph) is None
            else:
                assert girth(graph) == expected
