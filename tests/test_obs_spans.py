"""repro.obs spans: nesting, ordering, cross-thread parenting, the
decorator/event forms, and the disabled-path overhead guard.

Tests that need the process-wide tracer swap it in via fixtures and
restore whatever was armed before, so the suite behaves identically
under ``RINGO_TRACE=1`` (where a session tracer is already installed).
"""

import threading
import time

import pytest

from repro import obs
from repro.obs import spans as spans_module


@pytest.fixture
def fresh_tracer():
    """A fresh global tracer for one test; restores the prior one."""
    previous = spans_module._TRACER
    spans_module._TRACER = None
    tracer = obs.enable()
    yield tracer
    obs.disable()
    spans_module._TRACER = previous


@pytest.fixture
def tracing_off():
    """Force tracing off for one test; restores the prior tracer."""
    previous = spans_module._TRACER
    spans_module._TRACER = None
    yield
    spans_module._TRACER = previous


class TestNesting:
    def test_records_arrive_in_finish_order_with_parent_links(self, fresh_tracer):
        with obs.trace("outer") as outer:
            with obs.trace("inner") as inner:
                assert inner.parent_id == outer.span_id
        records = fresh_tracer.ring_records()
        assert [r["name"] for r in records] == ["inner", "outer"]
        assert records[0]["parent_id"] == records[1]["span_id"]
        assert records[1]["parent_id"] is None

    def test_siblings_share_a_parent(self, fresh_tracer):
        with obs.trace("parent"):
            with obs.trace("a"):
                pass
            with obs.trace("b"):
                pass
        a, b, parent = fresh_tracer.ring_records()
        assert a["parent_id"] == parent["span_id"]
        assert b["parent_id"] == parent["span_id"]

    def test_span_ids_unique_and_increasing(self, fresh_tracer):
        for _ in range(5):
            with obs.trace("tick"):
                pass
        ids = [r["span_id"] for r in fresh_tracer.ring_records()]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)

    def test_tags_from_call_and_set_tag(self, fresh_tracer):
        with obs.trace("op", rows=7) as span:
            span.set_tag("kept", 3).set_tag("mode", "fast")
        (record,) = fresh_tracer.ring_records()
        assert record["tags"] == {"rows": 7, "kept": 3, "mode": "fast"}

    def test_durations_nest(self, fresh_tracer):
        with obs.trace("outer"):
            with obs.trace("inner"):
                time.sleep(0.002)
        inner, outer = fresh_tracer.ring_records()
        assert 0 <= inner["duration_s"] <= outer["duration_s"]

    def test_exception_sets_error_tag_and_still_finishes(self, fresh_tracer):
        with pytest.raises(ValueError):
            with obs.trace("doomed"):
                raise ValueError("boom")
        (record,) = fresh_tracer.ring_records()
        assert record["tags"]["error"] == "ValueError"
        assert fresh_tracer.stats()["finished"] == 1

    def test_current_span_id_tracks_the_stack(self, fresh_tracer):
        assert obs.current_span_id() is None
        with obs.trace("open") as span:
            assert obs.current_span_id() == span.span_id
        assert obs.current_span_id() is None


class TestCrossThread:
    def test_explicit_parent_carries_across_threads(self, fresh_tracer):
        with obs.trace("dispatch") as parent:
            parent_id = obs.current_span_id()

            def worker():
                # A pool thread has an empty stack; without _parent the
                # span would be a root.
                with obs.trace("kernel", _parent=parent_id):
                    pass

            thread = threading.Thread(target=worker, name="test-worker")
            thread.start()
            thread.join()
        kernel, dispatch = fresh_tracer.ring_records()
        assert kernel["parent_id"] == dispatch["span_id"] == parent.span_id
        assert kernel["thread"] == "test-worker"
        assert kernel["thread"] != dispatch["thread"]

    def test_thread_stacks_are_independent(self, fresh_tracer):
        seen = {}

        def worker():
            seen["id_in_thread"] = obs.current_span_id()

        with obs.trace("main-only"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["id_in_thread"] is None


class TestForms:
    def test_event_is_a_zero_duration_child(self, fresh_tracer):
        with obs.trace("op") as span:
            obs.event("op.note", detail="cached")
        note, op = fresh_tracer.ring_records()
        assert note["parent_id"] == span.span_id
        assert note["duration_s"] >= 0
        assert note["tags"] == {"detail": "cached"}
        assert op["name"] == "op"

    def test_traced_decorator_checks_global_per_call(self, fresh_tracer):
        @obs.traced("worked.example")
        def work(x):
            "docstring survives"
            return x + 1

        assert work(1) == 2
        assert work.__name__ == "work"
        assert work.__doc__ == "docstring survives"
        names = [r["name"] for r in fresh_tracer.ring_records()]
        assert names == ["worked.example"]

    def test_enable_is_idempotent(self, fresh_tracer):
        assert obs.enable() is fresh_tracer
        assert obs.current_tracer() is fresh_tracer

    def test_stats_count_started_finished_recorded(self, fresh_tracer):
        with obs.trace("a"):
            with obs.trace("b"):
                pass
        stats = fresh_tracer.stats()
        assert stats["started"] == stats["finished"] == stats["recorded"] == 2
        assert stats["dropped"] == 0


class TestDisabledPath:
    def test_zero_entries_when_off(self, tracing_off):
        sentinel = obs.trace("ignored", rows=1)
        with sentinel as span:
            span.set_tag("also", "ignored")
        assert not obs.enabled()
        assert obs.current_tracer() is None
        assert obs.current_span_id() is None
        # The handle is the shared no-op singleton — no allocation per call.
        assert obs.trace("another") is sentinel

    def test_event_and_decorator_no_ops_when_off(self, tracing_off):
        obs.event("ignored")

        @obs.traced("ignored.fn")
        def work():
            return 42

        assert work() == 42

    def test_disabled_overhead_under_5us_median(self, tracing_off):
        # The satellite guard: a traced no-op with tracing off must stay
        # under 5µs median, so leaving instrumentation in hot paths is
        # free in production.
        def per_call_seconds(n=2000):
            start = time.perf_counter()
            for _ in range(n):
                with obs.trace("noop.overhead", rows=1):
                    pass
            return (time.perf_counter() - start) / n

        samples = sorted(per_call_seconds() for _ in range(9))
        median = samples[len(samples) // 2]
        assert median < 5e-6, f"disabled trace() costs {median * 1e6:.2f}µs"


class TestEnvSemantics:
    @pytest.mark.parametrize("value", ["", "0", "false", "No", "OFF"])
    def test_false_values_mean_off(self, value):
        assert spans_module.env_setting(value) is None

    @pytest.mark.parametrize("value", ["1", "true", "YES", "On"])
    def test_true_values_mean_ring_recorder(self, value):
        assert spans_module.env_setting(value) == "ring"

    def test_anything_else_is_a_trace_path(self):
        assert spans_module.env_setting("/tmp/t.jsonl") == "/tmp/t.jsonl"
        assert spans_module.env_setting(" trace.jsonl ") == "trace.jsonl"
