"""Tests for connected components vs networkx."""

import networkx as nx

from repro.algorithms.components import (
    component_sizes,
    count_components,
    is_weakly_connected,
    largest_component_nodes,
    strongly_connected_components,
    weakly_connected_components,
)
from repro.graphs.directed import DirectedGraph

from tests.helpers import build_directed, random_directed, to_networkx


def as_partition(labels):
    groups = {}
    for node, label in labels.items():
        groups.setdefault(label, set()).add(node)
    return sorted(groups.values(), key=lambda s: (len(s), min(s)))


class TestWCC:
    def test_two_islands(self):
        graph = build_directed([(1, 2), (3, 4)])
        labels = weakly_connected_components(graph)
        assert labels[1] == labels[2]
        assert labels[1] != labels[3]
        assert count_components(labels) == 2

    def test_direction_ignored(self):
        graph = build_directed([(1, 2), (3, 2)])
        labels = weakly_connected_components(graph)
        assert len(set(labels.values())) == 1

    def test_empty_graph(self):
        assert weakly_connected_components(DirectedGraph()) == {}

    def test_matches_networkx(self):
        graph = random_directed(80, 90, seed=41)  # sparse → many components
        labels = weakly_connected_components(graph)
        expected = list(nx.weakly_connected_components(to_networkx(graph)))
        assert as_partition(labels) == sorted(
            (set(c) for c in expected), key=lambda s: (len(s), min(s))
        )

    def test_is_weakly_connected(self):
        assert is_weakly_connected(build_directed([(1, 2), (2, 3)]))
        assert not is_weakly_connected(build_directed([(1, 2), (3, 4)]))
        assert not is_weakly_connected(DirectedGraph())


class TestSCC:
    def test_cycle_is_one_component(self):
        graph = build_directed([(1, 2), (2, 3), (3, 1)])
        labels = strongly_connected_components(graph)
        assert len(set(labels.values())) == 1

    def test_dag_nodes_all_separate(self):
        graph = build_directed([(1, 2), (2, 3)])
        labels = strongly_connected_components(graph)
        assert len(set(labels.values())) == 3

    def test_two_cycles_with_bridge(self):
        graph = build_directed(
            [(1, 2), (2, 1), (2, 3), (3, 4), (4, 3)]
        )
        labels = strongly_connected_components(graph)
        assert labels[1] == labels[2]
        assert labels[3] == labels[4]
        assert labels[1] != labels[3]

    def test_self_loop_single_scc(self):
        graph = build_directed([(1, 1), (1, 2)])
        labels = strongly_connected_components(graph)
        assert labels[1] != labels[2]

    def test_matches_networkx(self):
        graph = random_directed(70, 220, seed=43)
        labels = strongly_connected_components(graph)
        expected = list(nx.strongly_connected_components(to_networkx(graph)))
        assert as_partition(labels) == sorted(
            (set(c) for c in expected), key=lambda s: (len(s), min(s))
        )

    def test_deep_chain_no_recursion_limit(self):
        # 50k-node chain would blow a recursive Tarjan.
        edges = [(i, i + 1) for i in range(50_000)]
        graph = build_directed(edges)
        labels = strongly_connected_components(graph)
        assert count_components(labels) == 50_001


class TestComponentHelpers:
    def test_component_sizes(self):
        assert component_sizes({1: 0, 2: 0, 3: 1}) == {0: 2, 1: 1}

    def test_largest_component(self):
        labels = {1: 0, 2: 0, 3: 1}
        assert largest_component_nodes(labels) == {1, 2}

    def test_largest_component_empty(self):
        assert largest_component_nodes({}) == set()

    def test_largest_component_tie_breaks_low_label(self):
        labels = {1: 0, 2: 1}
        assert largest_component_nodes(labels) == {1}
