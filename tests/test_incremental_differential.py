"""Trace-differential harness: incremental analytics vs batch reference.

The property the whole incremental subsystem hangs on: at every point
along a random mutation trace, the delta-maintained answers equal (WCC,
triangles) or ε-match (PageRank) a from-scratch batch run on an
identical copy of the graph. 50 seeded traces (25 seeds × directed and
undirected), each checked at several checkpoints, plus multigraph and
multi-process coverage.

PageRank's ε bound (``pagerank_epsilon``) is only valid when **both**
runs terminate on the tolerance criterion rather than the iteration
cap, so every comparison here runs with ``max_iterations=400`` — ample
for tolerance 1e-9 at damping 0.85 (which needs ~130 iterations cold).
"""

import random

import pytest

from repro.algorithms.components import weakly_connected_components
from repro.algorithms.pagerank import pagerank
from repro.algorithms.triangles import total_triangles, triangle_counts
from repro.incremental.engine import incremental_engine, pagerank_epsilon
from tests.helpers import apply_random_mutations, build_directed, build_undirected

DAMPING = 0.85
TOLERANCE = 1e-9
# Both sides must converge on tolerance, never the cap (see module doc).
MAX_ITER = 400
EPSILON = pagerank_epsilon(DAMPING, TOLERANCE)

SEEDS = range(25)
KINDS = ("directed", "undirected")


@pytest.fixture(autouse=True)
def _fresh_engine():
    engine = incremental_engine()
    engine.reset()
    yield engine
    engine.reset()


def _build(kind: str, rng: random.Random, nodes: int = 40, edges: int = 90):
    """A starting graph grown through the mutators (so the log is live)."""
    pairs = [
        (rng.randrange(nodes), rng.randrange(nodes)) for _ in range(edges)
    ]
    return (build_directed if kind == "directed" else build_undirected)(pairs)


def _batch_reference(graph):
    """Batch answers on a copy, with the incremental engine forced off."""
    engine = incremental_engine()
    ref = graph.copy()
    engine.configure(enabled=False)
    try:
        return {
            "pagerank": pagerank(
                ref, damping=DAMPING, max_iterations=MAX_ITER,
                tolerance=TOLERANCE,
            ),
            "wcc": weakly_connected_components(ref),
            "triangles": triangle_counts(ref),
            "total": total_triangles(ref),
        }
    finally:
        engine.configure(enabled=True)


def _incremental_answers(graph):
    return {
        "pagerank": pagerank(
            graph, damping=DAMPING, max_iterations=MAX_ITER,
            tolerance=TOLERANCE,
        ),
        "wcc": weakly_connected_components(graph),
        "triangles": triangle_counts(graph),
        "total": total_triangles(graph),
    }


def _assert_equivalent(live, reference, context: str):
    assert live["wcc"] == reference["wcc"], f"WCC diverged {context}"
    assert live["triangles"] == reference["triangles"], (
        f"triangle counts diverged {context}"
    )
    assert live["total"] == reference["total"], (
        f"total triangles diverged {context}"
    )
    assert set(live["pagerank"]) == set(reference["pagerank"]), (
        f"pagerank node sets diverged {context}"
    )
    l1 = sum(
        abs(live["pagerank"][node] - reference["pagerank"][node])
        for node in reference["pagerank"]
    )
    assert l1 <= EPSILON, f"pagerank L1 {l1:.3e} > ε {EPSILON:.3e} {context}"
    return l1


def _run_trace(kind: str, seed: int, checkpoints: int = 6, step: int = 5):
    """One seeded trace; returns the per-checkpoint PageRank L1 gaps."""
    rng = random.Random(seed)
    graph = _build(kind, rng)
    # Seed the warm states on the starting graph.
    _assert_equivalent(
        _incremental_answers(graph), _batch_reference(graph),
        f"at seed point (kind={kind}, seed={seed})",
    )
    gaps = []
    for checkpoint in range(checkpoints):
        apply_random_mutations(graph, rng, count=rng.randrange(1, step + 1),
                               universe=40)
        gaps.append(
            _assert_equivalent(
                _incremental_answers(graph), _batch_reference(graph),
                f"at checkpoint {checkpoint} (kind={kind}, seed={seed})",
            )
        )
    return gaps


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("kind", KINDS)
def test_trace_differential(kind, seed):
    _run_trace(kind, seed)


def test_epsilon_bound_is_tight():
    """The ε bound is doing real work: warm runs land near, not at, batch.

    Across a handful of traces some checkpoint must show a *nonzero*
    PageRank gap within ε — if every gap were zero the bound (and the
    warm start) would be vacuous; if any exceeded ε the contract is
    broken (already asserted inside the trace).
    """
    observed = []
    for seed in range(6):
        for kind in KINDS:
            incremental_engine().reset()
            observed.extend(_run_trace(kind, seed, checkpoints=4))
    nonzero = [gap for gap in observed if gap > 0]
    assert nonzero, "every warm PageRank matched batch exactly — ε is vacuous"
    assert max(observed) <= EPSILON
    # Tightness: the worst observed gap is within two orders of magnitude
    # of ε, i.e. the bound is a meaningful ceiling, not a 1e6× slack.
    assert max(nonzero) > EPSILON / 100


def test_counters_show_warm_path(_fresh_engine):
    """A pure-mutator trace must ride the delta path, never fall back."""
    _run_trace("directed", seed=99)
    stats = _fresh_engine.stats()
    assert stats["delta_applied"] > 0
    assert stats["fallback_full"] == 0
    for name in ("pagerank", "wcc", "triangles"):
        modes = stats["algorithms"][name]
        assert modes.get("seed", 0) >= 1
        assert modes.get("warm", 0) >= 1, f"{name} never took the warm path"


def test_multigraph_mirror_differential():
    """Multigraph traces: safe fallback + simple-mirror equivalence.

    ``DirectedMultigraph`` mutators bump versions without feeding the
    mutation log, so its analytics must always fall back to batch —
    never a wrong answer. A simple ``DirectedGraph`` mirror tracks the
    multigraph's support (multiplicity 0↔1 transitions) through the
    incremental path and must agree with batch on the same structure.
    """
    from repro.graphs.multigraph import DirectedMultigraph

    rng = random.Random(7)
    multi = DirectedMultigraph()
    mirror = build_directed([])
    edge_ids = []
    for step in range(120):
        if edge_ids and rng.random() < 0.3:
            edge_id = edge_ids.pop(rng.randrange(len(edge_ids)))
            u, v = multi.edge_endpoints(edge_id)
            multi.del_edge(edge_id)
            if multi.edge_count(u, v) == 0:
                mirror.del_edge(u, v)
        else:
            u, v = rng.randrange(12), rng.randrange(12)
            before = multi.edge_count(u, v)
            edge_ids.append(multi.add_edge(u, v))
            if before == 0:
                mirror.add_edge(u, v)
        if step % 30 == 29:
            _assert_equivalent(
                _incremental_answers(mirror), _batch_reference(mirror),
                f"mirror at step {step}",
            )
            # The mirror really is the multigraph's simple support, and
            # analytics on that support agree (parallel edges don't
            # change WCC).
            simple = multi.to_simple()
            assert set(simple.edges()) == set(mirror.edges())
            assert weakly_connected_components(simple) == (
                weakly_connected_components(mirror)
            )


def test_process_backend_trace(tmp_path):
    """ApplyOps + analytics through a live session on the process backend.

    Runs under both fork and spawn start methods in the multicore-smoke
    CI job via ``REPRO_MP_CONTEXT``.
    """
    from repro.core.engine import Ringo

    with Ringo(workers=2, backend="processes") as session:
        table = session.TableFromColumns(
            {"a": [1, 2, 3, 4, 1], "b": [2, 3, 4, 1, 3]}
        )
        graph = session.ToGraph(table, "a", "b")
        for batch in ([["add_edge", 4, 5], ["add_edge", 5, 1]],
                      [["del_edge", 1, 3], ["add_edge", 2, 5]]):
            summary = session.ApplyOps(graph, batch)
            assert summary["applied"] + summary["skipped"] == len(batch)
            ranks = session.GetPageRank(graph, max_iterations=MAX_ITER)
            wcc = session.GetWcc(graph)
            reference = _batch_reference(graph)
            assert wcc == reference["wcc"]
            l1 = sum(
                abs(ranks[node] - reference["pagerank"][node])
                for node in reference["pagerank"]
            )
            assert l1 <= EPSILON
