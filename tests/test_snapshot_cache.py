"""The versioned CSR snapshot cache: reuse, invalidation, resilience."""

import gc

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import algorithms as alg
from repro.core.engine import Ringo
from repro.exceptions import InjectedFaultError, RingoError
from repro.faults import inject_faults
from repro.graphs.csr import CSRGraph
from repro.graphs.directed import DirectedGraph
from repro.graphs.snapshot import SnapshotCache, csr_snapshot, snapshot_cache
from repro.graphs.undirected import UndirectedGraph


@pytest.fixture(autouse=True)
def fresh_cache():
    """Each test sees the process-wide cache empty, counters zeroed."""
    cache = snapshot_cache()
    cache.configure(enabled=True, max_bytes=None)
    cache.clear(reset_stats=True)
    yield cache
    cache.configure(enabled=True, max_bytes=None)
    cache.clear(reset_stats=True)


def ring_graph(cls=DirectedGraph, n: int = 12):
    graph = cls()
    for i in range(n):
        graph.add_edge(i, (i + 1) % n)
    return graph


# ----------------------------------------------------------------------
# Conversion reuse
# ----------------------------------------------------------------------


def test_second_algorithm_call_converts_nothing(fresh_cache):
    graph = ring_graph()
    alg.pagerank(graph)
    alg.triangle_counts(graph)
    alg.bfs_levels(graph, 0)
    converted_once = fresh_cache.stats()["conversions"]
    assert converted_once == 1
    first = (alg.pagerank(graph), alg.triangle_counts(graph), alg.bfs_levels(graph, 0))
    assert fresh_cache.stats()["conversions"] == converted_once
    assert fresh_cache.stats()["hits"] >= 3
    second = (alg.pagerank(graph), alg.triangle_counts(graph), alg.bfs_levels(graph, 0))
    assert first == second


def test_same_object_returned_until_mutation(fresh_cache):
    graph = ring_graph(UndirectedGraph)
    snap = csr_snapshot(graph)
    assert csr_snapshot(graph) is snap
    graph.add_edge(0, 6)
    rebuilt = csr_snapshot(graph)
    assert rebuilt is not snap
    assert rebuilt.num_edges == snap.num_edges + 2  # symmetric edge
    assert fresh_cache.stats()["invalidations"] == 1


@pytest.mark.parametrize("cls", [DirectedGraph, UndirectedGraph])
def test_every_mutator_bumps_version_and_invalidates(cls, fresh_cache):
    graph = ring_graph(cls)
    mutations = [
        lambda g: g.add_node(100),
        lambda g: g.add_edge(100, 3),
        lambda g: g.del_edge(0, 1),
        lambda g: g.del_node(5),
    ]
    for mutate in mutations:
        before_version = graph.version
        snap = csr_snapshot(graph)
        mutate(graph)
        assert graph.version > before_version
        assert csr_snapshot(graph) is not snap
    # No-op mutations must NOT invalidate: the snapshot stays cached.
    snap = csr_snapshot(graph)
    version = graph.version
    assert not graph.add_node(100)  # already present
    assert graph.version == version
    assert csr_snapshot(graph) is snap


@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["add_edge", "del_edge", "add_node", "del_node"]),
                  st.integers(0, 7), st.integers(0, 7)),
        max_size=30,
    ),
    undirected=st.booleans(),
)
def test_cached_snapshot_always_matches_fresh_build(ops, undirected):
    """Property: after any op sequence, cache == freshly built CSR."""
    graph = (UndirectedGraph if undirected else DirectedGraph)()
    cache = SnapshotCache()
    for op, u, v in ops:
        if op == "add_edge":
            graph.add_edge(u, v)
        elif op == "del_edge" and graph.has_edge(u, v):
            graph.del_edge(u, v)
        elif op == "add_node":
            graph.add_node(u)
        elif op == "del_node" and graph.has_node(u):
            graph.del_node(u)
        cached = cache.get(graph)
        fresh = CSRGraph.from_graph(graph)
        assert np.array_equal(cached.node_ids, fresh.node_ids)
        assert np.array_equal(cached.out_indptr, fresh.out_indptr)
        assert np.array_equal(cached.out_indices, fresh.out_indices)
        assert np.array_equal(cached.in_indptr, fresh.in_indptr)
        assert np.array_equal(cached.in_indices, fresh.in_indices)


def test_cached_and_uncached_results_agree(fresh_cache):
    rng = np.random.default_rng(7)
    graph = DirectedGraph()
    for u, v in rng.integers(0, 40, size=(160, 2)).tolist():
        graph.add_edge(u, v)
    cached = (
        alg.pagerank(graph),
        alg.triangle_counts(graph),
        alg.bfs_levels(graph, int(graph.node_array()[0])),
    )
    fresh_cache.configure(enabled=False)
    uncached = (
        alg.pagerank(graph),
        alg.triangle_counts(graph),
        alg.bfs_levels(graph, int(graph.node_array()[0])),
    )
    assert cached[1] == uncached[1] and cached[2] == uncached[2]
    assert cached[0].keys() == uncached[0].keys()
    assert all(abs(cached[0][k] - uncached[0][k]) < 1e-12 for k in cached[0])


# ----------------------------------------------------------------------
# Lifecycle: weakrefs, budgets, faults
# ----------------------------------------------------------------------


def test_collected_graph_drops_its_entry():
    cache = SnapshotCache()
    graph = ring_graph()
    cache.get(graph)
    assert len(cache) == 1
    del graph
    gc.collect()
    assert len(cache) == 0
    stats = cache.stats()
    assert stats["collected"] == 1 and stats["bytes"] == 0


def test_byte_budget_rejects_but_still_serves():
    graph = ring_graph()
    reference = CSRGraph.from_graph(graph)
    cache = SnapshotCache(max_bytes=8)
    snap = cache.get(graph)
    assert np.array_equal(snap.out_indices, reference.out_indices)
    stats = cache.stats()
    assert stats["rejected"] == 1 and stats["entries"] == 0 and stats["bytes"] == 0
    # Every repeat stays correct, never cached, never crashes.
    assert np.array_equal(cache.get(graph).out_indptr, reference.out_indptr)
    with pytest.raises(RingoError):
        SnapshotCache(max_bytes=0)


def test_build_fault_leaves_no_partial_entry(fresh_cache):
    graph = ring_graph()
    with inject_faults({"snapshot.build": 1.0}) as plan:
        with pytest.raises(InjectedFaultError):
            alg.pagerank(graph)
    assert plan.triggered["snapshot.build"] == 1
    assert len(fresh_cache) == 0
    # Disarmed: the next call recovers and caches normally.
    ranks = alg.pagerank(graph)
    assert len(ranks) == graph.num_nodes
    assert len(fresh_cache) == 1


def test_disabled_cache_is_pass_through(fresh_cache):
    fresh_cache.configure(enabled=False)
    graph = ring_graph()
    first = csr_snapshot(graph)
    second = csr_snapshot(graph)
    assert first is not second
    stats = fresh_cache.stats()
    assert stats["conversions"] == 2 and stats["entries"] == 0


def test_manual_invalidate_and_clear():
    cache = SnapshotCache()
    graph = ring_graph()
    cache.get(graph)
    assert cache.invalidate(graph) is True
    assert cache.invalidate(graph) is False
    cache.get(graph)
    cache.clear()
    assert len(cache) == 0 and cache.stats()["misses"] == 2


# ----------------------------------------------------------------------
# Engine surface
# ----------------------------------------------------------------------


def test_engine_reports_cache_stats_and_timings(fresh_cache):
    with Ringo(workers=1) as ringo:
        table = ringo.TableFromColumns({"a": [1, 2, 3, 1], "b": [2, 3, 1, 3]})
        graph = ringo.ToGraph(table, "a", "b")
        ringo.GetPageRank(graph)
        before = ringo.health()["snapshot_cache"]
        ringo.GetPageRank(graph)
        ringo.GetTriangles(graph)
        health = ringo.health()
        assert health["snapshot_cache"]["conversions"] == before["conversions"]
        assert health["snapshot_cache"]["hits"] > before["hits"]
        timings = health["timings"]
        assert timings["GetPageRank"]["calls"] == 2
        assert timings["GetTriangles"]["calls"] == 1
        assert timings["ToGraph"]["seconds"] >= 0.0
        assert ringo.call_timings() == timings


def test_engine_snapshot_cache_toggle(fresh_cache):
    with Ringo(workers=1, snapshot_cache=False) as ringo:
        table = ringo.TableFromColumns({"a": [1, 2], "b": [2, 3]})
        graph = ringo.ToGraph(table, "a", "b")
        ringo.GetPageRank(graph)
        ringo.GetPageRank(graph)
        stats = ringo.health()["snapshot_cache"]
        assert stats["enabled"] is False and stats["conversions"] == 2


def test_engine_snapshot_cache_budget(fresh_cache):
    with Ringo(workers=1, snapshot_cache_bytes=8) as ringo:
        table = ringo.TableFromColumns({"a": [1, 2], "b": [2, 3]})
        graph = ringo.ToGraph(table, "a", "b")
        first = ringo.GetPageRank(graph)
        second = ringo.GetPageRank(graph)
        assert first == second
        stats = ringo.health()["snapshot_cache"]
        assert stats["rejected"] >= 2 and stats["bytes"] == 0
