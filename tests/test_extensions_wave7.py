"""Tests for SCC condensation and the double-sweep diameter bound."""

import networkx as nx
import pytest

from repro.algorithms.components import condensation, strongly_connected_components
from repro.algorithms.diameter import diameter, double_sweep_lower_bound
from repro.algorithms.generators import balanced_tree, ring_graph
from repro.algorithms.ordering import is_dag
from repro.exceptions import AlgorithmError

from tests.helpers import build_directed, random_directed, random_undirected, to_networkx


class TestCondensation:
    def test_two_sccs_with_bridge(self):
        graph = build_directed([(1, 2), (2, 1), (2, 3), (3, 4), (4, 3)])
        dag = condensation(graph)
        assert dag.num_nodes == 2
        assert dag.num_edges == 1

    def test_result_is_always_a_dag(self):
        for seed in range(5):
            graph = random_directed(25, 90, seed=seed)
            assert is_dag(condensation(graph))

    def test_accepts_precomputed_labels(self):
        graph = build_directed([(1, 2), (2, 1)])
        labels = strongly_connected_components(graph)
        dag = condensation(graph, labels)
        assert dag.num_nodes == 1
        assert dag.num_edges == 0

    def test_node_ids_are_labels(self):
        graph = build_directed([(1, 2)])
        labels = strongly_connected_components(graph)
        dag = condensation(graph, labels)
        assert sorted(dag.nodes()) == sorted(set(labels.values()))

    def test_matches_networkx_shape(self):
        graph = random_directed(20, 60, seed=7)
        reference = nx.condensation(to_networkx(graph))
        dag = condensation(graph)
        assert dag.num_nodes == reference.number_of_nodes()
        assert dag.num_edges == reference.number_of_edges()

    def test_dag_input_is_isomorphic_copy(self):
        graph = build_directed([(1, 2), (2, 3), (1, 3)])
        dag = condensation(graph)
        assert dag.num_nodes == 3
        assert dag.num_edges == 3


class TestDoubleSweep:
    def test_exact_on_paths(self):
        from tests.helpers import build_undirected

        path = build_undirected([(0, 1), (1, 2), (2, 3), (3, 4)])
        assert double_sweep_lower_bound(path) == 4

    def test_exact_on_trees(self):
        tree = balanced_tree(2, 4)
        assert double_sweep_lower_bound(tree) == diameter(tree)

    def test_lower_bounds_exact_diameter(self):
        for seed in range(5):
            graph = random_undirected(40, 100, seed=seed)
            assert double_sweep_lower_bound(graph, seed=seed) <= diameter(graph)

    def test_usually_tight_on_rings(self):
        graph = ring_graph(20)
        assert double_sweep_lower_bound(graph, sweeps=6) == 10

    def test_empty_graph_rejected(self):
        from repro.graphs.undirected import UndirectedGraph

        with pytest.raises(AlgorithmError):
            double_sweep_lower_bound(UndirectedGraph())

    def test_invalid_sweeps(self):
        from tests.helpers import build_undirected

        graph = build_undirected([(1, 2)])
        with pytest.raises(Exception):
            double_sweep_lower_bound(graph, sweeps=0)
