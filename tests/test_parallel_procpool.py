"""Tests for repro.parallel.procpool and the kernel dispatcher.

The process backend must honour the thread pool's whole contract —
deadlines, first-error cancellation, transient retries — plus the
process-only hazards: worker death, degradation, and backend fallback.
"""

import os
import time

import numpy as np
import pytest

from repro.exceptions import (
    ExecutionError,
    PoolClosedError,
    RingoError,
    TransientError,
    WorkerCrashedError,
    WorkerTimeoutError,
)
from repro.faults import inject_faults
from repro.graphs.snapshot import csr_snapshot
from repro.parallel.executor import (
    AdaptiveCrossover,
    KernelDispatcher,
    resolve_backend,
)
from repro.parallel.procpool import ProcessPool, build_arrays
from repro.parallel.resilience import RetryPolicy
from repro.parallel.shm import leaked_segments, shm_registry
from tests.helpers import build_directed, random_directed

EDGES = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]


# ----------------------------------------------------------------------
# Module-level kernels (R007: the process backend pickles by reference)
# ----------------------------------------------------------------------


def _span_sum(arrays, lo, hi):
    return int(arrays["out_indptr"][lo:hi].sum())


def _scaled_degrees(arrays, lo, hi, factor):
    return np.diff(arrays["out_indptr"][lo:hi + 1]) * factor


def _sleepy(arrays, lo, hi, seconds):
    time.sleep(seconds)
    return lo


def _explode_on_first_span(arrays, lo, hi):
    if lo == 0:
        raise ValueError("kernel exploded")
    time.sleep(0.05)
    return lo


def _transient_once_per_span(arrays, lo, hi, marker_dir):
    marker = os.path.join(marker_dir, f"span-{lo}")
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        raise TransientError("flaky first attempt")
    return lo


@pytest.fixture
def leased():
    """A descriptor over a small snapshot, released (and leak-checked)."""
    csr = csr_snapshot(build_directed(EDGES))
    registry = shm_registry()
    export, descriptor = registry.lease(
        csr, build_arrays(csr, ("out_indptr", "out_indices"))
    )
    yield csr, descriptor
    registry.release(export)
    registry.drop_all()
    assert leaked_segments() == []


class TestResolveBackend:
    def test_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "threads")
        assert resolve_backend("processes") == "processes"

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "processes")
        assert resolve_backend(None) == "processes"

    def test_default_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_backend(None) == "auto"

    def test_invalid_name_raises_typed_error(self):
        with pytest.raises(RingoError, match="backend"):
            resolve_backend("gpu")

    def test_invalid_env_raises_typed_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "gpu")
        with pytest.raises(RingoError, match="REPRO_BACKEND"):
            resolve_backend(None)


class TestProcessPoolRun:
    def test_results_arrive_in_span_order(self, leased):
        csr, descriptor = leased
        pool = ProcessPool(workers=2)
        try:
            spans = [(0, 2), (2, 4), (4, csr.num_nodes)]
            results, kernel_seconds = pool.run(_span_sum, descriptor, spans)
            expected = [
                int(csr.out_indptr[lo:hi].sum()) for lo, hi in spans
            ]
            assert results == expected
            assert kernel_seconds >= 0.0
        finally:
            pool.close()

    def test_extra_arguments_reach_the_kernel(self, leased):
        csr, descriptor = leased
        pool = ProcessPool(workers=2)
        try:
            results, _ = pool.run(
                _scaled_degrees, descriptor, [(0, csr.num_nodes)], extra=(3,)
            )
            assert np.array_equal(results[0], csr.out_degrees() * 3)
        finally:
            pool.close()

    def test_deadline_raises_worker_timeout(self, leased):
        csr, descriptor = leased
        pool = ProcessPool(workers=2)
        try:
            with pytest.raises(WorkerTimeoutError):
                pool.run(
                    _sleepy,
                    descriptor,
                    [(0, 2), (2, 4)],
                    extra=(5.0,),
                    timeout=0.2,
                )
            assert pool.stats.snapshot()["timeouts"] == 1
        finally:
            pool.close()

    def test_first_error_propagates_and_counts_failure(self, leased):
        csr, descriptor = leased
        pool = ProcessPool(workers=1)
        try:
            with pytest.raises(ValueError, match="kernel exploded"):
                pool.run(
                    _explode_on_first_span,
                    descriptor,
                    [(0, 2), (2, 4), (4, csr.num_nodes)],
                )
            assert pool.stats.snapshot()["failures"] == 1
        finally:
            pool.close()

    def test_worker_side_transient_retries(self, leased, tmp_path):
        csr, descriptor = leased
        policy = RetryPolicy(max_attempts=3, base_delay=0.0)
        pool = ProcessPool(workers=1, retry_policy=policy)
        try:
            results, _ = pool.run(
                _transient_once_per_span,
                descriptor,
                [(0, 2), (2, csr.num_nodes)],
                extra=(str(tmp_path),),
            )
            assert results == [0, 2]
            assert pool.stats.snapshot()["retries"] == 2
        finally:
            pool.close()

    def test_transient_without_policy_propagates(self, leased, tmp_path):
        csr, descriptor = leased
        pool = ProcessPool(workers=1)
        try:
            with pytest.raises(TransientError):
                pool.run(
                    _transient_once_per_span,
                    descriptor,
                    [(0, csr.num_nodes)],
                    extra=(str(tmp_path),),
                )
        finally:
            pool.close()

    def test_closed_pool_raises_typed_error(self, leased):
        csr, descriptor = leased
        pool = ProcessPool(workers=1)
        pool.close()
        with pytest.raises(PoolClosedError):
            pool.run(_span_sum, descriptor, [(0, csr.num_nodes)])


class TestWorkerCrash:
    def test_sigkilled_worker_raises_worker_crashed(self, leased):
        csr, descriptor = leased
        pool = ProcessPool(workers=1)
        try:
            with inject_faults(
                {"parallel.proc.worker_crash": {"rate": 1.0, "max_triggers": 1}}
            ):
                with pytest.raises(WorkerCrashedError):
                    pool.run(_span_sum, descriptor, [(0, csr.num_nodes)])
            assert pool.crashes == 1
            assert not pool.degraded
            # The pool rebuilds its executor and keeps serving.
            results, _ = pool.run(_span_sum, descriptor, [(0, csr.num_nodes)])
            assert results == [int(csr.out_indptr[: csr.num_nodes].sum())]
        finally:
            pool.close()

    def test_repeated_crashes_degrade_the_pool(self, leased):
        csr, descriptor = leased
        pool = ProcessPool(workers=1, degrade_after=2)
        try:
            with inject_faults({"parallel.proc.worker_crash": 1.0}):
                for _ in range(2):
                    with pytest.raises(WorkerCrashedError):
                        pool.run(_span_sum, descriptor, [(0, csr.num_nodes)])
            assert pool.degraded
        finally:
            pool.close()


class TestKernelDispatcher:
    def test_explicit_threads_never_touches_processes(self):
        dispatcher = KernelDispatcher(backend="threads")
        assert dispatcher.decide(10**9) == "threads"
        assert dispatcher.snapshot()["process_pool"] is None

    def test_explicit_processes_decides_processes(self):
        dispatcher = KernelDispatcher(backend="processes", process_workers=2)
        try:
            assert dispatcher.decide(1) == "processes"
        finally:
            dispatcher.shutdown()

    def test_auto_small_graph_stays_on_threads(self):
        dispatcher = KernelDispatcher(backend="auto", process_workers=2)
        assert dispatcher.decide(10) == "threads"

    def test_degraded_pool_routes_to_threads(self):
        dispatcher = KernelDispatcher(backend="processes", process_workers=2)
        try:
            dispatcher.process_pool().stats.mark_degraded()
            assert dispatcher.decide(10**9) == "threads"
        finally:
            dispatcher.shutdown()

    def test_run_kernel_processes_matches_threads(self):
        csr = csr_snapshot(random_directed(200, 800, seed=7))
        dispatcher = KernelDispatcher(process_workers=2)
        try:
            via_threads = dispatcher.run_kernel(
                csr,
                _scaled_degrees,
                arrays=("out_indptr",),
                total=csr.num_nodes,
                extra=(2,),
                backend="threads",
            )
            via_processes = dispatcher.run_kernel(
                csr,
                _scaled_degrees,
                arrays=("out_indptr",),
                total=csr.num_nodes,
                extra=(2,),
                backend="processes",
            )
            assert np.array_equal(
                np.concatenate(via_threads), np.concatenate(via_processes)
            )
        finally:
            dispatcher.shutdown()
            shm_registry().drop_all()
            assert leaked_segments() == []

    def test_export_fault_degrades_to_threads(self):
        csr = csr_snapshot(build_directed(EDGES))
        dispatcher = KernelDispatcher(process_workers=2)
        try:
            with inject_faults({"parallel.shm.export": 1.0}):
                results = dispatcher.run_kernel(
                    csr,
                    _span_sum,
                    arrays=("out_indptr",),
                    total=csr.num_nodes,
                    backend="processes",
                )
            assert sum(results) == int(csr.out_indptr[: csr.num_nodes].sum())
            assert dispatcher.snapshot()["fallbacks"] == 1
        finally:
            dispatcher.shutdown()

    def test_dispatch_fault_degrades_to_threads(self):
        csr = csr_snapshot(build_directed(EDGES))
        dispatcher = KernelDispatcher(process_workers=2)
        try:
            with inject_faults({"parallel.proc.dispatch": 1.0}):
                results = dispatcher.run_kernel(
                    csr,
                    _span_sum,
                    arrays=("out_indptr",),
                    total=csr.num_nodes,
                    backend="processes",
                )
            assert len(results) >= 1
            assert dispatcher.snapshot()["fallbacks"] == 1
        finally:
            dispatcher.shutdown()
            shm_registry().drop_all()

    def test_unknown_array_name_is_typed_error(self):
        csr = csr_snapshot(build_directed(EDGES))
        dispatcher = KernelDispatcher()
        with pytest.raises(ExecutionError, match="unknown kernel array"):
            dispatcher.run_kernel(
                csr,
                _span_sum,
                arrays=("no_such_array",),
                total=csr.num_nodes,
                backend="threads",
            )

    def test_configure_new_width_retires_live_pool(self):
        dispatcher = KernelDispatcher(backend="processes", process_workers=2)
        try:
            first = dispatcher.process_pool()
            dispatcher.configure(process_workers=1)
            assert first.closed
            assert dispatcher.process_pool() is not first
        finally:
            dispatcher.shutdown()

    def test_snapshot_shape(self):
        dispatcher = KernelDispatcher()
        state = dispatcher.snapshot()
        assert set(state) >= {
            "backend", "decisions", "fallbacks", "crossover",
            "process_pool", "shm",
        }


class TestAdaptiveCrossover:
    def test_unobserved_model_uses_static_threshold(self):
        model = AdaptiveCrossover(50_000)
        assert model.choose(49_999) == "threads"
        assert model.choose(50_000) == "processes"

    def test_observations_move_the_threshold(self):
        model = AdaptiveCrossover(50_000)
        # Threads: 1M edges/s of wall. Processes: 4M edges/s of kernel
        # across workers, 0.1s fixed overhead -> crossover well below
        # the static threshold.
        for _ in range(5):
            model.observe("threads", 1_000_000, wall_seconds=1.0,
                          kernel_seconds=1.0, workers=4)
            model.observe("processes", 1_000_000, wall_seconds=0.35,
                          kernel_seconds=1.0, workers=4)
        learned = model.threshold()
        assert learned != 50_000
        assert model.choose(learned + 1) == "processes"
        assert model.choose(learned - 1) == "threads"

    def test_processes_never_preferred_when_slower(self):
        model = AdaptiveCrossover(50_000)
        for _ in range(5):
            model.observe("threads", 1_000_000, wall_seconds=1.0,
                          kernel_seconds=1.0, workers=1)
            model.observe("processes", 1_000_000, wall_seconds=3.0,
                          kernel_seconds=2.8, workers=1)
        assert model.choose(10**7) == "threads"

    def test_snapshot_reports_model_state(self):
        model = AdaptiveCrossover(None)
        state = model.snapshot()
        assert "static_threshold" in state
        assert "effective_threshold" in state
        assert state["observations"] == 0
