"""Tests for PageRank and HITS, vs networkx references."""

import networkx as nx
import pytest

from repro.algorithms.hits import hits
from repro.algorithms.pagerank import pagerank, pagerank_sequential
from repro.exceptions import RingoError

from tests.helpers import build_directed, random_directed, to_networkx


class TestPageRank:
    def test_ranks_sum_to_one(self):
        graph = random_directed(50, 200, seed=1)
        ranks = pagerank(graph)
        assert sum(ranks.values()) == pytest.approx(1.0)

    def test_sink_receives_more_rank(self):
        graph = build_directed([(1, 3), (2, 3)])
        ranks = pagerank(graph)
        assert ranks[3] > ranks[1]

    def test_empty_graph(self):
        from repro.graphs.directed import DirectedGraph

        assert pagerank(DirectedGraph()) == {}

    def test_single_node(self):
        from repro.graphs.directed import DirectedGraph

        graph = DirectedGraph()
        graph.add_node(7)
        assert pagerank(graph) == {7: pytest.approx(1.0)}

    def test_matches_networkx(self):
        graph = random_directed(80, 300, seed=5)
        ranks = pagerank(graph, tolerance=1e-12)
        expected = nx.pagerank(to_networkx(graph), alpha=0.85, tol=1e-12)
        for node, value in expected.items():
            assert ranks[node] == pytest.approx(value, abs=1e-6)

    def test_matches_networkx_with_dangling_nodes(self):
        graph = build_directed([(1, 2), (2, 3), (3, 1), (1, 4)])  # 4 dangles
        ranks = pagerank(graph, tolerance=1e-12)
        expected = nx.pagerank(to_networkx(graph), alpha=0.85, tol=1e-12)
        for node, value in expected.items():
            assert ranks[node] == pytest.approx(value, abs=1e-6)

    def test_fixed_iteration_mode(self):
        graph = random_directed(30, 100, seed=2)
        ten = pagerank(graph, iterations=10)
        assert sum(ten.values()) == pytest.approx(1.0)

    def test_invalid_damping(self):
        graph = build_directed([(1, 2)])
        with pytest.raises(RingoError):
            pagerank(graph, damping=1.5)

    def test_personalized_concentrates_on_seed(self):
        graph = build_directed([(1, 2), (2, 3), (3, 1), (4, 1)])
        ranks = pagerank(graph, personalize={4: 1.0}, tolerance=1e-12)
        uniform = pagerank(graph, tolerance=1e-12)
        assert ranks[4] > uniform[4]

    def test_personalized_zero_weights_rejected(self):
        graph = build_directed([(1, 2)])
        with pytest.raises(RingoError):
            pagerank(graph, personalize={1: 0.0})

    def test_sequential_matches_vectorized(self):
        graph = random_directed(40, 150, seed=9)
        fast = pagerank(graph, iterations=10)
        slow = pagerank_sequential(graph, iterations=10)
        for node, value in fast.items():
            assert slow[node] == pytest.approx(value, abs=1e-12)


class TestHits:
    def test_authority_concentrates_on_target(self):
        graph = build_directed([(1, 3), (2, 3)])
        hubs, auths = hits(graph)
        assert auths[3] > auths[1]
        assert hubs[1] > hubs[3]

    def test_empty_graph(self):
        from repro.graphs.directed import DirectedGraph

        assert hits(DirectedGraph()) == ({}, {})

    def test_matches_networkx(self):
        graph = random_directed(50, 200, seed=13)
        hubs, auths = hits(graph, max_iterations=500, tolerance=1e-12)
        nx_hubs, nx_auths = nx.hits(to_networkx(graph), max_iter=500, tol=1e-12)
        # networkx normalises by L1; renormalise ours for comparison.
        hub_total = sum(hubs.values())
        auth_total = sum(auths.values())
        for node in hubs:
            assert hubs[node] / hub_total == pytest.approx(nx_hubs[node], abs=1e-5)
            assert auths[node] / auth_total == pytest.approx(nx_auths[node], abs=1e-5)
