"""Tests for the benchmark datasets, catalog, and StackOverflow scenario."""

import numpy as np
import pytest

from repro.tables.strings import StringPool
from repro.workflows.catalog import (
    BUCKET_LABELS,
    PAPER_BUCKET_COUNTS,
    catalog_histogram,
    catalog_table,
    fraction_fitting_in_ram,
    generate_catalog,
)
from repro.workflows.datasets import (
    BENCHMARK_DATASETS,
    LJ_SCALED,
    TW_SCALED,
    edge_arrays,
    make_edge_table,
    make_graph,
    write_text_file,
)
from repro.workflows.stackoverflow import (
    ANSWER_TYPE,
    NO_ACCEPTED_ANSWER,
    QUESTION_TYPE,
    StackOverflowConfig,
    generate_stackoverflow,
    write_posts_tsv,
)


class TestDatasets:
    def test_two_datasets_with_paper_contrast(self):
        assert LJ_SCALED.name == "lj-scaled"
        assert TW_SCALED.name == "tw-scaled"
        assert TW_SCALED.num_edges > 3 * LJ_SCALED.num_edges

    def test_edge_arrays_deterministic_and_cached(self):
        a = edge_arrays(LJ_SCALED)
        b = edge_arrays(LJ_SCALED)
        assert a[0] is b[0]  # cached
        assert len(a[0]) == LJ_SCALED.num_edges

    def test_make_edge_table(self):
        table = make_edge_table(LJ_SCALED)
        assert table.schema.names == ("SrcId", "DstId")
        assert table.num_rows == LJ_SCALED.num_edges

    def test_make_graph_is_skewed(self):
        graph = make_graph(LJ_SCALED)
        assert graph.num_nodes > 1000
        degrees = sorted(
            (graph.out_degree(node) for node in graph.nodes()), reverse=True
        )
        assert degrees[0] > 20 * max(degrees[len(degrees) // 2], 1)

    def test_write_text_file(self, tmp_path):
        path = tmp_path / "edges.txt"
        size = write_text_file(LJ_SCALED, path)
        assert size == path.stat().st_size
        first = path.read_text().splitlines()[0].split("\t")
        assert len(first) == 2

    def test_scale_factor_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE_FACTOR", "0.1")
        assert LJ_SCALED.scaled_edges == LJ_SCALED.num_edges // 10

    def test_benchmark_datasets_tuple(self):
        assert BENCHMARK_DATASETS == (LJ_SCALED, TW_SCALED)


class TestCatalog:
    def test_histogram_matches_table1_exactly(self):
        entries = generate_catalog(seed=0)
        assert catalog_histogram(entries) == PAPER_BUCKET_COUNTS

    def test_seventy_one_graphs(self):
        assert len(generate_catalog()) == 71

    def test_labels_align_with_buckets(self):
        assert len(BUCKET_LABELS) == len(PAPER_BUCKET_COUNTS)

    def test_ninety_percent_under_100m_edges(self):
        # The paper: "90% of graphs have less than 100M edges."
        entries = generate_catalog()
        small = sum(1 for e in entries if e.num_edges < 100_000_000)
        assert small / len(entries) >= 0.90

    def test_all_fit_one_tb(self):
        entries = generate_catalog()
        assert fraction_fitting_in_ram(entries, 1 << 40) == 1.0

    def test_fit_fraction_monotone(self):
        entries = generate_catalog()
        assert fraction_fitting_in_ram(entries, 1 << 30) <= fraction_fitting_in_ram(
            entries, 1 << 36
        )

    def test_empty_catalog_fraction(self):
        assert fraction_fitting_in_ram([], 1 << 30) == 0.0

    def test_catalog_table_shape(self):
        table = catalog_table(generate_catalog())
        assert table.num_rows == 71
        assert table.schema.names == ("Name", "Edges", "RamBytes")

    def test_deterministic(self):
        a = [e.num_edges for e in generate_catalog(seed=5)]
        b = [e.num_edges for e in generate_catalog(seed=5)]
        assert a == b


class TestStackOverflow:
    @pytest.fixture(scope="class")
    def data(self):
        return generate_stackoverflow(
            StackOverflowConfig(num_users=200, num_questions=600, seed=7)
        )

    def test_schema(self, data):
        assert data.posts.schema.names == (
            "PostId", "Type", "UserId", "AnswerId", "ParentId", "Tag",
        )

    def test_question_count(self, data):
        questions = data.posts.select("Type=question")
        assert questions.num_rows == 600

    def test_post_ids_unique(self, data):
        ids = data.posts.column("PostId")
        assert len(np.unique(ids)) == len(ids)

    def test_accepted_answers_reference_real_answers(self, data):
        questions = data.posts.select("Type=question")
        answers = data.posts.select("Type=answer")
        answer_ids = set(answers.column("PostId").tolist())
        for accepted in questions.column("AnswerId").tolist():
            assert accepted == NO_ACCEPTED_ANSWER or accepted in answer_ids

    def test_accepted_answer_shares_question_tag(self, data):
        questions = data.posts.select("Type=question")
        qa = questions.join(data.posts.select("Type=answer"), "AnswerId", "PostId")
        assert (qa.column("Tag-1") == qa.column("Tag-2")).all()

    def test_answer_rows_carry_no_accepted_id(self, data):
        answers = data.posts.select("Type=answer")
        assert (answers.column("AnswerId") == NO_ACCEPTED_ANSWER).all()

    def test_parent_ids_reference_questions(self, data):
        questions = data.posts.select("Type=question")
        answers = data.posts.select("Type=answer")
        question_ids = set(questions.column("PostId").tolist())
        assert (questions.column("ParentId") == 0).all()
        for parent in answers.column("ParentId").tolist():
            assert parent in question_ids

    def test_co_answer_graph_links_same_question_answerers(self, data):
        # §4.1's alternative construction: users who answered the same
        # question become neighbours.
        from repro.convert.cooccurrence import co_occurrence_graph

        answers = data.posts.select("Type=answer")
        graph = co_occurrence_graph(answers, "ParentId", "UserId")
        assert graph.num_edges > 0
        # Spot-check one multi-answer question.
        import numpy as np

        parents = answers.column("ParentId")
        values, counts = np.unique(parents, return_counts=True)
        busy = values[counts >= 2][0]
        co_answerers = answers.select(f"ParentId = {int(busy)}").column("UserId").tolist()
        assert graph.has_edge(co_answerers[0], co_answerers[1])

    def test_experts_disjoint_per_tag(self, data):
        seen: set[int] = set()
        for tag, ids in data.experts.items():
            assert not (seen & set(ids))
            seen.update(ids)

    def test_experts_never_ask_questions(self, data):
        questions = data.posts.select("Type=question")
        experts = {u for ids in data.experts.values() for u in ids}
        assert not (set(questions.column("UserId").tolist()) & experts)

    def test_experts_dominate_accepted_answers(self, data):
        questions = data.posts.select("Type=question")
        answers = data.posts.select("Type=answer")
        qa = questions.join(answers, "AnswerId", "PostId")
        java_experts = set(data.experts_for("Java"))
        java_qa = qa.select("Tag-1=Java")
        answerers = java_qa.column("UserId-2").tolist()
        expert_share = sum(1 for u in answerers if u in java_experts) / len(answerers)
        assert expert_share > 0.5

    def test_too_few_users_rejected(self):
        with pytest.raises(ValueError):
            generate_stackoverflow(StackOverflowConfig(num_users=10, num_questions=5))

    def test_write_posts_tsv_roundtrip(self, data, tmp_path):
        from repro.tables.io_tsv import load_table_tsv
        from repro.workflows.stackoverflow import POSTS_SCHEMA

        path = tmp_path / "posts.tsv"
        rows = write_posts_tsv(data, path)
        loaded = load_table_tsv(POSTS_SCHEMA, path, pool=StringPool())
        assert loaded.num_rows == rows

    def test_deterministic(self):
        config = StackOverflowConfig(num_users=120, num_questions=100, seed=3)
        a = generate_stackoverflow(config)
        b = generate_stackoverflow(config)
        assert a.posts.column("PostId").tolist() == b.posts.column("PostId").tolist()
        assert a.posts.values("Tag") == b.posts.values("Tag")
