"""Tests for max-flow, matchings, co-occurrence folding, and snapshots."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms.flow import max_flow, min_cut_partition, min_cut_value
from repro.algorithms.matching import (
    greedy_maximal_matching,
    hopcroft_karp,
    matching_size,
)
from repro.convert.cooccurrence import co_occurrence_graph, co_occurrence_pairs
from repro.exceptions import AlgorithmError, ConversionError
from repro.graphs.network import Network
from repro.tables.table import Table
from repro.workflows.temporal import growth_curve, temporal_snapshots

from tests.helpers import build_directed, build_undirected, random_directed, to_networkx

DIAMOND = [(0, 1), (0, 2), (1, 3), (2, 3)]


class TestMaxFlow:
    def test_unit_diamond(self):
        assert max_flow(build_directed(DIAMOND), 0, 3) == 2.0

    def test_bottleneck_capacities(self):
        net = Network()
        for u, v, w in [(0, 1, 10.0), (1, 2, 3.0), (0, 2, 1.0)]:
            net.add_edge(u, v)
            net.set_edge_attr(u, v, "cap", w)
        assert max_flow(net, 0, 2, capacity="cap") == 4.0

    def test_no_path_is_zero(self):
        graph = build_directed([(0, 1), (2, 3)])
        assert max_flow(graph, 0, 3) == 0.0

    def test_same_source_sink_rejected(self):
        with pytest.raises(AlgorithmError):
            max_flow(build_directed(DIAMOND), 0, 0)

    def test_negative_capacity_rejected(self):
        graph = build_directed([(0, 1)])
        with pytest.raises(AlgorithmError):
            max_flow(graph, 0, 1, capacity=lambda u, v: -1.0)

    def test_matches_networkx_on_random_graphs(self):
        for seed in range(4):
            graph = random_directed(20, 70, seed=seed)
            nodes = sorted(graph.nodes())
            source, sink = nodes[0], nodes[-1]
            if source == sink:
                continue
            reference = to_networkx(graph)
            nx.set_edge_attributes(reference, 1.0, "capacity")
            expected = nx.maximum_flow_value(reference, source, sink)
            assert max_flow(graph, source, sink) == pytest.approx(expected)

    def test_long_path_no_recursion_error(self):
        edges = [(i, i + 1) for i in range(5000)]
        graph = build_directed(edges)
        assert max_flow(graph, 0, 5000) == 1.0

    def test_min_cut_value_equals_flow(self):
        graph = build_directed(DIAMOND)
        assert min_cut_value(graph, 0, 3) == max_flow(graph, 0, 3)

    def test_min_cut_partition_separates(self):
        graph = build_directed(DIAMOND)
        source_side, sink_side = min_cut_partition(graph, 0, 3)
        assert 0 in source_side and 3 in sink_side
        assert source_side | sink_side == {0, 1, 2, 3}
        assert not source_side & sink_side

    def test_min_cut_crossing_capacity_matches_flow(self):
        net = Network()
        for u, v, w in [(0, 1, 2.0), (0, 2, 5.0), (1, 3, 4.0), (2, 3, 1.0)]:
            net.add_edge(u, v)
            net.set_edge_attr(u, v, "cap", w)
        flow = max_flow(net, 0, 3, capacity="cap")
        source_side, _ = min_cut_partition(net, 0, 3, capacity="cap")
        crossing = sum(
            float(net.edge_attr(u, v, "cap"))
            for u, v in net.edges()
            if u in source_side and v not in source_side
        )
        assert crossing == pytest.approx(flow)


class TestMatching:
    def test_greedy_on_path(self):
        graph = build_undirected([(1, 2), (2, 3), (3, 4)])
        matching = greedy_maximal_matching(graph)
        assert matching_size(matching) == 2
        used = [node for edge in matching for node in edge]
        assert len(used) == len(set(used))

    def test_greedy_is_maximal(self):
        from tests.helpers import random_undirected

        graph = random_undirected(30, 80, seed=7)
        matching = greedy_maximal_matching(graph)
        used = {node for edge in matching for node in edge}
        for u, v in graph.edges():
            if u != v:
                assert u in used or v in used  # no extendable edge

    def test_hopcroft_karp_small(self):
        graph = build_undirected([(1, 10), (1, 11), (2, 10)])
        matching = hopcroft_karp(graph)
        assert matching_size(matching) == 2
        assert matching[matching[1]] == 1

    def test_hopcroft_karp_matches_networkx_size(self):
        rng = np.random.default_rng(9)
        graph = build_undirected([
            (int(u), 100 + int(v))
            for u, v in zip(rng.integers(0, 15, 60), rng.integers(0, 15, 60))
        ])
        ours = matching_size(hopcroft_karp(graph))
        reference = to_networkx(graph)
        expected = len(nx.bipartite.maximum_matching(
            reference, top_nodes={n for n in reference if n < 100}
        )) // 2
        assert ours == expected

    def test_non_bipartite_rejected(self):
        graph = build_undirected([(1, 2), (2, 3), (3, 1)])
        with pytest.raises(AlgorithmError):
            hopcroft_karp(graph)

    def test_explicit_left_side(self):
        graph = build_undirected([(1, 2)])
        assert matching_size(hopcroft_karp(graph, left={1})) == 1


class TestCoOccurrence:
    def test_pairs_within_group(self):
        groups = np.array([10, 10, 10, 11])
        actors = np.array([1, 2, 3, 4])
        left, right = co_occurrence_pairs(groups, actors)
        pairs = sorted(zip(left.tolist(), right.tolist()))
        assert pairs == [(1, 2), (1, 3), (2, 3)]

    def test_duplicate_actor_in_group_no_self_pair(self):
        left, right = co_occurrence_pairs(np.array([1, 1]), np.array([7, 7]))
        assert len(left) == 0

    def test_max_group_size_guard(self):
        groups = np.array([1] * 10 + [2, 2])
        actors = np.arange(12)
        left, _ = co_occurrence_pairs(groups, actors, max_group_size=5)
        assert len(left) == 1  # only the size-2 group survives

    def test_length_mismatch(self):
        with pytest.raises(ConversionError):
            co_occurrence_pairs(np.array([1]), np.array([1, 2]))

    def test_graph_construction(self):
        table = Table.from_columns(
            {"question": [10, 10, 11, 11], "user": [1, 2, 2, 3]}
        )
        graph = co_occurrence_graph(table, "question", "user")
        assert graph.has_edge(1, 2)
        assert graph.has_edge(2, 3)
        assert not graph.has_edge(1, 3)

    def test_string_column_rejected(self):
        table = Table.from_columns({"g": ["a"], "u": [1]})
        with pytest.raises(ConversionError):
            co_occurrence_graph(table, "g", "u")

    def test_paper_co_answer_scenario(self):
        # §4.1: "connect users who answered the same question".
        from repro.workflows.stackoverflow import (
            StackOverflowConfig,
            generate_stackoverflow,
        )

        data = generate_stackoverflow(
            StackOverflowConfig(num_users=150, num_questions=300, seed=5)
        )
        answers = data.posts.select("Type=answer")
        # Answers share their question via contiguous PostIds; group by
        # tag+nearest question is complex — here group by Tag as a proxy
        # demo of the operator at scale.
        graph = co_occurrence_graph(answers, "PostId", "UserId")
        assert graph.num_edges == 0  # PostId unique per answer: no pairs

    def test_engine_facade(self):
        from repro.core.engine import Ringo

        with Ringo(workers=1) as ringo:
            table = ringo.TableFromColumns({"g": [1, 1], "u": [5, 6]})
            graph = ringo.ToCoOccurrenceGraph(table, "g", "u")
            assert graph.has_edge(5, 6)


class TestTemporalSnapshots:
    def test_window_tiling(self):
        events = Table.from_columns(
            {"t": [0, 5, 12], "a": [1, 2, 3], "b": [2, 3, 4]}
        )
        snaps = temporal_snapshots(events, "t", "a", "b", window=10)
        assert [s.num_edges for s in snaps] == [2, 1]
        assert snaps[0].start == 0 and snaps[0].stop == 10

    def test_cumulative_growth(self):
        events = Table.from_columns(
            {"t": [0, 5, 12], "a": [1, 2, 3], "b": [2, 3, 4]}
        )
        snaps = temporal_snapshots(events, "t", "a", "b", window=10, cumulative=True)
        assert [s.num_edges for s in snaps] == [2, 3]

    def test_empty_table(self):
        events = Table.empty([("t", "int"), ("a", "int"), ("b", "int")])
        assert temporal_snapshots(events, "t", "a", "b", window=5) == []

    def test_empty_middle_window(self):
        events = Table.from_columns({"t": [0, 25], "a": [1, 2], "b": [2, 3]})
        snaps = temporal_snapshots(events, "t", "a", "b", window=10)
        assert [s.num_edges for s in snaps] == [1, 0, 1]

    def test_float_time_column(self):
        events = Table.from_columns({"t": [0.5, 1.5], "a": [1, 2], "b": [2, 3]})
        snaps = temporal_snapshots(events, "t", "a", "b", window=1.0)
        assert len(snaps) == 2

    def test_string_time_rejected(self):
        events = Table.from_columns({"t": ["a"], "x": [1], "y": [2]})
        with pytest.raises(ConversionError):
            temporal_snapshots(events, "t", "x", "y", window=1)

    def test_growth_curve(self):
        events = Table.from_columns({"t": [0, 11], "a": [1, 2], "b": [2, 3]})
        snaps = temporal_snapshots(events, "t", "a", "b", window=10, cumulative=True)
        curve = growth_curve(snaps)
        assert curve[0][2] == 1 and curve[1][2] == 2

    def test_engine_facade(self):
        from repro.core.engine import Ringo

        with Ringo(workers=1) as ringo:
            events = ringo.TableFromColumns({"t": [0, 1], "a": [1, 2], "b": [2, 3]})
            snaps = ringo.GetSnapshots(events, "t", "a", "b", window=10)
            assert len(snaps) == 1
