"""Tests for repro.parallel.partition."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import RingoError
from repro.parallel.partition import (
    balanced_chunks,
    iter_batches,
    split_indices,
    split_range,
)


class TestSplitRange:
    def test_even_split(self):
        assert split_range(9, 3) == [(0, 3), (3, 6), (6, 9)]

    def test_uneven_split_front_loads_extras(self):
        assert split_range(10, 3) == [(0, 4), (4, 7), (7, 10)]

    def test_more_parts_than_items(self):
        assert split_range(2, 5) == [(0, 1), (1, 2)]

    def test_zero_total(self):
        assert split_range(0, 4) == []

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError):
            split_range(-1, 2)

    def test_zero_parts_rejected(self):
        with pytest.raises(RingoError):
            split_range(10, 0)

    @given(st.integers(min_value=0, max_value=500), st.integers(min_value=1, max_value=20))
    def test_spans_cover_range_exactly_once(self, total, parts):
        spans = split_range(total, parts)
        covered = [i for lo, hi in spans for i in range(lo, hi)]
        assert covered == list(range(total))

    @given(st.integers(min_value=1, max_value=500), st.integers(min_value=1, max_value=20))
    def test_span_lengths_balanced(self, total, parts):
        spans = split_range(total, parts)
        lengths = [hi - lo for lo, hi in spans]
        assert max(lengths) - min(lengths) <= 1


class TestSplitIndices:
    def test_returns_views_of_input(self):
        indices = np.arange(10)
        chunks = split_indices(indices, 2)
        assert all(chunk.base is indices for chunk in chunks)

    def test_concatenation_restores_input(self):
        indices = np.arange(17)
        chunks = split_indices(indices, 4)
        assert np.array_equal(np.concatenate(chunks), indices)


class TestBalancedChunks:
    def test_greedy_balance(self):
        assert balanced_chunks([5, 4, 3, 2, 1], 2) == [[0, 3, 4], [1, 2]]

    def test_empty_weights(self):
        assert balanced_chunks([], 3) == []

    def test_single_part_gets_everything(self):
        assert balanced_chunks([1.0, 2.0, 3.0], 1) == [[0, 1, 2]]

    @given(
        st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=50),
        st.integers(min_value=1, max_value=8),
    )
    def test_chunks_partition_items(self, weights, parts):
        chunks = balanced_chunks(weights, parts)
        flat = sorted(i for chunk in chunks for i in chunk)
        assert flat == list(range(len(weights)))

    def test_skewed_weights_better_than_naive_split(self):
        # One hub plus many leaves: greedy keeps the hub alone.
        weights = [1000.0] + [1.0] * 10
        chunks = balanced_chunks(weights, 2)
        hub_chunk = next(chunk for chunk in chunks if 0 in chunk)
        assert hub_chunk == [0]


class TestIterBatches:
    def test_batches_of_three(self):
        assert list(iter_batches([1, 2, 3, 4, 5], 3)) == [[1, 2, 3], [4, 5]]

    def test_empty_sequence(self):
        assert list(iter_batches([], 4)) == []

    def test_invalid_batch_size(self):
        with pytest.raises(RingoError):
            list(iter_batches([1], 0))
