"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestInfoAndFunctions:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "registered functions" in out
        assert "algorithm" in out

    def test_functions_all(self, capsys):
        assert main(["functions"]) == 0
        out = capsys.readouterr().out
        assert "algorithms.pagerank" in out

    def test_functions_filtered(self, capsys):
        assert main(["functions", "--category", "session"]) == 0
        out = capsys.readouterr().out
        assert "ringo.GetPageRank" in out
        assert "algorithms.pagerank" not in out


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "top-10 Java experts" in out
        assert "precision@10" in out

    def test_demo_unknown_tag(self, capsys):
        assert main(["demo", "--tag", "COBOL"]) == 2
        assert "unknown tag" in capsys.readouterr().err


class TestGenerateAndStats:
    def test_generate_rmat_and_stats(self, tmp_path, capsys):
        out_path = tmp_path / "edges.txt"
        assert main([
            "generate", "--kind", "rmat", "--scale", "8",
            "--edges", "2000", "--output", str(out_path),
        ]) == 0
        assert out_path.exists()
        assert main(["stats", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "directed graph" in out

    def test_generate_ba(self, tmp_path):
        out_path = tmp_path / "ba.txt"
        assert main([
            "generate", "--kind", "ba", "--nodes", "50",
            "--attach", "2", "--output", str(out_path),
        ]) == 0
        assert out_path.stat().st_size > 0

    def test_generate_er(self, tmp_path):
        out_path = tmp_path / "er.txt"
        assert main([
            "generate", "--kind", "er", "--nodes", "30",
            "--edges", "40", "--output", str(out_path),
        ]) == 0
        assert len(out_path.read_text().splitlines()) == 40

    def test_stats_undirected(self, tmp_path, capsys):
        path = tmp_path / "e.txt"
        path.write_text("1\t2\n2\t3\n")
        assert main(["stats", str(path), "--undirected"]) == 0
        assert "undirected graph" in capsys.readouterr().out

    def test_module_entrypoint(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro", "info"], capture_output=True, text=True
        )
        assert result.returncode == 0
        assert "registered functions" in result.stdout

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])
