"""Tests for TSV schema inference and the traversal iterators."""

import pytest

from repro.algorithms.bfs import bfs_edges, bfs_levels, dfs_preorder
from repro.exceptions import SchemaError
from repro.tables.io_tsv import infer_schema_tsv, load_table_tsv
from repro.tables.schema import ColumnType

from tests.helpers import build_directed


class TestInferSchema:
    def write(self, tmp_path, text, name="data.tsv"):
        path = tmp_path / name
        path.write_text(text)
        return path

    def test_basic_types(self, tmp_path):
        path = self.write(tmp_path, "1\t2.5\tabc\n")
        schema = infer_schema_tsv(path)
        assert [t for _, t in schema] == [
            ColumnType.INT, ColumnType.FLOAT, ColumnType.STRING,
        ]
        assert schema.names == ("col0", "col1", "col2")

    def test_widening_across_rows(self, tmp_path):
        path = self.write(tmp_path, "1\n2.5\n")
        schema = infer_schema_tsv(path)
        assert schema["col0"] is ColumnType.FLOAT

    def test_string_wins(self, tmp_path):
        path = self.write(tmp_path, "1\nx\n")
        assert infer_schema_tsv(path)["col0"] is ColumnType.STRING

    def test_header_names_used(self, tmp_path):
        path = self.write(tmp_path, "id\tscore\n1\t0.5\n")
        schema = infer_schema_tsv(path, has_header=True)
        assert schema.names == ("id", "score")

    def test_empty_file_rejected(self, tmp_path):
        path = self.write(tmp_path, "")
        with pytest.raises(SchemaError):
            infer_schema_tsv(path)

    def test_inconsistent_width_rejected(self, tmp_path):
        path = self.write(tmp_path, "1\t2\n3\n")
        with pytest.raises(SchemaError):
            infer_schema_tsv(path)

    def test_load_with_inferred_schema(self, tmp_path):
        path = self.write(tmp_path, "1\t2.5\tabc\n2\t3.5\tdef\n")
        table = load_table_tsv(None, path)
        assert table.num_rows == 2
        assert table.column("col0").tolist() == [1, 2]
        assert table.values("col2") == ["abc", "def"]

    def test_load_inferred_with_header(self, tmp_path):
        path = self.write(tmp_path, "id\ttag\n7\tx\n")
        table = load_table_tsv(None, path, has_header=True)
        assert table.schema.names == ("id", "tag")
        assert table.column("id").tolist() == [7]

    def test_sample_limit_respected(self, tmp_path):
        # The widening value appears after the sample window.
        rows = "\n".join(["1"] * 50 + ["oops"]) + "\n"
        path = self.write(tmp_path, rows)
        schema = infer_schema_tsv(path, sample_rows=10)
        assert schema["col0"] is ColumnType.INT

    def test_negative_and_scientific(self, tmp_path):
        path = self.write(tmp_path, "-5\t1e3\n")
        schema = infer_schema_tsv(path)
        assert schema["col0"] is ColumnType.INT
        assert schema["col1"] is ColumnType.FLOAT


class TestTraversalIterators:
    def test_bfs_edges_form_tree(self):
        graph = build_directed([(1, 2), (1, 3), (2, 4), (3, 4)])
        edges = list(bfs_edges(graph, 1))
        children = [child for _, child in edges]
        assert len(children) == len(set(children))  # each node entered once
        assert set(children) | {1} == set(bfs_levels(graph, 1))

    def test_bfs_edges_respect_levels(self):
        graph = build_directed([(1, 2), (2, 3), (1, 3)])
        levels = bfs_levels(graph, 1)
        for parent, child in bfs_edges(graph, 1):
            assert levels[child] == levels[parent] + 1

    def test_dfs_preorder_chain(self):
        graph = build_directed([(1, 2), (2, 3)])
        assert dfs_preorder(graph, 1) == [1, 2, 3]

    def test_dfs_preorder_branching(self):
        graph = build_directed([(1, 2), (1, 3), (2, 4)])
        assert dfs_preorder(graph, 1) == [1, 2, 4, 3]

    def test_dfs_covers_reachable_only(self):
        graph = build_directed([(1, 2), (3, 4)])
        assert set(dfs_preorder(graph, 1)) == {1, 2}

    def test_dfs_handles_cycles(self):
        graph = build_directed([(1, 2), (2, 1)])
        assert dfs_preorder(graph, 1) == [1, 2]

    def test_deep_graph_no_recursion_error(self):
        graph = build_directed([(i, i + 1) for i in range(20_000)])
        order = dfs_preorder(graph, 0)
        assert len(order) == 20_001
