"""Interprocedural engine: call graph, CFG, and the R008 seeded regression."""

import ast
import textwrap
from pathlib import Path

from repro.analysis import flow, lint
from repro.analysis.callgraph import build_callgraph, module_name_for

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src" / "repro"
SERVER = SRC / "service" / "server.py"


def _units(files):
    return [lint.ModuleUnit(path, textwrap.dedent(src)) for path, src in files]


def _graph(files):
    return build_callgraph(_units(files))


class TestCallGraph:
    def test_module_name_for(self):
        assert module_name_for("src/repro/service/server.py") == "repro.service.server"
        assert module_name_for("src/pkg/util.py") == "pkg.util"
        # Outside a src/ tree a file is its own flat module — this is
        # what makes the standalone fixture files lintable.
        assert module_name_for("pkg/util.py") == "util"

    def test_cross_module_function_resolution(self):
        graph = _graph(
            [
                ("src/pkg/util.py", "def helper(x):\n    return x + 1\n"),
                (
                    "src/pkg/main.py",
                    "from pkg.util import helper\n"
                    "def run(x):\n"
                    "    return helper(x)\n",
                ),
            ]
        )
        sites = graph.calls_from("pkg.main.run")
        assert [s.callee for s in sites] == ["pkg.util.helper"]
        assert sites[0].kind == "internal"
        assert graph.resolution_rate() == 1.0

    def test_method_resolution_via_constructor_assignment(self):
        graph = _graph(
            [
                (
                    "src/pkg/engine.py",
                    """
                    class Engine:
                        def compute(self):
                            return 42

                    def run():
                        engine = Engine()
                        return engine.compute()
                    """,
                ),
            ]
        )
        sites = graph.calls_from("pkg.engine.run")
        callees = {s.callee for s in sites if s.resolved}
        assert "pkg.engine.Engine.compute" in callees

    def test_self_attr_resolution_via_init(self):
        graph = _graph(
            [
                (
                    "src/pkg/svc.py",
                    """
                    class Worker:
                        def step(self):
                            return 1

                    class Service:
                        def __init__(self):
                            self.worker = Worker()

                        def tick(self):
                            return self.worker.step()
                    """,
                ),
            ]
        )
        callees = {s.callee for s in graph.calls_from("pkg.svc.Service.tick")}
        assert "pkg.svc.Worker.step" in callees

    def test_unresolved_bucket_is_honest(self):
        graph = _graph(
            [("src/pkg/m.py", "def run(mystery):\n    return mystery.frobnicate()\n")]
        )
        unresolved = graph.unresolved_sites()
        assert len(unresolved) == 1
        assert unresolved[0].attr == "frobnicate"
        assert graph.resolution_rate() == 0.0

    def test_builtins_count_as_resolved_external(self):
        graph = _graph([("src/pkg/m.py", "def run(xs):\n    return len(xs)\n")])
        (site,) = graph.all_sites()
        assert site.resolved
        assert site.kind == "external"


class TestResolutionFloor:
    def test_src_repro_resolution_rate_at_least_80_percent(self):
        units = []
        for path in sorted(SRC.rglob("*.py")):
            units.append(
                lint.ModuleUnit(str(path), path.read_text(encoding="utf-8"))
            )
        graph = build_callgraph(units)
        rate = graph.resolution_rate()
        assert rate >= 0.80, (
            f"call resolution regressed to {rate:.1%}; inspect "
            f"{len(graph.unresolved_sites())} unresolved sites"
        )


def _cfg(source):
    tree = ast.parse(textwrap.dedent(source))
    fn = tree.body[0]
    return flow.build_cfg(fn), fn


def _stmt_at(fn, lineno_offset):
    for node in ast.walk(fn):
        if isinstance(node, ast.stmt) and getattr(node, "lineno", None) == lineno_offset:
            return node
    raise AssertionError(f"no statement at line {lineno_offset}")


class TestCFG:
    ACQUIRE_FINALLY = """
    def f(lock, work):
        lock.acquire()
        try:
            work()
        finally:
            lock.release()
    """

    ACQUIRE_LEAKY = """
    def f(lock, work):
        lock.acquire()
        work()
        lock.release()
    """

    def _is_release(self, node):
        return node.stmt is not None and "release" in (node.source or "")

    def test_finally_settles_exceptional_paths(self):
        cfg, fn = _cfg(self.ACQUIRE_FINALLY)
        acquire = _stmt_at(fn, 3)
        escape = cfg.find_escape(acquire, self._is_release, include_exceptional=True)
        assert escape is None

    def test_unprotected_release_escapes_on_exception(self):
        cfg, fn = _cfg(self.ACQUIRE_LEAKY)
        acquire = _stmt_at(fn, 3)
        escape = cfg.find_escape(acquire, self._is_release, include_exceptional=True)
        assert escape is not None and escape.kind == "raise-exit"
        # ... but the normal path does release.
        assert (
            cfg.find_escape(acquire, self._is_release, include_exceptional=False)
            is None
        )

    def test_catch_all_handler_settles_exceptional_paths(self):
        cfg, fn = _cfg(
            """
            def f(lock, work):
                lock.acquire()
                try:
                    work()
                except Exception:
                    lock.release()
                    raise
                lock.release()
            """
        )
        acquire = _stmt_at(fn, 3)
        assert cfg.find_escape(acquire, self._is_release) is None

    def test_narrow_handler_still_escapes(self):
        cfg, fn = _cfg(
            """
            def f(lock, work):
                lock.acquire()
                try:
                    work()
                except ValueError:
                    lock.release()
                    raise
                lock.release()
            """
        )
        acquire = _stmt_at(fn, 3)
        escape = cfg.find_escape(acquire, self._is_release)
        assert escape is not None and escape.kind == "raise-exit"

    def test_reaching_definitions_merge_branches(self):
        cfg, fn = _cfg(
            """
            def f(flag):
                if flag:
                    name = "a"
                else:
                    name = "b"
                return name
            """
        )
        ret = _stmt_at(fn, 7)
        defs = cfg.definitions_at(ret, "name")
        assert len(defs) == 2
        assert {d.lineno for d in defs} == {4, 6}

    def test_with_block_exception_edge(self):
        cfg, fn = _cfg(
            """
            def f(cm, work, cleanup):
                with cm() as handle:
                    work(handle)
                cleanup()
            """
        )
        work = _stmt_at(fn, 4)
        node = cfg.node_for(work)
        assert any(edge == "exception" for _, edge in node.succs)


class TestSeededAsyncRegression:
    """R008 provably catches a blocking call seeded into the real server."""

    def _lint_seeded(self, seed):
        source = "import time\n" + SERVER.read_text(encoding="utf-8") + seed
        return [
            f
            for f in lint.lint_source(source, str(SERVER), ["R008"])
            if f.code == "R008"
        ]

    def test_direct_blocking_call_is_caught(self):
        findings = self._lint_seeded(
            "\n\nasync def _seeded_regression(raw):\n"
            "    time.sleep(0.5)\n"
            "    return raw\n"
        )
        assert any(
            "_seeded_regression" in f.message and "time.sleep" in f.message
            for f in findings
        )

    def test_transitive_blocking_call_is_caught(self):
        findings = self._lint_seeded(
            "\n\ndef _seeded_helper():\n"
            "    time.sleep(0.5)\n"
            "\n\nasync def _seeded_regression(raw):\n"
            "    _seeded_helper()\n"
            "    return raw\n"
        )
        assert any(
            "_seeded_regression" in f.message and "_seeded_helper" in f.message
            for f in findings
        )

    def test_unmodified_server_is_clean(self):
        assert lint.lint_paths([str(SERVER)], ["R008"]) == []


class TestFlowRulesOverSrc:
    def test_full_rule_set_is_clean_over_src(self):
        findings = lint.lint_paths([str(SRC)])
        assert lint.gating_findings(findings) == []
