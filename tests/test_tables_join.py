"""Tests for the equi-join, including the paper's StackOverflow shape."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import TypeMismatchError
from repro.tables.join import composite_keys, join, join_indices
from repro.tables.strings import StringPool
from repro.tables.table import Table


class TestJoinIndices:
    def test_unique_keys(self):
        left = np.array([1, 2, 3])
        right = np.array([2, 3, 4])
        li, ri = join_indices(left, right)
        assert list(zip(left[li], right[ri])) == [(2, 2), (3, 3)]

    def test_duplicates_produce_cross_product(self):
        left = np.array([7, 7])
        right = np.array([7, 7, 7])
        li, ri = join_indices(left, right)
        assert len(li) == 6

    def test_no_matches(self):
        li, ri = join_indices(np.array([1]), np.array([2]))
        assert len(li) == 0

    def test_empty_inputs(self):
        li, ri = join_indices(np.array([], dtype=np.int64), np.array([1]))
        assert len(li) == 0

    def test_interleaved_runs(self):
        left = np.array([5, 1, 5, 9])
        right = np.array([9, 5, 1, 5])
        li, ri = join_indices(left, right)
        pairs = sorted(zip(left[li].tolist(), right[ri].tolist()))
        assert pairs == [(1, 1), (5, 5), (5, 5), (5, 5), (5, 5), (9, 9)]

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.integers(0, 8), max_size=40),
        st.lists(st.integers(0, 8), max_size=40),
    )
    def test_matches_nested_loop_reference(self, left_list, right_list):
        left = np.array(left_list, dtype=np.int64)
        right = np.array(right_list, dtype=np.int64)
        li, ri = join_indices(left, right)
        got = sorted(zip(li.tolist(), ri.tolist()))
        expected = sorted(
            (i, j)
            for i, lv in enumerate(left_list)
            for j, rv in enumerate(right_list)
            if lv == rv
        )
        assert got == expected


class TestCompositeKeys:
    def test_equal_tuples_get_equal_ids(self):
        left_ids, right_ids = composite_keys(
            [np.array([1, 1, 2]), np.array([5, 6, 5])],
            [np.array([1, 2]), np.array([6, 5])],
        )
        assert left_ids[1] == right_ids[0]
        assert left_ids[2] == right_ids[1]
        assert left_ids[0] not in right_ids

    def test_length_mismatch_rejected(self):
        with pytest.raises(TypeMismatchError):
            composite_keys([np.array([1])], [])


class TestJoin:
    def test_basic_inner_join(self):
        users = Table.from_columns({"Id": [1, 2, 3], "Name": ["ann", "bo", "cy"]})
        posts = Table.from_columns({"UserId": [2, 3, 3, 9], "PostId": [10, 11, 12, 13]})
        result = join(users, posts, "Id", "UserId")
        assert result.num_rows == 3
        assert sorted(result.column("PostId").tolist()) == [10, 11, 12]

    def test_clashing_names_get_paper_suffixes(self):
        questions = Table.from_columns({"UserId": [1, 2], "AnswerId": [100, 101]})
        answers = Table.from_columns({"UserId": [5, 6], "PostId": [100, 101]})
        result = join(questions, answers, "AnswerId", "PostId")
        assert "UserId-1" in result.schema
        assert "UserId-2" in result.schema
        assert result.column("UserId-1").tolist() == [1, 2]
        assert result.column("UserId-2").tolist() == [5, 6]

    def test_result_is_new_table_with_fresh_ids(self):
        left = Table.from_columns({"k": [1, 2]})
        right = Table.from_columns({"k2": [2, 1]})
        result = join(left, right, "k", "k2")
        assert result.row_ids.tolist() == [0, 1]

    def test_same_column_name_join(self):
        left = Table.from_columns({"k": [1, 2], "a": [10, 20]})
        right = Table.from_columns({"k": [2], "b": [99]})
        result = join(left, right, "k")
        assert result.column("a").tolist() == [20]
        assert result.column("b").tolist() == [99]

    def test_provenance_columns(self):
        left = Table.from_columns({"k": [5, 6]})
        right = Table.from_columns({"k2": [6]})
        result = join(left, right, "k", "k2", include_provenance=True)
        assert result.column("SrcRowId").tolist() == [1]
        assert result.column("DstRowId").tolist() == [0]

    def test_string_key_join_via_shared_pool(self):
        pool = StringPool()
        left = Table.from_columns({"tag": ["java", "go"]}, pool=pool)
        right = Table.from_columns({"tag2": ["go", "rust"]}, pool=pool)
        result = join(left, right, "tag", "tag2")
        assert result.values("tag") == ["go"]

    def test_string_key_join_different_pools_rejected(self):
        left = Table.from_columns({"tag": ["a"]}, pool=StringPool())
        right = Table.from_columns({"tag2": ["a"]}, pool=StringPool())
        with pytest.raises(TypeMismatchError):
            join(left, right, "tag", "tag2")

    def test_string_vs_numeric_key_rejected(self):
        left = Table.from_columns({"tag": ["a"]})
        right = Table.from_columns({"num": [1]})
        with pytest.raises(TypeMismatchError):
            join(left, right, "tag", "num")

    def test_int_float_keys_coerce(self):
        left = Table.from_columns({"k": [1, 2]})
        right = Table.from_columns({"k2": [2.0, 3.0]})
        result = join(left, right, "k", "k2")
        assert result.column("k").tolist() == [2]

    def test_multi_column_join(self):
        left = Table.from_columns({"a": [1, 1, 2], "b": [5, 6, 5], "x": [0, 1, 2]})
        right = Table.from_columns({"a": [1, 2], "b": [6, 5], "y": [10, 20]})
        result = join(left, right, ["a", "b"])
        assert sorted(result.column("x").tolist()) == [1, 2]
        assert sorted(result.column("y").tolist()) == [10, 20]

    def test_empty_key_list_rejected(self):
        left = Table.from_columns({"a": [1]})
        with pytest.raises(TypeMismatchError):
            join(left, left, [])

    def test_key_list_length_mismatch_rejected(self):
        left = Table.from_columns({"a": [1], "b": [2]})
        with pytest.raises(TypeMismatchError):
            join(left, left, ["a"], ["a", "b"])

    def test_duplicate_keys_cross_product_count(self):
        left = Table.from_columns({"k": [1, 1, 1]})
        right = Table.from_columns({"k2": [1, 1]})
        assert join(left, right, "k", "k2").num_rows == 6

    def test_paper_question_answer_pipeline_shape(self):
        # Mirrors: QA = ringo.Join(Q, A, 'AnswerId', 'PostId')
        questions = Table.from_columns(
            {"PostId": [1, 2], "UserId": [100, 200], "AnswerId": [11, 12]}
        )
        answers = Table.from_columns(
            {"PostId": [11, 12, 13], "UserId": [300, 400, 500], "AnswerId": [0, 0, 0]}
        )
        qa = join(questions, answers, "AnswerId", "PostId")
        assert qa.num_rows == 2
        assert qa.column("UserId-1").tolist() == [100, 200]
        assert qa.column("UserId-2").tolist() == [300, 400]
