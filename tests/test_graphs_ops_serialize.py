"""Tests for graph structural ops and binary serialization."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graphs.directed import DirectedGraph
from repro.graphs.ops import (
    degree_array,
    filter_by_degree,
    remove_self_loops,
    renumber,
    subgraph,
)
from repro.graphs.serialize import (
    load_edge_list,
    load_graph,
    save_edge_list,
    save_graph,
)
from repro.graphs.undirected import UndirectedGraph


def triangle_plus_tail():
    graph = DirectedGraph()
    graph.add_edge(1, 2)
    graph.add_edge(2, 3)
    graph.add_edge(3, 1)
    graph.add_edge(3, 4)
    return graph


class TestSubgraph:
    def test_induced_edges_only(self):
        sub = subgraph(triangle_plus_tail(), [1, 2, 3])
        assert sub.num_nodes == 3
        assert sub.num_edges == 3

    def test_absent_nodes_ignored(self):
        sub = subgraph(triangle_plus_tail(), [1, 2, 99])
        assert sub.num_nodes == 2
        assert sub.num_edges == 1

    def test_undirected_subgraph(self):
        graph = UndirectedGraph()
        graph.add_edge(1, 2)
        graph.add_edge(2, 3)
        sub = subgraph(graph, [1, 2])
        assert not sub.is_directed
        assert sub.num_edges == 1

    def test_undirected_subgraph_keeps_self_loop(self):
        graph = UndirectedGraph()
        graph.add_edge(1, 1)
        sub = subgraph(graph, [1])
        assert sub.num_edges == 1


class TestRemoveSelfLoops:
    def test_removes_and_counts(self):
        graph = triangle_plus_tail()
        graph.add_edge(2, 2)
        assert remove_self_loops(graph) == 1
        assert graph.num_edges == 4

    def test_noop_when_none(self):
        assert remove_self_loops(triangle_plus_tail()) == 0


class TestFilterByDegree:
    def test_keeps_high_degree_nodes(self):
        result = filter_by_degree(triangle_plus_tail(), min_degree=2)
        assert sorted(result.nodes()) == [1, 2, 3]


class TestRenumber:
    def test_dense_relabel(self):
        graph = DirectedGraph()
        graph.add_edge(100, 205)
        graph.add_edge(205, 999)
        dense, mapping = renumber(graph)
        assert sorted(dense.nodes()) == [0, 1, 2]
        assert mapping == {100: 0, 205: 1, 999: 2}
        assert dense.has_edge(0, 1)


class TestDegreeArray:
    def test_matches_per_node_degree(self):
        graph = triangle_plus_tail()
        degrees = degree_array(graph)
        expected = [graph.degree(node) for node in graph.nodes()]
        assert degrees.tolist() == expected


class TestSerialization:
    def test_directed_roundtrip(self, tmp_path):
        graph = triangle_plus_tail()
        path = tmp_path / "graph.npz"
        save_graph(graph, path)
        loaded = load_graph(path)
        assert loaded.is_directed
        assert sorted(loaded.edges()) == sorted(graph.edges())

    def test_undirected_roundtrip(self, tmp_path):
        graph = UndirectedGraph()
        graph.add_edge(1, 2)
        graph.add_edge(2, 2)
        path = tmp_path / "graph.npz"
        save_graph(graph, path)
        loaded = load_graph(path)
        assert not loaded.is_directed
        assert loaded.num_edges == 2

    def test_isolated_nodes_preserved(self, tmp_path):
        graph = DirectedGraph()
        graph.add_edge(1, 2)
        graph.add_node(42)
        path = tmp_path / "graph.npz"
        save_graph(graph, path)
        assert load_graph(path).has_node(42)

    def test_edge_list_roundtrip(self, tmp_path):
        graph = triangle_plus_tail()
        path = tmp_path / "edges.txt"
        assert save_edge_list(graph, path) == 4
        loaded = load_edge_list(path)
        assert sorted(loaded.edges()) == sorted(graph.edges())

    def test_edge_list_skips_comments(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# header\n1\t2\n")
        assert load_edge_list(path).num_edges == 1

    def test_edge_list_malformed_line(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("1\n")
        with pytest.raises(GraphError):
            load_edge_list(path)

    def test_edge_list_space_separated(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("1 2\n3 4\n")
        assert load_edge_list(path, sep=" ").num_edges == 2
