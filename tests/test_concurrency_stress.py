"""Concurrency stress: conversions under faults + race check + sanitizer.

Every hardening layer armed at once — seeded fault injection firing
inside worker kernels, the lockset race detector set to raise, and the
snapshot sanitizer forced on — while a multi-worker pool runs the
sort-first conversion and the cached CSR build. Across 50 seeds the
results must stay correct and no ``RaceDetected``/``SanitizerError``
may surface; injected faults are absorbed by the pool's retry policy
(``max_triggers`` bounds each seed's faults below the attempt budget,
so the test is deterministic, not probabilistic).
"""

import numpy as np
import pytest

from repro.analysis import races, sanitize
from repro.convert.table_to_graph import sort_first_directed, sort_first_undirected
from repro.faults import inject_faults
from repro.graphs.snapshot import SnapshotCache
from repro.parallel.executor import WorkerPool
from repro.parallel.resilience import RetryPolicy

_FAULTS = {"parallel.kernel": {"rate": 0.3, "max_triggers": 2}}
_RETRIES = RetryPolicy(max_attempts=4, base_delay=0.0, max_delay=0.0)


@pytest.fixture
def hardened():
    """Race detector (raising) + sanitizer (forced on) for one test."""
    detector = races.current()
    owned = detector is None
    if owned:
        detector = races.enable(raise_on_race=True)
    sanitize.enable()
    yield detector
    assert sanitize.stats()["violations"] == 0
    sanitize.reset()
    if owned and races.current() is detector:
        races.disable()


@pytest.mark.parametrize("seed", range(50))
def test_conversions_survive_faults_races_and_sanitizer(hardened, seed):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, 60, 300)
    dst = rng.integers(0, 60, 300)
    expected = sorted(set(zip(src.tolist(), dst.tolist())))
    cache = SnapshotCache()
    with WorkerPool(4, retry_policy=_RETRIES) as pool:
        with inject_faults(_FAULTS, seed=seed) as plan:
            graph = sort_first_directed(src, dst, pool=pool)
            csr = cache.get(graph, pool=pool)  # sanitized + version-checked
        assert plan.triggered.get("parallel.kernel", 0) <= 2
    assert sorted(graph.edges()) == expected
    assert csr.num_edges == len(expected)
    stats = cache.stats()
    assert stats["conversions"] == 1 and stats["misses"] == 1


@pytest.mark.parametrize("seed", range(0, 50, 7))
def test_undirected_conversion_under_all_layers(hardened, seed):
    rng = np.random.default_rng(1000 + seed)
    src = rng.integers(0, 40, 200)
    dst = rng.integers(0, 40, 200)
    expected = sorted(
        {(min(s, d), max(s, d)) for s, d in zip(src.tolist(), dst.tolist())}
    )
    with WorkerPool(4, retry_policy=_RETRIES) as pool:
        with inject_faults(_FAULTS, seed=seed):
            graph = sort_first_undirected(src, dst, pool=pool)
            csr = SnapshotCache().get(graph, pool=pool)
    assert sorted(graph.edges()) == expected
    # The CSR stores the symmetrised adjacency: two half-edges per
    # undirected edge, one per self-loop.
    loops = sum(1 for s, d in expected if s == d)
    assert csr.num_edges == 2 * (len(expected) - loops) + loops
