"""Every public item must carry a docstring (deliverable: documented API)."""

import importlib
import inspect

import pytest

PUBLIC_PACKAGES = [
    "repro",
    "repro.algorithms",
    "repro.convert",
    "repro.graphs",
    "repro.parallel",
    "repro.tables",
    "repro.workflows",
    "repro.memory",
    "repro.core",
]


def _public_items():
    for package_name in PUBLIC_PACKAGES:
        package = importlib.import_module(package_name)
        for name in getattr(package, "__all__", []):
            item = getattr(package, name)
            if callable(item) or inspect.isclass(item):
                yield f"{package_name}.{name}", item


@pytest.mark.parametrize("qualified,item", list(_public_items()), ids=lambda p: p if isinstance(p, str) else "")
def test_public_item_has_docstring(qualified, item):
    doc = inspect.getdoc(item)
    assert doc and doc.strip(), f"{qualified} lacks a docstring"


def test_every_public_class_method_documented():
    from repro.core.engine import Ringo
    from repro.graphs.csr import CSRGraph
    from repro.graphs.directed import DirectedGraph
    from repro.graphs.network import Network
    from repro.graphs.undirected import UndirectedGraph
    from repro.tables.table import Table

    undocumented = []
    for cls in (Ringo, Table, DirectedGraph, UndirectedGraph, Network, CSRGraph):
        for name, member in inspect.getmembers(cls):
            if name.startswith("_") or not callable(member):
                continue
            if not (inspect.getdoc(member) or "").strip():
                undocumented.append(f"{cls.__name__}.{name}")
    assert not undocumented, f"undocumented methods: {undocumented}"
