"""Lockset race detector: seeded races, guarded silence, engine wiring."""

import threading

import numpy as np
import pytest

from repro.analysis import hooks
from repro.analysis.races import (
    Monitored,
    RaceDetector,
    TrackedLock,
    race_check,
)
from repro.analysis import races
from repro.core.engine import Ringo
from repro.exceptions import RaceDetected
from repro.parallel.atomics import AtomicCounter
from repro.parallel.concurrent_hash import LinearProbingHashTable
from repro.parallel.concurrent_vector import ConcurrentVector
from repro.parallel.executor import WorkerPool


def run_in_thread(fn):
    """Run ``fn`` on a fresh thread, re-raising anything it raised."""
    box = {}

    def runner():
        try:
            fn()
        except BaseException as exc:  # noqa: BLE001 - relayed to the caller
            box["error"] = exc

    thread = threading.Thread(target=runner)
    thread.start()
    thread.join(timeout=10)
    assert not thread.is_alive(), "helper thread wedged"
    if "error" in box:
        raise box["error"]


class TestLocksetAlgorithm:
    def test_single_thread_never_races(self):
        with race_check() as detector:
            shared = Monitored({}, label="solo")
            for index in range(100):
                shared[index] = index
            assert detector.stats()["races"] == 0

    def test_second_thread_unsynchronized_write_raises(self):
        with race_check() as detector:
            shared = Monitored({}, label="seeded")
            run_in_thread(lambda: shared.__setitem__("a", 1))
            with pytest.raises(RaceDetected) as excinfo:
                shared["a"] = 2
            assert "seeded" in str(excinfo.value)
            assert detector.stats()["races"] == 1

    def test_report_carries_both_threads_and_stacks(self):
        with race_check(raise_on_race=False) as detector:
            shared = Monitored([], label="buffer")
            run_in_thread(lambda: shared.append(1))
            shared.append(2)
            (report,) = detector.reports
            assert report.first_thread != report.second_thread
            assert report.first_stack and report.second_stack
            error = report.to_exception()
            assert isinstance(error, RaceDetected)

    def test_consistent_tracked_lock_is_silent(self):
        with race_check() as detector:
            lock = TrackedLock("guard")
            shared = Monitored({}, label="guarded")

            def locked_write():
                with lock:
                    shared["k"] = threading.current_thread().name

            run_in_thread(locked_write)
            locked_write()
            assert detector.stats()["races"] == 0

    def test_lock_dropped_on_second_access_races(self):
        with race_check(raise_on_race=False) as detector:
            lock = TrackedLock("guard")
            shared = Monitored({}, label="half-guarded")

            def locked_write():
                with lock:
                    shared["k"] = 1

            run_in_thread(locked_write)
            shared["k"] = 2  # no lock held: candidate set empties
            assert detector.stats()["races"] == 1

    def test_shared_reads_only_never_race(self):
        with race_check() as detector:
            shared = Monitored({"k": 1}, label="read-mostly")
            shared["k"] = 1  # exclusive owner writes once
            run_in_thread(lambda: shared.__getitem__("k"))
            run_in_thread(lambda: shared.__getitem__("k"))
            assert detector.stats()["races"] == 0

    def test_each_object_reported_once(self):
        with race_check(raise_on_race=False) as detector:
            shared = Monitored({}, label="dup")
            run_in_thread(lambda: shared.__setitem__("a", 1))
            shared["a"] = 2
            shared["a"] = 3
            assert detector.stats()["races"] == 1

    def test_forget_resets_shadow_state(self):
        with race_check(raise_on_race=False) as detector:
            shared = Monitored({}, label="phased")
            run_in_thread(lambda: shared.__setitem__("a", 1))
            shared["a"] = 2
            assert detector.stats()["races"] == 1
            detector.forget(shared.obj)
            shared["a"] = 3  # back to exclusive: no new report
            assert detector.stats()["races"] == 1


class TestPoolIntegration:
    def test_unsynchronized_kernel_caught_through_pool(self):
        barrier = threading.Barrier(2, timeout=10)
        with race_check() as detector:
            shared = Monitored({}, label="kernel-shared")

            def kernel(lo, hi):
                barrier.wait()  # both workers are live before either writes
                shared[lo] = hi

            with WorkerPool(2) as pool:
                with pytest.raises(RaceDetected):
                    pool.map_range(8, kernel)
            assert detector.stats()["races"] == 1
            assert detector.stats()["kernel_dispatches"] >= 2

    def test_tracked_lock_kernel_passes_through_pool(self):
        barrier = threading.Barrier(2, timeout=10)
        with race_check() as detector:
            lock = TrackedLock("kernel-guard")
            shared = Monitored({}, label="kernel-guarded")

            def kernel(lo, hi):
                barrier.wait()
                with lock:
                    shared[lo] = hi

            with WorkerPool(2) as pool:
                pool.map_range(8, kernel)
            assert detector.stats()["races"] == 0

    def test_record_mode_keeps_kernels_running(self):
        barrier = threading.Barrier(2, timeout=10)
        with race_check(raise_on_race=False) as detector:
            shared = Monitored({}, label="recorded")

            def kernel(lo, hi):
                barrier.wait()
                shared[lo] = hi
                return hi - lo

            with WorkerPool(2) as pool:
                results = pool.map_range(8, kernel)
            assert sum(results) == 8
            stats = detector.stats()
            assert stats["races"] == 1
            assert stats["race_labels"][0].startswith("recorded")


class TestConcurrentContainersSilent:
    def test_hash_table_stress_is_silent(self):
        with race_check() as detector:
            table = LinearProbingHashTable(expected=4096)
            keys = np.arange(2000, dtype=np.int64)

            def kernel(lo, hi):
                for key in range(lo, hi):
                    table.insert(int(key), int(key) * 2)

            with WorkerPool(4) as pool:
                pool.map_range(len(keys), kernel)
            assert detector.stats()["races"] == 0
            assert table.lookup(1999) == 3998

    def test_concurrent_vector_stress_is_silent(self):
        with race_check() as detector:
            vector = ConcurrentVector(capacity=8192)

            def kernel(lo, hi):
                for value in range(lo, hi):
                    vector.append(value)

            with WorkerPool(4) as pool:
                pool.map_range(4000, kernel)
            assert len(vector) == 4000
            assert detector.stats()["races"] == 0

    def test_atomic_counter_stress_is_silent(self):
        with race_check() as detector:
            counter = AtomicCounter()

            def kernel(lo, hi):
                for _ in range(lo, hi):
                    counter.fetch_add(1)

            with WorkerPool(4) as pool:
                pool.map_range(1000, kernel)
            assert counter.value == 1000
            assert detector.stats()["races"] == 0


class TestEngineWiring:
    def test_disabled_by_default(self):
        with Ringo(workers=1):
            assert races.current() is None

    def test_race_check_flag_installs_and_removes(self):
        with Ringo(workers=1, race_check=True) as ringo:
            detector = races.current()
            assert isinstance(detector, RaceDetector)
            assert detector.raise_on_race
            health = ringo.health()
            assert health["analysis"]["race_detector"]["races"] == 0
        assert races.current() is None

    def test_record_mode_surfaces_in_health(self):
        with Ringo(workers=1, race_check="record") as ringo:
            detector = races.current()
            assert not detector.raise_on_race
            shared = Monitored({}, label="session")
            run_in_thread(lambda: shared.__setitem__("a", 1))
            shared["a"] = 2
            health = ringo.health()
            assert health["analysis"]["race_detector"]["races"] == 1
        assert races.current() is None

    def test_env_var_enables(self, monkeypatch):
        monkeypatch.setenv("RINGO_RACE_CHECK", "1")
        with Ringo(workers=1):
            assert races.current() is not None
        assert races.current() is None

    def test_session_does_not_disown_foreign_detector(self):
        detector = races.enable()
        try:
            with Ringo(workers=1):
                pass
            assert races.current() is detector
        finally:
            races.disable()

    def test_health_reports_none_without_detector(self):
        with Ringo(workers=1) as ringo:
            assert ringo.health()["analysis"]["race_detector"] is None


class TestHooksOverheadPath:
    def test_hooks_are_noops_when_disabled(self):
        assert hooks.get_detector() is None
        hooks.container_access(object(), "nothing", write=True)
        hooks.kernel_dispatch()  # must not raise

    def test_held_stack_balances(self):
        lock = TrackedLock()
        assert hooks.held_locks() == ()
        with lock:
            assert hooks.held_locks() == (lock,)
        assert hooks.held_locks() == ()
