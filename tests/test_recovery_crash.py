"""Crash consistency: SIGKILL a real session mid-write, then recover.

Each test runs a child interpreter that executes a fixed, deterministic
op sequence against a durable session and kills itself with SIGKILL at
a scripted point (mid-WAL-append via the torn-write fault, or
mid-checkpoint via the per-object write fault — both leave exactly the
on-disk state a genuine crash at that syscall would). The parent then
``Ringo.recover()``s the directory and asserts the catalog digests
match a clean in-process reference run of the committed prefix.
"""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.engine import Ringo
from repro.recovery.digest import catalog_digest

SRC = Path(__file__).resolve().parents[1] / "src"

CHILD_PRELUDE = """
import os, signal, sys
from repro.core.engine import Ringo
from repro.exceptions import InjectedFaultError
from repro.faults import inject_faults

state = sys.argv[1]
session = Ringo(workers=1, durability=state)

def build_committed(session):
    table = session.TableFromColumns({"a": [1, 2, 3, 4, 5], "b": [5, 4, 3, 2, 1]})
    filtered = session.Select(table, "a>1")
    graph = session.ToGraph(filtered, "a", "b")
    session.OrderBy(filtered, "b", in_place=True)
    session.GenRMat(4, 10, seed=5)
    return table
"""


def run_child(body: str, state: Path) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep * bool(env.get("PYTHONPATH")) + env.get(
        "PYTHONPATH", ""
    )
    return subprocess.run(
        [sys.executable, "-c", CHILD_PRELUDE + body, str(state)],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )


def reference_digests():
    """The committed prefix every crashed child shares, rerun cleanly."""
    with Ringo(workers=1) as session:
        table = session.TableFromColumns({"a": [1, 2, 3, 4, 5], "b": [5, 4, 3, 2, 1]})
        filtered = session.Select(table, "a>1")
        graph = session.ToGraph(filtered, "a", "b")
        session.OrderBy(filtered, "b", in_place=True)
        rmat = session.GenRMat(4, 10, seed=5)
        from repro.recovery.digest import object_digest

        return {
            "table": object_digest(table),
            "filtered": object_digest(filtered),
            "graph": object_digest(graph),
            "rmat": object_digest(rmat),
        }


class TestKillMidWalAppend:
    def test_recover_reconstructs_every_committed_object(self, tmp_path):
        state = tmp_path / "state"
        result = run_child(
            """
build_committed(session)
# Die exactly mid-append: the torn-write fault leaves half a frame
# fsync'd on disk, then SIGKILL ends the process uncleanly.
with inject_faults({"recovery.wal.torn_write": 1.0}):
    try:
        session.Distinct(session.GetObject("table-2"))
    except InjectedFaultError:
        os.kill(os.getpid(), signal.SIGKILL)
""",
            state,
        )
        assert result.returncode == -signal.SIGKILL, result.stderr

        with Ringo.recover(state, workers=1) as recovered:
            report = recovered.health()["recovery"]["last_recovery"]
            assert report["wal_torn_tail"]
            assert report["unrecovered"] == []
            expected = reference_digests()
            got = catalog_digest(recovered)
            assert got == {
                "table-1": expected["table"],
                "table-2": expected["filtered"],
                "graph-3": expected["graph"],
                "graph-4": expected["rmat"],
            }
            # The torn (uncommitted) Distinct never surfaces.
            assert len(recovered.Objects()) == 4

    def test_recovered_session_continues_cleanly(self, tmp_path):
        state = tmp_path / "state"
        result = run_child(
            """
build_committed(session)
with inject_faults({"recovery.wal.torn_write": 1.0}):
    try:
        session.Distinct(session.GetObject("table-2"))
    except InjectedFaultError:
        os.kill(os.getpid(), signal.SIGKILL)
""",
            state,
        )
        assert result.returncode == -signal.SIGKILL, result.stderr
        with Ringo.recover(state, workers=1) as recovered:
            recovered.Distinct(recovered.GetObject("table-2"))
            reference = catalog_digest(recovered)
        with Ringo.recover(state, workers=1) as again:
            assert catalog_digest(again) == reference


class TestKillMidCheckpoint:
    def test_torn_checkpoint_is_invisible_and_wal_recovers_all(self, tmp_path):
        state = tmp_path / "state"
        result = run_child(
            """
build_committed(session)
session.checkpoint()
session.Distinct(session.GetObject("table-2"))
# Second checkpoint dies after serialising two objects: the temp dir
# never renames into place, so recovery must use checkpoint 1 + WAL.
with inject_faults({"recovery.checkpoint.write": {"rate": 1.0, "max_triggers": 1}}):
    try:
        session.checkpoint()
    except InjectedFaultError:
        os.kill(os.getpid(), signal.SIGKILL)
""",
            state,
        )
        assert result.returncode == -signal.SIGKILL, result.stderr

        committed = [p.name for p in (state / "checkpoints").iterdir()]
        assert "ckpt-000001" in committed
        assert "ckpt-000002" not in committed

        with Ringo.recover(state, workers=1) as recovered:
            report = recovered.health()["recovery"]["last_recovery"]
            assert report["checkpoint"] == "ckpt-000001"
            assert report["unrecovered"] == []
            assert len(recovered.Objects()) == 5  # 4 committed + Distinct
            expected = reference_digests()
            got = catalog_digest(recovered)
            for name, key in (
                ("table-1", "table"),
                ("table-2", "filtered"),
                ("graph-3", "graph"),
                ("graph-4", "rmat"),
            ):
                assert got[name] == expected[key]

    def test_corrupted_checkpoint_artifact_quarantines_not_loads(self, tmp_path):
        state = tmp_path / "state"
        result = run_child(
            """
build_committed(session)
with inject_faults({"recovery.checkpoint.bit_flip": {"rate": 1.0, "max_triggers": 1}}):
    session.checkpoint()  # commits, one artifact silently rotted
os.kill(os.getpid(), signal.SIGKILL)
""",
            state,
        )
        assert result.returncode == -signal.SIGKILL, result.stderr

        with Ringo.recover(state, workers=1) as recovered:
            report = recovered.health()["recovery"]["last_recovery"]
            assert len(report["quarantined"]) == 1
            quarantined = Path(report["quarantined"][0]["moved_to"])
            assert quarantined.exists()
            assert ".quarantined" in quarantined.name
            assert report["unrecovered"] == []
            expected = reference_digests()
            got = catalog_digest(recovered)
            assert got["table-1"] == expected["table"]
            assert got["graph-3"] == expected["graph"]


class TestWalOnDiskFormat:
    def test_crashed_wal_prefix_is_valid_jsonl(self, tmp_path):
        state = tmp_path / "state"
        result = run_child(
            """
build_committed(session)
os.kill(os.getpid(), signal.SIGKILL)
""",
            state,
        )
        assert result.returncode == -signal.SIGKILL, result.stderr
        lines = (state / "wal.jsonl").read_text().splitlines()
        assert len(lines) == 5
        assert [json.loads(line)["op"] for line in lines] == [
            "TableFromColumns", "Select", "ToGraph", "OrderBy", "GenRMat",
        ]
