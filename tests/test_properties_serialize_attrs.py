"""Property tests: serialization round-trips and attribute-flow loops."""

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.convert.attributes import (
    network_from_tables,
    node_attribute_table,
    weighted_network_from_edges,
)
from repro.convert.table_to_graph import graph_from_edge_arrays
from repro.graphs.serialize import load_graph, save_graph
from repro.tables.io_npz import load_table_npz, save_table_npz
from repro.tables.table import Table

EDGES = st.lists(
    st.tuples(st.integers(0, 15), st.integers(0, 15)), min_size=0, max_size=60
)


class TestGraphSerializationProperties:
    @settings(max_examples=30, deadline=None)
    @given(EDGES, st.booleans())
    def test_save_load_identity(self, edges, directed):
        src = np.array([e[0] for e in edges], dtype=np.int64)
        dst = np.array([e[1] for e in edges], dtype=np.int64)
        graph = graph_from_edge_arrays(src, dst, directed=directed)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "g.npz"
            save_graph(graph, path)
            loaded = load_graph(path)
        assert loaded.is_directed == directed
        assert sorted(loaded.edges()) == sorted(graph.edges())
        assert sorted(loaded.nodes()) == sorted(graph.nodes())

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(-1000, 1000), max_size=40),
        st.lists(st.text(max_size=6), max_size=40),
    )
    def test_table_npz_roundtrip(self, ints, strings):
        length = min(len(ints), len(strings))
        if length == 0:
            table = Table.empty([("i", "int"), ("s", "string")])
        else:
            table = Table.from_columns(
                {"i": ints[:length], "s": strings[:length]}
            )
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "t.npz"
            save_table_npz(table, path)
            loaded = load_table_npz(path)
        assert loaded.column("i").tolist() == table.column("i").tolist()
        assert loaded.values("s") == table.values("s")
        assert loaded.row_ids.tolist() == table.row_ids.tolist()


class TestAttributeFlowProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.dictionaries(st.integers(0, 20), st.floats(-10, 10), min_size=1, max_size=20))
    def test_attrs_survive_table_roundtrip(self, scores):
        nodes = sorted(scores)
        edges = Table.from_columns(
            {"a": nodes, "b": [nodes[0]] * len(nodes)}
        )
        net = network_from_tables(edges, "a", "b")
        net.set_node_attrs("score", scores)
        table = node_attribute_table(net, attrs=["score"])
        back = dict(zip(table.column("NodeId").tolist(), table.column("score").tolist()))
        for node, value in scores.items():
            assert back[node] == pytest.approx(value)

    @settings(max_examples=30, deadline=None)
    @given(EDGES)
    def test_weighted_network_conserves_row_count(self, edges):
        if not edges:
            return
        table = Table.from_columns(
            {"a": [e[0] for e in edges], "b": [e[1] for e in edges]}
        )
        net = weighted_network_from_edges(table, "a", "b")
        total_weight = sum(
            float(net.edge_attr(u, v, "weight")) for u, v in net.edges()
        )
        assert total_weight == pytest.approx(len(edges))
