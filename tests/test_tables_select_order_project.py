"""Tests for select, order_by, project, and rename."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import SchemaError
from repro.tables.order import order_by, sort_permutation
from repro.tables.project import project, rename
from repro.tables.select import count_matching, select
from repro.tables.table import Table


@pytest.fixture
def table():
    return Table.from_columns(
        {
            "id": [4, 1, 3, 2, 5],
            "score": [0.0, 2.5, -1.0, 2.5, 1.0],
            "tag": ["b", "a", "c", "a", "b"],
        }
    )


class TestSelect:
    def test_returns_new_table_by_default(self, table):
        result = select(table, "id > 2")
        assert result is not table
        assert table.num_rows == 5
        assert result.column("id").tolist() == [4, 3, 5]

    def test_preserves_row_ids(self, table):
        result = select(table, "id > 2")
        assert result.row_ids.tolist() == [0, 2, 4]

    def test_in_place_modifies_and_returns_input(self, table):
        result = select(table, "id > 2", in_place=True)
        assert result is table
        assert table.num_rows == 3

    def test_accepts_mask(self, table):
        mask = np.array([True, True, False, False, False])
        assert select(table, mask).num_rows == 2

    def test_select_everything(self, table):
        assert select(table, "id >= 1").num_rows == 5

    def test_select_nothing(self, table):
        result = select(table, "id > 100")
        assert result.num_rows == 0
        assert result.schema == table.schema

    def test_count_matching(self, table):
        assert count_matching(table, "score = 2.5") == 2

    def test_method_facade(self, table):
        assert table.select("tag=a").num_rows == 2

    @given(st.lists(st.integers(-50, 50), min_size=0, max_size=60), st.integers(-50, 50))
    def test_select_agrees_with_python_filter(self, values, cutoff):
        t = Table.from_columns({"x": values}) if values else Table.empty([("x", "int")])
        kept = select(t, f"x > {cutoff}").column("x").tolist()
        assert kept == [v for v in values if v > cutoff]


class TestOrderBy:
    def test_sorts_ascending(self, table):
        result = order_by(table, "id")
        assert result.column("id").tolist() == [1, 2, 3, 4, 5]

    def test_sorts_descending(self, table):
        result = order_by(table, "id", ascending=False)
        assert result.column("id").tolist() == [5, 4, 3, 2, 1]

    def test_in_place(self, table):
        order_by(table, "id", in_place=True)
        assert table.column("id").tolist() == [1, 2, 3, 4, 5]

    def test_row_ids_travel_with_rows(self, table):
        result = order_by(table, "id")
        assert result.row_ids.tolist() == [1, 3, 2, 0, 4]

    def test_multi_key_sort(self, table):
        result = order_by(table, ["score", "id"])
        assert result.column("id").tolist() == [3, 4, 5, 1, 2]

    def test_stability(self):
        t = Table.from_columns({"k": [1, 1, 1], "v": [30, 10, 20]})
        result = order_by(t, "k")
        assert result.column("v").tolist() == [30, 10, 20]

    def test_string_sort_uses_collation_not_codes(self):
        # Intern "z" before "a" so code order disagrees with collation.
        t = Table.from_columns({"s": ["z", "a", "m"]})
        result = order_by(t, "s")
        assert result.values("s") == ["a", "m", "z"]

    def test_empty_keys_rejected(self, table):
        with pytest.raises(SchemaError):
            order_by(table, [])

    def test_sort_permutation_matches_numpy(self, table):
        perm = sort_permutation(table, "score")
        assert np.array_equal(
            table.column("score")[perm], np.sort(table.column("score"))
        )

    @given(st.lists(st.text(max_size=5), min_size=1, max_size=40))
    def test_string_sort_matches_python_sorted(self, values):
        t = Table.from_columns({"s": values})
        assert order_by(t, "s").values("s") == sorted(values)


class TestProject:
    def test_keeps_selected_columns_in_order(self, table):
        result = project(table, ["tag", "id"])
        assert result.schema.names == ("tag", "id")
        assert result.num_rows == 5

    def test_preserves_row_ids(self, table):
        assert project(table, ["id"]).row_ids.tolist() == [0, 1, 2, 3, 4]

    def test_empty_projection_rejected(self, table):
        with pytest.raises(SchemaError):
            project(table, [])

    def test_duplicate_columns_rejected(self, table):
        with pytest.raises(SchemaError):
            project(table, ["id", "id"])

    def test_method_facade(self, table):
        assert table.project(["id"]).num_cols == 1


class TestRename:
    def test_renames_columns(self, table):
        result = rename(table, {"id": "Id", "tag": "Label"})
        assert result.schema.names == ("Id", "score", "Label")
        assert result.column("Id").tolist() == [4, 1, 3, 2, 5]

    def test_rename_to_existing_rejected(self, table):
        with pytest.raises(SchemaError):
            rename(table, {"id": "score"})
