"""Tests for repro.tables.schema."""

import numpy as np
import pytest

from repro.exceptions import ColumnNotFoundError, SchemaError
from repro.tables.schema import ColumnType, Schema


class TestColumnType:
    def test_dtypes(self):
        assert ColumnType.INT.dtype == np.dtype(np.int64)
        assert ColumnType.FLOAT.dtype == np.dtype(np.float64)
        assert ColumnType.STRING.dtype == np.dtype(np.int32)

    @pytest.mark.parametrize(
        "text,expected",
        [("int", ColumnType.INT), ("FLOAT", ColumnType.FLOAT), ("String", ColumnType.STRING)],
    )
    def test_parse_strings(self, text, expected):
        assert ColumnType.parse(text) is expected

    def test_parse_passthrough(self):
        assert ColumnType.parse(ColumnType.INT) is ColumnType.INT

    def test_parse_unknown_rejected(self):
        with pytest.raises(SchemaError, match="unknown column type"):
            ColumnType.parse("bool")

    def test_infer_int(self):
        assert ColumnType.infer([1, 2, 3]) is ColumnType.INT

    def test_infer_float_promotes_mixed(self):
        assert ColumnType.infer([1, 2.5]) is ColumnType.FLOAT

    def test_infer_string_wins(self):
        assert ColumnType.infer([1, "a"]) is ColumnType.STRING

    def test_infer_empty_rejected(self):
        with pytest.raises(SchemaError):
            ColumnType.infer([])

    def test_infer_bool_rejected(self):
        with pytest.raises(SchemaError):
            ColumnType.infer([True])

    def test_infer_unsupported_rejected(self):
        with pytest.raises(SchemaError):
            ColumnType.infer([object()])


class TestSchema:
    def test_names_in_order(self):
        schema = Schema([("a", "int"), ("b", "string")])
        assert schema.names == ("a", "b")

    def test_lookup_and_membership(self):
        schema = Schema([("a", "int")])
        assert schema["a"] is ColumnType.INT
        assert "a" in schema
        assert "z" not in schema

    def test_missing_column_error_lists_available(self):
        schema = Schema([("a", "int"), ("b", "float")])
        with pytest.raises(ColumnNotFoundError, match="available columns: a, b"):
            schema["z"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema([("a", "int"), ("a", "float")])

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Schema([("", "int")])

    def test_equality(self):
        assert Schema([("a", "int")]) == Schema([("a", ColumnType.INT)])
        assert Schema([("a", "int")]) != Schema([("a", "float")])

    def test_index_of(self):
        schema = Schema([("a", "int"), ("b", "float")])
        assert schema.index_of("b") == 1

    def test_with_column(self):
        schema = Schema([("a", "int")]).with_column("b", "string")
        assert schema.names == ("a", "b")

    def test_with_existing_column_rejected(self):
        with pytest.raises(SchemaError):
            Schema([("a", "int")]).with_column("a", "int")

    def test_without_column(self):
        schema = Schema([("a", "int"), ("b", "float")]).without_column("a")
        assert schema.names == ("b",)

    def test_renamed(self):
        schema = Schema([("a", "int"), ("b", "float")]).renamed("a", "z")
        assert schema.names == ("z", "b")
        assert schema["z"] is ColumnType.INT

    def test_renamed_clash_rejected(self):
        with pytest.raises(SchemaError):
            Schema([("a", "int"), ("b", "float")]).renamed("a", "b")

    def test_select_preserves_requested_order(self):
        schema = Schema([("a", "int"), ("b", "float"), ("c", "string")])
        assert schema.select(["c", "a"]).names == ("c", "a")

    def test_iteration_pairs(self):
        schema = Schema([("a", "int"), ("b", "string")])
        assert list(schema) == [("a", ColumnType.INT), ("b", ColumnType.STRING)]

    def test_repr_mentions_types(self):
        assert "a: int" in repr(Schema([("a", "int")]))
