"""The chaos acceptance test: many tenants, seeded faults, exact answers.

Eight workload tenants plus one flood tenant hammer one service while
``service.*`` and ``recovery.*`` fault sites are armed with a fixed
seed. The contract under all of that:

* every non-shed, non-expired request completes *correctly* — each
  tenant's final catalog digest equals a reference session that ran the
  same operations with no service and no faults;
* no request outlives its deadline by more than one scheduler tick
  (plus measurement slack for thread wakeups — the server-side bound is
  the tick);
* shed requests get typed ``RequestRejected`` responses, expired ones
  typed ``DeadlineExceededError`` responses — never silence;
* the drain loses zero committed state: every tenant's spool alone
  reconstructs its final digest after the service is gone.
"""

import threading
import time

import pytest

from repro.core.engine import Ringo
from repro.faults import inject_faults
from repro.recovery.digest import catalog_digest
from repro.service import ServiceConfig, ServiceHandle

SCHEMA = [["src", "int"], ["dst", "int"]]
TENANTS = [f"tenant-{n}" for n in range(8)]
TICK_S = 0.05
# Client-side wall-clock slack on top of the one-tick contract: thread
# wakeup and envelope delivery, not server lateness.
MEASUREMENT_SLACK_S = 0.45

#: The mutation script every workload tenant runs (and the reference
#: replays). Only these publish; chaos traffic is read-only.
PREDICATES = ["src<40", "dst>5", "src>10"]


@pytest.fixture(scope="module")
def edges_tsv(tmp_path_factory):
    path = tmp_path_factory.mktemp("data") / "edges.tsv"
    with open(path, "w") as fh:
        for i in range(60):
            fh.write(f"{i}\t{(i * 13 + 7) % 60}\n")
    return str(path)


def reference_digest(base_dir, edges_tsv):
    """The workload with no service and no faults: ground truth."""
    with Ringo(workers=1, durability=base_dir / "reference") as ringo:
        table = ringo.LoadTableTSV(SCHEMA, edges_tsv)
        graph = ringo.ToGraph(table, "src", "dst")
        ringo.GetPageRank(graph)
        for predicate in PREDICATES:
            ringo.Select(table, predicate)
        return catalog_digest(ringo)


class Driver:
    """One tenant's client thread: mutations, probes, bookkeeping."""

    def __init__(self, handle, tenant):
        self.handle = handle
        self.tenant = tenant
        self.final_digest = None
        self.deadline_violations = []
        self.unexpected = []
        self._counter = 0

    def _submit(self, op, args=None, deadline_ms=None):
        self._counter += 1
        raw = {
            "id": f"{self.tenant}-{self._counter}",
            "tenant": self.tenant,
            "op": op,
            "args": args or {},
        }
        if deadline_ms is not None:
            raw["deadline_ms"] = deadline_ms
        started = time.monotonic()
        envelope = self.handle.submit(raw, timeout=120.0)
        elapsed = time.monotonic() - started
        if deadline_ms is not None:
            budget = deadline_ms / 1000.0 + TICK_S + MEASUREMENT_SLACK_S
            if elapsed > budget:
                self.deadline_violations.append((raw["id"], elapsed, budget))
        return envelope

    def call_until_done(self, op, args=None):
        """A mutation: retry retryable envelopes until it commits.

        Under admission contention (more active tenants than the ledger
        fits) a tenant can be denied residency many times in a row, so
        the budget here is generous — the contract is *eventual* exact
        completion, not first-try completion.
        """
        for attempt in range(60):
            envelope = self._submit(op, args)
            if envelope["ok"]:
                return envelope["result"]
            if not envelope["error"]["retryable"]:
                break
            time.sleep(min(0.01 * (attempt + 1), 0.1))
        self.unexpected.append((op, envelope["error"]))
        return None

    def probe(self, op, deadline_ms):
        """A read under a deadline: success, expiry, or shed are all
        acceptable — anything else is a contract breach."""
        envelope = self._submit(op, deadline_ms=deadline_ms)
        if envelope["ok"]:
            return
        kind = envelope["error"]["type"]
        if kind in (
            "DeadlineExceededError", "RequestRejected",
            "InjectedFaultError", "AdmissionContention",
        ):
            return  # typed, expected chaos outcomes
        self.unexpected.append((op, envelope["error"]))

    def run(self, edges_tsv):
        try:
            table = self.call_until_done(
                "LoadTableTSV", {"path": edges_tsv, "schema": SCHEMA}
            )
            graph = self.call_until_done(
                "ToGraph",
                {"table": {"$ref": table["$ref"]},
                 "src_col": "src", "dst_col": "dst"},
            )
            self.call_until_done(
                "GetPageRank", {"graph": {"$ref": graph["$ref"]}}
            )
            self.probe("digest", deadline_ms=40)
            for predicate in PREDICATES:
                self.call_until_done(
                    "Select",
                    {"table": {"$ref": table["$ref"]}, "predicate": predicate},
                )
                self.probe("objects", deadline_ms=60)
            self.final_digest = self.call_until_done("digest")
        except Exception as error:  # pragma: no cover - contract breach
            self.unexpected.append(("driver", repr(error)))


def flood(handle, results, barrier):
    """One flood thread: a read against a saturated 4-deep queue."""
    barrier.wait()
    envelope = handle.submit(
        {"id": f"flood-{threading.get_ident()}", "tenant": "flood",
         "op": "digest", "args": {}, "deadline_ms": 700},
        timeout=120.0,
    )
    results.append(envelope)


def test_chaos_eight_tenants_under_seeded_faults(tmp_path, edges_tsv):
    spool = tmp_path / "spool"
    config = ServiceConfig(
        spool_dir=str(spool),
        global_budget_bytes=320 << 20,  # < 9 x 64 MiB: real eviction pressure
        default_tenant_budget_bytes=64 << 20,
        max_queue_depth=4,
        default_deadline_s=60.0,
        tick_s=TICK_S,
        idle_evict_s=0.25,  # sessions churn through evict/revive mid-run
    )
    handle = ServiceHandle(config).start()
    drivers = [Driver(handle, tenant) for tenant in TENANTS]
    flood_results: list = []
    try:
        with inject_faults(
            {
                "service.accept": 0.03,
                "service.dispatch": 0.08,
                "service.evict": 0.25,
                "recovery.checkpoint.write": 0.10,
            },
            seed=2015,
        ) as plan:
            threads = [
                threading.Thread(target=driver.run, args=(edges_tsv,))
                for driver in drivers
            ]
            for thread in threads:
                thread.start()

            # The flood tenant saturates its 4-deep queue from 24 threads.
            flood_driver = Driver(handle, "flood")
            flood_driver.call_until_done(
                "LoadTableTSV", {"path": edges_tsv, "schema": SCHEMA}
            )
            barrier = threading.Barrier(24)
            flooders = [
                threading.Thread(
                    target=flood, args=(handle, flood_results, barrier)
                )
                for _ in range(24)
            ]
            for thread in flooders:
                thread.start()
            for thread in flooders:
                thread.join()
            for thread in threads:
                thread.join()
            triggered = plan.triggered

        # The chaos actually happened.
        assert triggered["service.dispatch"] > 0
        assert triggered["service.evict"] > 0

        # Typed outcomes only, and the queue really shed.
        shed = [
            e for e in flood_results
            if not e["ok"] and e["error"]["type"] == "RequestRejected"
        ]
        expired = [
            e for e in flood_results
            if not e["ok"] and e["error"]["type"] == "DeadlineExceededError"
        ]
        completed = [e for e in flood_results if e["ok"]]
        other = [
            e for e in flood_results
            if not e["ok"]
            and e["error"]["type"]
            not in ("RequestRejected", "DeadlineExceededError",
                    "InjectedFaultError", "AdmissionContention")
        ]
        assert len(shed) >= 1, flood_results
        assert other == []
        assert len(shed) + len(expired) + len(completed) <= len(flood_results)
        for envelope in shed:
            assert "shed" in envelope["error"]["message"]

        # Every non-shed request completed *correctly*: digests match a
        # reference session that never saw the service or the faults.
        expected = reference_digest(tmp_path, edges_tsv)
        for driver in drivers:
            assert driver.unexpected == [], driver.unexpected
            assert driver.final_digest == expected, driver.tenant

        # The one-tick deadline contract held for every probed request.
        violations = [
            v for driver in drivers + [flood_driver]
            for v in driver.deadline_violations
        ]
        assert violations == []

        # Sessions were genuinely swapped during the run, not all-resident.
        health = handle.health()["service"]
        assert health["known_sessions"] == 9
        evictions = sum(
            t["evictions"] for t in health["tenants"].values()
        )
        assert evictions > 0
        final_digests = {
            driver.tenant: driver.final_digest for driver in drivers
        }
    finally:
        report = handle.stop()

    # Drain loses zero committed state: each spool alone reconstructs
    # the tenant's final catalog, service long gone.
    assert report is not None and report["rejected"] == 0
    for tenant, digest in final_digests.items():
        with Ringo.recover(spool / tenant, workers=1) as revived:
            assert catalog_digest(revived) == digest, tenant
