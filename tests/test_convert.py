"""Tests for table↔graph conversion — the paper's §2.4 machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.convert.graph_to_table import to_edge_table, to_node_table
from repro.convert.hashmap_table import table_from_hashmap
from repro.convert.table_to_graph import (
    graph_from_edge_arrays,
    hash_accumulate_build,
    per_edge_build,
    sort_first_directed,
    sort_first_undirected,
    to_graph,
)
from repro.exceptions import ConversionError
from repro.parallel.executor import WorkerPool
from repro.tables.table import Table

EDGES = st.lists(
    st.tuples(st.integers(0, 25), st.integers(0, 25)), max_size=120
)


def arrays(edge_list):
    src = np.array([e[0] for e in edge_list], dtype=np.int64)
    dst = np.array([e[1] for e in edge_list], dtype=np.int64)
    return src, dst


class TestSortFirstDirected:
    def test_basic(self):
        graph = sort_first_directed(*arrays([(1, 2), (1, 3), (2, 3)]))
        assert graph.num_nodes == 3
        assert graph.num_edges == 3
        assert graph.out_neighbors(1).tolist() == [2, 3]
        assert graph.in_neighbors(3).tolist() == [1, 2]

    def test_duplicate_rows_deduplicated(self):
        graph = sort_first_directed(*arrays([(1, 2), (1, 2), (1, 2)]))
        assert graph.num_edges == 1

    def test_empty_table(self):
        graph = sort_first_directed(*arrays([]))
        assert graph.num_nodes == 0
        assert graph.num_edges == 0

    def test_self_loops(self):
        graph = sort_first_directed(*arrays([(1, 1), (1, 2)]))
        assert graph.num_edges == 2
        assert graph.has_edge(1, 1)

    def test_negative_ids_rejected(self):
        with pytest.raises(ConversionError):
            sort_first_directed(np.array([-1]), np.array([2]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConversionError):
            sort_first_directed(np.array([1]), np.array([1, 2]))

    def test_parallel_pool_gives_same_graph(self):
        edge_list = [(i % 17, (i * 7) % 13) for i in range(500)]
        serial = sort_first_directed(*arrays(edge_list))
        with WorkerPool(4) as pool:
            parallel = sort_first_directed(*arrays(edge_list), pool=pool)
        assert sorted(serial.edges()) == sorted(parallel.edges())

    @settings(max_examples=50, deadline=None)
    @given(EDGES)
    def test_matches_per_edge_reference(self, edge_list):
        fast = sort_first_directed(*arrays(edge_list))
        slow = per_edge_build(*arrays(edge_list))
        assert fast.num_nodes == slow.num_nodes
        assert fast.num_edges == slow.num_edges
        assert sorted(fast.edges()) == sorted(slow.edges())
        for node in fast.nodes():
            assert fast.in_neighbors(node).tolist() == slow.in_neighbors(node).tolist()

    @settings(max_examples=50, deadline=None)
    @given(EDGES)
    def test_matches_hash_accumulate(self, edge_list):
        fast = sort_first_directed(*arrays(edge_list))
        other = hash_accumulate_build(*arrays(edge_list))
        assert sorted(fast.edges()) == sorted(other.edges())


class TestSortFirstUndirected:
    def test_symmetrises(self):
        graph = sort_first_undirected(*arrays([(1, 2)]))
        assert graph.has_edge(2, 1)
        assert graph.num_edges == 1

    def test_reciprocal_rows_collapse(self):
        graph = sort_first_undirected(*arrays([(1, 2), (2, 1)]))
        assert graph.num_edges == 1

    def test_self_loop_counted_once(self):
        graph = sort_first_undirected(*arrays([(3, 3), (1, 2)]))
        assert graph.num_edges == 2
        assert graph.degree(3) == 1

    @settings(max_examples=50, deadline=None)
    @given(EDGES)
    def test_matches_per_edge_reference(self, edge_list):
        fast = sort_first_undirected(*arrays(edge_list))
        slow = per_edge_build(*arrays(edge_list), directed=False)
        assert fast.num_edges == slow.num_edges
        assert sorted(fast.edges()) == sorted(slow.edges())

    @settings(max_examples=50, deadline=None)
    @given(EDGES)
    def test_matches_hash_accumulate(self, edge_list):
        fast = sort_first_undirected(*arrays(edge_list))
        other = hash_accumulate_build(*arrays(edge_list), directed=False)
        assert fast.num_edges == other.num_edges
        assert sorted(fast.edges()) == sorted(other.edges())


class TestToGraph:
    def test_from_table_columns(self):
        table = Table.from_columns({"a": [1, 2], "b": [2, 3]})
        graph = to_graph(table, "a", "b")
        assert graph.num_edges == 2

    def test_undirected_flag(self):
        table = Table.from_columns({"a": [1], "b": [2]})
        graph = to_graph(table, "a", "b", directed=False)
        assert not graph.is_directed

    def test_string_column_rejected(self):
        table = Table.from_columns({"a": ["x"], "b": [1]})
        with pytest.raises(ConversionError):
            to_graph(table, "a", "b")

    def test_float_column_rejected(self):
        table = Table.from_columns({"a": [1.0], "b": [1]})
        with pytest.raises(ConversionError):
            to_graph(table, "a", "b")


class TestGraphToTable:
    def test_edge_table_roundtrip(self):
        src, dst = arrays([(1, 2), (2, 3), (3, 1)])
        graph = graph_from_edge_arrays(src, dst)
        table = to_edge_table(graph)
        rebuilt = to_graph(table, "SrcId", "DstId")
        assert sorted(rebuilt.edges()) == sorted(graph.edges())

    def test_edge_table_parallel_matches_serial(self):
        edge_list = [(i % 23, (i * 5) % 19) for i in range(400)]
        graph = graph_from_edge_arrays(*arrays(edge_list))
        serial = to_edge_table(graph)
        with WorkerPool(4) as pool:
            parallel = to_edge_table(graph, pool=pool)
        key = lambda t: sorted(zip(t.column("SrcId").tolist(), t.column("DstId").tolist()))
        assert key(serial) == key(parallel)

    def test_undirected_edge_table_lists_once(self):
        graph = sort_first_undirected(*arrays([(1, 2), (2, 3), (3, 3)]))
        table = to_edge_table(graph)
        assert table.num_rows == 3
        assert (table.column("SrcId") <= table.column("DstId")).all()

    def test_node_table(self):
        graph = graph_from_edge_arrays(*arrays([(1, 2)]))
        table = to_node_table(graph)
        assert sorted(table.column("NodeId").tolist()) == [1, 2]

    def test_node_table_with_degrees(self):
        graph = graph_from_edge_arrays(*arrays([(1, 2), (1, 3)]))
        table = to_node_table(graph, include_degrees=True)
        row = {r["NodeId"]: r for r in table.iter_rows()}
        assert row[1]["OutDeg"] == 2
        assert row[2]["InDeg"] == 1

    def test_undirected_node_table_degrees(self):
        graph = sort_first_undirected(*arrays([(1, 2)]))
        table = to_node_table(graph, include_degrees=True)
        assert set(table.schema.names) == {"NodeId", "Deg"}

    @settings(max_examples=40, deadline=None)
    @given(EDGES)
    def test_full_roundtrip_table_graph_table(self, edge_list):
        # The Figure 2 loop: edges → graph → edge table → graph again.
        src, dst = arrays(edge_list)
        graph = graph_from_edge_arrays(src, dst)
        table = to_edge_table(graph)
        rebuilt = to_graph(table, "SrcId", "DstId")
        assert sorted(rebuilt.edges()) == sorted(graph.edges())
        assert rebuilt.num_nodes == graph.num_nodes or graph.num_edges == 0


class TestTableFromHashMap:
    def test_float_values(self):
        table = table_from_hashmap({1: 0.5, 2: 0.25}, "User", "Scr")
        assert table.schema.names == ("User", "Scr")
        assert table.column("Scr").dtype == np.float64

    def test_int_values(self):
        table = table_from_hashmap({1: 3, 2: 4}, "Node", "Core")
        assert table.column("Core").dtype == np.int64

    def test_empty_mapping(self):
        assert table_from_hashmap({}, "k", "v").num_rows == 0

    def test_same_column_names_rejected(self):
        with pytest.raises(ConversionError):
            table_from_hashmap({1: 1}, "x", "x")
