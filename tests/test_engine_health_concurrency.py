"""Regression: ``health()`` polled concurrently with mutating methods.

The session service polls ``health()`` (and ``Objects()``) from its
monitoring path while a tenant's engine call runs on an executor
thread. Before the catalog lock, that was a ``RuntimeError: dictionary
changed size during iteration`` waiting to happen — ``health()``
iterated ``self._catalog`` while ``_publish`` inserted into it.
"""

import threading

import pytest

from repro.core.engine import Ringo


@pytest.mark.parametrize("probe", ["health", "objects"])
def test_health_and_objects_race_mutating_publishes(tmp_path, probe):
    errors = []
    stop = threading.Event()

    # Durable so every derivation publishes — maximum catalog churn.
    with Ringo(workers=1, durability=tmp_path) as ringo:

        def poll():
            try:
                while not stop.is_set():
                    if probe == "health":
                        report = ringo.health()
                        names = report["objects"]["names"]
                        assert report["objects"]["published"] == len(names)
                    else:
                        for name in ringo.Objects():
                            ringo.GetObject(name)
            except Exception as error:  # pragma: no cover - the regression
                errors.append(error)

        pollers = [threading.Thread(target=poll) for _ in range(4)]
        for thread in pollers:
            thread.start()
        try:
            for i in range(150):
                table = ringo.TableFromColumns({"x": [i, i + 1, i + 2]})
                ringo.Select(table, f"x>{i}")
        finally:
            stop.set()
            for thread in pollers:
                thread.join()

    assert errors == []


def test_health_object_count_matches_names(tmp_path):
    with Ringo(workers=1, durability=tmp_path) as ringo:
        ringo.TableFromColumns({"x": [1, 2]})
        ringo.TableFromColumns({"y": [3]})
        report = ringo.health()
        assert report["objects"]["published"] == 2
        assert sorted(report["objects"]["names"]) == sorted(ringo.Objects())
