"""Tests for the predicate parser and evaluator."""

import numpy as np
import pytest

from repro.exceptions import ExpressionError, TypeMismatchError
from repro.tables.expressions import (
    Comparison,
    MaskPredicate,
    as_predicate,
    parse_predicate,
)
from repro.tables.table import Table


@pytest.fixture
def table():
    return Table.from_columns(
        {
            "Type": ["question", "answer", "question", "comment"],
            "Tag": ["Java", "Java", "python", "Java"],
            "Score": [5, -1, 3, 0],
            "Weight": [0.5, 1.5, 2.5, 3.5],
            "Other": [5, 5, 1, 1],
        }
    )


class TestPaperSyntax:
    def test_bareword_string_equality(self, table):
        mask = parse_predicate("Tag=Java").mask(table)
        assert mask.tolist() == [True, True, False, True]

    def test_type_question_example(self, table):
        mask = parse_predicate("Type=question").mask(table)
        assert mask.tolist() == [True, False, True, False]

    def test_quoted_string(self, table):
        mask = parse_predicate("Tag = 'python'").mask(table)
        assert mask.tolist() == [False, False, True, False]

    def test_unknown_string_matches_nothing(self, table):
        assert not parse_predicate("Tag=NoSuchTag").mask(table).any()

    def test_unknown_string_not_equal_matches_everything(self, table):
        assert parse_predicate("Tag != NoSuchTag").mask(table).all()


class TestNumericComparisons:
    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("Score = 3", [False, False, True, False]),
            ("Score == 3", [False, False, True, False]),
            ("Score != 3", [True, True, False, True]),
            ("Score > 0", [True, False, True, False]),
            ("Score >= 0", [True, False, True, True]),
            ("Score < 0", [False, True, False, False]),
            ("Score <= -1", [False, True, False, False]),
        ],
    )
    def test_operators(self, table, expr, expected):
        assert parse_predicate(expr).mask(table).tolist() == expected

    def test_float_literal(self, table):
        mask = parse_predicate("Weight >= 2.0").mask(table)
        assert mask.tolist() == [False, False, True, True]

    def test_scientific_notation(self, table):
        mask = parse_predicate("Weight < 1e0").mask(table)
        assert mask.tolist() == [True, False, False, False]

    def test_negative_literal(self, table):
        mask = parse_predicate("Score <= -1").mask(table)
        assert mask.tolist() == [False, True, False, False]


class TestColumnVsColumn:
    def test_numeric_columns_compare(self, table):
        mask = parse_predicate("Score = Other").mask(table)
        assert mask.tolist() == [True, False, False, False]

    def test_string_columns_compare_by_value(self, table):
        extra = Table.from_columns(
            {"a": ["x", "y"], "b": ["x", "z"]}, pool=table.pool
        )
        mask = parse_predicate("a = b").mask(extra)
        assert mask.tolist() == [True, False]

    def test_string_ordering_uses_collation(self):
        extra = Table.from_columns({"a": ["b", "a"], "b": ["a", "b"]})
        mask = parse_predicate("a < b").mask(extra)
        assert mask.tolist() == [False, True]

    def test_string_vs_numeric_column_rejected(self, table):
        with pytest.raises(TypeMismatchError):
            parse_predicate("Tag = Score").mask(table)


class TestCombinators:
    def test_and(self, table):
        mask = parse_predicate("Tag=Java and Score > 0").mask(table)
        assert mask.tolist() == [True, False, False, False]

    def test_ampersand_alias(self, table):
        mask = parse_predicate("Tag=Java & Score > 0").mask(table)
        assert mask.tolist() == [True, False, False, False]

    def test_or(self, table):
        mask = parse_predicate("Score > 4 or Score < 0").mask(table)
        assert mask.tolist() == [True, True, False, False]

    def test_pipe_alias(self, table):
        mask = parse_predicate("Score > 4 | Score < 0").mask(table)
        assert mask.tolist() == [True, True, False, False]

    def test_not(self, table):
        mask = parse_predicate("not Tag=Java").mask(table)
        assert mask.tolist() == [False, False, True, False]

    def test_parentheses_change_grouping(self, table):
        grouped = parse_predicate("Tag=Java and (Score > 4 or Score < 0)").mask(table)
        assert grouped.tolist() == [True, True, False, False]

    def test_precedence_and_binds_tighter(self, table):
        mask = parse_predicate("Score > 4 or Score < 0 and Tag=Java").mask(table)
        # and binds tighter: Score>4 or (Score<0 and Tag=Java)
        assert mask.tolist() == [True, True, False, False]

    def test_operator_overloads(self, table):
        pred = parse_predicate("Tag=Java") & ~parse_predicate("Score < 0")
        assert pred.mask(table).tolist() == [True, False, False, True]


class TestErrors:
    def test_empty_predicate(self):
        with pytest.raises(ExpressionError):
            parse_predicate("   ")

    def test_garbage_token(self):
        with pytest.raises(ExpressionError):
            parse_predicate("Tag ~ Java")

    def test_trailing_tokens(self):
        with pytest.raises(ExpressionError, match="trailing"):
            parse_predicate("Score > 1 2")

    def test_missing_operand(self):
        with pytest.raises(ExpressionError):
            parse_predicate("Score >")

    def test_unclosed_paren(self):
        with pytest.raises(ExpressionError):
            parse_predicate("(Score > 1")

    def test_numeric_column_vs_string_rejected(self, table):
        with pytest.raises(TypeMismatchError):
            parse_predicate("Score = 'abc'").mask(table)

    def test_string_column_vs_number_rejected(self, table):
        with pytest.raises(TypeMismatchError):
            parse_predicate("Tag = 5").mask(table)

    def test_unsupported_comparison_op(self):
        with pytest.raises(ExpressionError):
            Comparison("x", "~", 1)


class TestAsPredicate:
    def test_accepts_string(self, table):
        assert as_predicate("Score > 0").mask(table).tolist() == [True, False, True, False]

    def test_accepts_mask(self, table):
        mask = np.array([True, False, True, False])
        assert as_predicate(mask).mask(table).tolist() == mask.tolist()

    def test_mask_length_checked(self, table):
        with pytest.raises(ExpressionError):
            MaskPredicate(np.array([True])).mask(table)

    def test_accepts_predicate(self, table):
        pred = parse_predicate("Score > 0")
        assert as_predicate(pred) is pred

    def test_rejects_other_types(self):
        with pytest.raises(ExpressionError):
            as_predicate(42)
