"""Tests for memory accounting (Table 2 machinery)."""

import numpy as np
import pytest

from repro.exceptions import RingoError
from repro.graphs.csr import CSRGraph
from repro.graphs.directed import DirectedGraph
from repro.memory.footprint import peak_footprint
from repro.memory.sizeof import format_bytes, object_size_bytes, size_report
from repro.tables.table import Table


class TestObjectSize:
    def test_table_size(self):
        table = Table.from_columns({"x": np.arange(100)})
        # 100 int64 values + 100 int64 row ids.
        assert object_size_bytes(table) == 1600

    def test_graph_size(self):
        graph = DirectedGraph()
        graph.add_edge(1, 2)
        assert object_size_bytes(graph) > 0

    def test_csr_size(self):
        csr = CSRGraph.from_edges([0], [1])
        assert object_size_bytes(csr) == csr.memory_bytes()

    def test_unknown_type_rejected(self):
        with pytest.raises(RingoError):
            object_size_bytes([1, 2, 3])

    def test_graph_smaller_than_edge_table_at_scale(self):
        # Table 2's observation: the graph object is smaller than the
        # table object for the same edges (no per-edge row ids, shared
        # source encoding).
        from repro.workflows.datasets import LJ_SCALED, make_edge_table, make_graph

        graph = make_graph(LJ_SCALED)
        table = make_edge_table(LJ_SCALED)
        assert object_size_bytes(graph) < object_size_bytes(table)


class TestFormatBytes:
    @pytest.mark.parametrize(
        "size,expected",
        [
            (0, "0B"),
            (512, "512B"),
            (2048, "2.0KB"),
            (5 * (1 << 20), "5.0MB"),
            (int(0.7 * (1 << 30)), "0.7GB"),
        ],
    )
    def test_units(self, size, expected):
        assert format_bytes(size) == expected

    def test_negative_rejected(self):
        with pytest.raises(RingoError):
            format_bytes(-1)


class TestSizeReport:
    def test_lines_per_object(self):
        table = Table.from_columns({"x": [1]})
        report = size_report({"edges": table})
        assert report.startswith("edges: ")


class TestPeakFootprint:
    def test_returns_result_and_positive_peak(self):
        result, peak = peak_footprint(lambda: np.zeros(1_000_000))
        assert len(result) == 1_000_000
        assert peak >= 8_000_000

    def test_small_allocation_small_peak(self):
        _, small_peak = peak_footprint(lambda: np.zeros(10))
        _, big_peak = peak_footprint(lambda: np.zeros(1_000_000))
        assert big_peak > small_peak

    def test_exception_propagates_and_tracing_stops(self):
        import tracemalloc

        def boom():
            raise ValueError("boom")

        with pytest.raises(ValueError):
            peak_footprint(boom)
        assert not tracemalloc.is_tracing()

    def test_raising_operation_still_reports_footprint(self):
        def allocate_then_fail():
            buffer = np.zeros(500_000)
            raise ValueError(f"failed holding {buffer.nbytes} bytes")

        with pytest.raises(ValueError) as info:
            peak_footprint(allocate_then_fail)
        # The failed run is still diagnosable: the peak-so-far rides on
        # the exception as an attribute and a note.
        assert info.value.peak_extra_bytes >= 4_000_000
        assert any("peak extra memory" in note for note in info.value.__notes__)

    def test_pagerank_footprint_bounded_by_twice_graph_size(self):
        # The paper's §3 claim: 10 PageRank iterations run in a footprint
        # below twice the graph object's size. The analogue here: the
        # iteration kernel's extra allocations stay under 2x the CSR
        # snapshot it runs over.
        from repro.algorithms.common import as_csr
        from repro.algorithms.pagerank import pagerank_array
        from repro.workflows.datasets import LJ_SCALED, make_graph

        csr = as_csr(make_graph(LJ_SCALED))
        _, peak = peak_footprint(lambda: pagerank_array(csr, iterations=10))
        assert peak < 2 * csr.memory_bytes()


class TestMemoryBudget:
    def test_admit_within_limit(self):
        from repro.memory.budget import MemoryBudget

        budget = MemoryBudget(1 << 20)
        assert budget.admit("op", 1 << 10) == "ok"
        snap = budget.snapshot()
        assert snap["admitted"] == 1 and snap["denials"] == 0

    def test_strict_budget_raises_typed_error(self):
        from repro.exceptions import MemoryBudgetError
        from repro.memory.budget import MemoryBudget

        budget = MemoryBudget(1 << 10)
        with pytest.raises(MemoryBudgetError) as info:
            budget.admit("ToGraph", 1 << 20)
        assert info.value.estimated == 1 << 20
        assert info.value.limit == 1 << 10
        assert budget.snapshot()["denials"] == 1

    def test_degrade_budget_returns_degrade(self):
        from repro.memory.budget import MemoryBudget

        budget = MemoryBudget(1 << 10, on_exceed="degrade")
        assert budget.admit("ToGraph", 1 << 20) == "degrade"
        assert budget.snapshot()["degradations"] == 1

    def test_coerce_accepts_ints_and_none(self):
        from repro.memory.budget import MemoryBudget

        assert MemoryBudget.coerce(None) is None
        budget = MemoryBudget.coerce(4096)
        assert isinstance(budget, MemoryBudget)
        assert MemoryBudget.coerce(budget) is budget

    def test_invalid_configuration_rejected(self):
        from repro.memory.budget import MemoryBudget

        with pytest.raises(RingoError):
            MemoryBudget(0)
        with pytest.raises(RingoError):
            MemoryBudget(100, on_exceed="panic")

    def test_estimates_scale_with_input(self):
        from repro.memory.budget import (
            estimate_graph_build_bytes,
            estimate_join_bytes,
        )

        assert estimate_graph_build_bytes(0) == 0
        assert (
            estimate_graph_build_bytes(2_000)
            > estimate_graph_build_bytes(1_000)
            > 8 * 1_000
        )
        assert estimate_join_bytes(1_000, 1_000, 4) > estimate_join_bytes(10, 10, 4)
        with pytest.raises(RingoError):
            estimate_graph_build_bytes(-1)
