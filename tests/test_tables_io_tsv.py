"""Tests for TSV load/save round-tripping."""

import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SchemaError
from repro.tables.io_tsv import load_table_tsv, save_table_tsv
from repro.tables.table import Table

SCHEMA = [("id", "int"), ("score", "float"), ("tag", "string")]


def write(tmp_path, text, name="data.tsv"):
    path = tmp_path / name
    path.write_text(text)
    return path


class TestLoad:
    def test_basic_load(self, tmp_path):
        path = write(tmp_path, "1\t0.5\tjava\n2\t1.5\tgo\n")
        table = load_table_tsv(SCHEMA, path)
        assert table.num_rows == 2
        assert table.column("id").tolist() == [1, 2]
        assert table.column("score").tolist() == [0.5, 1.5]
        assert table.values("tag") == ["java", "go"]

    def test_skips_comments_and_blank_lines(self, tmp_path):
        path = write(tmp_path, "# comment\n\n1\t0.0\tx\n")
        assert load_table_tsv(SCHEMA, path).num_rows == 1

    def test_header_skipped_when_requested(self, tmp_path):
        path = write(tmp_path, "id\tscore\ttag\n1\t0.0\tx\n")
        table = load_table_tsv(SCHEMA, path, has_header=True)
        assert table.num_rows == 1

    def test_field_count_mismatch_reports_line(self, tmp_path):
        path = write(tmp_path, "1\t0.0\tx\n2\t0.0\n")
        with pytest.raises(SchemaError, match=":2"):
            load_table_tsv(SCHEMA, path)

    def test_bad_int_reports_column(self, tmp_path):
        path = write(tmp_path, "notanint\t0.0\tx\n")
        with pytest.raises(SchemaError, match="'id'"):
            load_table_tsv(SCHEMA, path)

    def test_empty_file(self, tmp_path):
        path = write(tmp_path, "")
        table = load_table_tsv(SCHEMA, path)
        assert table.num_rows == 0
        assert table.schema.names == ("id", "score", "tag")

    def test_custom_separator(self, tmp_path):
        path = write(tmp_path, "1,0.0,x\n")
        table = load_table_tsv(SCHEMA, path, sep=",")
        assert table.values("tag") == ["x"]

    def test_crlf_line_endings(self, tmp_path):
        path = write(tmp_path, "1\t0.0\tx\r\n2\t1.0\ty\r\n")
        table = load_table_tsv(SCHEMA, path)
        assert table.values("tag") == ["x", "y"]


class TestSaveAndRoundTrip:
    def test_save_returns_row_count(self, tmp_path):
        table = Table.from_columns({"x": [1, 2, 3]})
        assert save_table_tsv(table, tmp_path / "out.tsv") == 3

    def test_header_written_when_requested(self, tmp_path):
        table = Table.from_columns({"x": [1]})
        path = tmp_path / "out.tsv"
        save_table_tsv(table, path, write_header=True)
        assert path.read_text().splitlines()[0] == "x"

    def test_roundtrip_preserves_values(self, tmp_path):
        table = Table.from_columns(
            {"id": [3, 1], "score": [0.1, -2.5], "tag": ["a b", "c"]}
        )
        path = tmp_path / "round.tsv"
        save_table_tsv(table, path)
        loaded = load_table_tsv(SCHEMA, path)
        assert loaded.column("id").tolist() == [3, 1]
        assert loaded.column("score").tolist() == [0.1, -2.5]
        assert loaded.values("tag") == ["a b", "c"]

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(-(10**9), 10**9),
                st.floats(allow_nan=False, allow_infinity=False, width=32),
                st.text(
                    alphabet=st.characters(
                        blacklist_characters="\t\n\r#", blacklist_categories=("Cs",)
                    ),
                    min_size=1,
                    max_size=8,
                ),
            ),
            max_size=25,
        )
    )
    def test_roundtrip_arbitrary_rows(self, rows):
        table = Table.from_rows(SCHEMA, rows)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "fuzz.tsv"
            save_table_tsv(table, path)
            loaded = load_table_tsv(SCHEMA, path)
        assert loaded.num_rows == len(rows)
        assert loaded.column("id").tolist() == [r[0] for r in rows]
        assert loaded.column("score").tolist() == pytest.approx(
            [float(r[1]) for r in rows]
        )
        assert loaded.values("tag") == [r[2] for r in rows]
