"""Session-wide test wiring for the analysis env toggles.

``RINGO_RACE_CHECK=1 pytest tests/test_parallel_containers.py`` arms
the lockset race detector for the whole run, turning the parallel
suites into a race-discipline smoke (CI's ``lint-analysis`` job does
exactly this). ``RINGO_SANITIZE`` needs no wiring here — the snapshot
cache consults it directly on every conversion.
"""

import pytest

from repro.analysis import races


@pytest.fixture(scope="session", autouse=True)
def _race_detector_from_env():
    if not races.env_enabled():
        yield
        return
    detector = races.enable(raise_on_race=True)
    yield
    if races.current() is detector:
        races.disable()
