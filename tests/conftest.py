"""Session-wide test wiring for the analysis/observability env toggles.

``RINGO_RACE_CHECK=1 pytest tests/test_parallel_containers.py`` arms
the lockset race detector for the whole run, turning the parallel
suites into a race-discipline smoke (CI's ``lint-analysis`` job does
exactly this). ``RINGO_TRACE=1 pytest`` likewise arms the repro.obs
tracer for the whole run, so the entire suite doubles as an
instrumentation soak (CI's ``obs-smoke`` job). ``RINGO_SANITIZE``
needs no wiring here — the snapshot cache consults it directly on
every conversion.
"""

import pytest

from repro import obs
from repro.analysis import races


@pytest.fixture(scope="session", autouse=True)
def _race_detector_from_env():
    if not races.env_enabled():
        yield
        return
    detector = races.enable(raise_on_race=True)
    yield
    if races.current() is detector:
        races.disable()


@pytest.fixture(scope="session", autouse=True)
def _tracer_from_env():
    if not obs.env_enabled():
        yield
        return
    tracer = obs.enable_from_env()
    yield
    if tracer is not None and obs.current_tracer() is tracer:
        obs.disable()
