"""Units for the delta layer: mutation log, consolidation, merge, sanitizer.

The focused counterpart to the trace-differential harness — each
invariant the delta path depends on is pinned down in isolation: log
contiguity and self-poisoning, add/delete cancellation, the keyed CSR
merge (including the delete-path regressions: overlay-only edges,
self-loops, node deletes that cascade), the merged-view sanitizer's
failure branches, and the op-stream validators.
"""

import numpy as np
import pytest

from repro.analysis.sanitize import sanitize_delta_view
from repro.exceptions import GraphError, SanitizerError
from repro.graphs.csr import CSRGraph
from repro.graphs.directed import DirectedGraph
from repro.graphs.snapshot import csr_snapshot
from repro.graphs.undirected import UndirectedGraph
from repro.incremental.delta import (
    DeltaError,
    EdgeDelta,
    MutationLog,
    apply_delta,
    consolidate,
)
from repro.incremental.engine import incremental_engine
from repro.incremental.ingest import apply_graph_ops, validate_ops
from tests.helpers import build_directed, build_undirected


@pytest.fixture(autouse=True)
def _fresh_engine():
    engine = incremental_engine()
    engine.reset()
    yield engine
    engine.reset()


class TestMutationLog:
    def test_contiguous_recording_and_slice(self):
        log = MutationLog(10)
        log.record(11, "add_edge", 1, 2)
        log.record(11, "add_edge", 2, 3)  # several records per bump is fine
        log.record(12, "del_edge", 1, 2)
        assert log.usable_at(12)
        assert log.slice(10, 12) == [
            ("add_edge", 1, 2), ("add_edge", 2, 3), ("del_edge", 1, 2),
        ]
        assert log.slice(11, 12) == [("del_edge", 1, 2)]

    def test_version_gap_poisons(self):
        log = MutationLog(10)
        log.record(11, "add_edge", 1, 2)
        log.record(13, "add_edge", 2, 3)  # skipped v12: a mutation escaped
        assert log.poison_reason is not None
        assert "gap" in log.poison_reason
        assert log.slice(10, 13) is None
        assert not log.usable_at(13)

    def test_overflow_poisons(self, monkeypatch):
        monkeypatch.setattr("repro.incremental.delta.MAX_LOG_OPS", 5)
        log = MutationLog(0)
        for version in range(1, 8):
            log.record(version, "add_node", version, 0)
        assert log.poison_reason is not None
        assert "overflow" in log.poison_reason
        assert log.slice(0, 3) is None

    def test_slice_outside_window_is_none(self):
        log = MutationLog(10)
        log.record(11, "add_edge", 1, 2)
        assert log.slice(9, 11) is None  # anchored after v9
        assert log.slice(10, 12) is None  # not yet caught up to v12
        assert log.slice(10, 11) is not None

    def test_drop_before_narrows_the_window(self):
        log = MutationLog(0)
        for version in range(1, 6):
            log.record(version, "add_node", version, 0)
        log.drop_before(3)
        assert log.slice(0, 5) is None  # floor moved past v0
        assert log.slice(3, 5) == [("add_node", 4, 0), ("add_node", 5, 0)]
        assert len(log) == 2

    def test_explicit_poison_clears_ops(self):
        log = MutationLog(0)
        log.record(1, "add_edge", 1, 2)
        log.poison("bulk adjacency install")
        assert len(log) == 0
        assert log.slice(0, 1) is None


class TestConsolidate:
    def test_add_then_delete_cancels(self):
        delta = consolidate(
            [("add_edge", 1, 2), ("del_edge", 1, 2)], directed=True
        )
        assert delta.empty()

    def test_delete_then_readd_cancels(self):
        delta = consolidate(
            [("del_edge", 1, 2), ("add_edge", 1, 2)], directed=True
        )
        assert delta.empty()

    def test_node_add_then_delete_cancels(self):
        delta = consolidate(
            [("add_node", 7, 0), ("del_node", 7, 0)], directed=True
        )
        assert delta.empty()

    def test_undirected_keys_normalise(self):
        delta = consolidate(
            [("add_edge", 5, 2), ("del_edge", 2, 5)], directed=False
        )
        assert delta.empty()
        delta = consolidate([("add_edge", 5, 2)], directed=False)
        assert delta.edges_added == {(2, 5)}

    def test_unknown_kind_raises(self):
        with pytest.raises(DeltaError, match="unknown mutation kind"):
            consolidate([("rename_edge", 1, 2)], directed=True)

    def test_size_counts_all_sets(self):
        delta = consolidate(
            [("add_node", 9, 0), ("del_edge", 1, 2), ("add_edge", 3, 4)],
            directed=True,
        )
        assert delta.size() == 3


class TestApplyDelta:
    def test_matches_from_graph_directed(self):
        graph = build_directed([(1, 2), (2, 3), (3, 1)])
        base = CSRGraph.from_graph(graph)
        graph.add_edge(3, 4)
        graph.del_edge(1, 2)
        delta = consolidate(
            [("add_edge", 3, 4), ("del_edge", 1, 2)], directed=True
        )
        delta.nodes_added.add(4)
        merged = apply_delta(base, delta, directed=True)
        expected = CSRGraph.from_graph(graph)
        assert np.array_equal(merged.node_ids, expected.node_ids)
        assert np.array_equal(merged.out_indptr, expected.out_indptr)
        assert np.array_equal(merged.out_indices, expected.out_indices)
        assert np.array_equal(merged.in_indptr, expected.in_indptr)
        assert np.array_equal(merged.in_indices, expected.in_indices)

    def test_undirected_merge_shares_orientations(self):
        graph = build_undirected([(1, 2), (2, 3)])
        base = CSRGraph.from_graph(graph)
        delta = EdgeDelta()
        delta.edges_added.add((1, 3))
        merged = apply_delta(base, delta, directed=False)
        # from_graph's undirected representation detail is preserved:
        # both orientations carry the same symmetric adjacency.
        assert np.array_equal(merged.out_indptr, merged.in_indptr)
        assert np.array_equal(merged.out_indices, merged.in_indices)
        graph.add_edge(1, 3)
        expected = CSRGraph.from_graph(graph)
        assert np.array_equal(merged.out_indices, expected.out_indices)

    def test_dangling_edge_delete_raises(self):
        base = CSRGraph.from_edges([1, 2], [2, 3])
        delta = EdgeDelta()
        delta.edges_deleted.add((1, 3))
        with pytest.raises(DeltaError, match="dangling"):
            apply_delta(base, delta, directed=True)

    def test_duplicate_node_add_raises(self):
        base = CSRGraph.from_edges([1], [2])
        delta = EdgeDelta()
        delta.nodes_added.add(2)
        with pytest.raises(DeltaError, match="already present"):
            apply_delta(base, delta, directed=True)

    def test_deleted_node_with_retained_edges_raises(self):
        base = CSRGraph.from_edges([1, 2], [2, 3])
        delta = EdgeDelta()
        delta.nodes_deleted.add(2)  # node delete without its edge deletes
        with pytest.raises(DeltaError):
            apply_delta(base, delta, directed=True)


def _assert_snapshot_matches(graph):
    got = csr_snapshot(graph)
    expected = CSRGraph.from_graph(graph)
    assert np.array_equal(got.node_ids, expected.node_ids)
    assert np.array_equal(got.out_indptr, expected.out_indptr)
    assert np.array_equal(got.out_indices, expected.out_indices)
    assert np.array_equal(got.in_indptr, expected.in_indptr)
    assert np.array_equal(got.in_indices, expected.in_indices)
    return got


class TestDeletePathRegressions:
    """Invalidation corners on the live cache path (both graph kinds)."""

    @pytest.mark.parametrize("build", [build_directed, build_undirected])
    def test_overlay_only_edge_delete_restamps(self, build, _fresh_engine):
        graph = build([(1, 2), (2, 3)])
        base = csr_snapshot(graph)
        graph.add_edge(5, 6)
        graph.del_edge(5, 6)
        graph.add_node(5)
        graph.del_node(5)
        graph.add_node(6)
        graph.del_node(6)
        # The run cancelled to a structural no-op: the cache restamps
        # the existing arrays instead of rebuilding or merging.
        assert _assert_snapshot_matches(graph) is base
        assert _fresh_engine.stats()["delta_applied"] == 1

    @pytest.mark.parametrize("build", [build_directed, build_undirected])
    def test_self_loop_add_and_delete(self, build, _fresh_engine):
        graph = build([(1, 2), (2, 3)])
        csr_snapshot(graph)
        graph.add_edge(2, 2)
        got = _assert_snapshot_matches(graph)
        assert got.num_self_loops() == 1
        graph.del_edge(2, 2)
        _assert_snapshot_matches(graph)
        assert _fresh_engine.stats()["delta_applied"] == 2
        assert _fresh_engine.stats()["fallback_full"] == 0

    @pytest.mark.parametrize("build", [build_directed, build_undirected])
    def test_del_node_with_self_loop(self, build, _fresh_engine):
        graph = build([(1, 2), (2, 3), (3, 1)])
        graph.add_edge(2, 2)
        csr_snapshot(graph)
        graph.del_node(2)  # cascades the loop and both incident edges
        _assert_snapshot_matches(graph)
        assert _fresh_engine.stats()["delta_applied"] == 1
        assert _fresh_engine.stats()["fallback_full"] == 0

    def test_multi_edge_churn_on_one_pair(self, _fresh_engine):
        graph = build_directed([(1, 2), (2, 1), (2, 3)])
        csr_snapshot(graph)
        for _ in range(3):  # repeated del/re-add of the same pair
            graph.del_edge(1, 2)
            graph.add_edge(1, 2)
        graph.del_edge(2, 1)
        _assert_snapshot_matches(graph)
        assert _fresh_engine.stats()["fallback_full"] == 0


class TestSanitizeDeltaView:
    def _merged(self):
        graph = build_directed([(1, 2), (2, 3)])
        base = CSRGraph.from_graph(graph)
        delta = EdgeDelta()
        delta.edges_added.add((3, 1))
        merged = apply_delta(base, delta, directed=True)
        merged._delta_base_version = graph.version
        merged._delta_target_version = graph.version + 1
        return merged, base, delta

    def test_valid_merge_passes(self):
        merged, base, delta = self._merged()
        summary = sanitize_delta_view(
            merged, base, delta, expected_version=merged._delta_target_version
        )
        assert summary["delta_checked"]

    def test_watermark_mismatch_fails(self):
        merged, base, delta = self._merged()
        with pytest.raises(SanitizerError, match="delta.watermark"):
            sanitize_delta_view(
                merged, base, delta,
                expected_version=merged._delta_target_version + 1,
            )

    def test_node_count_mismatch_fails(self):
        merged, base, delta = self._merged()
        delta.nodes_added.add(99)  # claims a node the merge never added
        with pytest.raises(SanitizerError, match="delta.node-count"):
            sanitize_delta_view(merged, base, delta)

    def test_dangling_delete_fails(self):
        merged, base, delta = self._merged()
        delta.edges_deleted.add((1, 2))  # still present in the merged view
        with pytest.raises(SanitizerError, match="delta.dangling-delete"):
            sanitize_delta_view(merged, base, delta)

    def test_missing_add_fails(self):
        merged, base, delta = self._merged()
        delta.edges_added.add((2, 1))  # endpoints exist, edge absent
        with pytest.raises(SanitizerError, match="delta.missing-add"):
            sanitize_delta_view(merged, base, delta)

    def test_add_endpoint_missing_fails(self):
        merged, base, delta = self._merged()
        delta.edges_added.add((1, 42))  # node 42 not in the merged view
        with pytest.raises(SanitizerError, match="delta.add-endpoint"):
            sanitize_delta_view(merged, base, delta)


class TestIngestValidation:
    def test_valid_stream_normalises(self):
        assert validate_ops([["add_edge", 1, 2], ("del_node", 7)]) == [
            ("add_edge", 1, 2), ("del_node", 7),
        ]

    @pytest.mark.parametrize("bad", [
        [["grow_edge", 1, 2]],        # unknown kind
        [["add_edge", 1]],            # wrong arity
        [["add_node", 1, 2]],         # wrong arity
        [["add_edge", 1, "x"]],       # non-integer operand
        ["add_edge"],                 # op is not a sequence
        [42],
    ])
    def test_malformed_streams_raise(self, bad):
        with pytest.raises(GraphError):
            validate_ops(bad)

    def test_idempotent_adds_are_skipped(self):
        graph = DirectedGraph()
        summary = apply_graph_ops(
            graph, [["add_edge", 1, 2], ["add_edge", 1, 2], ["add_node", 1]]
        )
        assert summary["applied"] == 1
        assert summary["skipped"] == 2
        assert summary["edges"] == 1

    def test_deleting_missing_edge_raises(self):
        graph = UndirectedGraph()
        graph.add_edge(1, 2)
        with pytest.raises(GraphError):
            apply_graph_ops(graph, [["del_edge", 1, 3]])


class TestOutEdgeKeys:
    def test_keys_are_global_ascending_and_cached(self):
        csr = CSRGraph.from_edges([0, 0, 1, 2], [1, 2, 2, 0])
        keys = csr.out_edge_keys()
        expected = csr.edge_sources() * csr.num_nodes + csr.out_indices
        assert np.array_equal(keys, expected)
        assert np.all(np.diff(keys) > 0)  # simple graph: strictly ascending
        assert csr.out_edge_keys() is keys  # cached
