"""Tests for community detection, MST, diameter, ordering, random walks,
and statistics."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms.community import community_sizes, label_propagation, modularity
from repro.algorithms.diameter import diameter, effective_diameter
from repro.algorithms.mst import UnionFind, minimum_spanning_forest, spanning_forest_from_edges
from repro.algorithms.ordering import is_dag, longest_path_length, topological_sort
from repro.algorithms.randomwalk import approximate_ppr, random_walk, sample_nodes
from repro.algorithms.statistics import (
    degree_assortativity,
    degree_distribution,
    edge_count_in_buckets,
    reciprocity,
    summarize,
)
from repro.exceptions import AlgorithmError
from repro.graphs.network import Network

from tests.helpers import (
    build_directed,
    build_undirected,
    random_undirected,
    to_networkx,
)

TWO_CLIQUES = [(0, 1), (1, 2), (0, 2), (5, 6), (6, 7), (5, 7), (2, 5)]


class TestLabelPropagation:
    def test_separates_cliques(self):
        graph = build_undirected(TWO_CLIQUES[:-1])  # no bridge
        labels = label_propagation(graph)
        assert labels[0] == labels[1] == labels[2]
        assert labels[5] == labels[6] == labels[7]
        assert labels[0] != labels[5]

    def test_labels_dense_from_zero(self):
        graph = build_undirected(TWO_CLIQUES[:-1])
        labels = label_propagation(graph)
        assert set(labels.values()) == set(range(len(set(labels.values()))))

    def test_deterministic_for_seed(self):
        graph = random_undirected(40, 120, seed=61)
        assert label_propagation(graph, seed=3) == label_propagation(graph, seed=3)

    def test_community_sizes(self):
        assert community_sizes({1: 0, 2: 0, 3: 1}) == {0: 2, 1: 1}


class TestModularity:
    def test_matches_networkx(self):
        graph = build_undirected(TWO_CLIQUES)
        communities = {0: 0, 1: 0, 2: 0, 5: 1, 6: 1, 7: 1}
        expected = nx.community.modularity(
            to_networkx(graph), [{0, 1, 2}, {5, 6, 7}]
        )
        assert modularity(graph, communities) == pytest.approx(expected)

    def test_single_community_zero_ish(self):
        graph = build_undirected(TWO_CLIQUES)
        communities = {node: 0 for node in graph.nodes()}
        assert modularity(graph, communities) == pytest.approx(0.0)

    def test_empty_graph(self):
        from repro.graphs.undirected import UndirectedGraph

        assert modularity(UndirectedGraph(), {}) == 0.0

    def test_good_partition_beats_random(self):
        graph = build_undirected(TWO_CLIQUES)
        good = {0: 0, 1: 0, 2: 0, 5: 1, 6: 1, 7: 1}
        bad = {0: 0, 1: 1, 2: 0, 5: 1, 6: 0, 7: 1}
        assert modularity(graph, good) > modularity(graph, bad)


class TestUnionFind:
    def test_union_and_find(self):
        uf = UnionFind()
        assert uf.union(1, 2)
        assert not uf.union(2, 1)
        assert uf.connected(1, 2)
        assert not uf.connected(1, 3)

    def test_transitive_union(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(2, 3)
        assert uf.connected(1, 3)


class TestMst:
    def test_weighted_forest_matches_networkx(self):
        edges = [(0, 1, 4.0), (0, 2, 1.0), (1, 2, 2.0), (1, 3, 5.0), (2, 3, 8.0)]
        net = Network()
        for u, v, w in edges:
            net.add_edge(u, v)
            net.set_edge_attr(u, v, "w", w)
        forest, total = minimum_spanning_forest(net, weight="w")
        reference = nx.Graph()
        reference.add_weighted_edges_from(edges)
        expected = nx.minimum_spanning_tree(reference)
        assert total == pytest.approx(expected.size(weight="weight"))
        assert forest.num_edges == expected.number_of_edges()

    def test_unweighted_forest_spans(self):
        graph = build_undirected(TWO_CLIQUES)
        forest, total = minimum_spanning_forest(graph)
        assert forest.num_edges == graph.num_nodes - 1
        assert total == forest.num_edges

    def test_disconnected_forest(self):
        graph = build_undirected([(1, 2), (3, 4)])
        forest, _ = minimum_spanning_forest(graph)
        assert forest.num_edges == 2
        assert forest.num_nodes == 4

    def test_from_edges(self):
        forest, total = spanning_forest_from_edges(
            [(1, 2, 3.0), (2, 3, 1.0), (1, 3, 2.0)]
        )
        assert forest.num_edges == 2
        assert total == 3.0


class TestDiameter:
    def test_path_graph(self):
        graph = build_undirected([(0, 1), (1, 2), (2, 3)])
        assert diameter(graph) == 3

    def test_matches_networkx(self):
        graph = random_undirected(40, 120, seed=71)
        reference = to_networkx(graph)
        giant = max(nx.connected_components(reference), key=len)
        expected = nx.diameter(reference.subgraph(giant))
        assert diameter(graph) == expected

    def test_empty_graph_raises(self):
        from repro.graphs.undirected import UndirectedGraph

        with pytest.raises(AlgorithmError):
            diameter(UndirectedGraph())

    def test_effective_diameter_below_diameter(self):
        graph = random_undirected(60, 150, seed=72)
        assert effective_diameter(graph) <= diameter(graph)

    def test_effective_diameter_star(self):
        from repro.algorithms.generators import star_graph

        graph = star_graph(20)
        # Most pairs are at distance 2 (leaf-hub-leaf).
        assert 1.0 <= effective_diameter(graph) <= 2.0

    def test_sampled_diameter_runs(self):
        graph = random_undirected(80, 300, seed=73)
        assert diameter(graph, samples=10, seed=1) <= diameter(graph)


class TestOrdering:
    def test_topological_sort(self):
        graph = build_directed([(1, 2), (1, 3), (3, 2)])
        assert topological_sort(graph) == [1, 3, 2]

    def test_cycle_raises(self):
        graph = build_directed([(1, 2), (2, 1)])
        with pytest.raises(AlgorithmError):
            topological_sort(graph)

    def test_is_dag(self):
        assert is_dag(build_directed([(1, 2), (2, 3)]))
        assert not is_dag(build_directed([(1, 2), (2, 1)]))

    def test_respects_edges(self):
        graph = build_directed([(5, 3), (3, 1), (5, 1), (2, 1)])
        order = topological_sort(graph)
        position = {node: i for i, node in enumerate(order)}
        for src, dst in graph.edges():
            assert position[src] < position[dst]

    def test_longest_path(self):
        graph = build_directed([(1, 2), (2, 3), (1, 3)])
        assert longest_path_length(graph) == 2


class TestRandomWalk:
    def test_walk_length_and_start(self):
        graph = build_directed([(1, 2), (2, 1)])
        walk = random_walk(graph, 1, 10, seed=1)
        assert len(walk) == 11
        assert walk[0] == 1

    def test_walk_follows_edges(self):
        graph = build_directed([(1, 2), (2, 3), (3, 1)])
        walk = random_walk(graph, 1, 20, seed=2)
        for u, v in zip(walk, walk[1:]):
            assert graph.has_edge(u, v) or v == 1  # restart jumps to start

    def test_dead_end_restarts(self):
        graph = build_directed([(1, 2)])
        walk = random_walk(graph, 1, 5, seed=3)
        assert set(walk) <= {1, 2}

    def test_ppr_concentrates_near_source(self):
        graph = build_directed([(1, 2), (2, 1), (3, 4), (4, 3), (2, 3)])
        scores = approximate_ppr(graph, 1, num_walks=300, seed=4)
        assert scores[1] > scores.get(4, 0.0)
        assert sum(scores.values()) == pytest.approx(1.0)

    def test_sample_nodes(self):
        graph = build_directed([(i, i + 1) for i in range(30)])
        chosen = sample_nodes(graph, 10, seed=5)
        assert len(set(chosen)) == 10
        assert all(graph.has_node(node) for node in chosen)

    def test_sample_too_many_raises(self):
        graph = build_directed([(1, 2)])
        with pytest.raises(AlgorithmError):
            sample_nodes(graph, 10)


class TestStatistics:
    def test_summary_fields(self):
        graph = build_directed([(1, 2), (2, 1), (1, 1)])
        summary = summarize(graph)
        assert summary.num_nodes == 2
        assert summary.num_edges == 3
        assert summary.self_loops == 1
        assert summary.is_directed
        assert "directed graph" in str(summary)

    def test_degree_distribution_table(self):
        graph = build_directed([(0, 1), (0, 2), (0, 3)])
        table = degree_distribution(graph, "out")
        rows = dict(zip(table.column("Degree").tolist(), table.column("Count").tolist()))
        assert rows == {0: 3, 3: 1}

    def test_degree_distribution_invalid_mode(self):
        with pytest.raises(ValueError):
            degree_distribution(build_directed([(0, 1)]), "sideways")

    def test_reciprocity(self):
        graph = build_directed([(1, 2), (2, 1), (1, 3)])
        assert reciprocity(graph) == pytest.approx(2 / 3)

    def test_reciprocity_empty(self):
        from repro.graphs.directed import DirectedGraph

        assert reciprocity(DirectedGraph()) == 0.0

    def test_assortativity_matches_networkx_sign(self):
        from repro.algorithms.generators import star_graph

        graph = star_graph(10)
        # Stars are strongly disassortative.
        assert degree_assortativity(graph) < 0

    def test_edge_count_in_buckets(self):
        assert edge_count_in_buckets([5, 50, 500], [10, 100]) == [1, 1, 1]
        assert edge_count_in_buckets([], [10]) == [0, 0]
