"""Tests for spectral analysis and biconnected components."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms.connectivity import biconnected_components
from repro.algorithms.generators import planted_partition, ring_graph
from repro.algorithms.spectral import (
    algebraic_connectivity,
    fiedler_vector,
    laplacian_matrix,
    spectral_bisection,
)
from repro.exceptions import AlgorithmError

from tests.helpers import build_undirected, random_undirected, to_networkx


class TestLaplacian:
    def test_rows_sum_to_zero(self):
        graph = random_undirected(30, 90, seed=41)
        laplacian = laplacian_matrix(graph)
        sums = np.asarray(laplacian.sum(axis=1)).ravel()
        assert np.allclose(sums, 0.0)

    def test_diagonal_is_degree(self):
        graph = build_undirected([(1, 2), (2, 3)])
        laplacian = laplacian_matrix(graph).toarray()
        assert laplacian[1, 1] == 2.0  # dense index of node 2

    def test_empty_graph_rejected(self):
        from repro.graphs.undirected import UndirectedGraph

        with pytest.raises(AlgorithmError):
            laplacian_matrix(UndirectedGraph())


class TestFiedler:
    def test_connectivity_positive_for_connected(self):
        assert algebraic_connectivity(ring_graph(10)) > 1e-8

    def test_connectivity_zero_for_disconnected(self):
        graph = build_undirected([(1, 2), (3, 4)])
        assert algebraic_connectivity(graph) < 1e-6

    def test_matches_networkx_value(self):
        graph = random_undirected(25, 80, seed=42)
        reference = to_networkx(graph)
        reference.remove_edges_from(nx.selfloop_edges(reference))
        giant = max(nx.connected_components(reference), key=len)
        if len(giant) != graph.num_nodes:
            pytest.skip("sampled graph disconnected; eigenvalue compares differ")
        expected = nx.algebraic_connectivity(reference, tol=1e-10)
        assert algebraic_connectivity(graph) == pytest.approx(expected, rel=1e-4)

    def test_too_small_rejected(self):
        with pytest.raises(AlgorithmError):
            fiedler_vector(build_undirected([(1, 2)]))


class TestSpectralBisection:
    def test_recovers_two_cliques(self):
        graph = planted_partition(2, 12, p_in=0.9, p_out=0.01, seed=5)
        left, right = spectral_bisection(graph)
        blocks = ({n for n in graph.nodes() if n < 12}, {n for n in graph.nodes() if n >= 12})
        assert {frozenset(left), frozenset(right)} == {
            frozenset(blocks[0]), frozenset(blocks[1]),
        }

    def test_partition_covers_all_nodes(self):
        graph = random_undirected(30, 100, seed=43)
        left, right = spectral_bisection(graph)
        assert left | right == set(graph.nodes())
        assert not left & right


class TestBiconnectedComponents:
    def test_triangle_with_tail(self):
        graph = build_undirected([(1, 2), (2, 3), (3, 1), (3, 4)])
        components = biconnected_components(graph)
        sizes = sorted(len(c) for c in components)
        assert sizes == [1, 3]

    def test_bridge_is_singleton_component(self):
        graph = build_undirected([(1, 2)])
        assert biconnected_components(graph) == [{(1, 2)}]

    def test_every_edge_in_exactly_one_component(self):
        graph = random_undirected(40, 70, seed=44)
        components = biconnected_components(graph)
        all_edges = [e for c in components for e in c]
        assert len(all_edges) == len(set(all_edges))
        expected = {(u, v) for u, v in graph.edges() if u != v}
        assert set(all_edges) == expected

    def test_matches_networkx(self):
        graph = random_undirected(35, 60, seed=45)
        reference = to_networkx(graph)
        reference.remove_edges_from(nx.selfloop_edges(reference))
        expected = [
            frozenset((min(u, v), max(u, v)) for u, v in component)
            for component in nx.biconnected_component_edges(reference)
        ]
        ours = [frozenset(c) for c in biconnected_components(graph)]
        assert sorted(map(sorted, ours)) == sorted(map(sorted, expected))


class TestReportCommand:
    def test_report_prints_results(self, tmp_path, capsys):
        from repro.cli import main

        results = tmp_path / "results"
        results.mkdir()
        (results / "table9.txt").write_text("# fake table\nrow 1\n")
        assert main(["report", "--results", str(results)]) == 0
        out = capsys.readouterr().out
        assert "table9" in out and "row 1" in out

    def test_report_missing_dir(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["report", "--results", str(tmp_path / "nope")]) == 2
