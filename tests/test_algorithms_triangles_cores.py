"""Tests for triangle counting, clustering, and k-cores vs networkx."""

import networkx as nx
import pytest

from repro.algorithms.cores import core_numbers, degeneracy, k_core
from repro.algorithms.triangles import (
    average_clustering,
    clustering_coefficients,
    global_clustering,
    total_triangles,
    triangle_counts,
)
from repro.parallel.executor import WorkerPool

from tests.helpers import (
    build_directed,
    build_undirected,
    random_undirected,
    to_networkx,
)

TRIANGLE_PLUS_TAIL = [(1, 2), (2, 3), (3, 1), (3, 4)]


class TestTriangles:
    def test_single_triangle(self):
        graph = build_undirected(TRIANGLE_PLUS_TAIL)
        counts = triangle_counts(graph)
        assert counts == {1: 1, 2: 1, 3: 1, 4: 0}
        assert total_triangles(graph) == 1

    def test_directed_uses_undirected_projection(self):
        graph = build_directed([(1, 2), (2, 3), (3, 1)])
        assert total_triangles(graph) == 1

    def test_self_loops_ignored(self):
        graph = build_undirected(TRIANGLE_PLUS_TAIL + [(1, 1)])
        assert total_triangles(graph) == 1

    def test_no_triangles_in_tree(self):
        graph = build_undirected([(1, 2), (2, 3), (2, 4)])
        assert total_triangles(graph) == 0

    def test_matches_networkx_on_random_graph(self):
        graph = random_undirected(60, 250, seed=21)
        expected = nx.triangles(to_networkx(graph))
        assert triangle_counts(graph) == expected

    def test_parallel_pool_matches_serial(self):
        graph = random_undirected(80, 400, seed=22)
        serial = triangle_counts(graph)
        with WorkerPool(4) as pool:
            parallel = triangle_counts(graph, pool=pool)
        assert serial == parallel

    def test_complete_graph_count(self):
        from repro.algorithms.generators import complete_graph

        graph = complete_graph(6)
        assert total_triangles(graph) == 20  # C(6,3)


class TestClustering:
    def test_local_coefficients_match_networkx(self):
        graph = random_undirected(50, 200, seed=23)
        ours = clustering_coefficients(graph)
        expected = nx.clustering(to_networkx(graph))
        for node, value in expected.items():
            assert ours[node] == pytest.approx(value)

    def test_average_matches_networkx(self):
        graph = random_undirected(50, 200, seed=24)
        assert average_clustering(graph) == pytest.approx(
            nx.average_clustering(to_networkx(graph))
        )

    def test_global_matches_networkx_transitivity(self):
        graph = random_undirected(50, 200, seed=25)
        assert global_clustering(graph) == pytest.approx(
            nx.transitivity(to_networkx(graph))
        )

    def test_empty_graph(self):
        from repro.graphs.undirected import UndirectedGraph

        assert average_clustering(UndirectedGraph()) == 0.0
        assert global_clustering(UndirectedGraph()) == 0.0


class TestCores:
    def test_triangle_tail(self):
        graph = build_undirected(TRIANGLE_PLUS_TAIL)
        cores = core_numbers(graph)
        assert cores == {1: 2, 2: 2, 3: 2, 4: 1}

    def test_matches_networkx(self):
        graph = random_undirected(70, 300, seed=31)
        reference = to_networkx(graph)
        reference.remove_edges_from(nx.selfloop_edges(reference))
        assert core_numbers(graph) == nx.core_number(reference)

    def test_k_core_subgraph(self):
        graph = build_undirected(TRIANGLE_PLUS_TAIL)
        core = k_core(graph, 2)
        assert sorted(core.nodes()) == [1, 2, 3]
        assert core.num_edges == 3

    def test_three_core_of_clique(self):
        from repro.algorithms.generators import complete_graph

        graph = complete_graph(5)
        assert k_core(graph, 3).num_nodes == 5
        assert k_core(graph, 5).num_nodes == 0

    def test_k_core_matches_networkx(self):
        graph = random_undirected(60, 240, seed=32)
        reference = to_networkx(graph)
        reference.remove_edges_from(nx.selfloop_edges(reference))
        for k in (2, 3):
            ours = k_core(graph, k)
            expected = nx.k_core(reference, k)
            assert sorted(ours.nodes()) == sorted(expected.nodes())

    def test_degeneracy(self):
        graph = build_undirected(TRIANGLE_PLUS_TAIL)
        assert degeneracy(graph) == 2

    def test_degeneracy_empty(self):
        from repro.graphs.undirected import UndirectedGraph

        assert degeneracy(UndirectedGraph()) == 0

    def test_directed_graph_uses_projection(self):
        graph = build_directed([(1, 2), (2, 3), (3, 1), (3, 4)])
        cores = core_numbers(graph)
        assert cores[1] == 2 and cores[4] == 1
