"""Smoke tests: every shipped example runs cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        output = run_example("quickstart.py")
        assert "PageRank scores" in output
        assert "234" in output or "functions" in output

    def test_stackoverflow_experts_default_tag(self):
        output = run_example("stackoverflow_experts.py")
        assert "Top-10 Java experts" in output
        assert "Precision@10" in output
        precision = int(output.split("Precision@10:")[1].split("%")[0].strip())
        assert precision >= 70

    def test_stackoverflow_experts_other_tag(self):
        output = run_example("stackoverflow_experts.py", "Python")
        assert "Top-10 Python experts" in output

    def test_stackoverflow_unknown_tag_fails_cleanly(self):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES / "stackoverflow_experts.py"), "COBOL"],
            capture_output=True,
            text=True,
        )
        assert result.returncode != 0
        assert "unknown tag" in result.stderr

    def test_durable_session(self, tmp_path):
        output = run_example("durable_session.py", str(tmp_path / "state"))
        assert "Checkpoint 1 at WAL LSN" in output
        assert "WAL records replayed" in output
        assert "Catalog verified" in output

    def test_graph_construction(self):
        output = run_example("graph_construction.py")
        assert "NextK" in output
        assert "SimJoin" in output
        assert "propagation graph" in output

    def test_performance_demo(self):
        output = run_example("performance_demo.py")
        assert "lj-scaled" in output
        assert "table -> graph" in output
        assert "triangles" in output

    def test_temporal_cascades(self):
        output = run_example("temporal_cascades.py")
        assert "windowed snapshots" in output
        assert "cumulative growth" in output
        assert "most central participants" in output

    def test_community_structure(self):
        output = run_example("community_structure.py")
        assert "communities found: 4" in output
        assert "modularity" in output
        assert "predictions inside a planted community" in output

    def test_service_client(self, tmp_path):
        output = run_example("service_client.py", str(tmp_path / "spool"))
        assert "Running both tenant workloads" in output
        assert "DeadlineExceededError" in output
        assert "alice evicted: True" in output
        assert "revivals: 1" in output
        assert "both tenant catalogs identical after drain" in output
