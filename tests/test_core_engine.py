"""Tests for the Ringo session API and the function registry."""

import pytest

from repro.core.engine import Ringo
from repro.core.registry import FunctionRegistry, build_default_registry
from repro.exceptions import RingoError
from repro.workflows.stackoverflow import StackOverflowConfig, generate_stackoverflow


@pytest.fixture(scope="module")
def ringo():
    session = Ringo(workers=1)
    yield session
    session.close()


class TestRegistry:
    def test_register_and_get(self):
        registry = FunctionRegistry()
        registry.register("f", lambda: 1, "test")
        assert registry.get("f").func() == 1
        assert "f" in registry

    def test_duplicate_rejected(self):
        registry = FunctionRegistry()
        registry.register("f", lambda: 1, "test")
        with pytest.raises(RingoError):
            registry.register("f", lambda: 2, "test")

    def test_unknown_name(self):
        with pytest.raises(RingoError):
            FunctionRegistry().get("nope")

    def test_names_filtered_by_category(self):
        registry = FunctionRegistry()
        registry.register("a", lambda: 1, "x")
        registry.register("b", lambda: 1, "y")
        assert registry.names("x") == ["a"]

    def test_default_registry_exceeds_two_hundred(self):
        # The paper: "over 200 different graph analytics algorithms".
        registry = build_default_registry()
        assert len(registry) > 200

    def test_every_entry_is_callable_with_description(self):
        for entry in build_default_registry():
            assert callable(entry.func)
            assert entry.description

    def test_categories_cover_the_stack(self):
        categories = set(build_default_registry().categories())
        assert {"algorithm", "table", "conversion", "graph-object", "session"} <= categories


class TestSessionBasics:
    def test_context_manager(self):
        with Ringo(workers=1) as session:
            assert session.NumFunctions() > 200

    def test_tables_share_session_pool(self, ringo):
        a = ringo.TableFromColumns({"s": ["x"]})
        b = ringo.TableFromColumns({"s": ["y"]})
        assert a.pool is b.pool is ringo.pool

    def test_select_and_join(self, ringo):
        users = ringo.TableFromColumns({"Id": [1, 2], "Name": ["ann", "bo"]})
        posts = ringo.TableFromColumns({"UserId": [2, 2]})
        joined = ringo.Join(users, posts, "Id", "UserId")
        assert joined.num_rows == 2

    def test_to_graph_and_back(self, ringo):
        table = ringo.TableFromColumns({"a": [1, 2, 3], "b": [2, 3, 1]})
        graph = ringo.ToGraph(table, "a", "b")
        edge_table = ringo.GetEdgeTable(graph)
        assert edge_table.num_rows == 3
        node_table = ringo.GetNodeTable(graph, include_degrees=True)
        assert node_table.num_rows == 3

    def test_analytics_surface(self, ringo):
        table = ringo.TableFromColumns({"a": [1, 2, 3, 1], "b": [2, 3, 1, 3]})
        graph = ringo.ToGraph(table, "a", "b")
        assert set(ringo.GetPageRank(graph)) == {1, 2, 3}
        hubs, auths = ringo.GetHits(graph)
        assert len(hubs) == 3
        assert ringo.GetTriangles(graph) == 1
        assert ringo.GetScc(graph)[1] == ringo.GetScc(graph)[2]
        assert ringo.GetWcc(graph)[1] == ringo.GetWcc(graph)[3]
        assert ringo.GetSssp(graph, 1)[3] == 1.0
        assert ringo.GetBfsLevels(graph, 1)[2] == 1
        assert ringo.GetDiameter(graph) == 1
        assert ringo.GetCoreNumbers(graph)[1] == 2

    def test_generators(self, ringo):
        assert ringo.GenRMat(6, 200, seed=1).num_nodes > 10
        assert ringo.GenPrefAttach(30, 2, seed=1).num_nodes == 30
        assert ringo.GenErdosRenyi(20, 30, seed=1).num_edges == 30

    def test_table_ops_facade(self, ringo):
        table = ringo.TableFromColumns({"k": [2, 1, 2], "v": [1.0, 2.0, 3.0]})
        assert ringo.OrderBy(table, "k").column("k").tolist() == [1, 2, 2]
        assert ringo.GroupBy(table, "k").num_rows == 2
        assert ringo.Project(table, ["v"]).num_cols == 1
        assert ringo.Rename(table, {"v": "w"}).schema.names == ("k", "w")
        other = ringo.TableFromColumns({"k": [2], "v": [1.0]})
        assert ringo.Union(table, other).num_rows == 3
        assert ringo.Intersect(table, other).num_rows == 1
        assert ringo.Minus(table, other).num_rows == 2

    def test_simjoin_nextk_facade(self, ringo):
        events = ringo.TableFromColumns({"t": [0.0, 0.3, 5.0]})
        assert ringo.SimJoin(events, events, "t", threshold=0.5).num_rows == 5
        log = ringo.TableFromColumns({"t": [1, 2, 3]})
        assert ringo.NextK(log, "t", k=1).num_rows == 2

    def test_functions_listing(self, ringo):
        names = ringo.Functions(category="session")
        assert "ringo.GetPageRank" in names


class TestPaperDemoPipeline:
    """Runs the §4.1 listing end to end on synthetic StackOverflow data."""

    def test_find_java_experts(self, tmp_path):
        from repro.workflows.stackoverflow import POSTS_SCHEMA, write_posts_tsv

        data = generate_stackoverflow(
            StackOverflowConfig(num_users=300, num_questions=1500, seed=11)
        )
        path = tmp_path / "posts.tsv"
        write_posts_tsv(data, path)

        with Ringo(workers=1) as ringo:
            posts = ringo.LoadTableTSV(POSTS_SCHEMA, path)
            java = ringo.Select(posts, "Tag=Java")
            questions = ringo.Select(java, "Type=question")
            answers = ringo.Select(java, "Type=answer")
            qa = ringo.Join(questions, answers, "AnswerId", "PostId")
            graph = ringo.ToGraph(qa, "UserId-1", "UserId-2")
            ranks = ringo.GetPageRank(graph)
            scores = ringo.TableFromHashMap(ranks, "User", "Scr")
            top = ringo.OrderBy(scores, "Scr", ascending=False)

        top_ten = top.column("User").tolist()[:10]
        java_experts = set(data.experts_for("Java"))
        hits = sum(1 for user in top_ten if user in java_experts)
        # The planted Java experts should dominate the PageRank top-10.
        assert hits >= 7
