"""Tests for the concurrent hash table, vector, and atomic counter."""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.atomics import AtomicCounter
from repro.parallel.concurrent_hash import LinearProbingHashTable
from repro.parallel.concurrent_vector import ConcurrentVector


class TestAtomicCounter:
    def test_fetch_add_returns_previous(self):
        counter = AtomicCounter(5)
        assert counter.fetch_add(3) == 5
        assert counter.value == 8

    def test_reset(self):
        counter = AtomicCounter(9)
        counter.reset()
        assert counter.value == 0

    def test_concurrent_claims_are_unique_and_dense(self):
        counter = AtomicCounter()
        claims = []
        lock = threading.Lock()

        def claim_many():
            local = [counter.fetch_add(1) for _ in range(500)]
            with lock:
                claims.extend(local)

        threads = [threading.Thread(target=claim_many) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(claims) == list(range(2000))


class TestLinearProbingHashTable:
    def test_insert_lookup_roundtrip(self):
        table = LinearProbingHashTable()
        table.insert(42, 7)
        assert table.lookup(42) == 7
        assert 42 in table

    def test_missing_key_returns_none(self):
        table = LinearProbingHashTable()
        assert table.lookup(99) is None
        assert 99 not in table

    def test_negative_key_rejected_on_insert(self):
        table = LinearProbingHashTable()
        with pytest.raises(ValueError):
            table.insert(-1, 0)

    def test_negative_key_lookup_is_none(self):
        assert LinearProbingHashTable().lookup(-5) is None

    def test_overwrite_updates_value(self):
        table = LinearProbingHashTable()
        table.insert(1, 10)
        table.insert(1, 20)
        assert table.lookup(1) == 20
        assert len(table) == 1

    def test_insert_if_absent_returns_existing(self):
        table = LinearProbingHashTable()
        assert table.insert_if_absent(5, 100) == 100
        assert table.insert_if_absent(5, 200) == 100

    def test_growth_preserves_contents(self):
        table = LinearProbingHashTable(expected=4)
        for key in range(1000):
            table.insert(key, key * 2)
        assert len(table) == 1000
        assert table.capacity >= 1000
        for key in range(1000):
            assert table.lookup(key) == key * 2

    def test_load_factor_bounded(self):
        table = LinearProbingHashTable()
        for key in range(5000):
            table.insert(key, key)
        assert table.load_factor <= 0.7

    def test_insert_many_and_lookup_many(self):
        table = LinearProbingHashTable()
        keys = np.arange(100, dtype=np.int64)
        table.insert_many(keys, keys * 3)
        probe = np.array([0, 50, 99, 1000], dtype=np.int64)
        result = table.lookup_many(probe)
        assert result.tolist() == [0, 150, 297, -1]

    def test_insert_many_length_mismatch(self):
        table = LinearProbingHashTable()
        with pytest.raises(ValueError):
            table.insert_many(np.arange(3), np.arange(2))

    def test_insert_many_negative_keys_rejected(self):
        table = LinearProbingHashTable()
        with pytest.raises(ValueError):
            table.insert_many(np.array([-1]), np.array([0]))

    def test_items_yields_all_pairs(self):
        table = LinearProbingHashTable()
        expected = {key: key + 1 for key in range(50)}
        for key, value in expected.items():
            table.insert(key, value)
        assert dict(table.items()) == expected

    def test_concurrent_inserts_all_land(self):
        table = LinearProbingHashTable(expected=4)

        def insert_span(start):
            for key in range(start, start + 500):
                table.insert(key, key)

        threads = [threading.Thread(target=insert_span, args=(i * 500,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(table) == 2000
        for key in range(2000):
            assert table.lookup(key) == key

    @settings(max_examples=50, deadline=None)
    @given(st.dictionaries(st.integers(min_value=0, max_value=10**12), st.integers(min_value=-(10**9), max_value=10**9), max_size=200))
    def test_behaves_like_dict(self, mapping):
        table = LinearProbingHashTable()
        for key, value in mapping.items():
            table.insert(key, value)
        assert len(table) == len(mapping)
        for key, value in mapping.items():
            assert table.lookup(key) == value


class TestConcurrentVector:
    def test_append_returns_claim_index(self):
        vec = ConcurrentVector()
        assert vec.append(3) == 0
        assert vec.append(1) == 1
        assert vec.to_array().tolist() == [3, 1]

    def test_extend_claims_block(self):
        vec = ConcurrentVector(capacity=2)
        start, stop = vec.extend(np.array([4, 5, 6]))
        assert (start, stop) == (0, 3)
        assert len(vec) == 3

    def test_extend_empty_is_noop(self):
        vec = ConcurrentVector()
        vec.append(1)
        start, stop = vec.extend(np.array([], dtype=np.int64))
        assert start == stop == 1
        assert len(vec) == 1

    def test_growth_beyond_initial_capacity(self):
        vec = ConcurrentVector(capacity=1)
        for value in range(100):
            vec.append(value)
        assert vec.to_array().tolist() == list(range(100))

    def test_sort_orders_committed_values(self):
        vec = ConcurrentVector()
        vec.extend(np.array([3, 1, 2]))
        vec.sort()
        assert vec.to_array().tolist() == [1, 2, 3]

    def test_concurrent_appends_preserve_all_values(self):
        vec = ConcurrentVector(capacity=1)

        def append_span(start):
            for value in range(start, start + 1000):
                vec.append(value)

        threads = [threading.Thread(target=append_span, args=(i * 1000,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(vec.to_array().tolist()) == list(range(4000))

    def test_concurrent_extends_preserve_all_values(self):
        vec = ConcurrentVector(capacity=1)

        def extend_span(start):
            vec.extend(np.arange(start, start + 1000))

        threads = [threading.Thread(target=extend_span, args=(i * 1000,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(vec.to_array().tolist()) == list(range(4000))
