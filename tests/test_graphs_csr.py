"""Tests for the CSR snapshot representation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError, NodeNotFoundError
from repro.graphs.csr import CSRGraph
from repro.graphs.directed import DirectedGraph
from repro.graphs.undirected import UndirectedGraph


class TestConstruction:
    def test_from_edges(self):
        csr = CSRGraph.from_edges([0, 0, 1], [1, 2, 2])
        assert csr.num_nodes == 3
        assert csr.num_edges == 3
        assert csr.out_neighbors(0).tolist() == [1, 2]

    def test_sparse_node_ids_densified(self):
        csr = CSRGraph.from_edges([100, 100], [200, 300])
        assert csr.num_nodes == 3
        assert csr.node_ids.tolist() == [100, 200, 300]
        assert csr.dense_of(200) == 1

    def test_duplicate_edges_removed(self):
        csr = CSRGraph.from_edges([0, 0], [1, 1])
        assert csr.num_edges == 1

    def test_duplicates_kept_when_requested(self):
        csr = CSRGraph.from_edges([0, 0], [1, 1], deduplicate=False)
        assert csr.num_edges == 2

    def test_length_mismatch_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges([0], [1, 2])

    def test_from_directed_graph(self):
        graph = DirectedGraph()
        graph.add_edge(5, 7)
        graph.add_edge(7, 5)
        csr = CSRGraph.from_graph(graph)
        assert csr.num_edges == 2
        assert csr.out_neighbors(csr.dense_of(5)).tolist() == [csr.dense_of(7)]

    def test_from_undirected_graph_symmetrises(self):
        graph = UndirectedGraph()
        graph.add_edge(1, 2)
        csr = CSRGraph.from_graph(graph)
        assert csr.num_edges == 2

    def test_from_graph_keeps_isolated_nodes(self):
        graph = DirectedGraph()
        graph.add_edge(1, 2)
        graph.add_node(9)
        csr = CSRGraph.from_graph(graph)
        assert csr.num_nodes == 3
        assert csr.out_neighbors(csr.dense_of(9)).tolist() == []

    def test_empty_graph(self):
        csr = CSRGraph.from_graph(DirectedGraph())
        assert csr.num_nodes == 0
        assert csr.num_edges == 0

    def test_undirected_self_loop_not_duplicated(self):
        graph = UndirectedGraph()
        graph.add_edge(3, 3)
        csr = CSRGraph.from_graph(graph)
        assert csr.num_edges == 1


class TestQueries:
    @pytest.fixture
    def csr(self):
        return CSRGraph.from_edges([0, 0, 1, 2], [1, 2, 2, 0])

    def test_in_neighbors(self, csr):
        assert csr.in_neighbors(2).tolist() == [0, 1]

    def test_degrees(self, csr):
        assert csr.out_degrees().tolist() == [2, 1, 1]
        assert csr.in_degrees().tolist() == [1, 1, 2]

    def test_dense_of_unknown_raises(self, csr):
        with pytest.raises(NodeNotFoundError):
            csr.dense_of(42)

    def test_dense_of_many(self, csr):
        assert csr.dense_of_many(np.array([2, 0])).tolist() == [2, 0]

    def test_dense_of_many_unknown_raises(self, csr):
        with pytest.raises(NodeNotFoundError):
            csr.dense_of_many(np.array([0, 99]))

    def test_arrays_readonly(self, csr):
        with pytest.raises(ValueError):
            csr.out_indices[0] = 5

    def test_memory_bytes_positive(self, csr):
        assert csr.memory_bytes() > 0


class TestEdgeDeletion:
    def test_with_edge_deleted(self):
        csr = CSRGraph.from_edges([0, 0, 1], [1, 2, 2])
        smaller = csr.with_edge_deleted(0, 2)
        assert smaller.num_edges == 2
        assert smaller.out_neighbors(0).tolist() == [1]
        # Original snapshot untouched (immutability).
        assert csr.num_edges == 3

    def test_delete_missing_edge_raises(self):
        csr = CSRGraph.from_edges([0], [1])
        with pytest.raises(GraphError):
            csr.with_edge_deleted(1, 0)


class TestAgainstDynamicGraph:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=80))
    def test_snapshot_preserves_adjacency(self, edge_list):
        graph = DirectedGraph()
        for src, dst in edge_list:
            graph.add_edge(src, dst)
        csr = CSRGraph.from_graph(graph)
        assert csr.num_nodes == graph.num_nodes
        assert csr.num_edges == graph.num_edges
        for node in graph.nodes():
            dense = csr.dense_of(node)
            expected = graph.out_neighbors(node).tolist()
            got = csr.node_ids[csr.out_neighbors(dense)].tolist()
            assert got == expected
