"""Tests for articulation points/bridges, colouring, bipartiteness,
Katz centrality, and the triad census — vs networkx references."""

import networkx as nx
import pytest

from repro.algorithms.coloring import (
    bipartite_sides,
    chromatic_upper_bound,
    greedy_coloring,
    is_bipartite,
)
from repro.algorithms.connectivity import articulation_points, bridges, is_biconnected
from repro.algorithms.katz import katz_centrality
from repro.algorithms.motifs import closed_triads, triad_census
from repro.exceptions import AlgorithmError, ConvergenceError

from tests.helpers import (
    build_directed,
    build_undirected,
    random_directed,
    random_undirected,
    to_networkx,
)

BARBELL = [(1, 2), (2, 3), (3, 1), (3, 4), (4, 5), (5, 6), (6, 4)]
# two triangles joined by the bridge (3, 4)


class TestArticulationAndBridges:
    def test_barbell(self):
        graph = build_undirected(BARBELL)
        assert articulation_points(graph) == {3, 4}
        assert bridges(graph) == {(3, 4)}

    def test_path_interior_nodes(self):
        graph = build_undirected([(1, 2), (2, 3), (3, 4)])
        assert articulation_points(graph) == {2, 3}
        assert bridges(graph) == {(1, 2), (2, 3), (3, 4)}

    def test_cycle_has_none(self):
        graph = build_undirected([(1, 2), (2, 3), (3, 1)])
        assert articulation_points(graph) == set()
        assert bridges(graph) == set()

    def test_self_loops_ignored(self):
        graph = build_undirected([(1, 2), (2, 3), (2, 2)])
        assert articulation_points(graph) == {2}

    def test_matches_networkx(self):
        graph = random_undirected(50, 70, seed=91)  # sparse → structure
        reference = to_networkx(graph)
        reference.remove_edges_from(nx.selfloop_edges(reference))
        assert articulation_points(graph) == set(nx.articulation_points(reference))
        expected = {(min(u, v), max(u, v)) for u, v in nx.bridges(reference)}
        assert bridges(graph) == expected

    def test_is_biconnected(self):
        assert is_biconnected(build_undirected([(1, 2), (2, 3), (3, 1)]))
        assert not is_biconnected(build_undirected(BARBELL))
        assert not is_biconnected(build_undirected([(1, 2), (3, 4)]))
        assert is_biconnected(build_undirected([(1, 2)]))

    def test_directed_input_uses_projection(self):
        graph = build_directed([(1, 2), (2, 3)])
        assert articulation_points(graph) == {2}


class TestColoring:
    def test_proper_coloring_invariant(self):
        graph = random_undirected(40, 150, seed=92)
        colors = greedy_coloring(graph)
        for u, v in graph.edges():
            if u != v:
                assert colors[u] != colors[v]

    def test_complete_graph_needs_n_colors(self):
        from repro.algorithms.generators import complete_graph

        assert chromatic_upper_bound(complete_graph(5)) == 5

    def test_path_needs_two(self):
        graph = build_undirected([(1, 2), (2, 3), (3, 4)])
        assert chromatic_upper_bound(graph) == 2

    def test_id_strategy_also_proper(self):
        graph = random_undirected(30, 90, seed=93)
        colors = greedy_coloring(graph, strategy="id")
        for u, v in graph.edges():
            if u != v:
                assert colors[u] != colors[v]

    def test_unknown_strategy(self):
        with pytest.raises(AlgorithmError):
            greedy_coloring(build_undirected([(1, 2)]), strategy="rainbow")

    def test_empty_graph_bound(self):
        from repro.graphs.undirected import UndirectedGraph

        assert chromatic_upper_bound(UndirectedGraph()) == 0


class TestBipartite:
    def test_even_cycle(self):
        from repro.algorithms.generators import ring_graph

        assert is_bipartite(ring_graph(6))

    def test_odd_cycle(self):
        from repro.algorithms.generators import ring_graph

        assert not is_bipartite(ring_graph(5))

    def test_self_loop_not_bipartite(self):
        graph = build_undirected([(1, 1)])
        assert not is_bipartite(graph)

    def test_sides_cover_and_separate(self):
        graph = build_undirected([(1, 2), (2, 3), (3, 4), (4, 1)])
        left, right = bipartite_sides(graph)
        assert left | right == {1, 2, 3, 4}
        for u, v in graph.edges():
            assert (u in left) != (v in left)

    def test_matches_networkx_on_random_graphs(self):
        for seed in range(5):
            graph = random_undirected(20, 25, seed=seed)
            reference = to_networkx(graph)
            reference.remove_edges_from(nx.selfloop_edges(reference))
            has_loop = any(graph.has_edge(n, n) for n in graph.nodes())
            expected = (not has_loop) and nx.is_bipartite(reference)
            assert is_bipartite(graph) == expected


class TestKatz:
    def test_matches_networkx(self):
        graph = random_directed(30, 80, seed=94)
        ours = katz_centrality(graph, alpha=0.05, tolerance=1e-14)
        expected = nx.katz_centrality(
            to_networkx(graph), alpha=0.05, max_iter=5000, tol=1e-14
        )
        for node, value in expected.items():
            assert ours[node] == pytest.approx(value, abs=1e-6)

    def test_well_defined_on_dags(self):
        graph = build_directed([(1, 2), (2, 3)])
        scores = katz_centrality(graph)
        assert scores[3] > scores[2] > scores[1]

    def test_divergence_detected(self):
        from repro.algorithms.generators import complete_graph

        graph = complete_graph(10, directed=True)
        with pytest.raises(ConvergenceError):
            katz_centrality(graph, alpha=0.9)

    def test_empty_graph(self):
        from repro.graphs.directed import DirectedGraph

        assert katz_centrality(DirectedGraph()) == {}


class TestTriadCensus:
    def test_transitive_triangle(self):
        graph = build_directed([(1, 2), (2, 3), (1, 3)])
        census = triad_census(graph)
        assert census["030T"] == 1
        assert sum(census.values()) == 1  # only one triple exists

    def test_cyclic_triangle(self):
        graph = build_directed([(1, 2), (2, 3), (3, 1)])
        assert triad_census(graph)["030C"] == 1

    def test_mutual_triangle(self):
        edges = [(u, v) for u in (1, 2, 3) for v in (1, 2, 3) if u != v]
        graph = build_directed(edges)
        assert triad_census(graph)["300"] == 1

    def test_census_sums_to_all_triples(self):
        graph = random_directed(15, 40, seed=95)
        census = triad_census(graph)
        n = graph.num_nodes
        assert sum(census.values()) == n * (n - 1) * (n - 2) // 6

    def test_matches_networkx(self):
        graph = random_directed(18, 60, seed=96)
        reference = to_networkx(graph)
        reference.remove_edges_from(nx.selfloop_edges(reference))
        assert triad_census(graph) == nx.triadic_census(reference)

    def test_small_graph(self):
        graph = build_directed([(1, 2)])
        census = triad_census(graph)
        assert all(value == 0 for value in census.values())

    def test_closed_triads(self):
        graph = build_directed([(1, 2), (2, 3), (1, 3), (4, 5)])
        assert closed_triads(graph) == 1
