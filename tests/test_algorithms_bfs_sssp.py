"""Tests for BFS and weighted shortest paths, vs networkx references."""

import networkx as nx
import pytest

from repro.algorithms.bfs import (
    bfs_levels,
    reachable_set,
    shortest_path,
    shortest_path_length,
)
from repro.algorithms.sssp import bellman_ford, dijkstra, dijkstra_path
from repro.exceptions import AlgorithmError
from repro.graphs.network import Network

from tests.helpers import build_directed, build_undirected, random_directed, to_networkx


class TestBfsLevels:
    def test_chain(self):
        graph = build_directed([(1, 2), (2, 3)])
        assert bfs_levels(graph, 1) == {1: 0, 2: 1, 3: 2}

    def test_unreachable_nodes_absent(self):
        graph = build_directed([(1, 2), (3, 4)])
        assert 3 not in bfs_levels(graph, 1)

    def test_direction_in(self):
        graph = build_directed([(1, 2), (2, 3)])
        assert bfs_levels(graph, 3, direction="in") == {3: 0, 2: 1, 1: 2}

    def test_direction_both(self):
        graph = build_directed([(2, 1), (2, 3)])
        assert bfs_levels(graph, 1, direction="both") == {1: 0, 2: 1, 3: 2}

    def test_invalid_direction(self):
        graph = build_directed([(1, 2)])
        with pytest.raises(AlgorithmError):
            bfs_levels(graph, 1, direction="sideways")

    def test_isolated_source(self):
        graph = build_directed([(1, 2)])
        graph.add_node(9)
        assert bfs_levels(graph, 9) == {9: 0}

    def test_matches_networkx_on_random_graph(self):
        graph = random_directed(60, 150, seed=3)
        reference = to_networkx(graph)
        source = next(iter(graph.nodes()))
        expected = nx.single_source_shortest_path_length(reference, source)
        assert bfs_levels(graph, source) == dict(expected)


class TestShortestPath:
    def test_length(self):
        graph = build_directed([(1, 2), (2, 3), (1, 3)])
        assert shortest_path_length(graph, 1, 3) == 1

    def test_unreachable_raises(self):
        graph = build_directed([(1, 2), (3, 4)])
        with pytest.raises(AlgorithmError):
            shortest_path_length(graph, 1, 4)

    def test_path_endpoints_and_consecutive_edges(self):
        graph = build_directed([(1, 2), (2, 3), (3, 4), (1, 4)])
        path = shortest_path(graph, 1, 4)
        assert path[0] == 1 and path[-1] == 4
        assert len(path) == 2
        for u, v in zip(path, path[1:]):
            assert graph.has_edge(u, v)

    def test_path_to_self(self):
        graph = build_directed([(1, 2)])
        assert shortest_path(graph, 1, 1) == [1]

    def test_reachable_set(self):
        graph = build_directed([(1, 2), (2, 3), (5, 6)])
        assert reachable_set(graph, 1) == {1, 2, 3}


class TestDijkstra:
    def test_unit_weights_match_bfs(self):
        graph = random_directed(40, 120, seed=7)
        source = next(iter(graph.nodes()))
        distances = dijkstra(graph, source)
        levels = bfs_levels(graph, source)
        assert distances == {node: float(level) for node, level in levels.items()}

    def test_weighted_network(self):
        net = Network()
        net.add_edge(1, 2)
        net.add_edge(2, 3)
        net.add_edge(1, 3)
        net.set_edge_attr(1, 2, "w", 1.0)
        net.set_edge_attr(2, 3, "w", 1.0)
        net.set_edge_attr(1, 3, "w", 5.0)
        distances = dijkstra(net, 1, weight="w")
        assert distances[3] == 2.0

    def test_weight_callable(self):
        graph = build_directed([(1, 2), (2, 3)])
        distances = dijkstra(graph, 1, weight=lambda u, v: 2.0)
        assert distances[3] == 4.0

    def test_negative_weight_rejected(self):
        graph = build_directed([(1, 2)])
        with pytest.raises(AlgorithmError):
            dijkstra(graph, 1, weight=lambda u, v: -1.0)

    def test_attr_weight_without_network_rejected(self):
        graph = build_directed([(1, 2)])
        with pytest.raises(AlgorithmError):
            dijkstra(graph, 1, weight="w")

    def test_matches_networkx_weighted(self):
        edges = [(0, 1, 4.0), (0, 2, 1.0), (2, 1, 2.0), (1, 3, 1.0), (2, 3, 5.0)]
        net = Network()
        for u, v, w in edges:
            net.add_edge(u, v)
            net.set_edge_attr(u, v, "w", w)
        reference = nx.DiGraph()
        reference.add_weighted_edges_from(edges)
        expected = nx.single_source_dijkstra_path_length(reference, 0)
        assert dijkstra(net, 0, weight="w") == pytest.approx(dict(expected))

    def test_dijkstra_path(self):
        net = Network()
        for u, v, w in [(1, 2, 1.0), (2, 3, 1.0), (1, 3, 5.0)]:
            net.add_edge(u, v)
            net.set_edge_attr(u, v, "w", w)
        path, dist = dijkstra_path(net, 1, 3, weight="w")
        assert path == [1, 2, 3]
        assert dist == 2.0

    def test_dijkstra_path_unreachable(self):
        graph = build_directed([(1, 2), (3, 4)])
        with pytest.raises(AlgorithmError):
            dijkstra_path(graph, 1, 4)


class TestBellmanFord:
    def test_handles_negative_edges(self):
        graph = build_directed([(1, 2), (2, 3), (1, 3)])
        weights = {(1, 2): 4.0, (2, 3): -2.0, (1, 3): 3.0}
        distances = bellman_ford(graph, 1, weight=lambda u, v: weights[(u, v)])
        assert distances[3] == 2.0

    def test_negative_cycle_detected(self):
        graph = build_directed([(1, 2), (2, 1)])
        with pytest.raises(AlgorithmError, match="negative cycle"):
            bellman_ford(graph, 1, weight=lambda u, v: -1.0)

    def test_unit_weights_match_dijkstra(self):
        graph = random_directed(30, 90, seed=11)
        source = next(iter(graph.nodes()))
        assert bellman_ford(graph, source) == dijkstra(graph, source)

    def test_undirected_input(self):
        graph = build_undirected([(1, 2), (2, 3)])
        assert bellman_ford(graph, 1)[3] == 2.0
