"""Tests for crosstab and quantiles."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import RingoError, SchemaError, TypeMismatchError
from repro.tables.pivot import crosstab, quantiles
from repro.tables.table import Table


@pytest.fixture
def activity():
    return Table.from_columns(
        {
            "user": [1, 1, 2, 2, 2, 3],
            "kind": ["q", "a", "q", "q", "a", "a"],
            "score": [1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        }
    )


class TestCrosstab:
    def test_count_shape_and_values(self, activity):
        wide = crosstab(activity, "user", "kind")
        assert wide.schema.names == ("user", "kind=a", "kind=q")
        assert wide.column("user").tolist() == [1, 2, 3]
        assert wide.column("kind=q").tolist() == [1, 2, 0]
        assert wide.column("kind=a").tolist() == [1, 1, 1]

    def test_count_totals_match_rows(self, activity):
        wide = crosstab(activity, "user", "kind")
        total = int(wide.column("kind=a").sum() + wide.column("kind=q").sum())
        assert total == activity.num_rows

    def test_sum_aggregate(self, activity):
        wide = crosstab(activity, "user", "kind", agg="sum", value_col="score")
        assert wide.column("kind=q").tolist() == pytest.approx([1.0, 7.0, 0.0])

    def test_mean_aggregate(self, activity):
        wide = crosstab(activity, "user", "kind", agg="mean", value_col="score")
        assert wide.column("kind=q").tolist() == pytest.approx([1.0, 3.5, 0.0])

    def test_numeric_pivot_column(self):
        t = Table.from_columns({"r": [1, 1, 2], "c": [7, 8, 7]})
        wide = crosstab(t, "r", "c")
        assert wide.schema.names == ("r", "c=7", "c=8")

    def test_sum_requires_value_col(self, activity):
        with pytest.raises(SchemaError):
            crosstab(activity, "user", "kind", agg="sum")

    def test_unknown_agg(self, activity):
        with pytest.raises(SchemaError):
            crosstab(activity, "user", "kind", agg="median")

    def test_string_value_col_rejected(self, activity):
        with pytest.raises(TypeMismatchError):
            crosstab(activity, "user", "score", agg="sum", value_col="kind")

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 4), st.integers(0, 3)), min_size=1, max_size=50))
    def test_counts_match_python_reference(self, pairs):
        t = Table.from_columns(
            {"r": [p[0] for p in pairs], "c": [p[1] for p in pairs]}
        )
        wide = crosstab(t, "r", "c")
        expected: dict[tuple[int, int], int] = {}
        for r, c in pairs:
            expected[(r, c)] = expected.get((r, c), 0) + 1
        rows = wide.column("r").tolist()
        for name in wide.schema.names[1:]:
            c_value = int(name.split("=")[1])
            for row_pos, r_value in enumerate(rows):
                assert wide.column(name)[row_pos] == expected.get((r_value, c_value), 0)


class TestQuantiles:
    def test_basic(self):
        t = Table.from_columns({"x": [1, 2, 3, 4]})
        assert quantiles(t, "x", [0.0, 0.5, 1.0]) == [1.0, 2.5, 4.0]

    def test_float_column(self):
        t = Table.from_columns({"x": [0.0, 10.0]})
        assert quantiles(t, "x", [0.25]) == [2.5]

    def test_string_rejected(self):
        t = Table.from_columns({"s": ["a"]})
        with pytest.raises(TypeMismatchError):
            quantiles(t, "s", [0.5])

    def test_empty_rejected(self):
        t = Table.empty([("x", "int")])
        with pytest.raises(SchemaError):
            quantiles(t, "x", [0.5])

    def test_invalid_probability(self):
        t = Table.from_columns({"x": [1]})
        with pytest.raises(RingoError):
            quantiles(t, "x", [1.5])

    def test_engine_facade(self, activity):
        from repro.core.engine import Ringo

        with Ringo(workers=1) as ringo:
            wide = ringo.Crosstab(activity, "user", "kind")
            assert wide.num_rows == 3
            qs = ringo.Quantiles(activity, "score", [0.5])
            assert qs == [3.5]
            # New analytics facades smoke-checked here too.
            graph = ringo.GenPlantedPartition(2, 8, 0.9, 0.05, seed=1)
            left, right = ringo.GetSpectralBisection(graph)
            assert left | right == set(graph.nodes())
            assert ringo.GetAlgebraicConnectivity(graph) >= 0
            assert ringo.GetGirth(graph) in (3, 4, 5, None)
            chain = ringo.GenErdosRenyi(10, 9, seed=3)
            assert isinstance(ringo.FindCycle(chain) is None, bool)
            cm = ringo.GenConfigurationModel([2, 2, 2, 2], seed=2)
            assert cm.num_nodes == 4
            shuffled = ringo.Rewire(cm, seed=3)
            assert shuffled.num_edges == cm.num_edges
