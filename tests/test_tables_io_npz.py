"""Tests for binary table snapshots and the planted-partition generator."""

import numpy as np
import pytest

from repro.algorithms.community import label_propagation, modularity
from repro.algorithms.generators import planted_partition
from repro.exceptions import RingoError
from repro.tables.io_npz import load_table_npz, save_table_npz
from repro.tables.strings import StringPool
from repro.tables.table import Table


class TestTableNpz:
    def test_roundtrip_all_types(self, tmp_path):
        table = Table.from_columns(
            {"i": [1, -2], "f": [0.5, 2.5], "s": ["ab", "cd"]}
        )
        path = tmp_path / "table.npz"
        save_table_npz(table, path)
        loaded = load_table_npz(path)
        assert loaded.schema == table.schema
        assert loaded.column("i").tolist() == [1, -2]
        assert loaded.column("f").tolist() == [0.5, 2.5]
        assert loaded.values("s") == ["ab", "cd"]

    def test_row_ids_preserved(self, tmp_path):
        table = Table.from_columns({"x": [1, 2, 3]})
        table.filter_in_place(np.array([False, True, True]))
        path = tmp_path / "table.npz"
        save_table_npz(table, path)
        assert load_table_npz(path).row_ids.tolist() == [1, 2]

    def test_loads_into_given_pool(self, tmp_path):
        table = Table.from_columns({"s": ["hello"]})
        path = tmp_path / "table.npz"
        save_table_npz(table, path)
        pool = StringPool()
        loaded = load_table_npz(path, pool=pool)
        assert loaded.pool is pool
        assert "hello" in pool

    def test_empty_table(self, tmp_path):
        table = Table.empty([("x", "int"), ("s", "string")])
        path = tmp_path / "table.npz"
        save_table_npz(table, path)
        loaded = load_table_npz(path)
        assert loaded.num_rows == 0
        assert loaded.schema.names == ("x", "s")

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, version=np.int64(99))
        with pytest.raises(RingoError):
            load_table_npz(path)

    def test_engine_facade(self, tmp_path):
        from repro.core.engine import Ringo

        with Ringo(workers=1) as ringo:
            table = ringo.TableFromColumns({"x": [1], "s": ["a"]})
            path = tmp_path / "snap.npz"
            ringo.SaveTableBinary(table, path)
            loaded = ringo.LoadTableBinary(path)
            assert loaded.pool is ringo.pool
            assert loaded.values("s") == ["a"]


class TestPlantedPartition:
    def test_shape(self):
        graph = planted_partition(3, 10, p_in=0.9, p_out=0.01, seed=1)
        assert graph.num_nodes == 30
        assert not graph.is_directed

    def test_no_self_loops(self):
        graph = planted_partition(2, 8, p_in=1.0, p_out=0.5, seed=2)
        assert all(u != v for u, v in graph.edges())

    def test_extreme_probabilities(self):
        cliques = planted_partition(2, 5, p_in=1.0, p_out=0.0, seed=3)
        # Two disjoint 5-cliques.
        assert cliques.num_edges == 2 * 10

    def test_communities_recoverable(self):
        graph = planted_partition(4, 25, p_in=0.6, p_out=0.005, seed=4)
        found = label_propagation(graph, seed=1)
        planted = {node: node // 25 for node in graph.nodes()}
        assert modularity(graph, found) > 0.5
        assert modularity(graph, planted) > 0.5

    def test_deterministic(self):
        a = planted_partition(2, 6, 0.5, 0.1, seed=9)
        b = planted_partition(2, 6, 0.5, 0.1, seed=9)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_engine_facade(self):
        from repro.core.engine import Ringo

        with Ringo(workers=1) as ringo:
            graph = ringo.GenPlantedPartition(2, 5, 1.0, 0.0)
            assert graph.num_nodes == 10
            census = ringo.GetTriadCensus(ringo.GenRMat(5, 60, seed=1))
            assert sum(census.values()) > 0
            assert ringo.GetKatz(graph)
            assert isinstance(ringo.IsBipartite(graph), bool)
            colors = ringo.GetColoring(graph)
            assert len(colors) == 10
            chain = ringo.GenErdosRenyi(10, 9, seed=2)
            assert isinstance(ringo.GetArticulationPoints(chain), set)
            assert isinstance(ringo.GetBridges(chain), set)
            predictions = ringo.GetLinkPredictions(graph, k=3)
            assert len(predictions) <= 3
