"""Failure injection: malformed inputs must fail loudly and precisely.

An interactive system's errors are part of its UX — every corruption
here must surface as a typed RingoError (or a clean subclass), never a
silent wrong answer or a bare traceback from numpy internals.
"""

import numpy as np
import pytest

from repro.exceptions import GraphError, RingoError, SchemaError
from repro.graphs.serialize import load_edge_list, load_graph, save_graph
from repro.tables.io_tsv import load_table_tsv
from repro.tables.table import Table

SCHEMA = [("id", "int"), ("score", "float"), ("tag", "string")]


class TestCorruptTsv:
    def test_too_few_fields(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("1\t2.0\tx\n3\t4.0\n")
        with pytest.raises(SchemaError, match=":2"):
            load_table_tsv(SCHEMA, path)

    def test_too_many_fields(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("1\t2.0\tx\textra\n")
        with pytest.raises(SchemaError, match="expected 3"):
            load_table_tsv(SCHEMA, path)

    def test_non_numeric_int(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("NaNID\t2.0\tx\n")
        with pytest.raises(SchemaError, match="'id'"):
            load_table_tsv(SCHEMA, path)

    def test_non_numeric_float(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("1\tnotafloat\tx\n")
        with pytest.raises(SchemaError, match="'score'"):
            load_table_tsv(SCHEMA, path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_table_tsv(SCHEMA, tmp_path / "nope.tsv")

    def test_unicode_content_survives(self, tmp_path):
        path = tmp_path / "uni.tsv"
        path.write_text("1\t0.5\tcafé ☕\n", encoding="utf-8")
        table = load_table_tsv(SCHEMA, path)
        assert table.values("tag") == ["café ☕"]

    def test_whitespace_only_lines_skipped_if_blank(self, tmp_path):
        path = tmp_path / "ws.tsv"
        path.write_text("1\t0.5\tx\n\n2\t0.5\ty\n")
        assert load_table_tsv(SCHEMA, path).num_rows == 2


class TestCorruptEdgeList:
    def test_single_field_line(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("1\n")
        with pytest.raises(GraphError, match="malformed"):
            load_edge_list(path)

    def test_non_integer_endpoint(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("1\ttwo\n")
        with pytest.raises(ValueError):
            load_edge_list(path)

    def test_negative_node_id(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("-1\t2\n")
        with pytest.raises(RingoError):
            load_edge_list(path)


class TestCorruptGraphArchive:
    def test_wrong_version(self, tmp_path):
        path = tmp_path / "graph.npz"
        np.savez(
            path,
            version=np.int64(99),
            directed=np.int64(1),
            nodes=np.array([1]),
            sources=np.array([], dtype=np.int64),
            targets=np.array([], dtype=np.int64),
        )
        with pytest.raises(GraphError, match="version"):
            load_graph(path)

    def test_truncated_file(self, tmp_path):
        from repro.graphs.directed import DirectedGraph

        graph = DirectedGraph()
        graph.add_edge(1, 2)
        path = tmp_path / "graph.npz"
        save_graph(graph, path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(Exception):
            load_graph(path)


class TestNanAndExtremes:
    def test_nan_in_float_select(self):
        table = Table.from_columns({"x": [1.0, float("nan"), 3.0]})
        kept = table.select("x > 0")
        # NaN compares false, so the NaN row is dropped — documented
        # numpy semantics, not a crash.
        assert kept.num_rows == 2

    def test_nan_not_equal_to_itself(self):
        table = Table.from_columns({"x": [float("nan")]})
        assert table.select("x = x").num_rows == 0

    def test_int64_extremes_roundtrip(self, tmp_path):
        big = 2**62
        table = Table.from_columns({"x": [big, -big]})
        from repro.tables.io_tsv import save_table_tsv

        path = tmp_path / "big.tsv"
        save_table_tsv(table, path)
        loaded = load_table_tsv([("x", "int")], path)
        assert loaded.column("x").tolist() == [big, -big]

    def test_huge_node_ids(self):
        from repro.convert.table_to_graph import graph_from_edge_arrays

        graph = graph_from_edge_arrays(
            np.array([2**40]), np.array([2**41])
        )
        assert graph.has_edge(2**40, 2**41)

    def test_empty_string_cells(self):
        table = Table.from_columns({"s": ["", "a", ""]})
        assert table.values("s") == ["", "a", ""]
        assert table.select("s = ''").num_rows == 2
