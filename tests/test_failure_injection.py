"""Failure injection: malformed inputs must fail loudly and precisely.

An interactive system's errors are part of its UX — every corruption
here must surface as a typed RingoError (or a clean subclass), never a
silent wrong answer or a bare traceback from numpy internals.

The second half exercises the deliberate-fault machinery from
:mod:`repro.faults`: seeded fault sites in the IO loaders, the worker
pool's kernel dispatch, the concurrent containers, and the conversion
paths, plus the retry/deadline/budget semantics layered on top.
"""

import threading
import time

import numpy as np
import pytest

from repro.core.engine import Ringo
from repro.exceptions import (
    GraphError,
    InjectedFaultError,
    MemoryBudgetError,
    RetryExhaustedError,
    RingoError,
    SchemaError,
    TransientError,
    WorkerTimeoutError,
)
from repro.faults import FaultPlan, fault_point, inject_faults
from repro.graphs.serialize import load_edge_list, load_graph, save_graph
from repro.parallel.concurrent_hash import LinearProbingHashTable
from repro.parallel.executor import WorkerPool
from repro.parallel.resilience import RetryPolicy, run_with_retry
from repro.tables.io_npz import save_table_npz
from repro.tables.io_tsv import load_table_tsv
from repro.tables.table import Table

SCHEMA = [("id", "int"), ("score", "float"), ("tag", "string")]


class TestCorruptTsv:
    def test_too_few_fields(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("1\t2.0\tx\n3\t4.0\n")
        with pytest.raises(SchemaError, match=":2"):
            load_table_tsv(SCHEMA, path)

    def test_too_many_fields(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("1\t2.0\tx\textra\n")
        with pytest.raises(SchemaError, match="expected 3"):
            load_table_tsv(SCHEMA, path)

    def test_non_numeric_int(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("NaNID\t2.0\tx\n")
        with pytest.raises(SchemaError, match="'id'"):
            load_table_tsv(SCHEMA, path)

    def test_non_numeric_float(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("1\tnotafloat\tx\n")
        with pytest.raises(SchemaError, match="'score'"):
            load_table_tsv(SCHEMA, path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_table_tsv(SCHEMA, tmp_path / "nope.tsv")

    def test_unicode_content_survives(self, tmp_path):
        path = tmp_path / "uni.tsv"
        path.write_text("1\t0.5\tcafé ☕\n", encoding="utf-8")
        table = load_table_tsv(SCHEMA, path)
        assert table.values("tag") == ["café ☕"]

    def test_whitespace_only_lines_skipped_if_blank(self, tmp_path):
        path = tmp_path / "ws.tsv"
        path.write_text("1\t0.5\tx\n\n2\t0.5\ty\n")
        assert load_table_tsv(SCHEMA, path).num_rows == 2


class TestCorruptEdgeList:
    def test_single_field_line(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("1\n")
        with pytest.raises(GraphError, match="malformed"):
            load_edge_list(path)

    def test_non_integer_endpoint(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("1\ttwo\n")
        with pytest.raises(ValueError):
            load_edge_list(path)

    def test_negative_node_id(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("-1\t2\n")
        with pytest.raises(RingoError):
            load_edge_list(path)


class TestCorruptGraphArchive:
    def test_wrong_version(self, tmp_path):
        path = tmp_path / "graph.npz"
        np.savez(
            path,
            version=np.int64(99),
            directed=np.int64(1),
            nodes=np.array([1]),
            sources=np.array([], dtype=np.int64),
            targets=np.array([], dtype=np.int64),
        )
        with pytest.raises(GraphError, match="version"):
            load_graph(path)

    def test_truncated_file(self, tmp_path):
        from repro.graphs.directed import DirectedGraph

        graph = DirectedGraph()
        graph.add_edge(1, 2)
        path = tmp_path / "graph.npz"
        save_graph(graph, path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(Exception):
            load_graph(path)


class TestNanAndExtremes:
    def test_nan_in_float_select(self):
        table = Table.from_columns({"x": [1.0, float("nan"), 3.0]})
        kept = table.select("x > 0")
        # NaN compares false, so the NaN row is dropped — documented
        # numpy semantics, not a crash.
        assert kept.num_rows == 2

    def test_nan_not_equal_to_itself(self):
        table = Table.from_columns({"x": [float("nan")]})
        assert table.select("x = x").num_rows == 0

    def test_int64_extremes_roundtrip(self, tmp_path):
        big = 2**62
        table = Table.from_columns({"x": [big, -big]})
        from repro.tables.io_tsv import save_table_tsv

        path = tmp_path / "big.tsv"
        save_table_tsv(table, path)
        loaded = load_table_tsv([("x", "int")], path)
        assert loaded.column("x").tolist() == [big, -big]

    def test_huge_node_ids(self):
        from repro.convert.table_to_graph import graph_from_edge_arrays

        graph = graph_from_edge_arrays(
            np.array([2**40]), np.array([2**41])
        )
        assert graph.has_edge(2**40, 2**41)

    def test_empty_string_cells(self):
        table = Table.from_columns({"s": ["", "a", ""]})
        assert table.values("s") == ["", "a", ""]
        assert table.select("s = ''").num_rows == 2


# ----------------------------------------------------------------------
# Deliberate faults: the repro.faults registry and resilient execution
# ----------------------------------------------------------------------

EDGE_COLUMNS = {"a": [1, 2, 3, 1, 4, 5], "b": [2, 3, 1, 3, 5, 4]}


class TestFaultRegistry:
    def test_unarmed_site_is_noop(self):
        fault_point("io.tsv.parse_row")  # no plan active: must not raise

    def test_unknown_site_in_armed_plan_is_noop(self):
        with inject_faults({"some.other.site": 1.0}):
            fault_point("io.tsv.parse_row")

    def test_rate_one_always_fires(self):
        with inject_faults({"demo.site": 1.0}) as plan:
            for _ in range(3):
                with pytest.raises(InjectedFaultError):
                    fault_point("demo.site")
        assert plan.triggered["demo.site"] == 3
        assert plan.drawn["demo.site"] == 3

    def test_seeded_streams_are_deterministic(self):
        def pattern(seed):
            fired = []
            with inject_faults({"demo.site": 0.5}, seed=seed):
                for _ in range(20):
                    try:
                        fault_point("demo.site")
                        fired.append(False)
                    except InjectedFaultError:
                        fired.append(True)
            return fired

        assert pattern(7) == pattern(7)
        assert pattern(7) != pattern(8)

    def test_injected_fault_is_retryable_and_typed(self):
        with inject_faults({"demo.site": 1.0}):
            with pytest.raises(TransientError):
                fault_point("demo.site")
            with pytest.raises(RingoError):
                fault_point("demo.site")

    def test_max_triggers_stops_firing(self):
        with inject_faults({"demo.site": {"rate": 1.0, "max_triggers": 2}}) as plan:
            for _ in range(2):
                with pytest.raises(InjectedFaultError):
                    fault_point("demo.site")
            fault_point("demo.site")  # budget spent: silent
        assert plan.triggered["demo.site"] == 2
        assert plan.drawn["demo.site"] == 3

    def test_custom_error_class(self):
        with inject_faults({"demo.site": {"rate": 1.0, "error": OSError}}):
            with pytest.raises(OSError):
                fault_point("demo.site")

    def test_plans_nest_and_restore(self):
        with inject_faults({"outer.site": 1.0}):
            with inject_faults({"inner.site": 1.0}):
                fault_point("outer.site")  # inner plan replaced the outer
                with pytest.raises(InjectedFaultError):
                    fault_point("inner.site")
            with pytest.raises(InjectedFaultError):
                fault_point("outer.site")
        fault_point("outer.site")

    def test_bad_rate_rejected(self):
        with pytest.raises(RingoError):
            FaultPlan({"demo.site": 1.5})

    def test_bad_spec_rejected(self):
        with pytest.raises(RingoError):
            FaultPlan({"demo.site": "often"})


class TestInjectedIoFaults:
    def test_tsv_row_fault_aborts_load(self, tmp_path):
        path = tmp_path / "rows.tsv"
        path.write_text("1\t2.0\tx\n2\t3.0\ty\n")
        with Ringo(workers=1) as ringo:
            with inject_faults({"io.tsv.parse_row": 1.0}):
                with pytest.raises(InjectedFaultError, match="io.tsv.parse_row"):
                    ringo.LoadTableTSV(SCHEMA, path)
            # the failed load published nothing to the session
            assert ringo.Objects() == []
            table = ringo.LoadTableTSV(SCHEMA, path)
            assert table.num_rows == 2
            assert ringo.Objects() == ["table-1"]

    def test_tsv_rate_zero_loads_clean_while_armed(self, tmp_path):
        path = tmp_path / "rows.tsv"
        path.write_text("1\t2.0\tx\n")
        with inject_faults({"io.tsv.parse_row": 0.0}) as plan:
            assert load_table_tsv(SCHEMA, path).num_rows == 1
        assert plan.triggered["io.tsv.parse_row"] == 0
        assert plan.drawn["io.tsv.parse_row"] == 1

    def test_npz_load_fault(self, tmp_path):
        table = Table.from_columns({"x": [1, 2, 3]})
        path = tmp_path / "snap.npz"
        save_table_npz(table, path)
        with Ringo(workers=1) as ringo:
            with inject_faults({"io.npz.load": 1.0}):
                with pytest.raises(InjectedFaultError):
                    ringo.LoadTableBinary(path)
            assert ringo.Objects() == []


class TestMidConversionFailure:
    def test_toGraph_fault_leaves_no_partial_graph(self):
        with Ringo(workers=1) as ringo:
            table = ringo.TableFromColumns(EDGE_COLUMNS)
            with inject_faults({"convert.sort_first": 1.0}):
                with pytest.raises(RingoError):
                    ringo.ToGraph(table, "a", "b")
            assert ringo.health()["objects"]["published"] == 0
            # the session recovers cleanly once the faults are disarmed
            graph = ringo.ToGraph(table, "a", "b")
            assert graph.num_edges == 6
            assert ringo.Objects() == ["graph-1"]

    def test_mid_kernel_fault_under_threads_leaves_no_partial_graph(self):
        with Ringo(workers=4) as ringo:
            table = ringo.TableFromColumns(EDGE_COLUMNS)
            with inject_faults({"parallel.kernel": 1.0}):
                with pytest.raises(RingoError):
                    ringo.ToGraph(table, "a", "b")
            assert ringo.health()["objects"]["published"] == 0

    def test_join_fault_publishes_nothing(self):
        with Ringo(workers=1) as ringo:
            table = ringo.TableFromColumns({"k": [1, 2], "v": [3.0, 4.0]})
            with inject_faults({"join.materialize": 1.0}):
                with pytest.raises(InjectedFaultError):
                    ringo.Join(table, table, "k")
            assert ringo.Objects() == []


class TestRetrySemantics:
    def test_run_with_retry_recovers_from_transients(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientError("not yet")
            return "done"

        policy = RetryPolicy(max_attempts=5, base_delay=0.0)
        assert run_with_retry(flaky, policy) == "done"
        assert len(attempts) == 3

    def test_run_with_retry_exhaustion_chains_last_error(self):
        def always_fails():
            raise TransientError("still broken")

        policy = RetryPolicy(max_attempts=2, base_delay=0.0)
        with pytest.raises(RetryExhaustedError) as info:
            run_with_retry(always_fails, policy)
        assert info.value.attempts == 2
        assert isinstance(info.value.last_error, TransientError)

    def test_non_retryable_errors_propagate_immediately(self):
        attempts = []

        def broken():
            attempts.append(1)
            raise ValueError("logic bug")

        with pytest.raises(ValueError):
            run_with_retry(broken, RetryPolicy(max_attempts=5, base_delay=0.0))
        assert len(attempts) == 1

    def test_toGraph_retries_then_succeeds_and_health_reports_it(self):
        # Seed 17 makes the parallel.kernel stream fire on its first draw
        # and at most twice in the first six, so with two partitions and
        # max_attempts=3 the build must succeed under any interleaving.
        policy = RetryPolicy(max_attempts=3, base_delay=0.001)
        with Ringo(workers=2, retry_policy=policy) as ringo:
            table = ringo.TableFromColumns(EDGE_COLUMNS)
            with inject_faults({"parallel.kernel": 0.3}, seed=17) as plan:
                graph = ringo.ToGraph(table, "a", "b")
            assert graph.num_edges == 6
            assert plan.triggered["parallel.kernel"] >= 1
            health = ringo.health()
            assert health["workers"]["retries"] >= 1
            assert health["objects"]["published"] == 1

    def test_retry_exhaustion_surfaces_as_typed_error(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.0)
        with Ringo(workers=2, retry_policy=policy) as ringo:
            table = ringo.TableFromColumns(EDGE_COLUMNS)
            with inject_faults({"parallel.kernel": 1.0}):
                with pytest.raises(RetryExhaustedError):
                    ringo.ToGraph(table, "a", "b")
            assert ringo.health()["workers"]["retries"] >= 2
            assert ringo.health()["objects"]["published"] == 0


class TestDeadlines:
    def test_slow_kernel_hits_deadline_and_cancels_siblings(self):
        with WorkerPool(2) as pool:
            with pytest.raises(WorkerTimeoutError) as info:
                pool.run_tasks(
                    [lambda: time.sleep(0.5) for _ in range(6)], timeout=0.1
                )
            # 2 workers were running, so at least one of the remaining 4
            # pending partitions must have been cancelled outright.
            assert info.value.cancelled >= 1
            assert pool.stats.snapshot()["timeouts"] == 1
            assert pool.stats.snapshot()["cancelled_partitions"] >= 1

    def test_inline_pool_honours_deadline_between_tasks(self):
        with WorkerPool(1) as pool:
            with pytest.raises(WorkerTimeoutError):
                pool.run_tasks(
                    [lambda: time.sleep(0.05) for _ in range(10)], timeout=0.01
                )

    def test_fast_call_unaffected_by_deadline(self):
        with WorkerPool(2) as pool:
            assert pool.map_range(10, lambda lo, hi: hi - lo, timeout=5.0) == [5, 5]


class TestMemoryBudgets:
    def test_strict_budget_refuses_conversion(self):
        with Ringo(workers=1, memory_budget=64) as ringo:
            table = ringo.TableFromColumns(EDGE_COLUMNS)
            with pytest.raises(MemoryBudgetError) as info:
                ringo.ToGraph(table, "a", "b")
            assert info.value.operation == "ToGraph"
            assert ringo.health()["objects"]["published"] == 0
            assert ringo.health()["memory_budget"]["denials"] == 1

    def test_degrade_budget_builds_same_graph_chunked(self):
        with Ringo(workers=1) as reference:
            table = reference.TableFromColumns(EDGE_COLUMNS)
            expected = reference.ToGraph(table, "a", "b")
        with Ringo(
            workers=1, memory_budget=64, on_budget_exceeded="degrade"
        ) as ringo:
            table = ringo.TableFromColumns(EDGE_COLUMNS)
            graph = ringo.ToGraph(table, "a", "b")
            assert graph.num_edges == expected.num_edges
            assert sorted(graph.nodes()) == sorted(expected.nodes())
            health = ringo.health()
            assert health["memory_budget"]["degradations"] == 1
            assert health["objects"]["published"] == 1

    def test_budget_admits_small_work(self):
        with Ringo(workers=1, memory_budget=1 << 30) as ringo:
            table = ringo.TableFromColumns(EDGE_COLUMNS)
            graph = ringo.ToGraph(table, "a", "b")
            assert graph.num_edges == 6
            assert ringo.health()["memory_budget"]["admitted"] >= 1

    def test_strict_budget_refuses_join(self):
        with Ringo(workers=1, memory_budget=64) as ringo:
            table = ringo.TableFromColumns({"k": list(range(100))})
            with pytest.raises(MemoryBudgetError):
                ringo.Join(table, table, "k")


class TestConcurrentContainerFaultStress:
    def test_hash_inserts_with_faults_stay_consistent(self):
        table = LinearProbingHashTable(expected=256)
        successes = [0] * 4
        keys_per_worker = 200

        def kernel(worker: int):
            def run():
                base = worker * keys_per_worker
                for offset in range(keys_per_worker):
                    key = base + offset
                    try:
                        table.insert(key, key * 2)
                        successes[worker] += 1
                    except TransientError:
                        pass

            return run

        with inject_faults({"hash.insert": 0.2}, seed=11) as plan:
            with WorkerPool(4) as pool:
                pool.run_tasks([kernel(w) for w in range(4)])
        assert plan.triggered["hash.insert"] >= 1
        # Faults fire before mutation, so the table holds exactly the
        # successful inserts and every one of them is retrievable.
        assert len(table) == sum(successes)
        found = sum(
            1
            for worker in range(4)
            for offset in range(keys_per_worker)
            if table.lookup(worker * keys_per_worker + offset) is not None
        )
        assert found == sum(successes)
        for key, value in table.items():
            assert value == key * 2

    def test_faulty_inserts_recover_under_retry(self):
        table = LinearProbingHashTable()
        policy = RetryPolicy(max_attempts=10, base_delay=0.0)
        with inject_faults({"hash.insert": 0.3}, seed=3):
            for key in range(100):
                run_with_retry(lambda k=key: table.insert(k, k), policy)
        assert len(table) == 100
