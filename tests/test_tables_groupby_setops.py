"""Tests for group & aggregate and the set operations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SchemaError, TypeMismatchError
from repro.tables.groupby import add_group_column, group_by, group_ids
from repro.tables.setops import intersect, minus, union
from repro.tables.table import Table


@pytest.fixture
def events():
    return Table.from_columns(
        {
            "user": [1, 2, 1, 3, 2, 1],
            "kind": ["q", "a", "q", "q", "q", "a"],
            "score": [1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        }
    )


class TestGroupIds:
    def test_labels_by_first_appearance(self, events):
        assert group_ids(events, "user").tolist() == [0, 1, 0, 2, 1, 0]

    def test_multi_key_labels(self, events):
        labels = group_ids(events, ["user", "kind"]).tolist()
        assert labels == [0, 1, 0, 2, 3, 4]

    def test_empty_keys_rejected(self, events):
        with pytest.raises(SchemaError):
            group_ids(events, [])

    def test_string_key(self, events):
        assert group_ids(events, "kind").tolist() == [0, 1, 0, 0, 0, 1]

    def test_add_group_column_in_place(self, events):
        add_group_column(events, "user", out="G")
        assert events.column("G").tolist() == [0, 1, 0, 2, 1, 0]


class TestGroupBy:
    def test_default_count(self, events):
        result = group_by(events, "user")
        assert result.column("user").tolist() == [1, 2, 3]
        assert result.column("Count").tolist() == [3, 2, 1]

    def test_sum(self, events):
        result = group_by(events, "user", {"Total": ("sum", "score")})
        assert result.column("Total").tolist() == [10.0, 7.0, 4.0]

    def test_int_sum_stays_int(self):
        t = Table.from_columns({"k": [1, 1], "v": [2, 3]})
        result = group_by(t, "k", {"S": ("sum", "v")})
        assert result.column("S").dtype == np.int64

    def test_mean(self, events):
        result = group_by(events, "user", {"Avg": ("mean", "score")})
        assert result.column("Avg").tolist() == pytest.approx([10 / 3, 3.5, 4.0])

    def test_min_max(self, events):
        result = group_by(
            events, "user", {"Lo": ("min", "score"), "Hi": ("max", "score")}
        )
        assert result.column("Lo").tolist() == [1.0, 2.0, 4.0]
        assert result.column("Hi").tolist() == [6.0, 5.0, 4.0]

    def test_first(self, events):
        result = group_by(events, "user", {"FirstKind": ("first", "kind")})
        assert result.values("FirstKind") == ["q", "a", "q"]

    def test_string_min_is_lexicographic(self, events):
        result = group_by(events, "user", {"K": ("min", "kind")})
        assert result.values("K") == ["a", "a", "q"]

    def test_string_sum_rejected(self, events):
        with pytest.raises(TypeMismatchError):
            group_by(events, "user", {"Bad": ("sum", "kind")})

    def test_unknown_aggregate_rejected(self, events):
        with pytest.raises(SchemaError, match="unknown aggregate"):
            group_by(events, "user", {"Bad": ("median", "score")})

    def test_output_name_clash_rejected(self, events):
        with pytest.raises(SchemaError, match="clashes"):
            group_by(events, "user", {"user": ("count", "score")})

    def test_multi_key_group(self, events):
        result = group_by(events, ["user", "kind"])
        assert result.num_rows == 5

    def test_empty_table(self):
        t = Table.empty([("k", "int"), ("v", "float")])
        result = group_by(t, "k", {"S": ("sum", "v")})
        assert result.num_rows == 0

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(-10, 10)), min_size=1, max_size=60))
    def test_sum_matches_python_reference(self, pairs):
        t = Table.from_columns(
            {"k": [p[0] for p in pairs], "v": [p[1] for p in pairs]}
        )
        result = group_by(t, "k", {"S": ("sum", "v")})
        expected: dict[int, int] = {}
        for key, value in pairs:
            expected[key] = expected.get(key, 0) + value
        got = dict(zip(result.column("k").tolist(), result.column("S").tolist()))
        assert got == expected


class TestSetOps:
    def make(self, rows):
        return Table.from_columns(
            {"a": [r[0] for r in rows], "s": [r[1] for r in rows]}
        ) if rows else Table.empty([("a", "int"), ("s", "string")])

    def rows_of(self, table):
        return sorted(zip(table.column("a").tolist(), table.values("s")))

    def test_union_distinct(self):
        left = self.make([(1, "x"), (2, "y"), (1, "x")])
        right = self.make([(2, "y"), (3, "z")])
        assert self.rows_of(union(left, right)) == [(1, "x"), (2, "y"), (3, "z")]

    def test_union_all_keeps_duplicates(self):
        left = self.make([(1, "x")])
        right = self.make([(1, "x")])
        assert union(left, right, distinct=False).num_rows == 2

    def test_union_all_row_ids_unique(self):
        left = self.make([(1, "x"), (2, "y")])
        right = self.make([(3, "z")])
        ids = union(left, right, distinct=False).row_ids.tolist()
        assert len(set(ids)) == 3

    def test_intersect(self):
        left = self.make([(1, "x"), (2, "y"), (2, "y")])
        right = self.make([(2, "y"), (9, "q")])
        assert self.rows_of(intersect(left, right)) == [(2, "y")]

    def test_intersect_respects_all_columns(self):
        left = self.make([(1, "x")])
        right = self.make([(1, "y")])
        assert intersect(left, right).num_rows == 0

    def test_minus(self):
        left = self.make([(1, "x"), (2, "y"), (1, "x")])
        right = self.make([(2, "y")])
        assert self.rows_of(minus(left, right)) == [(1, "x")]

    def test_minus_keeps_left_row_ids(self):
        left = self.make([(1, "x"), (2, "y")])
        right = self.make([(1, "x")])
        assert minus(left, right).row_ids.tolist() == [1]

    def test_schema_mismatch_rejected(self):
        left = self.make([(1, "x")])
        other = Table.from_columns({"b": [1]})
        with pytest.raises(TypeMismatchError):
            union(left, other)

    def test_empty_right(self):
        left = self.make([(1, "x")])
        right = self.make([])
        assert union(left, right).num_rows == 1
        assert minus(left, right).num_rows == 1
        assert intersect(left, right).num_rows == 0

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(0, 6), max_size=30),
        st.lists(st.integers(0, 6), max_size=30),
    )
    def test_setops_match_python_sets(self, left_vals, right_vals):
        left = Table.from_columns({"a": left_vals}) if left_vals else Table.empty([("a", "int")])
        right = Table.from_columns({"a": right_vals}) if right_vals else Table.empty([("a", "int")])
        assert sorted(union(left, right).column("a").tolist()) == sorted(
            set(left_vals) | set(right_vals)
        )
        assert sorted(intersect(left, right).column("a").tolist()) == sorted(
            set(left_vals) & set(right_vals)
        )
        assert sorted(minus(left, right).column("a").tolist()) == sorted(
            set(left_vals) - set(right_vals)
        )
