"""Tests for DirectedGraph — the paper's hash-of-nodes representation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import EdgeNotFoundError, GraphError, NodeNotFoundError
from repro.graphs.base import sorted_contains, sorted_insert, sorted_remove
from repro.graphs.directed import DirectedGraph


class TestSortedArrayHelpers:
    def test_insert_keeps_sorted(self):
        array = np.array([1, 5, 9], dtype=np.int64)
        result, inserted = sorted_insert(array, 4)
        assert inserted
        assert result.tolist() == [1, 4, 5, 9]

    def test_insert_duplicate_is_noop(self):
        array = np.array([1, 5], dtype=np.int64)
        result, inserted = sorted_insert(array, 5)
        assert not inserted
        assert result is array

    def test_remove(self):
        array = np.array([1, 5, 9], dtype=np.int64)
        result, removed = sorted_remove(array, 5)
        assert removed
        assert result.tolist() == [1, 9]

    def test_remove_absent_is_noop(self):
        array = np.array([1, 9], dtype=np.int64)
        result, removed = sorted_remove(array, 5)
        assert not removed
        assert result is array

    def test_contains(self):
        array = np.array([2, 4, 6], dtype=np.int64)
        assert sorted_contains(array, 4)
        assert not sorted_contains(array, 5)
        assert not sorted_contains(array, 7)


class TestBasicStructure:
    def test_empty_graph(self):
        graph = DirectedGraph()
        assert graph.num_nodes == 0
        assert graph.num_edges == 0
        assert list(graph.nodes()) == []

    def test_add_node(self):
        graph = DirectedGraph()
        assert graph.add_node(5)
        assert not graph.add_node(5)
        assert graph.has_node(5)
        assert 5 in graph

    def test_negative_node_rejected(self):
        with pytest.raises(GraphError):
            DirectedGraph().add_node(-1)

    def test_add_edge_creates_endpoints(self):
        graph = DirectedGraph()
        assert graph.add_edge(1, 2)
        assert graph.num_nodes == 2
        assert graph.num_edges == 1

    def test_add_edge_duplicate_ignored(self):
        graph = DirectedGraph()
        graph.add_edge(1, 2)
        assert not graph.add_edge(1, 2)
        assert graph.num_edges == 1

    def test_direction_matters(self):
        graph = DirectedGraph()
        graph.add_edge(1, 2)
        assert graph.has_edge(1, 2)
        assert not graph.has_edge(2, 1)

    def test_adjacency_vectors_sorted(self):
        graph = DirectedGraph()
        for dst in [5, 2, 9, 1]:
            graph.add_edge(0, dst)
        assert graph.out_neighbors(0).tolist() == [1, 2, 5, 9]

    def test_in_neighbors(self):
        graph = DirectedGraph()
        graph.add_edge(3, 1)
        graph.add_edge(2, 1)
        assert graph.in_neighbors(1).tolist() == [2, 3]

    def test_degrees(self):
        graph = DirectedGraph()
        graph.add_edge(1, 2)
        graph.add_edge(3, 1)
        assert graph.out_degree(1) == 1
        assert graph.in_degree(1) == 1
        assert graph.degree(1) == 2

    def test_missing_node_raises(self):
        graph = DirectedGraph()
        with pytest.raises(NodeNotFoundError):
            graph.out_neighbors(404)

    def test_neighbors_view_readonly(self):
        graph = DirectedGraph()
        graph.add_edge(1, 2)
        with pytest.raises(ValueError):
            graph.out_neighbors(1)[0] = 9

    def test_edges_iterator(self):
        graph = DirectedGraph()
        graph.add_edge(1, 2)
        graph.add_edge(2, 3)
        assert sorted(graph.edges()) == [(1, 2), (2, 3)]

    def test_edge_arrays(self):
        graph = DirectedGraph()
        graph.add_edge(1, 2)
        graph.add_edge(1, 3)
        src, dst = graph.edge_arrays()
        assert src.tolist() == [1, 1]
        assert dst.tolist() == [2, 3]

    def test_node_array(self):
        graph = DirectedGraph()
        graph.add_node(9)
        graph.add_node(3)
        assert sorted(graph.node_array().tolist()) == [3, 9]

    def test_max_node_id(self):
        graph = DirectedGraph()
        assert graph.max_node_id() == -1
        graph.add_node(17)
        assert graph.max_node_id() == 17


class TestSelfLoops:
    def test_self_loop_counts_once(self):
        graph = DirectedGraph()
        graph.add_edge(1, 1)
        assert graph.num_edges == 1
        assert graph.has_edge(1, 1)

    def test_self_loop_in_both_vectors(self):
        graph = DirectedGraph()
        graph.add_edge(1, 1)
        assert graph.out_neighbors(1).tolist() == [1]
        assert graph.in_neighbors(1).tolist() == [1]

    def test_delete_self_loop(self):
        graph = DirectedGraph()
        graph.add_edge(1, 1)
        graph.del_edge(1, 1)
        assert graph.num_edges == 0

    def test_del_node_with_self_loop(self):
        graph = DirectedGraph()
        graph.add_edge(1, 1)
        graph.add_edge(1, 2)
        graph.del_node(1)
        assert graph.num_edges == 0
        assert graph.num_nodes == 1


class TestDeletion:
    def test_del_edge(self):
        graph = DirectedGraph()
        graph.add_edge(1, 2)
        graph.del_edge(1, 2)
        assert graph.num_edges == 0
        assert not graph.has_edge(1, 2)
        assert graph.has_node(1) and graph.has_node(2)

    def test_del_missing_edge_raises(self):
        graph = DirectedGraph()
        graph.add_edge(1, 2)
        with pytest.raises(EdgeNotFoundError):
            graph.del_edge(2, 1)

    def test_del_edge_unknown_source_raises(self):
        with pytest.raises(EdgeNotFoundError):
            DirectedGraph().del_edge(1, 2)

    def test_del_node_removes_incident_edges(self):
        graph = DirectedGraph()
        graph.add_edge(1, 2)
        graph.add_edge(2, 3)
        graph.add_edge(3, 1)
        graph.del_node(2)
        assert graph.num_nodes == 2
        assert graph.num_edges == 1
        assert graph.has_edge(3, 1)

    def test_del_missing_node_raises(self):
        with pytest.raises(NodeNotFoundError):
            DirectedGraph().del_node(1)


class TestDerivedGraphs:
    def test_reverse_flips_edges(self):
        graph = DirectedGraph()
        graph.add_edge(1, 2)
        reversed_graph = graph.reverse()
        assert reversed_graph.has_edge(2, 1)
        assert not reversed_graph.has_edge(1, 2)
        assert reversed_graph.num_edges == 1

    def test_to_undirected_merges(self):
        graph = DirectedGraph()
        graph.add_edge(1, 2)
        graph.add_edge(2, 1)
        graph.add_edge(2, 3)
        und = graph.to_undirected()
        assert und.num_edges == 2

    def test_copy_is_independent(self):
        graph = DirectedGraph()
        graph.add_edge(1, 2)
        copy = graph.copy()
        copy.del_edge(1, 2)
        assert graph.has_edge(1, 2)
        assert not copy.has_edge(1, 2)

    def test_memory_bytes_grows_with_edges(self):
        graph = DirectedGraph()
        graph.add_node(1)
        before = graph.memory_bytes()
        graph.add_edge(1, 2)
        assert graph.memory_bytes() > before


class TestInvariants:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=80))
    def test_matches_reference_edge_set(self, edge_list):
        graph = DirectedGraph()
        reference: set[tuple[int, int]] = set()
        for src, dst in edge_list:
            graph.add_edge(src, dst)
            reference.add((src, dst))
        assert graph.num_edges == len(reference)
        assert sorted(graph.edges()) == sorted(reference)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.tuples(st.integers(0, 10), st.integers(0, 10)), min_size=1, max_size=50),
        st.randoms(use_true_random=False),
    )
    def test_interleaved_insert_delete(self, edge_list, rng):
        graph = DirectedGraph()
        reference: set[tuple[int, int]] = set()
        for src, dst in edge_list:
            if reference and rng.random() < 0.3:
                victim = rng.choice(sorted(reference))
                graph.del_edge(*victim)
                reference.discard(victim)
            graph.add_edge(src, dst)
            reference.add((src, dst))
        assert graph.num_edges == len(reference)
        assert sorted(graph.edges()) == sorted(reference)
        # In-neighbour symmetry: u->v iff v lists u as in-neighbour.
        for src, dst in reference:
            assert src in graph.in_neighbors(dst).tolist()
