"""repro.obs metrics: counter monotonicity, gauge semantics, histogram
summaries and reservoir bounds, registry kind-binding, observe_rate."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    observe_rate,
    registry,
)


class TestCounter:
    def test_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert counter.snapshot() == {"type": "counter", "value": 5}

    def test_never_decreases(self):
        counter = Counter("c")
        counter.inc(3)
        with pytest.raises(ValueError):
            counter.inc(-1)
        assert counter.value == 3

    def test_monotone_across_many_increments(self):
        counter = Counter("c")
        seen = []
        for amount in [0, 1, 2.5, 0, 7]:
            counter.inc(amount)
            seen.append(counter.value)
        assert seen == sorted(seen)


class TestGauge:
    def test_set_is_last_write_wins(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.set(3)
        assert gauge.value == 3

    def test_add_moves_both_directions(self):
        gauge = Gauge("g")
        gauge.add(5)
        gauge.add(-2)
        assert gauge.value == 3
        assert gauge.snapshot() == {"type": "gauge", "value": 3}


class TestHistogram:
    def test_summary_fields(self):
        hist = Histogram("h")
        for value in [1.0, 2.0, 3.0, 4.0]:
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(10.0)
        assert snap["min"] == 1.0 and snap["max"] == 4.0
        assert snap["mean"] == pytest.approx(2.5)
        assert snap["p50"] in (2.0, 3.0)

    def test_reservoir_stays_bounded_while_count_is_exact(self):
        hist = Histogram("h", reservoir=8)
        for value in range(1000):
            hist.observe(value)
        assert hist.count == 1000
        assert len(hist._recent) == 8  # wraparound overwrote, never grew
        snap = hist.snapshot()
        assert snap["count"] == 1000
        assert snap["max"] == 999.0 and snap["min"] == 0.0

    def test_quantiles(self):
        hist = Histogram("h")
        for value in range(100):
            hist.observe(value)
        assert hist.quantile(0.0) == 0.0
        assert hist.quantile(1.0) == 99.0
        assert 45 <= hist.quantile(0.5) <= 55
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_empty_snapshot(self):
        snap = Histogram("h").snapshot()
        assert snap["count"] == 0
        assert snap["mean"] is None and snap["p50"] is None

    def test_reservoir_must_be_positive(self):
        with pytest.raises(ValueError):
            Histogram("h", reservoir=0)


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_name_permanently_bound_to_kind(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_snapshot_is_a_safe_copy(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        snap = reg.snapshot()
        snap["a"]["value"] = 999
        assert reg.counter("a").value == 2

    def test_names_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert reg.names() == ["a", "b"]

    def test_process_wide_registry_is_a_singleton(self):
        assert registry() is registry()


class TestObserveRate:
    def test_creates_total_counter_and_per_s_histogram(self):
        reg = MetricsRegistry()
        observe_rate("convert.rows", 1000, 0.5, registry_=reg)
        assert reg.counter("convert.rows_total").value == 1000
        snap = reg.histogram("convert.rows_per_s").snapshot()
        assert snap["count"] == 1
        assert snap["mean"] == pytest.approx(2000.0)

    def test_zero_elapsed_skips_the_rate_sample(self):
        reg = MetricsRegistry()
        observe_rate("fast.rows", 10, 0.0, registry_=reg)
        assert reg.counter("fast.rows_total").value == 10
        assert reg.histogram("fast.rows_per_s").snapshot()["count"] == 0

    def test_totals_accumulate_monotonically(self):
        reg = MetricsRegistry()
        totals = []
        for units in [100, 50, 200]:
            observe_rate("io.rows", units, 0.1, registry_=reg)
            totals.append(reg.counter("io.rows_total").value)
        assert totals == [100, 150, 350]
        assert totals == sorted(totals)
