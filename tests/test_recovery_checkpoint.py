"""Checksummed checkpoints: atomic commit, verification, quarantine."""

import json
import warnings
import zlib

import numpy as np
import pytest

from repro.core.engine import Ringo
from repro.exceptions import (
    CorruptInputError,
    CorruptionError,
    InjectedFaultError,
    RecoveryError,
    SchemaError,
)
from repro.faults import inject_faults
from repro.graphs.serialize import load_graph, save_graph
from repro.recovery.checkpoint import (
    MANIFEST_NAME,
    find_checkpoints,
    load_manifest,
)
from repro.recovery.digest import catalog_digest
from repro.tables.io_npz import load_table_npz, save_table_npz
from repro.tables.io_tsv import load_table_tsv


@pytest.fixture()
def state(tmp_path):
    return tmp_path / "state"


def build(session):
    table = session.TableFromColumns({"a": [1, 2, 3, 4], "b": [4, 3, 2, 1]})
    filtered = session.Select(table, "a>1")
    session.ToGraph(filtered, "a", "b")
    return table


class TestWriteAndRestore:
    def test_checkpoint_then_recover_restores_without_replay(self, state):
        with Ringo(workers=1, durability=state) as session:
            build(session)
            manifest = session.checkpoint()
            reference = catalog_digest(session)
        assert manifest["wal_lsn"] == 3
        assert set(manifest["objects"]) == {"table-1", "table-2", "graph-3"}
        with Ringo.recover(state, workers=1) as recovered:
            assert catalog_digest(recovered) == reference
            report = recovered.health()["recovery"]["last_recovery"]
            assert report["restored_objects"] == 3
            assert report["replayed_ops"] == 0

    def test_wal_suffix_past_checkpoint_replays(self, state):
        with Ringo(workers=1, durability=state) as session:
            table = build(session)
            session.checkpoint()
            session.OrderBy(table, "b", in_place=True)
            session.Distinct(table)
            reference = catalog_digest(session)
        with Ringo.recover(state, workers=1) as recovered:
            assert catalog_digest(recovered) == reference
            report = recovered.health()["recovery"]["last_recovery"]
            assert report["replayed_ops"] == 2

    def test_manifest_is_self_checksummed(self, state):
        with Ringo(workers=1, durability=state) as session:
            build(session)
            session.checkpoint()
        checkpoint = find_checkpoints(state)[0]
        manifest = load_manifest(checkpoint)
        assert manifest["format"] == 1
        raw = json.loads((checkpoint / MANIFEST_NAME).read_text())
        payload = {k: v for k, v in raw.items() if k != "manifest_crc"}
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        assert zlib.crc32(canonical.encode()) == raw["manifest_crc"]

    def test_aborted_checkpoint_never_commits(self, state):
        with Ringo(workers=1, durability=state) as session:
            build(session)
            with inject_faults({"recovery.checkpoint.write": {"rate": 1.0, "max_triggers": 1}}):
                with pytest.raises(InjectedFaultError):
                    session.checkpoint()
            assert find_checkpoints(state) == []
            session.checkpoint()
            reference = catalog_digest(session)
        assert len(find_checkpoints(state)) == 1
        with Ringo.recover(state, workers=1) as recovered:
            assert catalog_digest(recovered) == reference

    def test_unarmed_checkpoint_needs_directory(self, tmp_path):
        with Ringo(workers=1) as session:
            with pytest.raises(RecoveryError, match="directory"):
                session.checkpoint()
            session.TableFromColumns({"a": [1]})
            manifest = session.checkpoint(tmp_path / "snap")
        assert manifest["objects"] == {}


class TestQuarantine:
    def test_bit_flipped_artifact_is_quarantined_and_rebuilt(self, state):
        with Ringo(workers=1, durability=state) as session:
            build(session)
            with inject_faults({"recovery.checkpoint.bit_flip": {"rate": 1.0, "max_triggers": 1}}):
                session.checkpoint()  # commits with one silently corrupt artifact
            reference = catalog_digest(session)
        with Ringo.recover(state, workers=1) as recovered:
            assert catalog_digest(recovered) == reference
            report = recovered.health()["recovery"]["last_recovery"]
            assert len(report["quarantined"]) == 1
            assert report["quarantined"][0]["moved_to"].endswith(".quarantined")
            assert report["unrecovered"] == []
            # The damaged object came back via WAL lineage, not the artifact.
            assert report["restored_objects"] == 2

    def test_corrupt_manifest_falls_back_to_older_checkpoint(self, state):
        with Ringo(workers=1, durability=state) as session:
            table = build(session)
            session.checkpoint()
            session.Distinct(table)
            session.checkpoint()
            reference = catalog_digest(session)
        newest = find_checkpoints(state)[0]
        manifest_path = newest / MANIFEST_NAME
        manifest_path.write_text(manifest_path.read_text()[:-20])
        with Ringo.recover(state, workers=1) as recovered:
            assert catalog_digest(recovered) == reference
            report = recovered.health()["recovery"]["last_recovery"]
            assert report["invalid_checkpoints"] == 1
            assert report["checkpoint"] == "ckpt-000001"

    def test_strict_recovery_raises_on_unrecoverable(self, state):
        with Ringo(workers=1, durability=state) as session:
            source = state / "rows.tsv"
            source.write_text("1\t2\n3\t4\n")
            session.LoadTableTSV([("a", "int"), ("b", "int")], source)
        source.unlink()  # the only lineage for table-1 is now gone
        with pytest.raises((CorruptionError, RecoveryError)):
            Ringo.recover(state, workers=1, strict=True)
        with Ringo.recover(state, workers=1) as lenient:
            report = lenient.health()["recovery"]["last_recovery"]
            assert [entry["object"] for entry in report["unrecovered"]] == ["table-1"]
            assert "table-1" not in lenient.Objects()


class TestGraphSerializeDigests:
    def test_round_trip_carries_crcs(self, tmp_path):
        with Ringo(workers=1) as session:
            graph = session.GenRMat(4, 12, seed=1)
        path = tmp_path / "g.npz"
        save_graph(graph, path)
        with np.load(path) as archive:
            assert int(archive["version"]) == 2
            assert {"crc_nodes", "crc_sources", "crc_targets"} <= set(archive.files)
        loaded = load_graph(path)
        assert loaded.num_edges == graph.num_edges

    def test_tampered_array_raises_typed_error(self, tmp_path):
        with Ringo(workers=1) as session:
            graph = session.GenRMat(4, 12, seed=1)
        path = tmp_path / "g.npz"
        save_graph(graph, path)
        self._tamper_crc(path)
        with pytest.raises(CorruptInputError, match="sources"):
            load_graph(path)

    def test_verify_warn_loads_with_warning(self, tmp_path):
        with Ringo(workers=1) as session:
            graph = session.GenRMat(4, 12, seed=1)
        path = tmp_path / "g.npz"
        save_graph(graph, path)
        self._tamper_crc(path)
        with pytest.warns(UserWarning, match="CRC mismatch"):
            loaded = load_graph(path, verify="warn")
        assert loaded.num_edges == graph.num_edges
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            load_graph(path, verify=False)

    def test_version_1_archive_still_loads(self, tmp_path):
        with Ringo(workers=1) as session:
            graph = session.GenRMat(4, 12, seed=1)
        sources, targets = graph.edge_arrays()
        path = tmp_path / "v1.npz"
        np.savez(
            path,
            version=np.int64(1),
            directed=np.int64(1),
            nodes=graph.node_array(),
            sources=sources,
            targets=targets,
        )
        loaded = load_graph(path)
        assert loaded.num_edges == graph.num_edges

    def test_garbled_archive_raises_typed_error(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"PK\x03\x04 not actually a zip")
        with pytest.raises(CorruptInputError, match="not a readable graph archive"):
            load_graph(path)

    @staticmethod
    def _tamper_crc(path):
        with np.load(path) as archive:
            payload = {name: archive[name] for name in archive.files}
        payload["sources"] = payload["sources"].copy()
        payload["sources"][0] += 1
        np.savez(path, **payload)


class TestTypedInputCorruption:
    def test_truncated_npz_raises_typed_error(self, tmp_path):
        with Ringo(workers=1) as session:
            table = session.TableFromColumns({"a": [1, 2, 3], "s": ["x", "y", "z"]})
        path = tmp_path / "t.npz"
        save_table_npz(table, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CorruptInputError) as excinfo:
            load_table_npz(path)
        assert str(path) in str(excinfo.value)

    def test_missing_file_stays_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_table_npz(tmp_path / "absent.npz")

    def test_tsv_truncated_final_row_raises_typed_error(self, tmp_path):
        path = tmp_path / "rows.tsv"
        path.write_text("1\t2\n3\t4\n5")  # torn mid-row: no trailing newline
        with pytest.raises(CorruptInputError, match="truncated"):
            load_table_tsv([("a", "int"), ("b", "int")], path)

    def test_tsv_terminated_short_row_stays_schema_error(self, tmp_path):
        path = tmp_path / "rows.tsv"
        path.write_text("1\t2\n5\n")  # short but fully written: schema bug
        with pytest.raises(SchemaError, match=":2"):
            load_table_tsv([("a", "int"), ("b", "int")], path)


class TestHealthSection:
    def test_recovery_section_reports_durability(self, state):
        with Ringo(workers=1) as plain:
            section = plain.health()["recovery"]
            assert section == {"armed": False, "last_recovery": None}
        with Ringo(workers=1, durability=state) as session:
            build(session)
            session.checkpoint()
            section = session.health()["recovery"]
            assert section["armed"]
            assert section["checkpoints_written"] == 1
            assert section["wal"]["appends"] == 3
            assert section["wal"]["last_lsn"] == 3
