"""Tests for repro.util.validation."""

import pytest

from repro.exceptions import RingoError
from repro.util.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    require,
)


class TestRequire:
    def test_passes_when_true(self):
        require(True, "never raised")

    def test_raises_ringo_error(self):
        with pytest.raises(RingoError, match="boom"):
            require(False, "boom")


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive(1, "x")
        check_positive(0.001, "x")

    @pytest.mark.parametrize("value", [0, -1, -0.5])
    def test_rejects_non_positive(self, value):
        with pytest.raises(RingoError, match="must be positive"):
            check_positive(value, "x")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        check_non_negative(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(RingoError, match="non-negative"):
            check_non_negative(-1, "x")


class TestCheckFraction:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        check_fraction(value, "p")

    @pytest.mark.parametrize("value", [-0.01, 1.01])
    def test_rejects_outside(self, value):
        with pytest.raises(RingoError):
            check_fraction(value, "p")
