"""Seeded chaos on the incremental subsystem: degrade, never lie.

Every fault site in the delta path (``incremental.delta.apply``,
``incremental.compact``, ``incremental.wal.tail``) is armed here and the
same property asserted each time: a fired fault makes the system fall
back to a full rebuild (or stop a tail with a resumable cursor) with the
reason recorded — it never serves a wrong snapshot or half-applied
stream. The final test SIGKILLs a real child session mid-WAL-append of a
compaction-sized ``ApplyOps`` batch and proves recovery reconstructs
exactly the committed prefix.
"""

import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.algorithms.components import weakly_connected_components
from repro.core.engine import Ringo
from repro.faults import KNOWN_SITES, inject_faults
from repro.graphs.csr import CSRGraph
from repro.graphs.snapshot import csr_snapshot
from repro.incremental.engine import incremental_engine
from repro.recovery.digest import object_digest
from tests.helpers import build_directed

SRC = Path(__file__).resolve().parents[1] / "src"

INCREMENTAL_SITES = (
    "incremental.delta.apply",
    "incremental.compact",
    "incremental.wal.tail",
)


@pytest.fixture(autouse=True)
def _fresh_engine():
    engine = incremental_engine()
    engine.reset()
    yield engine
    engine.reset()


def _assert_same_csr(got: CSRGraph, expected: CSRGraph) -> None:
    assert np.array_equal(got.node_ids, expected.node_ids)
    assert np.array_equal(got.out_indptr, expected.out_indptr)
    assert np.array_equal(got.out_indices, expected.out_indices)
    assert np.array_equal(got.in_indptr, expected.in_indptr)
    assert np.array_equal(got.in_indices, expected.in_indices)


def _seeded_graph():
    graph = build_directed([(i, (i * 3 + 1) % 20) for i in range(40)])
    csr_snapshot(graph)  # anchor the mutation log at the cached version
    return graph


def test_sites_are_registered():
    for site in INCREMENTAL_SITES:
        assert site in KNOWN_SITES, site


def test_delta_apply_fault_degrades_to_rebuild(_fresh_engine):
    graph = _seeded_graph()
    graph.add_edge(100, 101)
    graph.del_edge(0, 1)
    with inject_faults({"incremental.delta.apply": 1.0}, seed=3):
        refreshed = csr_snapshot(graph)
    _assert_same_csr(refreshed, CSRGraph.from_graph(graph))
    stats = _fresh_engine.stats()
    assert stats["fallback_full"] == 1
    assert stats["delta_applied"] == 0
    assert "InjectedFaultError" in stats["last_fallback_reason"]
    # Disarmed, the next refresh rides the delta path again.
    graph.add_edge(101, 102)
    _assert_same_csr(csr_snapshot(graph), CSRGraph.from_graph(graph))
    assert _fresh_engine.stats()["delta_applied"] == 1


def test_oversized_overlay_compacts(_fresh_engine):
    _fresh_engine.configure(min_compact_ops=4, compact_fraction=0.001)
    graph = _seeded_graph()
    for i in range(10):
        graph.add_edge(200 + i, 201 + i)
    refreshed = csr_snapshot(graph)
    _assert_same_csr(refreshed, CSRGraph.from_graph(graph))
    stats = _fresh_engine.stats()
    assert stats["compactions"] == 1
    assert stats["delta_applied"] == 0
    assert stats["fallback_full"] == 0


def test_compact_fault_degrades_to_rebuild(_fresh_engine):
    _fresh_engine.configure(min_compact_ops=4, compact_fraction=0.001)
    graph = _seeded_graph()
    for i in range(10):
        graph.add_edge(200 + i, 201 + i)
    with inject_faults({"incremental.compact": 1.0}, seed=5):
        refreshed = csr_snapshot(graph)
    _assert_same_csr(refreshed, CSRGraph.from_graph(graph))
    stats = _fresh_engine.stats()
    assert stats["compactions"] == 0
    assert stats["fallback_full"] == 1
    assert "InjectedFaultError" in stats["last_fallback_reason"]


def _producer_session(state):
    session = Ringo(workers=1, durability=state)
    table = session.TableFromColumns({"a": [1, 2, 3], "b": [2, 3, 1]})
    graph = session.ToGraph(table, "a", "b")
    return session, graph


def _follower_session(state):
    """Same catalog shape as the producer so WAL targets resolve by name.

    Durability makes the follower publish under the same auto-names the
    producer used (``table-1`` / ``graph-2``) — TailWal resolves targets
    by catalog name, so the shapes must line up.
    """
    session = Ringo(workers=1, durability=state)
    table = session.TableFromColumns({"a": [1, 2, 3], "b": [2, 3, 1]})
    graph = session.ToGraph(table, "a", "b")
    return session, graph


def test_wal_tail_fault_stops_with_resumable_cursor(tmp_path):
    state = tmp_path / "stream"
    producer, source = _producer_session(state)
    with producer:
        producer.ApplyOps(source, [["add_edge", 3, 4], ["add_edge", 4, 1]])
        producer.ApplyOps(source, [["del_edge", 1, 2], ["add_edge", 2, 4]])

    follower, mirror = _follower_session(tmp_path / "follower")
    with follower:
        with inject_faults({"incremental.wal.tail": 1.0}, seed=9):
            stalled = follower.TailWal(state)
        assert stalled["error"] is not None
        assert "InjectedFaultError" in stalled["error"]
        assert stalled["applied_records"] == 0
        assert object_digest(mirror) != object_digest(source)

        # Retrying from the returned cursor applies everything exactly once.
        resumed = follower.TailWal(state, cursor=stalled["cursor"])
        assert resumed["error"] is None
        assert resumed["applied_records"] == 2
        assert resumed["applied_ops"] == 4
        assert object_digest(mirror) == object_digest(source)

        # A third tail from the final cursor is a no-op, not a re-apply.
        again = follower.TailWal(state, cursor=resumed["cursor"])
        assert again["applied_records"] == 0
        assert object_digest(mirror) == object_digest(source)


def test_wal_tail_midstream_fault_resumes(tmp_path):
    """A fault firing *between* records leaves a cursor mid-stream."""
    state = tmp_path / "stream"
    producer, source = _producer_session(state)
    with producer:
        for batch in ([["add_edge", 3, 4]], [["add_edge", 4, 5]],
                      [["add_edge", 5, 1]]):
            producer.ApplyOps(source, batch)

    follower, mirror = _follower_session(tmp_path / "follower")
    with follower:
        # The first trigger is swallowed by a creation record; the one
        # that hits an ApplyOps stops the tail partway through.
        with inject_faults(
            {"incremental.wal.tail": {"rate": 1.0, "max_triggers": 3}}, seed=1
        ):
            stalled = follower.TailWal(state)
        assert stalled["error"] is not None
        resumed = follower.TailWal(state, cursor=stalled["cursor"])
        assert resumed["error"] is None
        assert stalled["applied_records"] + resumed["applied_records"] == 3
        assert object_digest(mirror) == object_digest(source)


CHILD_PRELUDE = """
import os, signal, sys
from repro.core.engine import Ringo
from repro.exceptions import InjectedFaultError
from repro.faults import inject_faults
from repro.incremental.engine import incremental_engine

state = sys.argv[1]
session = Ringo(workers=1, durability=state)
# Compaction-sized batches: anything surviving the crash would have
# pushed the overlay past the threshold on the next snapshot.
incremental_engine().configure(min_compact_ops=2, compact_fraction=0.001)

def build_committed(session):
    table = session.TableFromColumns({"a": [1, 2, 3, 4], "b": [2, 3, 4, 1]})
    graph = session.ToGraph(table, "a", "b")
    session.ApplyOps(graph, [["add_edge", 4, 2], ["add_edge", 1, 3]])
    session.GetPageRank(graph)  # snapshot + warm state before the crash
    return graph
"""


def run_child(body: str, state: Path) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep * bool(env.get("PYTHONPATH")) + env.get(
        "PYTHONPATH", ""
    )
    return subprocess.run(
        [sys.executable, "-c", CHILD_PRELUDE + body, str(state)],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )


def reference_graph_digest():
    """Clean rerun of the committed prefix the crashed child shares."""
    with Ringo(workers=1) as session:
        table = session.TableFromColumns({"a": [1, 2, 3, 4], "b": [2, 3, 4, 1]})
        graph = session.ToGraph(table, "a", "b")
        session.ApplyOps(graph, [["add_edge", 4, 2], ["add_edge", 1, 3]])
        return object_digest(graph), weakly_connected_components(graph)


def test_sigkill_mid_compaction_batch_recovers(tmp_path):
    state = tmp_path / "state"
    result = run_child(
        """
graph = build_committed(session)
# Die mid-append of a compaction-sized ApplyOps: the torn-write fault
# leaves half a WAL frame on disk, then SIGKILL ends the process.
with inject_faults({"recovery.wal.torn_write": 1.0}):
    try:
        session.ApplyOps(graph, [["add_edge", 10 + i, 11 + i] for i in range(8)])
    except InjectedFaultError:
        os.kill(os.getpid(), signal.SIGKILL)
""",
        state,
    )
    assert result.returncode == -signal.SIGKILL, result.stderr

    expected_digest, expected_wcc = reference_graph_digest()
    with Ringo.recover(state, workers=1) as recovered:
        report = recovered.health()["recovery"]["last_recovery"]
        assert report["wal_torn_tail"]
        assert report["unrecovered"] == []
        names = [
            name for name in recovered.Objects() if name.startswith("graph")
        ]
        graph = recovered.GetObject(names[0])
        # The torn ApplyOps never surfaces: digest and analytics equal
        # the committed prefix, through the same incremental path.
        assert object_digest(graph) == expected_digest
        assert recovered.GetWcc(graph) == expected_wcc
