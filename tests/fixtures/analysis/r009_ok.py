"""R009 fixture: both helpers honour one global lock order (clean)."""

import threading

LOCK_A = threading.Lock()
LOCK_B = threading.Lock()


def forward(items):
    with LOCK_A:
        with LOCK_B:
            items.append("forward")


def also_forward(items):
    with LOCK_A:
        with LOCK_B:
            items.append("again")
