"""R001 fixture: structural mutation without a version bump (flagged)."""

from repro.graphs.base import GraphBase


class ForgetfulGraph(GraphBase):
    def __init__(self):
        self._nodes = {}
        self._edge_src = []
        self._edge_dst = []
        self._version = 0

    def add_edge(self, src, dst):
        self._edge_src.append(src)
        self._edge_dst.append(dst)
        return len(self._edge_src) - 1
