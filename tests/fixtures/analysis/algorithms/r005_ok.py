"""R005 fixture: vectorised kernel and explicit .tolist() escape (clean)."""

import numpy as np


def fast_sum(count):
    weights = np.ones(count)
    return float(weights.sum())


def scalar_loop(count):
    weights = np.ones(count)
    total = 0.0
    for value in weights.tolist():  # explicit materialisation: accepted
        total += value
    return total
