"""R005 fixture: Python-level loop over an ndarray (advisory finding)."""

import numpy as np


def slow_sum(count):
    weights = np.ones(count)
    total = 0.0
    for value in weights:  # boxes every element
        total += value
    return total
