"""R006 fixture: the three accepted kernel-write disciplines (clean)."""


def locked_total(pool, values, lock):
    totals = {"sum": 0}

    def kernel(lo, hi):
        with lock:
            totals["sum"] += sum(values[lo:hi])

    pool.map_range(len(values), kernel)
    return totals["sum"]


def counted_total(pool, values, counter):
    def kernel(lo, hi):
        counter.fetch_add(sum(values[lo:hi]))

    pool.map_range(len(values), kernel)
    return counter.value


def partition_fill(pool, out, offsets, payload):
    # Disjoint spans: each write is indexed by this kernel's own range.
    def kernel(lo, hi):
        for index in range(lo, hi):
            start = offsets[index]
            stop = offsets[index + 1]
            out[start:stop] = payload[index]

    pool.map_range(len(offsets) - 1, kernel)
