"""R007 fixture: lambda kernel at a dispatch site (flagged)."""


def spread(dispatcher, csr, share):
    return dispatcher.run_kernel(
        csr,
        lambda arrays, lo, hi: arrays["in_indices"][lo:hi] * share,
        arrays=("in_indptr", "in_indices"),
        total=csr.num_nodes,
    )
