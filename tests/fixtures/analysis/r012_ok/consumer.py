"""R012 fixture consumer: references every registered site."""

from faults import fault_point


def step():
    fault_point("parallel.kernel")


def accept():
    fault_point("service.accept")
