"""R012 fixture registry: every entry is referenced (clean)."""

KNOWN_SITES = (
    "parallel.kernel",
    "service.accept",
)


def fault_point(site):
    return site
