"""R006 fixture: pool kernel mutating captured state bare (flagged)."""


def racy_total(pool, values):
    totals = {"sum": 0}

    def kernel(lo, hi):
        for index in range(lo, hi):
            totals["sum"] += values[index]  # sibling kernels race here

    pool.map_range(len(values), kernel)
    return totals["sum"]
