"""R008 fixture: the blocking helper is hopped via to_thread (clean)."""

import asyncio
import time


def backoff(seconds):
    time.sleep(seconds)


async def handler(request):
    await asyncio.to_thread(backoff, 0.5)
    return request
