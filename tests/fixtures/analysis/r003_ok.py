"""R003 fixture: fault site registered in KNOWN_SITES (clean)."""

from repro.faults import fault_point


def guarded_step():
    fault_point("parallel.kernel")


def durable_step():
    fault_point("recovery.wal.append")
    fault_point("recovery.checkpoint.write")


def service_step():
    fault_point("service.accept")
    fault_point("service.dispatch")
    fault_point("service.evict")


def incremental_step():
    fault_point("incremental.delta.apply")
    fault_point("incremental.compact")
    fault_point("incremental.wal.tail")


def replication_step():
    fault_point("replication.ship")
    fault_point("replication.apply")
    fault_point("replication.promote")
