"""R003 fixture: fault site string not in KNOWN_SITES (flagged)."""

from repro.faults import fault_point


def risky_step():
    fault_point("replication.shipp")  # typo'd site: failover drills never fire
