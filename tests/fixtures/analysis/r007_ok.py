"""R007 fixture: module-level kernel passed by name, state via extra= (clean)."""


def _spread_partition(arrays, lo, hi, share):
    return arrays["in_indices"][lo:hi] * share


def spread(dispatcher, csr, share):
    return dispatcher.run_kernel(
        csr,
        _spread_partition,
        arrays=("in_indptr", "in_indices"),
        total=csr.num_nodes,
        extra=(share,),
    )
