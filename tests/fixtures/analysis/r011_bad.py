"""R011 fixture: a bare except silently eats every error (flagged)."""


def load(path, parse):
    try:
        return parse(path)
    except:  # noqa: E722 - the bare except is the point of the fixture
        return None
