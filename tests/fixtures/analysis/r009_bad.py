"""R009 fixture: two helpers take the same two locks in opposite order."""

import threading

LOCK_A = threading.Lock()
LOCK_B = threading.Lock()


def forward(items):
    with LOCK_A:
        with LOCK_B:
            items.append("forward")


def backward(items):
    with LOCK_B:
        with LOCK_A:
            items.append("backward")
