"""R004 fixture: both accepted release disciplines (clean)."""

import threading

_lock = threading.Lock()
_counter = 0


def bump_with(amount):
    global _counter
    with _lock:
        _counter += amount
    return _counter


def bump_finally(amount):
    global _counter
    _lock.acquire()
    try:
        _counter += amount
    finally:
        _lock.release()
    return _counter


def bump_timeout(amount):
    global _counter
    try:
        if not _lock.acquire(timeout=1.0):
            raise TimeoutError("lock busy")
        _counter += amount
    finally:
        _lock.release()
    return _counter
