"""R002 fixture: conversion routed through the versioned cache (clean)."""

from repro.algorithms.common import as_csr


def cached_pagerank_input(graph):
    return as_csr(graph)
