"""R004 fixture: bare acquire/release with no finally (flagged)."""

import threading

_lock = threading.Lock()
_counter = 0


def bump(amount):
    global _counter
    _lock.acquire()
    _counter += amount  # an exception here wedges every other thread
    _lock.release()
    return _counter
