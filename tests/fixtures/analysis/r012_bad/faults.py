"""R012 fixture registry: one entry is never referenced (flagged)."""

KNOWN_SITES = (
    "parallel.kernel",
    "service.accept",
)


def fault_point(site):
    return site
