"""R012 fixture consumer: references only one of the two sites."""

from faults import fault_point


def step():
    fault_point("parallel.kernel")
