"""R001 fixture: every structural mutation bumps the version (clean)."""

from repro.graphs.base import GraphBase


class DutifulGraph(GraphBase):
    def __init__(self):
        self._nodes = {}
        self._edge_src = []
        self._edge_dst = []
        self._node_attrs = {}
        self._version = 0

    def add_edge(self, src, dst):
        self._edge_src.append(src)
        self._edge_dst.append(dst)
        self._bump_version()
        return len(self._edge_src) - 1

    def set_node_attr(self, node_id, name, value):
        # Attribute-only update: must NOT require a bump.
        self._node_attrs.setdefault(node_id, {})[name] = value
