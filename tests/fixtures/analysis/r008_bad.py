"""R008 fixture: async handler reaches a blocking sleep (flagged)."""

import time


def backoff(seconds):
    time.sleep(seconds)


async def handler(request):
    backoff(0.5)
    return request
