"""R011 fixture: a narrow typed catch that records the error (clean)."""


def load(path, parse, log):
    try:
        return parse(path)
    except ValueError as error:
        log(error)
        return None
