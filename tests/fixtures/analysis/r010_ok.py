"""R010 fixture: the lease is released on every path (clean)."""


def run(registry, csr, arrays, dispatch):
    export, descriptor = registry.lease(csr, arrays)
    try:
        return dispatch(descriptor)
    finally:
        registry.release(export)
