"""R010 fixture: a leased export escapes without release on error."""


def run(registry, csr, arrays, dispatch):
    export, descriptor = registry.lease(csr, arrays)
    results = dispatch(descriptor)
    registry.release(export)
    return results
