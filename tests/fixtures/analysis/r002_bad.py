"""R002 fixture: raw CSR conversion outside the snapshot cache (flagged)."""

from repro.graphs.csr import CSRGraph


def eager_pagerank_input(graph):
    return CSRGraph.from_graph(graph)
