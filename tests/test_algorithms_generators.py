"""Tests for graph generators."""

import numpy as np
import pytest

from repro.algorithms.generators import (
    balanced_tree,
    barabasi_albert,
    complete_graph,
    erdos_renyi_gnm,
    erdos_renyi_gnp,
    grid_graph,
    ring_graph,
    rmat,
    rmat_edges,
    star_graph,
    watts_strogatz,
)
from repro.exceptions import AlgorithmError, RingoError


class TestDeterministicShapes:
    def test_complete_undirected(self):
        graph = complete_graph(5)
        assert graph.num_nodes == 5
        assert graph.num_edges == 10

    def test_complete_directed(self):
        graph = complete_graph(4, directed=True)
        assert graph.num_edges == 12

    def test_star(self):
        graph = star_graph(6)
        assert graph.num_nodes == 7
        assert graph.degree(0) == 6

    def test_ring(self):
        graph = ring_graph(5)
        assert graph.num_edges == 5
        assert all(graph.degree(node) == 2 for node in graph.nodes())

    def test_ring_degenerate_sizes(self):
        assert ring_graph(0).num_nodes == 0
        assert ring_graph(1).num_edges == 0
        assert ring_graph(2).num_edges == 1

    def test_grid(self):
        graph = grid_graph(3, 4)
        assert graph.num_nodes == 12
        assert graph.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_balanced_tree(self):
        graph = balanced_tree(2, 3)
        assert graph.num_nodes == 15
        assert graph.num_edges == 14

    def test_balanced_tree_depth_zero(self):
        assert balanced_tree(3, 0).num_nodes == 1


class TestErdosRenyi:
    def test_gnm_exact_edge_count(self):
        graph = erdos_renyi_gnm(50, 100, seed=1)
        assert graph.num_nodes == 50
        assert graph.num_edges == 100

    def test_gnm_directed(self):
        graph = erdos_renyi_gnm(20, 50, directed=True, seed=2)
        assert graph.is_directed
        assert graph.num_edges == 50

    def test_gnm_too_many_edges(self):
        with pytest.raises(AlgorithmError):
            erdos_renyi_gnm(3, 10)

    def test_gnm_deterministic(self):
        a = erdos_renyi_gnm(30, 60, seed=7)
        b = erdos_renyi_gnm(30, 60, seed=7)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_gnp_edge_count_near_expectation(self):
        graph = erdos_renyi_gnp(100, 0.1, seed=3)
        expected = 0.1 * 100 * 99 / 2
        assert abs(graph.num_edges - expected) < 4 * np.sqrt(expected)

    def test_gnp_no_self_loops(self):
        graph = erdos_renyi_gnp(30, 0.5, directed=True, seed=4)
        assert all(src != dst for src, dst in graph.edges())

    def test_gnp_invalid_probability(self):
        with pytest.raises(RingoError):
            erdos_renyi_gnp(10, 1.5)


class TestBarabasiAlbert:
    def test_node_and_edge_counts(self):
        graph = barabasi_albert(100, 3, seed=5)
        assert graph.num_nodes == 100
        # Seed clique C(4,2)=6 edges + 96 nodes * 3 edges.
        assert graph.num_edges == 6 + 96 * 3

    def test_hubs_emerge(self):
        graph = barabasi_albert(300, 2, seed=6)
        degrees = sorted((graph.degree(node) for node in graph.nodes()), reverse=True)
        assert degrees[0] > 4 * degrees[len(degrees) // 2]

    def test_invalid_sizes(self):
        with pytest.raises(AlgorithmError):
            barabasi_albert(3, 3)


class TestWattsStrogatz:
    def test_no_rewiring_is_lattice(self):
        graph = watts_strogatz(20, 4, 0.0, seed=7)
        assert graph.num_edges == 20 * 2
        assert all(graph.degree(node) == 4 for node in graph.nodes())

    def test_rewiring_preserves_edge_count(self):
        graph = watts_strogatz(40, 4, 0.5, seed=8)
        assert graph.num_edges == 40 * 2

    def test_odd_nearest_rejected(self):
        with pytest.raises(AlgorithmError):
            watts_strogatz(10, 3, 0.1)

    def test_nearest_too_large_rejected(self):
        with pytest.raises(AlgorithmError):
            watts_strogatz(4, 4, 0.1)


class TestRmat:
    def test_edge_arrays_in_range(self):
        src, dst = rmat_edges(scale=8, num_edges=1000, seed=9)
        assert len(src) == 1000
        assert src.max() < 2**8 and dst.max() < 2**8
        assert src.min() >= 0 and dst.min() >= 0

    def test_deterministic(self):
        a = rmat_edges(scale=6, num_edges=500, seed=10)
        b = rmat_edges(scale=6, num_edges=500, seed=10)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(AlgorithmError):
            rmat_edges(scale=4, num_edges=10, probabilities=(0.5, 0.5, 0.5, 0.5))

    def test_graph_is_skewed(self):
        graph = rmat(scale=10, num_edges=8000, seed=11)
        degrees = sorted(
            (graph.out_degree(node) for node in graph.nodes()), reverse=True
        )
        median = degrees[len(degrees) // 2]
        assert degrees[0] > 8 * max(median, 1)

    def test_undirected_variant(self):
        graph = rmat(scale=6, num_edges=300, seed=12, directed=False)
        assert not graph.is_directed
