"""Integration: a realistic trial-and-error exploration session.

The paper's thesis is the *workflow* — rapid iteration between tables
and graphs. This test drives one long session end to end, checking
consistency invariants after every step, the way §4.1's "open
exploration" segment would exercise the system.
"""

import numpy as np
import pytest

from repro.core.engine import Ringo
from repro.workflows.stackoverflow import (
    POSTS_SCHEMA,
    StackOverflowConfig,
    generate_stackoverflow,
    write_posts_tsv,
)


@pytest.fixture(scope="module")
def session_data(tmp_path_factory):
    data = generate_stackoverflow(
        StackOverflowConfig(num_users=400, num_questions=2500, seed=99)
    )
    path = tmp_path_factory.mktemp("session") / "posts.tsv"
    write_posts_tsv(data, path)
    return data, path


class TestExploratorySession:
    def test_full_session(self, session_data):
        data, path = session_data
        with Ringo(workers=1) as ringo:
            # -- Step 1: load and profile the raw data -----------------
            posts = ringo.LoadTableTSV(POSTS_SCHEMA, path)
            assert posts.num_rows == data.posts.num_rows
            profile = ringo.Describe(posts)
            assert profile.num_rows == len(POSTS_SCHEMA)

            tag_counts = ringo.ValueCounts(posts, "Tag")
            assert int(tag_counts.column("Count").sum()) == posts.num_rows

            # -- Step 2: first attempt — accepted-answer graph ---------
            java = ringo.Select(posts, "Tag=Java")
            questions = ringo.Select(java, "Type=question")
            answers = ringo.Select(java, "Type=answer")
            qa = ringo.Join(questions, answers, "AnswerId", "PostId")
            accepted_graph = ringo.ToGraph(qa, "UserId-1", "UserId-2")
            ranks = ringo.GetPageRank(accepted_graph)
            assert sum(ranks.values()) == pytest.approx(1.0)

            # -- Step 3: trial-and-error — alternative construction ----
            # "A different way is to connect StackOverflow users that
            # answered the same question."
            co_graph = ringo.ToCoOccurrenceGraph(answers, "ParentId", "UserId")
            assert not co_graph.is_directed
            assert co_graph.num_edges > 0
            # Experts answer a lot, so they should sit in the co-answer
            # graph's densest region.
            cores = ringo.GetCoreNumbers(co_graph)
            experts = set(data.experts_for("Java"))
            expert_cores = [c for node, c in cores.items() if node in experts]
            other_cores = [c for node, c in cores.items() if node not in experts]
            assert np.mean(expert_cores) > np.mean(other_cores)

            # -- Step 4: results back to tables and re-filter -----------
            scores = ringo.TableFromHashMap(ranks, "User", "Scr")
            ringo.WithColumn(scores, "Milli", "Scr * 1000")
            strong = ringo.Select(scores, "Milli > 1.0")
            assert strong.num_rows <= scores.num_rows
            top = ringo.TopK(scores, "Scr", 10)
            hits = sum(1 for u in top.column("User").tolist() if u in experts)
            assert hits >= 7

            # -- Step 5: compare measures on the same graph -------------
            hubs, auths = ringo.GetHits(accepted_graph)
            auth_table = ringo.TableFromHashMap(auths, "User", "Auth")
            merged = ringo.Join(scores, auth_table, "User")
            assert merged.num_rows == scores.num_rows
            # Both measures agree on who the top experts are (top-10
            # overlap of at least half).
            top_pr = set(ringo.TopK(scores, "Scr", 10).column("User").tolist())
            top_auth = set(ringo.TopK(auth_table, "Auth", 10).column("User").tolist())
            assert len(top_pr & top_auth) >= 5

            # -- Step 6: structural exploration --------------------------
            wcc = ringo.GetWcc(accepted_graph)
            assert len(wcc) == accepted_graph.num_nodes
            ego = ringo.GetEgonet(accepted_graph, max(ranks, key=ranks.get), radius=1)
            assert ego.num_nodes >= 1
            edge_table = ringo.GetEdgeTable(accepted_graph)
            assert edge_table.num_rows == accepted_graph.num_edges

            # -- Step 7: persistence round trip ---------------------------
            snapshot_graph = sorted(accepted_graph.edges())
            rebuilt = ringo.ToGraph(edge_table, "SrcId", "DstId")
            assert sorted(rebuilt.edges()) == snapshot_graph

    def test_session_pool_consistency_across_steps(self, session_data):
        _, path = session_data
        with Ringo(workers=1) as ringo:
            posts = ringo.LoadTableTSV(POSTS_SCHEMA, path)
            java = ringo.Select(posts, "Tag=Java")
            python_posts = ringo.Select(posts, "Tag=Python")
            # Cross-table set ops work because all session tables share
            # one pool.
            both = ringo.Union(java, python_posts)
            assert both.num_rows == java.num_rows + python_posts.num_rows

    def test_repeated_selects_preserve_identity(self, session_data):
        _, path = session_data
        with Ringo(workers=1) as ringo:
            posts = ringo.LoadTableTSV(POSTS_SCHEMA, path)
            original = {
                int(rid): value
                for rid, value in zip(posts.row_ids, posts.column("PostId"))
            }
            narrowed = posts
            for predicate in ("Type=answer", "UserId >= 10", "PostId > 100"):
                narrowed = ringo.Select(narrowed, predicate)
            for rid, post_id in zip(narrowed.row_ids, narrowed.column("PostId")):
                assert original[int(rid)] == post_id
