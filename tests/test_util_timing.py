"""Tests for repro.util.timing."""

import time

import pytest

from repro.util.timing import Stopwatch, Timer, format_duration


class TestFormatDuration:
    def test_sub_resolution_matches_paper_convention(self):
        assert format_duration(0.05) == "<0.2s"
        assert format_duration(0.19) == "<0.2s"

    def test_two_decimals_under_ten_seconds(self):
        assert format_duration(2.764) == "2.76s"

    def test_one_decimal_over_ten_seconds(self):
        assert format_duration(60.49) == "60.5s"

    def test_boundary_at_point_two(self):
        assert format_duration(0.2) == "0.20s"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_duration(-1.0)


class TestStopwatch:
    def test_measures_elapsed_time(self):
        with Stopwatch() as sw:
            time.sleep(0.01)
        assert sw.elapsed >= 0.009

    def test_elapsed_while_running(self):
        sw = Stopwatch()
        with sw:
            assert sw.elapsed >= 0.0

    def test_unstarted_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().elapsed

    def test_elapsed_frozen_after_exit(self):
        with Stopwatch() as sw:
            pass
        first = sw.elapsed
        time.sleep(0.005)
        assert sw.elapsed == first


class TestTimer:
    def test_records_named_stage(self):
        timer = Timer()
        with timer.stage("load"):
            time.sleep(0.005)
        assert timer.stages["load"] >= 0.004

    def test_reentering_stage_accumulates(self):
        timer = Timer()
        with timer.stage("work"):
            time.sleep(0.004)
        first = timer.stages["work"]
        with timer.stage("work"):
            time.sleep(0.004)
        assert timer.stages["work"] > first

    def test_total_sums_stages(self):
        timer = Timer()
        timer.stages.update({"a": 1.0, "b": 2.5})
        assert timer.total == pytest.approx(3.5)

    def test_report_lists_longest_first(self):
        timer = Timer()
        timer.stages.update({"short": 0.5, "long": 5.0})
        lines = timer.report().splitlines()
        assert lines[0].startswith("long")
        assert lines[1].startswith("short")
