"""The shared RetryPolicy: deterministic schedules, shared telemetry."""

import pytest

from repro import obs
from repro.exceptions import RetryExhaustedError, TransientError
from repro.parallel.resilience import RetryPolicy, run_with_retry


class Flaky(TransientError):
    """A transient failure for retry tests."""


def test_schedule_is_deterministic_for_a_seed():
    policy = RetryPolicy(max_attempts=5, base_delay=0.01, seed=42)
    again = RetryPolicy(max_attempts=5, base_delay=0.01, seed=42)
    assert policy.schedule() == again.schedule()
    assert len(policy.schedule()) == 4  # one delay per re-attempt
    assert policy.schedule() == tuple(policy.delay(n) for n in range(1, 5))


def test_schedule_varies_with_seed_but_not_with_callers():
    base = RetryPolicy(max_attempts=4, base_delay=0.01, jitter=0.5, seed=1)
    other = RetryPolicy(max_attempts=4, base_delay=0.01, jitter=0.5, seed=2)
    assert base.schedule() != other.schedule()
    # Consuming delays in any order or repeatedly never perturbs them —
    # jitter is a pure function of (seed, attempt), not global RNG state.
    forward = [base.delay(n) for n in (1, 2, 3)]
    backward = [base.delay(n) for n in (3, 2, 1)]
    assert forward == backward[::-1]


def test_schedule_respects_backoff_bounds():
    policy = RetryPolicy(
        max_attempts=6, base_delay=0.01, max_delay=0.05, jitter=0.5, seed=9
    )
    for attempt, delay in enumerate(policy.schedule(), start=1):
        floor = policy.base_delay * (2.0 ** (attempt - 1))
        assert delay <= policy.max_delay
        assert delay >= min(floor, policy.max_delay)
        assert delay <= floor * (1.0 + policy.jitter)


def test_run_with_retry_sleeps_the_published_schedule():
    policy = RetryPolicy(max_attempts=4, base_delay=0.01, seed=7)
    slept = []
    attempts = []

    def task():
        attempts.append(True)
        raise Flaky("still failing")

    with pytest.raises(RetryExhaustedError):
        run_with_retry(task, policy, sleep=slept.append)
    assert len(attempts) == policy.max_attempts
    # The exact jittered schedule the policy advertised is what ran.
    assert tuple(slept) == policy.schedule()


def test_metric_prefix_separates_pool_and_service_telemetry():
    policy = RetryPolicy(max_attempts=3, base_delay=0.0, seed=0)
    failures = {"count": 2}

    def task():
        if failures["count"] > 0:
            failures["count"] -= 1
            raise Flaky("transient")
        return "done"

    tracer = obs.enable(sinks=[obs.RingBufferSink(capacity=64)])
    try:
        registry = obs.registry()
        before = registry.counter("service.retries_total").value
        pool_before = registry.counter("pool.retries_total").value
        result = run_with_retry(
            task, policy, sleep=lambda _s: None, metric_prefix="service"
        )
        assert result == "done"
        assert registry.counter("service.retries_total").value == before + 2
        assert registry.counter("pool.retries_total").value == pool_before
    finally:
        if obs.current_tracer() is tracer:
            obs.disable()


def test_non_retryable_errors_propagate_immediately():
    policy = RetryPolicy(max_attempts=5, base_delay=0.0)
    calls = []

    def task():
        calls.append(True)
        raise ValueError("not transient")

    with pytest.raises(ValueError):
        run_with_retry(task, policy, sleep=lambda _s: None)
    assert len(calls) == 1
