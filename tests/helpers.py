"""Shared test helpers: graph builders and networkx bridging."""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.convert.table_to_graph import graph_from_edge_arrays
from repro.graphs.directed import DirectedGraph
from repro.graphs.undirected import UndirectedGraph


def build_directed(edge_list) -> DirectedGraph:
    """DirectedGraph from a list of (src, dst) pairs."""
    graph = DirectedGraph()
    for src, dst in edge_list:
        graph.add_edge(src, dst)
    return graph


def build_undirected(edge_list) -> UndirectedGraph:
    """UndirectedGraph from a list of (u, v) pairs."""
    graph = UndirectedGraph()
    for u, v in edge_list:
        graph.add_edge(u, v)
    return graph


def to_networkx(graph):
    """Convert one of our graphs into the corresponding networkx graph."""
    result = nx.DiGraph() if graph.is_directed else nx.Graph()
    result.add_nodes_from(graph.nodes())
    result.add_edges_from(graph.edges())
    return result


def random_directed(num_nodes: int, num_edges: int, seed: int) -> DirectedGraph:
    """Random simple directed graph (duplicates collapse)."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_nodes, size=num_edges)
    dst = rng.integers(0, num_nodes, size=num_edges)
    return graph_from_edge_arrays(src, dst, directed=True)


def random_undirected(num_nodes: int, num_edges: int, seed: int) -> UndirectedGraph:
    """Random simple undirected graph (duplicates collapse)."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_nodes, size=num_edges)
    dst = rng.integers(0, num_nodes, size=num_edges)
    return graph_from_edge_arrays(src, dst, directed=False)


def apply_random_mutations(graph, rng, count: int, universe: int) -> list:
    """Apply ``count`` random valid mutations to ``graph`` in place.

    The workload mix the incremental differential harness replays:
    edge adds (~45%, including self-loops and brand-new endpoints),
    edge deletes (~25%, drawn from the live edge set), node deletes
    (~15%, cascading through incident edges), and isolated node adds.
    Returns the ops as JSON-safe ``[kind, ...]`` lists — the exact
    format ``Ringo.ApplyOps`` ingests — so a trace can be replayed
    against a mirror graph or through the WAL.
    """
    ops: list = []
    for _ in range(count):
        roll = rng.random()
        if roll < 0.25 and graph.num_edges:
            edges = sorted(graph.edges())
            u, v = edges[rng.randrange(len(edges))]
            graph.del_edge(u, v)
            ops.append(["del_edge", u, v])
        elif roll < 0.40 and graph.num_nodes:
            nodes = sorted(graph.nodes())
            node = nodes[rng.randrange(len(nodes))]
            graph.del_node(node)
            ops.append(["del_node", node])
        elif roll < 0.55:
            node = rng.randrange(universe + 20)
            graph.add_node(node)
            ops.append(["add_node", node])
        else:
            u = rng.randrange(universe)
            v = rng.randrange(universe)
            graph.add_edge(u, v)
            ops.append(["add_edge", u, v])
    return ops
