"""Shared test helpers: graph builders and networkx bridging."""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.convert.table_to_graph import graph_from_edge_arrays
from repro.graphs.directed import DirectedGraph
from repro.graphs.undirected import UndirectedGraph


def build_directed(edge_list) -> DirectedGraph:
    """DirectedGraph from a list of (src, dst) pairs."""
    graph = DirectedGraph()
    for src, dst in edge_list:
        graph.add_edge(src, dst)
    return graph


def build_undirected(edge_list) -> UndirectedGraph:
    """UndirectedGraph from a list of (u, v) pairs."""
    graph = UndirectedGraph()
    for u, v in edge_list:
        graph.add_edge(u, v)
    return graph


def to_networkx(graph):
    """Convert one of our graphs into the corresponding networkx graph."""
    result = nx.DiGraph() if graph.is_directed else nx.Graph()
    result.add_nodes_from(graph.nodes())
    result.add_edges_from(graph.edges())
    return result


def random_directed(num_nodes: int, num_edges: int, seed: int) -> DirectedGraph:
    """Random simple directed graph (duplicates collapse)."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_nodes, size=num_edges)
    dst = rng.integers(0, num_nodes, size=num_edges)
    return graph_from_edge_arrays(src, dst, directed=True)


def random_undirected(num_nodes: int, num_edges: int, seed: int) -> UndirectedGraph:
    """Random simple undirected graph (duplicates collapse)."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_nodes, size=num_edges)
    dst = rng.integers(0, num_nodes, size=num_edges)
    return graph_from_edge_arrays(src, dst, directed=False)
