"""repro.obs sinks: ring-buffer wraparound, the JSON-lines format, and
the documented-schema validator behind ``python -m repro.obs``."""

import json

import pytest

from repro.obs.__main__ import main as validate_main
from repro.obs.sinks import (
    JsonlSink,
    RingBufferSink,
    validate_jsonl,
    validate_record,
)


def _record(span_id=1, **overrides):
    record = {
        "name": "op",
        "span_id": span_id,
        "parent_id": None,
        "thread": "MainThread",
        "start_s": 0.0,
        "duration_s": 0.001,
        "rss_delta_kb": 0,
        "tags": {},
    }
    record.update(overrides)
    return record


class TestRingBufferSink:
    def test_keeps_most_recent_in_order_after_wraparound(self):
        sink = RingBufferSink(capacity=3)
        for span_id in range(1, 8):  # 7 records through a 3-slot ring
            sink.record(_record(span_id))
        assert [r["span_id"] for r in sink.records()] == [5, 6, 7]
        assert sink.recorded == 7
        assert sink.dropped == 4
        assert len(sink) == 3

    def test_no_drops_below_capacity(self):
        sink = RingBufferSink(capacity=10)
        for span_id in range(1, 4):
            sink.record(_record(span_id))
        assert [r["span_id"] for r in sink.records()] == [1, 2, 3]
        assert sink.dropped == 0

    def test_clear_resets_buffer_but_not_counters(self):
        sink = RingBufferSink(capacity=2)
        sink.record(_record(1))
        sink.clear()
        assert sink.records() == []
        assert sink.recorded == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)


class TestJsonlSink:
    def test_writes_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        sink.record(_record(1))
        sink.record(_record(2, tags={"rows": 5}))
        sink.close()
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["tags"] == {"rows": 5}
        assert sink.written == 2

    def test_record_after_close_is_a_no_op(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        sink.close()
        sink.close()  # idempotent
        sink.record(_record(1))
        assert path.read_text() == ""
        assert sink.written == 0

    def test_appends_across_sink_instances(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        first = JsonlSink(path)
        first.record(_record(1))
        first.close()
        second = JsonlSink(path)
        second.record(_record(2))
        second.close()
        assert len(path.read_text().strip().splitlines()) == 2


class TestValidateRecord:
    def test_conforming_record_has_no_problems(self):
        assert validate_record(_record()) == []

    def test_missing_field(self):
        bad = _record()
        del bad["thread"]
        assert any("thread" in p for p in validate_record(bad))

    def test_wrong_types(self):
        assert validate_record(_record(span_id="1"))
        assert validate_record(_record(duration_s="fast"))
        assert validate_record(_record(span_id=True))  # bool is not an int here

    def test_value_constraints(self):
        assert any("positive" in p for p in validate_record(_record(span_id=0)))
        assert any(
            "non-negative" in p for p in validate_record(_record(duration_s=-1.0))
        )
        assert any(
            "non-negative" in p for p in validate_record(_record(rss_delta_kb=-1))
        )

    def test_tags_must_be_scalar_valued(self):
        bad = _record(tags={"rows": [1, 2]})
        assert any("non-scalar" in p for p in validate_record(bad))
        good = _record(tags={"a": 1, "b": "x", "c": 1.5, "d": True, "e": None})
        assert validate_record(good) == []

    def test_unknown_fields_and_non_objects(self):
        assert any("unknown" in p for p in validate_record(_record(extra=1)))
        assert validate_record([1, 2]) == ["record is list, not an object"]


class TestValidateJsonl:
    def test_counts_valid_spans_and_line_numbers_problems(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        lines = [
            json.dumps(_record(1)),
            "not json at all {",
            json.dumps(_record(0)),  # bad span_id
            "",
            json.dumps(_record(2)),
        ]
        path.write_text("\n".join(lines) + "\n")
        count, problems = validate_jsonl(path)
        assert count == 2
        assert any(p.startswith("line 2:") for p in problems)
        assert any(p.startswith("line 3:") for p in problems)

    def test_cli_exit_codes(self, tmp_path, capsys):
        good = tmp_path / "good.jsonl"
        good.write_text(json.dumps(_record(1)) + "\n")
        assert validate_main([str(good)]) == 0
        assert validate_main([str(good), "--min-spans", "2"]) == 1
        bad = tmp_path / "bad.jsonl"
        bad.write_text("garbage\n")
        assert validate_main([str(bad)]) == 1
        assert validate_main([str(tmp_path / "missing.jsonl")]) == 2
        capsys.readouterr()  # swallow validator output
