"""Provenance WAL: framing, torn tails, commit ordering, and replay."""

import json

import numpy as np
import pytest

from repro.core.engine import Ringo
from repro.exceptions import InjectedFaultError, RecoveryError
from repro.faults import inject_faults
from repro.recovery.digest import catalog_digest
from repro.recovery.wal import (
    WAL_FILENAME,
    WriteAheadLog,
    frame_record,
    read_wal,
)


@pytest.fixture()
def state(tmp_path):
    return tmp_path / "state"


def durable(state, **kwargs):
    return Ringo(workers=1, durability=state, **kwargs)


class TestFraming:
    def test_append_read_round_trip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / WAL_FILENAME)
        wal.append("Select", {"predicate": {"expr": "a>1"}}, ["table-1"], "table-2")
        wal.append("OrderBy", {"keys": "b"}, ["table-2"], "table-2")
        wal.close()
        records, tail = read_wal(tmp_path / WAL_FILENAME)
        assert [r.lsn for r in records] == [1, 2]
        assert records[0].op == "Select"
        assert records[0].inputs == ("table-1",)
        assert not records[0].mutates
        assert records[1].mutates
        assert not tail.torn

    def test_crc_damage_ends_readable_prefix(self, tmp_path):
        path = tmp_path / WAL_FILENAME
        wal = WriteAheadLog(path)
        wal.append("A", {}, [], "table-1")
        wal.append("B", {}, [], "table-2")
        wal.close()
        lines = path.read_bytes().splitlines(keepends=True)
        # Flip a byte inside the second frame's JSON payload.
        damaged = lines[1].replace(b'"op":"B"', b'"op":"X"')
        path.write_bytes(lines[0] + damaged)
        records, tail = read_wal(path)
        assert [r.lsn for r in records] == [1]
        assert tail.torn
        assert "invalid frame" in tail.reason

    def test_unterminated_final_frame_is_torn(self, tmp_path):
        path = tmp_path / WAL_FILENAME
        wal = WriteAheadLog(path)
        wal.append("A", {}, [], "table-1")
        wal.close()
        whole = frame_record({"lsn": 2, "op": "B", "args": {}, "inputs": [], "output": "t"})
        with open(path, "ab") as handle:
            handle.write(whole[: len(whole) // 2])
        records, tail = read_wal(path)
        assert len(records) == 1
        assert tail.torn
        assert tail.reason == "unterminated final frame"

    def test_reopen_truncates_torn_tail_and_resumes_lsn(self, tmp_path):
        path = tmp_path / WAL_FILENAME
        wal = WriteAheadLog(path)
        wal.append("A", {}, [], "table-1")
        wal.close()
        with open(path, "ab") as handle:
            handle.write(b'{"garbage": tr')
        reopened = WriteAheadLog(path)
        assert reopened.recovered_torn_tail
        assert reopened.last_lsn == 1
        reopened.append("B", {}, [], "table-2")
        reopened.close()
        records, tail = read_wal(path)
        assert [r.lsn for r in records] == [1, 2]
        assert not tail.torn

    def test_lsn_sequence_break_stops_scan(self, tmp_path):
        path = tmp_path / WAL_FILENAME
        frames = [
            frame_record({"lsn": 1, "op": "A", "args": {}, "inputs": [], "output": "x"}),
            frame_record({"lsn": 3, "op": "B", "args": {}, "inputs": [], "output": "y"}),
        ]
        path.write_bytes(b"".join(frames))
        records, tail = read_wal(path)
        assert len(records) == 1
        assert tail.torn


class TestCommitOrdering:
    def test_records_precede_publication(self, state):
        with durable(state) as session:
            table = session.TableFromColumns({"a": [1, 2, 3], "b": [3, 2, 1]})
            session.Select(table, "a>1")
            session.ToGraph(table, "a", "b")
        records, _ = read_wal(state / WAL_FILENAME)
        assert [r.op for r in records] == ["TableFromColumns", "Select", "ToGraph"]
        assert records[1].inputs == ("table-1",)
        assert records[2].output == "graph-3"

    def test_failed_append_publishes_nothing(self, state):
        with durable(state) as session:
            session.TableFromColumns({"a": [1, 2]})
            with inject_faults({"recovery.wal.append": 1.0}):
                with pytest.raises(InjectedFaultError):
                    session.TableFromColumns({"a": [3, 4]})
            assert session.Objects() == ["table-1"]
        records, _ = read_wal(state / WAL_FILENAME)
        assert len(records) == 1

    def test_torn_write_fault_leaves_recoverable_log(self, state):
        with durable(state) as session:
            session.TableFromColumns({"a": [1, 2]})
            with inject_faults({"recovery.wal.torn_write": 1.0}):
                with pytest.raises(InjectedFaultError):
                    session.TableFromColumns({"a": [3, 4]})
            assert session.Objects() == ["table-1"]
        records, tail = read_wal(state / WAL_FILENAME)
        assert len(records) == 1
        assert tail.torn
        with Ringo.recover(state, workers=1) as recovered:
            assert recovered.Objects() == ["table-1"]
            report = recovered.health()["recovery"]["last_recovery"]
            assert report["wal_torn_tail"]

    def test_arming_over_existing_state_refuses(self, state):
        with durable(state) as session:
            session.TableFromColumns({"a": [1]})
        with pytest.raises(RecoveryError, match="already holds"):
            Ringo(workers=1, durability=state).close()

    def test_durable_sessions_publish_every_recorded_result(self, state):
        with durable(state) as session:
            table = session.TableFromColumns({"a": [1, 2, 3]})
            session.Distinct(table)
            assert session.Objects() == ["table-1", "table-2"]
        # Without durability the legacy catalog contract holds: helpers
        # like TableFromColumns/Distinct do not publish.
        with Ringo(workers=1) as plain:
            table = plain.TableFromColumns({"a": [1, 2, 3]})
            plain.Distinct(table)
            assert plain.Objects() == []


class TestReplay:
    def build_reference(self, session):
        posts = session.TableFromColumns(
            {
                "user": [1, 2, 3, 4, 2, 1],
                "score": [5.0, 1.0, 3.5, 2.0, 4.0, 0.5],
                "tag": ["java", "py", "java", "go", "py", "java"],
            }
        )
        java = session.Select(posts, "tag=java")
        joined = session.Join(java, posts, "user")
        graph = session.ToGraph(joined, "user-1", "user-2")
        session.GetEdgeTable(graph)
        session.OrderBy(java, "score", in_place=True)
        session.GroupBy(posts, "tag", {"total": ("sum", "score")})
        session.GenRMat(4, 12, seed=7)
        session.Sample(posts, 3, seed=2)
        ranks = session.GetPageRank(graph)
        session.TableFromHashMap(ranks, "user", "rank")

    def test_recovered_catalog_matches_reference(self, state):
        with durable(state) as session:
            self.build_reference(session)
            reference = catalog_digest(session)
        with Ringo.recover(state, workers=1) as recovered:
            assert catalog_digest(recovered) == reference
            report = recovered.health()["recovery"]["last_recovery"]
            assert report["replayed_ops"] == report["wal_records"]
            assert report["unrecovered"] == []

    def test_replaying_same_wal_twice_is_deterministic(self, state):
        with durable(state) as session:
            self.build_reference(session)
        with Ringo.recover(state, workers=1) as first:
            once = catalog_digest(first)
            row_ids_once = {
                name: first.GetObject(name).row_ids.tolist()
                for name in first.Objects()
                if hasattr(first.GetObject(name), "row_ids")
            }
        with Ringo.recover(state, workers=1) as second:
            assert catalog_digest(second) == once
            for name, ids in row_ids_once.items():
                assert second.GetObject(name).row_ids.tolist() == ids

    def test_recovered_session_stays_durable(self, state):
        with durable(state) as session:
            table = session.TableFromColumns({"a": [1, 2, 3]})
            session.Select(table, "a>1")
        with Ringo.recover(state, workers=1) as recovered:
            recovered.Distinct(recovered.GetObject("table-2"))
            reference = catalog_digest(recovered)
        with Ringo.recover(state, workers=1) as again:
            assert catalog_digest(again) == reference

    def test_adopted_external_table_replays_inline(self, state):
        with Ringo(workers=1) as outside:
            foreign = outside.TableFromColumns({"k": [10, 20], "v": [1.0, 2.0]})
        with durable(state) as session:
            session.Limit(foreign, 1)
            reference = catalog_digest(session)
        records, _ = read_wal(state / WAL_FILENAME)
        assert records[0].op == "__adopt_table__"
        with Ringo.recover(state, workers=1) as recovered:
            assert catalog_digest(recovered) == reference

    def test_mask_predicates_are_materialised(self, state):
        with durable(state) as session:
            table = session.TableFromColumns({"a": [1, 2, 3, 4]})
            mask = np.array([True, False, True, False])
            session.Select(table, mask)
            reference = catalog_digest(session)
        records, _ = read_wal(state / WAL_FILENAME)
        assert records[-1].args["predicate"]["mask"] == [True, False, True, False]
        with Ringo.recover(state, workers=1) as recovered:
            assert catalog_digest(recovered) == reference

    def test_wal_is_human_readable_jsonl(self, state):
        with durable(state) as session:
            session.TableFromColumns({"a": [1]})
        for line in (state / WAL_FILENAME).read_text().splitlines():
            record = json.loads(line)
            assert {"lsn", "op", "args", "inputs", "output", "crc"} <= set(record)
