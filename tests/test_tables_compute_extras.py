"""Tests for computed columns and the convenience table operators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ExpressionError, SchemaError, TypeMismatchError
from repro.tables.compute import evaluate_expression, with_column
from repro.tables.extras import (
    concat_rows,
    distinct,
    limit,
    sample_rows,
    top_k,
    value_counts,
)
from repro.tables.schema import ColumnType
from repro.tables.table import Table


@pytest.fixture
def table():
    return Table.from_columns(
        {
            "a": [1, 2, 3, 4],
            "b": [10.0, 20.0, 30.0, 40.0],
            "tag": ["x", "y", "x", "x"],
        }
    )


class TestEvaluateExpression:
    def test_column_plus_constant(self, table):
        assert evaluate_expression(table, "a + 1").tolist() == [2, 3, 4, 5]

    def test_precedence(self, table):
        assert evaluate_expression(table, "a + b * 2").tolist() == [21, 42, 63, 84]

    def test_parentheses(self, table):
        assert evaluate_expression(table, "(a + 1) * 2").tolist() == [4, 6, 8, 10]

    def test_unary_minus(self, table):
        assert evaluate_expression(table, "-a").tolist() == [-1, -2, -3, -4]

    def test_double_unary(self, table):
        assert evaluate_expression(table, "--a").tolist() == [1, 2, 3, 4]

    def test_division(self, table):
        assert evaluate_expression(table, "b / a").tolist() == [10, 10, 10, 10]

    def test_modulo(self, table):
        assert evaluate_expression(table, "a % 2").tolist() == [1, 0, 1, 0]

    def test_division_by_zero_yields_inf(self, table):
        result = evaluate_expression(table, "b / (a - 1)")
        assert np.isinf(result[0])

    def test_float_literal(self, table):
        assert evaluate_expression(table, "a * 0.5").tolist() == [0.5, 1.0, 1.5, 2.0]

    def test_string_column_rejected(self, table):
        with pytest.raises(TypeMismatchError):
            evaluate_expression(table, "tag + 1")

    def test_unknown_column_rejected(self, table):
        with pytest.raises(Exception):
            evaluate_expression(table, "zz + 1")

    def test_empty_expression_rejected(self, table):
        with pytest.raises(ExpressionError):
            evaluate_expression(table, "  ")

    def test_trailing_garbage_rejected(self, table):
        with pytest.raises(ExpressionError):
            evaluate_expression(table, "a + 1 2")

    def test_unclosed_paren_rejected(self, table):
        with pytest.raises(ExpressionError):
            evaluate_expression(table, "(a + 1")

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=30))
    def test_matches_python_arithmetic(self, values):
        t = Table.from_columns({"x": values})
        result = evaluate_expression(t, "x * 3 - 7")
        assert result.tolist() == [v * 3 - 7 for v in values]


class TestWithColumn:
    def test_appends_float_column(self, table):
        with_column(table, "c", "a + b")
        assert table.schema["c"] is ColumnType.FLOAT
        assert table.column("c").tolist() == [11, 22, 33, 44]

    def test_as_int_truncates(self, table):
        with_column(table, "half", "a / 2", as_int=True)
        assert table.schema["half"] is ColumnType.INT
        assert table.column("half").tolist() == [0, 1, 1, 2]

    def test_returns_table_for_chaining(self, table):
        assert with_column(table, "c", "a") is table


class TestDistinct:
    def test_whole_row_distinct(self):
        t = Table.from_columns({"x": [1, 1, 2], "y": [5, 5, 5]})
        assert distinct(t).num_rows == 2

    def test_distinct_on_subset(self, table):
        result = distinct(table, ["tag"])
        assert result.num_rows == 2
        assert result.values("tag") == ["x", "y"]

    def test_first_occurrence_kept(self, table):
        result = distinct(table, ["tag"])
        assert result.row_ids.tolist() == [0, 1]

    def test_empty_column_list_rejected(self, table):
        with pytest.raises(SchemaError):
            distinct(table, [])


class TestLimitAndTopK:
    def test_limit(self, table):
        assert limit(table, 2).column("a").tolist() == [1, 2]

    def test_limit_beyond_length(self, table):
        assert limit(table, 99).num_rows == 4

    def test_limit_zero(self, table):
        assert limit(table, 0).num_rows == 0

    def test_top_k_largest(self, table):
        assert top_k(table, "b", 2).column("b").tolist() == [40.0, 30.0]

    def test_top_k_smallest(self, table):
        assert top_k(table, "b", 2, ascending=True).column("b").tolist() == [10.0, 20.0]

    def test_top_k_invalid(self, table):
        with pytest.raises(Exception):
            top_k(table, "b", 0)


class TestValueCounts:
    def test_counts_descending(self, table):
        result = value_counts(table, "tag")
        assert result.values("tag") == ["x", "y"]
        assert result.column("Count").tolist() == [3, 1]

    def test_numeric_column(self):
        t = Table.from_columns({"x": [5, 5, 7]})
        result = value_counts(t, "x")
        assert result.column("x").tolist() == [5, 7]

    def test_tie_breaks_by_value(self):
        t = Table.from_columns({"x": [2, 1]})
        result = value_counts(t, "x")
        assert result.column("x").tolist() == [1, 2]


class TestSampleAndConcat:
    def test_sample_distinct_rows(self, table):
        result = sample_rows(table, 2, seed=1)
        assert result.num_rows == 2
        assert len(set(result.row_ids.tolist())) == 2

    def test_sample_deterministic(self, table):
        a = sample_rows(table, 2, seed=3).row_ids.tolist()
        b = sample_rows(table, 2, seed=3).row_ids.tolist()
        assert a == b

    def test_sample_too_many(self, table):
        with pytest.raises(SchemaError):
            sample_rows(table, 10)

    def test_concat(self):
        a = Table.from_columns({"x": [1, 2]})
        b = Table.from_columns({"x": [3]})
        assert concat_rows([a, b]).column("x").tolist() == [1, 2, 3]

    def test_concat_schema_mismatch(self):
        a = Table.from_columns({"x": [1]})
        b = Table.from_columns({"y": [1]})
        with pytest.raises(SchemaError):
            concat_rows([a, b])

    def test_concat_empty_list(self):
        with pytest.raises(SchemaError):
            concat_rows([])

    def test_engine_facade(self):
        from repro.core.engine import Ringo

        with Ringo(workers=1) as ringo:
            t = ringo.TableFromColumns({"x": [3, 1, 2, 2]})
            assert ringo.Distinct(t).num_rows == 3
            assert ringo.Limit(t, 1).num_rows == 1
            assert ringo.TopK(t, "x", 1).column("x").tolist() == [3]
            assert ringo.ValueCounts(t, "x").column("Count").tolist() == [2, 1, 1]
            ringo.WithColumn(t, "y", "x * 10", as_int=True)
            assert t.column("y").tolist() == [30, 10, 20, 20]
            assert ringo.Sample(t, 2, seed=1).num_rows == 2
