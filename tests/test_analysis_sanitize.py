"""Snapshot sanitizer: invariant checks, env gating, cache integration."""

import numpy as np
import pytest

from repro.analysis import sanitize
from repro.core.engine import Ringo
from repro.exceptions import SanitizerError
from repro.graphs.csr import CSRGraph
from repro.graphs.directed import DirectedGraph
from repro.graphs.snapshot import csr_snapshot
from tests.helpers import build_directed


@pytest.fixture(autouse=True)
def _clean_sanitizer_state():
    sanitize.reset()
    yield
    sanitize.reset()


def valid_csr():
    return CSRGraph.from_edges([0, 0, 1, 2], [1, 2, 2, 0])


def corrupt(mutator):
    """A valid CSR with one invariant broken by ``mutator(csr)``."""
    csr = valid_csr()
    mutator(csr)
    return csr


class TestInvariants:
    def test_valid_snapshot_passes(self):
        summary = sanitize.sanitize_csr(valid_csr())
        assert summary == {"nodes": 3, "edges": 4, "version_checked": False}

    def test_empty_graph_passes(self):
        csr = CSRGraph.from_edges([], [])
        assert sanitize.sanitize_csr(csr)["nodes"] == 0

    def test_indptr_origin(self):
        csr = corrupt(lambda c: c._out_indptr.__setitem__(0, 1))
        with pytest.raises(SanitizerError, match="out.indptr-origin"):
            sanitize.sanitize_csr(csr)

    def test_indptr_monotone(self):
        def break_monotone(c):
            c._out_indptr[1] = 3
            c._out_indptr[2] = 1

        with pytest.raises(SanitizerError, match="out.indptr-monotone"):
            sanitize.sanitize_csr(corrupt(break_monotone))

    def test_indptr_extent(self):
        csr = corrupt(lambda c: c._out_indptr.__setitem__(3, 7))
        with pytest.raises(SanitizerError, match="out.indptr-extent"):
            sanitize.sanitize_csr(csr)

    def test_indices_range(self):
        csr = corrupt(lambda c: c._out_indices.__setitem__(0, 99))
        with pytest.raises(SanitizerError, match="out.indices-range"):
            sanitize.sanitize_csr(csr)

    def test_row_sortedness(self):
        # Node 0's out-row is [1, 2]; swapping makes it [2, 1] without
        # touching any other invariant.
        def unsort(c):
            c._out_indices[0], c._out_indices[1] = (
                c._out_indices[1],
                int(c._out_indices[0]),
            )

        with pytest.raises(SanitizerError, match="out.row-sorted"):
            sanitize.sanitize_csr(corrupt(unsort))

    def test_row_boundary_drop_is_not_a_violation(self):
        # indices [.., 2 | 0, ..] drops across a row boundary: legal.
        sanitize.sanitize_csr(valid_csr())

    def test_in_orientation_checked_too(self):
        csr = corrupt(lambda c: c._in_indices.__setitem__(0, -1))
        with pytest.raises(SanitizerError, match="in.indices-range"):
            sanitize.sanitize_csr(csr)

    def test_node_ids_sorted(self):
        csr = corrupt(lambda c: c._node_ids.__setitem__(0, 5))
        with pytest.raises(SanitizerError, match="node-ids-sorted"):
            sanitize.sanitize_csr(csr)

    def test_version_coherence(self):
        graph = build_directed([(0, 1), (1, 2)])
        frozen = graph.version
        csr = valid_csr()
        sanitize.sanitize_csr(csr, graph=graph, expected_version=frozen)
        graph.add_edge(2, 0)  # "mid-build" mutation
        with pytest.raises(SanitizerError, match="version-coherence"):
            sanitize.sanitize_csr(csr, graph=graph, expected_version=frozen)


class TestGatingAndCounters:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("RINGO_SANITIZE", raising=False)
        assert not sanitize.enabled()
        broken = corrupt(lambda c: c._out_indptr.__setitem__(0, 1))
        sanitize.maybe_sanitize(broken)  # no-op while disabled
        assert sanitize.stats()["checks"] == 0

    def test_enable_forces_validation(self):
        sanitize.enable()
        broken = corrupt(lambda c: c._out_indptr.__setitem__(0, 1))
        with pytest.raises(SanitizerError):
            sanitize.maybe_sanitize(broken)

    def test_env_var_enables(self, monkeypatch):
        monkeypatch.setenv("RINGO_SANITIZE", "1")
        assert sanitize.enabled()
        monkeypatch.setenv("RINGO_SANITIZE", "0")
        assert not sanitize.enabled()

    def test_disable_overrides_env(self, monkeypatch):
        monkeypatch.setenv("RINGO_SANITIZE", "1")
        sanitize.disable()
        assert not sanitize.enabled()

    def test_counters_track_checks_and_violations(self):
        sanitize.sanitize_csr(valid_csr())
        broken = corrupt(lambda c: c._out_indptr.__setitem__(0, 1))
        with pytest.raises(SanitizerError):
            sanitize.sanitize_csr(broken)
        stats = sanitize.stats()
        assert stats["checks"] == 2
        assert stats["violations"] == 1
        assert stats["last_violation"].startswith("out.indptr-origin")

    def test_error_carries_check_name(self):
        broken = corrupt(lambda c: c._out_indices.__setitem__(0, 99))
        with pytest.raises(SanitizerError) as excinfo:
            sanitize.sanitize_csr(broken)
        assert excinfo.value.check == "out.indices-range"


class TestCacheIntegration:
    def test_snapshot_cache_conversions_validated(self):
        sanitize.enable()
        graph = build_directed([(0, 1), (1, 2), (2, 0), (0, 2)])
        csr = csr_snapshot(graph)
        assert csr.num_nodes == 3
        assert sanitize.stats()["checks"] >= 1

    def test_cache_hit_does_not_recheck(self):
        sanitize.enable()
        graph = build_directed([(0, 1), (1, 2)])
        csr_snapshot(graph)
        checks = sanitize.stats()["checks"]
        csr_snapshot(graph)  # warm hit: no rebuild, no re-validation
        assert sanitize.stats()["checks"] == checks

    def test_engine_pipeline_under_sanitizer(self):
        sanitize.enable()
        with Ringo(workers=2) as ringo:
            graph = DirectedGraph()
            for src, dst in [(0, 1), (1, 2), (2, 0), (1, 0)]:
                graph.add_edge(src, dst)
            ranks = ringo.GetPageRank(graph)
            assert len(ranks) == 3
            health = ringo.health()
        stats = health["analysis"]["sanitizer"]
        assert stats["enabled"]
        assert stats["checks"] >= 1
        assert stats["violations"] == 0

    def test_health_reports_sanitizer_when_disabled(self, monkeypatch):
        monkeypatch.delenv("RINGO_SANITIZE", raising=False)
        with Ringo(workers=1) as ringo:
            stats = ringo.health()["analysis"]["sanitizer"]
        assert stats["enabled"] is False
