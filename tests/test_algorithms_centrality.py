"""Tests for centrality measures vs networkx."""

import networkx as nx
import pytest

from repro.algorithms.centrality import (
    betweenness_centrality,
    closeness_centrality,
    degree_centrality,
    eigenvector_centrality,
)
from repro.exceptions import AlgorithmError

from tests.helpers import build_directed, random_directed, to_networkx


class TestDegreeCentrality:
    def test_star_center(self):
        graph = build_directed([(0, i) for i in range(1, 5)])
        scores = degree_centrality(graph, "out")
        assert scores[0] == 1.0
        assert scores[1] == 0.0

    def test_modes(self):
        graph = build_directed([(1, 2)])
        assert degree_centrality(graph, "in")[2] == 1.0
        assert degree_centrality(graph, "total")[1] == 1.0

    def test_invalid_mode(self):
        with pytest.raises(AlgorithmError):
            degree_centrality(build_directed([(1, 2)]), "sideways")

    def test_matches_networkx_on_undirected_projection(self):
        graph = random_directed(40, 100, seed=51)
        ours = degree_centrality(graph, "out")
        expected = nx.out_degree_centrality(to_networkx(graph))
        for node, value in expected.items():
            assert ours[node] == pytest.approx(value)


class TestCloseness:
    def test_matches_networkx_exact(self):
        graph = random_directed(35, 120, seed=53)
        ours = closeness_centrality(graph)
        expected = nx.closeness_centrality(to_networkx(graph).reverse())
        # networkx closeness uses incoming distance; reversing matches our
        # outgoing-distance convention.
        for node, value in expected.items():
            assert ours[node] == pytest.approx(value, abs=1e-9)

    def test_sampled_close_to_exact(self):
        graph = random_directed(60, 400, seed=54)
        exact = closeness_centrality(graph)
        sampled = closeness_centrality(graph, samples=40, seed=1)
        top_exact = max(exact, key=exact.get)
        assert sampled[top_exact] > 0

    def test_empty_graph(self):
        from repro.graphs.directed import DirectedGraph

        assert closeness_centrality(DirectedGraph()) == {}


class TestBetweenness:
    def test_bridge_node_dominates(self):
        graph = build_directed(
            [(1, 3), (2, 3), (3, 4), (4, 5), (4, 6)]
        )
        scores = betweenness_centrality(graph)
        assert scores[3] > scores[1]
        assert scores[4] > scores[1]

    def test_matches_networkx_exact(self):
        graph = random_directed(30, 90, seed=55)
        ours = betweenness_centrality(graph)
        expected = nx.betweenness_centrality(to_networkx(graph), normalized=True)
        for node, value in expected.items():
            assert ours[node] == pytest.approx(value, abs=1e-9)

    def test_unnormalized(self):
        graph = build_directed([(1, 2), (2, 3)])
        scores = betweenness_centrality(graph, normalized=False)
        assert scores[2] == pytest.approx(1.0)

    def test_sampled_runs_and_scales(self):
        graph = random_directed(50, 200, seed=56)
        sampled = betweenness_centrality(graph, samples=25, seed=2)
        assert len(sampled) == graph.num_nodes


class TestEigenvector:
    def test_matches_networkx(self):
        # A strongly-connected graph so the principal eigenvector exists.
        graph = build_directed(
            [(1, 2), (2, 3), (3, 1), (3, 4), (4, 1), (2, 4), (4, 2)]
        )
        ours = eigenvector_centrality(graph, max_iterations=1000, tolerance=1e-12)
        expected = nx.eigenvector_centrality(to_networkx(graph), max_iter=1000, tol=1e-12)
        # Same direction up to normalisation; compare normalised.
        norm = sum(v * v for v in expected.values()) ** 0.5
        for node, value in expected.items():
            assert ours[node] == pytest.approx(value / norm, abs=1e-6)

    def test_collapse_raises(self):
        graph = build_directed([(1, 2), (2, 3)])  # DAG: iteration dies out
        with pytest.raises(AlgorithmError):
            eigenvector_centrality(graph, max_iterations=500)

    def test_empty_graph(self):
        from repro.graphs.directed import DirectedGraph

        assert eigenvector_centrality(DirectedGraph()) == {}
