"""Tests for UndirectedGraph."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import EdgeNotFoundError, GraphError, NodeNotFoundError
from repro.graphs.undirected import UndirectedGraph


class TestBasics:
    def test_edge_is_symmetric(self):
        graph = UndirectedGraph()
        graph.add_edge(1, 2)
        assert graph.has_edge(1, 2)
        assert graph.has_edge(2, 1)
        assert graph.num_edges == 1

    def test_duplicate_either_direction_ignored(self):
        graph = UndirectedGraph()
        graph.add_edge(1, 2)
        assert not graph.add_edge(2, 1)
        assert graph.num_edges == 1

    def test_neighbors_sorted(self):
        graph = UndirectedGraph()
        for nbr in [9, 3, 7]:
            graph.add_edge(5, nbr)
        assert graph.neighbors(5).tolist() == [3, 7, 9]

    def test_degree(self):
        graph = UndirectedGraph()
        graph.add_edge(1, 2)
        graph.add_edge(1, 3)
        assert graph.degree(1) == 2
        assert graph.degree(2) == 1

    def test_negative_node_rejected(self):
        with pytest.raises(GraphError):
            UndirectedGraph().add_node(-3)

    def test_missing_node_raises(self):
        with pytest.raises(NodeNotFoundError):
            UndirectedGraph().neighbors(1)

    def test_edges_listed_once(self):
        graph = UndirectedGraph()
        graph.add_edge(1, 2)
        graph.add_edge(2, 3)
        assert sorted(graph.edges()) == [(1, 2), (2, 3)]

    def test_edge_arrays_canonical_order(self):
        graph = UndirectedGraph()
        graph.add_edge(5, 2)
        src, dst = graph.edge_arrays()
        assert (src <= dst).all()
        assert len(src) == 1


class TestSelfLoops:
    def test_self_loop_once(self):
        graph = UndirectedGraph()
        graph.add_edge(4, 4)
        assert graph.num_edges == 1
        assert graph.degree(4) == 1
        assert graph.has_edge(4, 4)

    def test_self_loop_in_edges(self):
        graph = UndirectedGraph()
        graph.add_edge(4, 4)
        assert list(graph.edges()) == [(4, 4)]

    def test_delete_self_loop(self):
        graph = UndirectedGraph()
        graph.add_edge(4, 4)
        graph.del_edge(4, 4)
        assert graph.num_edges == 0

    def test_del_node_with_self_loop(self):
        graph = UndirectedGraph()
        graph.add_edge(4, 4)
        graph.add_edge(4, 5)
        graph.del_node(4)
        assert graph.num_edges == 0


class TestDeletion:
    def test_del_edge_both_directions(self):
        graph = UndirectedGraph()
        graph.add_edge(1, 2)
        graph.del_edge(2, 1)
        assert not graph.has_edge(1, 2)
        assert graph.num_edges == 0

    def test_del_missing_edge_raises(self):
        with pytest.raises(EdgeNotFoundError):
            UndirectedGraph().del_edge(1, 2)

    def test_del_node(self):
        graph = UndirectedGraph()
        graph.add_edge(1, 2)
        graph.add_edge(2, 3)
        graph.del_node(2)
        assert graph.num_nodes == 2
        assert graph.num_edges == 0

    def test_copy_independent(self):
        graph = UndirectedGraph()
        graph.add_edge(1, 2)
        copy = graph.copy()
        copy.del_edge(1, 2)
        assert graph.num_edges == 1


class TestInvariants:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 12), st.integers(0, 12)), max_size=60))
    def test_matches_reference_edge_set(self, edge_list):
        graph = UndirectedGraph()
        reference: set[tuple[int, int]] = set()
        for u, v in edge_list:
            graph.add_edge(u, v)
            reference.add((min(u, v), max(u, v)))
        assert graph.num_edges == len(reference)
        assert sorted(graph.edges()) == sorted(reference)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 12), st.integers(0, 12)), max_size=60))
    def test_neighbor_symmetry(self, edge_list):
        graph = UndirectedGraph()
        for u, v in edge_list:
            graph.add_edge(u, v)
        for node in graph.nodes():
            for nbr in graph.neighbors(node).tolist():
                assert node in graph.neighbors(nbr).tolist()
