"""Wire-protocol units: parsing, op allowlist, encoding, error envelopes."""

import asyncio

import numpy as np
import pytest

from repro.core.engine import Ringo
from repro.exceptions import AdmissionRejected, TransientError
from repro.service.protocol import (
    REF_KEY,
    ProtocolError,
    RemoteError,
    TransientRemoteError,
    allowed_engine_ops,
    decode_args,
    dump_line,
    encode_result,
    error_response,
    load_line,
    ok_response,
    parse_request,
    raise_remote_error,
)


def test_parse_request_happy_path():
    rid, tenant, op, args, deadline = parse_request(
        {"id": 7, "tenant": "alice", "op": "GetPageRank",
         "args": {"graph": {"$ref": "graph-1"}}, "deadline_ms": 500}
    )
    assert rid == 7
    assert tenant == "alice"
    assert op == "GetPageRank"
    assert args == {"graph": {"$ref": "graph-1"}}
    assert deadline == pytest.approx(0.5)


def test_parse_request_deadline_optional():
    *_, deadline = parse_request({"tenant": "t", "op": "ping"})
    assert deadline is None


@pytest.mark.parametrize("raw", [
    "not a dict",
    {"op": "ping"},                                   # no tenant
    {"tenant": "t"},                                  # no op
    {"tenant": "", "op": "ping"},                     # empty tenant
    {"tenant": "t", "op": "NoSuchOp"},                # unknown op
    {"tenant": "t", "op": "recover"},                 # lifecycle op denied
    {"tenant": "t", "op": "close"},                   # lifecycle op denied
    {"tenant": "t", "op": "ping", "args": [1, 2]},    # args not an object
    {"tenant": "t", "op": "ping", "deadline_ms": 0},  # non-positive deadline
    {"tenant": "t", "op": "ping", "deadline_ms": "soon"},
])
def test_parse_request_rejects_malformed(raw):
    with pytest.raises(ProtocolError):
        parse_request(raw)


def test_allowed_engine_ops_track_the_engine():
    ops = allowed_engine_ops()
    # The paper's CamelCase surface is served...
    assert {"LoadTableTSV", "Select", "Join", "ToGraph", "GetPageRank"} <= ops
    # ...but catalog access and lifecycle stay service-mediated.
    assert "Objects" not in ops and "GetObject" not in ops
    assert "checkpoint" not in ops and "close" not in ops


def test_encode_result_table_and_graph_refs(tmp_path):
    # Durable, like every service-hosted session — derivations publish
    # to the catalog, so encoded results carry a $ref.
    with Ringo(workers=1, durability=tmp_path) as ringo:
        table = ringo.TableFromColumns({"src": [0, 1, 2], "dst": [1, 2, 0]})
        encoded = encode_result(ringo, table)
        assert encoded["kind"] == "table"
        assert encoded["rows"] == 3
        assert encoded["columns"] == ["src", "dst"]
        assert encoded[REF_KEY] in ringo.Objects()

        graph = ringo.ToGraph(table, "src", "dst")
        encoded = encode_result(ringo, graph)
        assert encoded["kind"] == "graph"
        assert encoded["nodes"] == 3 and encoded["edges"] == 3
        assert encoded["directed"] is True
        assert encoded[REF_KEY] in ringo.Objects()


def test_encode_result_plain_values():
    with Ringo(workers=1) as ringo:
        assert encode_result(ringo, np.int64(4)) == 4
        assert encode_result(ringo, np.float64(0.5)) == 0.5
        assert encode_result(ringo, np.array([1, 2])) == [1, 2]
        assert encode_result(ringo, {1: 0.5}) == {"1": 0.5}
        assert encode_result(ringo, {3, 1, 2}) == [1, 2, 3]
        assert encode_result(ringo, (1, "x")) == [1, "x"]


def test_decode_args_resolves_refs_recursively(tmp_path):
    with Ringo(workers=1, durability=tmp_path) as ringo:
        table = ringo.TableFromColumns({"a": [1, 2]})
        name = ringo.Objects()[0]
        decoded = decode_args(ringo, {
            "table": {"$ref": name},
            "nested": {"inner": [{"$ref": name}, 5]},
            "plain": "x",
        })
        assert decoded["table"] is table
        assert decoded["nested"]["inner"][0] is table
        assert decoded["nested"]["inner"][1] == 5
        assert decoded["plain"] == "x"


def test_error_response_marks_transient_retryable():
    class Flaky(TransientError):
        """Test transient error."""

    envelope = error_response(3, Flaky("busy"))
    assert envelope["ok"] is False
    assert envelope["error"]["type"] == "Flaky"
    assert envelope["error"]["retryable"] is True

    envelope = error_response(3, AdmissionRejected("t", 10, 5))
    assert envelope["error"]["retryable"] is False


def test_raise_remote_error_reconstructs_types():
    with pytest.raises(TransientRemoteError):
        raise_remote_error(
            {"error": {"type": "InjectedFaultError", "message": "x",
                       "retryable": True}}
        )
    with pytest.raises(RemoteError) as info:
        raise_remote_error(
            {"error": {"type": "AdmissionRejected", "message": "x",
                       "retryable": False}}
        )
    assert not isinstance(info.value, TransientError)
    assert info.value.error_type == "AdmissionRejected"


def test_line_framing_round_trip():
    message = ok_response(1, {"kind": "table", "rows": 2})
    line = dump_line(message)
    assert line.endswith(b"\n")
    assert load_line(line) == message
    with pytest.raises(ProtocolError):
        load_line(b"{not json}\n")


def test_request_future_resolution_is_single_shot():
    from repro.service.protocol import Request

    async def scenario():
        loop = asyncio.get_running_loop()
        request = Request(id=1, tenant="t", op="ping", future=loop.create_future())
        request.future.set_result(ok_response(1, "pong"))
        assert request.future.done()
        return await request.future

    assert asyncio.run(scenario())["result"] == "pong"
