"""Run every docstring example in the package as a test.

The public API's doctests double as its minimal usage documentation;
this keeps them executable so they can never drift from the code.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _all_modules():
    names = ["repro"]
    for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(module_info.name)
    return sorted(names)


@pytest.mark.parametrize("module_name", _all_modules())
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(
        module,
        optionflags=doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS,
    )
    assert results.failed == 0, f"{results.failed} doctest failures in {module_name}"
