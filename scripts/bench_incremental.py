"""Incremental engine benchmark: delta maintenance vs full rebuild.

Simulates the streaming-analytics loop the incremental subsystem exists
for: a live graph ingests churn batches (1% of the edge count per
round) and PageRank is re-asked after every batch. Two pipelines run
over identical op streams:

* **incremental** — mutators feed the mutation log, the snapshot cache
  refreshes by delta merge, PageRank warm-starts from the previous
  ranks (same tolerance criterion);
* **rebuild** — the engine is disabled on a mirror copy, so every round
  pays the full CSR conversion and a cold PageRank.

The timed (gated) section is snapshot refresh + PageRank. WCC and
triangle counts also run every round on both sides — untimed, as exact
equality checks (their incremental variants degrade gracefully to
near-batch work when a deletion touches the giant component, so they
are correctness evidence here, not the headline speedup).

Writes ``BENCH_incremental.json`` at the repo root. Gates (CI fails on
any):

* per-round PageRank L1 distance between the two pipelines stays within
  ``pagerank_epsilon`` (both sides run ``max_iterations=400`` so they
  terminate on the tolerance criterion, the bound's precondition);
* WCC labels and per-node triangle counts are exactly equal each round;
* incremental refresh+PageRank is >= 5x faster than rebuild+cold
  PageRank at 1% churn (summed over rounds);
* every round rides the delta path: zero full-rebuild fallbacks on the
  live side;
* sustained ingest rate (edges/s through the mutators, log armed) is
  recorded; the JSON carries it for trend tracking.

Run:  python scripts/bench_incremental.py [--quick]
"""

import argparse
import json
import random
import sys
import time
from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src"
sys.path.insert(0, str(SRC))

from repro.algorithms.components import (  # noqa: E402
    weakly_connected_components,
)
from repro.algorithms.pagerank import pagerank  # noqa: E402
from repro.algorithms.triangles import triangle_counts  # noqa: E402
from repro.graphs.directed import DirectedGraph  # noqa: E402
from repro.graphs.snapshot import csr_snapshot, snapshot_cache  # noqa: E402
from repro.incremental.engine import (  # noqa: E402
    incremental_engine,
    pagerank_epsilon,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_incremental.json"
SPEEDUP_FLOOR = 5.0
CHURN_FRACTION = 0.01
DAMPING = 0.85
TOLERANCE = 1e-9
MAX_ITER = 400  # both pipelines must converge on tolerance, not the cap
EPSILON = pagerank_epsilon(DAMPING, TOLERANCE)


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def build_live_graph(num_nodes: int, num_edges: int, rng: random.Random):
    """Grow a graph through the mutators so the mutation log is armed."""
    graph = DirectedGraph()
    edges = set()
    while len(edges) < num_edges:
        pair = (rng.randrange(num_nodes), rng.randrange(num_nodes))
        if pair not in edges:
            edges.add(pair)
            graph.add_edge(*pair)
    return graph, edges


def churn_ops(edges: set, num_nodes: int, count: int, rng: random.Random):
    """Half deletes of live edges, half adds of absent pairs."""
    deletes = rng.sample(sorted(edges), count // 2)
    ops = [("del_edge", u, v) for u, v in deletes]
    edges.difference_update(deletes)
    while len(ops) < count:
        pair = (rng.randrange(num_nodes), rng.randrange(num_nodes))
        if pair not in edges:
            edges.add(pair)
            ops.append(("add_edge",) + pair)
    return ops


def apply_ops(graph, ops) -> None:
    for kind, u, v in ops:
        if kind == "add_edge":
            graph.add_edge(u, v)
        else:
            graph.del_edge(u, v)


def warm_pagerank(graph):
    """The timed incremental path: delta refresh + warm-started ranks."""
    return pagerank(
        graph, damping=DAMPING, max_iterations=MAX_ITER, tolerance=TOLERANCE
    )


def cold_pagerank(graph):
    """The timed rebuild path: full conversion + cold ranks."""
    engine = incremental_engine()
    engine.configure(enabled=False)
    try:
        snapshot_cache().invalidate(graph)
        return pagerank(
            graph, damping=DAMPING, max_iterations=MAX_ITER,
            tolerance=TOLERANCE,
        )
    finally:
        engine.configure(enabled=True)


def exactness_check(graph, mirror) -> bool:
    """Untimed: incremental WCC/triangles equal batch on the mirror."""
    engine = incremental_engine()
    warm_wcc = weakly_connected_components(graph)
    warm_tri = triangle_counts(graph)
    engine.configure(enabled=False)
    try:
        return (
            warm_wcc == weakly_connected_components(mirror)
            and warm_tri == triangle_counts(mirror)
        )
    finally:
        engine.configure(enabled=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller graph / fewer rounds (CI smoke)")
    parser.add_argument("--seed", type=int, default=2015)
    args = parser.parse_args(argv)

    num_nodes = 20_000 if args.quick else 40_000
    num_edges = 100_000 if args.quick else 250_000
    rounds = 3 if args.quick else 5
    churn = max(1, int(CHURN_FRACTION * num_edges))

    rng = random.Random(args.seed)
    engine = incremental_engine()
    engine.reset()

    graph, edges = build_live_graph(num_nodes, num_edges, rng)
    mirror = graph.copy()  # rebuild pipeline's twin (same structure)
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges; "
          f"{churn} ops/round ({CHURN_FRACTION:.0%} churn), "
          f"{rounds} rounds", flush=True)

    # Untimed seeding: anchor the mutation log and warm all three
    # algorithm states, so the rounds measure steady-state maintenance.
    csr_snapshot(graph)
    warm_pagerank(graph)
    weakly_connected_components(graph)
    triangle_counts(graph)

    per_round = []
    ingest_seconds = 0.0
    ingested_ops = 0
    incremental_seconds = 0.0
    rebuild_seconds = 0.0
    worst_l1 = 0.0
    exact_mismatches = 0
    for round_index in range(rounds):
        ops = churn_ops(edges, num_nodes, churn, rng)
        _, t_ingest = timed(lambda: apply_ops(graph, ops))
        apply_ops(mirror, ops)  # untimed: both pipelines pay ingest alike
        warm, t_warm = timed(lambda: warm_pagerank(graph))
        cold, t_cold = timed(lambda: cold_pagerank(mirror))
        l1 = sum(abs(warm[node] - cold[node]) for node in cold)
        worst_l1 = max(worst_l1, l1)
        if not exactness_check(graph, mirror):
            exact_mismatches += 1
        ingest_seconds += t_ingest
        ingested_ops += len(ops)
        incremental_seconds += t_warm
        rebuild_seconds += t_cold
        per_round.append({
            "ops": len(ops),
            "ingest_seconds": t_ingest,
            "incremental_seconds": t_warm,
            "rebuild_seconds": t_cold,
            "pagerank_l1": l1,
        })
        print(f"round {round_index}: ingest {t_ingest:.3f}s "
              f"incremental {t_warm:.3f}s rebuild {t_cold:.3f}s "
              f"l1 {l1:.2e}", flush=True)

    speedup = (
        rebuild_seconds / incremental_seconds
        if incremental_seconds > 0 else float("inf")
    )
    edges_per_second = (
        ingested_ops / ingest_seconds if ingest_seconds > 0 else float("inf")
    )
    stats = engine.stats()

    failures = []
    if worst_l1 > EPSILON:
        failures.append(
            f"PageRank drifted: worst L1 {worst_l1:.3e} > ε {EPSILON:.3e}"
        )
    if speedup < SPEEDUP_FLOOR:
        failures.append(
            f"incremental only {speedup:.2f}x vs rebuild at "
            f"{CHURN_FRACTION:.0%} churn (floor {SPEEDUP_FLOOR}x)"
        )
    if exact_mismatches:
        failures.append(
            f"WCC/triangles diverged from batch in {exact_mismatches} round(s)"
        )
    if stats["fallback_full"] > 0:
        failures.append(
            f"{stats['fallback_full']} full-rebuild fallback(s) on the "
            f"live side (last: {stats['last_fallback_reason']})"
        )

    report = {
        "quick": args.quick,
        "graph": {"nodes": num_nodes, "edges": num_edges},
        "churn_fraction": CHURN_FRACTION,
        "rounds": per_round,
        "edges_per_second_ingested": edges_per_second,
        "incremental_seconds": incremental_seconds,
        "rebuild_seconds": rebuild_seconds,
        "speedup_vs_rebuild": speedup,
        "pagerank_epsilon": EPSILON,
        "worst_pagerank_l1": worst_l1,
        "engine": stats,
        "gates": {
            "epsilon_bound": worst_l1 <= EPSILON,
            "exact_algorithms_equal": exact_mismatches == 0,
            "speedup_floor": SPEEDUP_FLOOR,
            "no_fallbacks": stats["fallback_full"] == 0,
            "failures": failures,
        },
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"ingest {edges_per_second:,.0f} edges/s; "
          f"incremental {incremental_seconds:.3f}s vs rebuild "
          f"{rebuild_seconds:.3f}s ({speedup:.1f}x); worst l1 {worst_l1:.2e}")
    print(f"wrote {RESULT_PATH}")
    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
