"""Multi-core backend benchmark: threads vs processes on one snapshot.

Times the partitioned kernels on both execution backends and writes the
JSON artifact ``BENCH_multicore.json`` at the repo root for CI to
archive:

* **pure-Python PageRank** (``pagerank_python_array``) — the GIL-bound
  workload the process backend exists for: serial, thread-pool, and
  process-pool timings over the same snapshot;
* **numpy triangles and WCC** — the GIL-releasing kernels, where
  threads are already parallel and the process backend must at least
  not corrupt results while the adaptive crossover learns which side
  is faster.

Gates (CI fails on any):

* every threads-vs-processes pair is **digest-equal** (bitwise);
* zero leaked ``/dev/shm`` segments after the run;
* on machines with >= 4 usable cores, process-backend pure-Python
  PageRank is >= 2x faster than the thread backend. On fewer cores the
  speedup is recorded but not enforced — a one-core host runs both
  backends serially and the curve is flat (same posture as the A3
  ablation in EXPERIMENTS.md).

Run:  python scripts/bench_multicore.py [--quick] [--workers N]
"""

import argparse
import hashlib
import json
import sys
import time
from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src"
sys.path.insert(0, str(SRC))

import numpy as np  # noqa: E402

from repro.algorithms.components import (  # noqa: E402
    _wcc_labels_parallel,
)
from repro.algorithms.pagerank import pagerank_python_array  # noqa: E402
from repro.algorithms.triangles import triangle_count_array  # noqa: E402
from repro.convert.table_to_graph import graph_from_edge_arrays  # noqa: E402
from repro.graphs.snapshot import csr_snapshot  # noqa: E402
from repro.parallel.executor import (  # noqa: E402
    WorkerPool,
    kernel_dispatcher,
    machine_cpu_count,
)
from repro.parallel.shm import leaked_segments, shm_registry  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_multicore.json"
SPEEDUP_FLOOR = 2.0
MIN_CORES_FOR_GATE = 4


def digest(array: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(array).tobytes()).hexdigest()


def build_graph(num_nodes: int, num_edges: int, seed: int):
    """Skewed random digraph (Zipf-ish sources approximate an R-MAT hub
    profile, which is what makes degree-balanced partitioning matter)."""
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, num_nodes + 1, dtype=np.float64)
    weights = 1.0 / ranks
    weights /= weights.sum()
    src = rng.choice(num_nodes, size=num_edges, p=weights)
    dst = rng.integers(0, num_nodes, size=num_edges)
    return graph_from_edge_arrays(src, dst, directed=True)


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller graph / fewer iterations (CI smoke)")
    parser.add_argument("--workers", type=int, default=8,
                        help="worker count for both backends (default 8)")
    parser.add_argument("--seed", type=int, default=2015)
    args = parser.parse_args(argv)

    nodes = 50_000 if args.quick else 100_000
    edges = 400_000 if args.quick else 800_000
    iterations = 3 if args.quick else 5
    workers = max(2, args.workers)
    cores = machine_cpu_count()

    graph = build_graph(nodes, edges, args.seed)
    csr = csr_snapshot(graph)
    sym = csr.undirected_projection()
    print(f"graph: {csr.num_nodes} nodes, {csr.num_edges} edges; "
          f"{cores} usable cores, {workers} workers", flush=True)

    dispatcher = kernel_dispatcher()
    dispatcher.configure(backend="auto", process_workers=workers)
    thread_pool = WorkerPool(workers)
    serial = WorkerPool(1)

    # Untimed warm-up: fork the worker processes and export the arrays
    # once, so the timings measure steady-state dispatch (the backend's
    # workers are long-lived by design), not executor start-up.
    pagerank_python_array(csr, iterations=1, backend="processes")

    report = {
        "quick": args.quick,
        "machine": {"usable_cores": cores, "workers": workers},
        "graph": {"nodes": csr.num_nodes, "edges": csr.num_edges},
    }
    failures = []

    # -- pure-Python PageRank: the GIL-bound headline workload ---------
    pr_serial, serial_s = timed(lambda: pagerank_python_array(
        csr, iterations=iterations, pool=serial, backend="threads"))
    pr_threads, threads_s = timed(lambda: pagerank_python_array(
        csr, iterations=iterations, pool=thread_pool, backend="threads"))
    pr_procs, procs_s = timed(lambda: pagerank_python_array(
        csr, iterations=iterations, backend="processes"))
    speedup = threads_s / procs_s if procs_s > 0 else float("inf")
    pagerank_equal = digest(pr_threads) == digest(pr_procs) == digest(pr_serial)
    report["pagerank_python"] = {
        "iterations": iterations,
        "serial_seconds": serial_s,
        "threads_seconds": threads_s,
        "process_seconds": procs_s,
        "process_speedup_vs_threads": speedup,
        "digest_equal": pagerank_equal,
    }
    print(f"pagerank(py): serial {serial_s:.3f}s threads {threads_s:.3f}s "
          f"processes {procs_s:.3f}s ({speedup:.2f}x)", flush=True)

    # -- numpy kernels: correctness + crossover bookkeeping ------------
    tri_threads, tri_threads_s = timed(
        lambda: triangle_count_array(sym, pool=thread_pool, backend="threads"))
    tri_procs, tri_procs_s = timed(
        lambda: triangle_count_array(sym, backend="processes"))
    triangles_equal = digest(tri_threads) == digest(tri_procs)
    report["triangles"] = {
        "threads_seconds": tri_threads_s,
        "process_seconds": tri_procs_s,
        "digest_equal": triangles_equal,
    }
    print(f"triangles: threads {tri_threads_s:.3f}s "
          f"processes {tri_procs_s:.3f}s", flush=True)

    wcc_threads, wcc_threads_s = timed(
        lambda: _wcc_labels_parallel(csr, pool=thread_pool, backend="threads"))
    wcc_procs, wcc_procs_s = timed(
        lambda: _wcc_labels_parallel(csr, backend="processes"))
    wcc_equal = digest(wcc_threads) == digest(wcc_procs)
    report["wcc"] = {
        "threads_seconds": wcc_threads_s,
        "process_seconds": wcc_procs_s,
        "digest_equal": wcc_equal,
    }
    print(f"wcc: threads {wcc_threads_s:.3f}s "
          f"processes {wcc_procs_s:.3f}s", flush=True)

    report["crossover"] = dispatcher.crossover.snapshot()

    # -- gates ---------------------------------------------------------
    if not (pagerank_equal and triangles_equal and wcc_equal):
        failures.append("digest mismatch between thread and process backends")

    dispatcher.shutdown()
    thread_pool.close()
    shm_registry().drop_all()
    leaked = leaked_segments()
    if leaked:
        failures.append(f"leaked shared-memory segments: {leaked}")

    speedup_enforced = cores >= MIN_CORES_FOR_GATE
    if speedup_enforced and speedup < SPEEDUP_FLOOR:
        failures.append(
            f"process backend only {speedup:.2f}x vs threads on the "
            f"pure-Python kernel (floor {SPEEDUP_FLOOR}x at {cores} cores)"
        )

    report["gates"] = {
        "digest_equality": pagerank_equal and triangles_equal and wcc_equal,
        "zero_leaked_segments": not leaked,
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_enforced": speedup_enforced,
        "failures": failures,
    }

    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {RESULT_PATH}")
    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
