"""Replication benchmark: steady-state lag, failover time, re-seed time.

Runs a live primary/replica :class:`ServiceHandle` pair (the same
topology ``repro serve --replica`` deploys) and measures the three
numbers an operator sizes a hot standby by, writing the JSON artifact
``BENCH_replication.json`` at the repo root for CI to archive:

* **steady-state lag** — a tenant streams committed ``ApplyOps``
  batches while the WAL shipper runs; replication lag (records and
  bytes behind the primary's WAL tip) is sampled after every write and
  the distribution plus the time from last write to full catch-up is
  recorded;
* **failover time** — the primary stops cold; the clock runs from the
  ``promote`` call to the *first successfully served write* on the
  promoted service (the operator-visible unavailability window,
  excluding detection time, which belongs to the deployment's prober);
* **re-seed time** — the replica's follower state is corrupted in
  place; the clock runs from the first post-corruption write until the
  shipper's divergence exchange has detected the mismatch, re-seeded
  from a fresh checkpoint, and restored digest equality.

Gates (CI fails on any):

* zero divergence during steady state — the digest exchanges that ran
  while both sides were healthy must all have matched (no re-seeds);
* bounded lag — after the stream stops, the replica fully catches up
  (lag reaches zero) within the catch-up timeout;
* failover works — the promoted service serves a write, its catalog
  digest equals the deposed primary's committed state, and the
  old spool is fenced;
* the injected divergence is detected, quarantined, auto re-seeded,
  and digest equality restored — never silently served.

Run:  python scripts/bench_replication.py [--batches N] [--quick]
"""

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src"
sys.path.insert(0, str(SRC))

from repro.core.engine import Ringo  # noqa: E402
from repro.exceptions import FencedError  # noqa: E402
from repro.recovery.digest import catalog_digest  # noqa: E402
from repro.service import ServiceConfig, ServiceHandle  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_replication.json"
TENANT = "bench"


def percentile(samples, q):
    if not samples:
        return None
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def wait_until(predicate, timeout, interval=0.01):
    """Poll until true; returns elapsed seconds or None on timeout."""
    start = time.perf_counter()
    deadline = start + timeout
    while time.perf_counter() < deadline:
        if predicate():
            return time.perf_counter() - start
        time.sleep(interval)
    return None


def tenant_state(handle):
    return handle.health()["replication"]["tenants"].get(TENANT) or {}


def run_benchmark(batches: int, catchup_timeout_s: float) -> dict:
    root = Path(tempfile.mkdtemp(prefix="bench-replication-"))
    replica = ServiceHandle(
        ServiceConfig(spool_dir=str(root / "replica"), role="replica",
                      tick_s=0.02)
    ).start()
    rhost, rport = replica.address
    primary = ServiceHandle(
        ServiceConfig(
            spool_dir=str(root / "primary"),
            replica_address=f"{rhost}:{rport}",
            ship_interval_s=0.02,
            digest_every_batches=4,
            tick_s=0.02,
        )
    ).start()

    # -- steady-state lag ------------------------------------------------
    table = primary.call(
        TENANT, "TableFromColumns",
        data={"a": list(range(64)), "b": [(i * 7 + 1) % 64 for i in range(64)]},
    )
    graph = primary.call(
        TENANT, "ToGraph", table={"$ref": table["$ref"]},
        src_col="a", dst_col="b",
    )
    lag_records_samples = []
    lag_bytes_samples = []
    write_started = time.perf_counter()
    for i in range(batches):
        primary.call(
            TENANT, "ApplyOps", graph={"$ref": graph["$ref"]},
            ops=[["add_edge", 1000 + i, 1001 + i],
                 ["add_edge", 2000 + i, 2001 + i]],
        )
        state = tenant_state(primary)
        lag_records_samples.append(state.get("lag_records", 0))
        lag_bytes_samples.append(state.get("lag_bytes", 0))
    write_window_s = time.perf_counter() - write_started
    tip = 2 + batches  # table + graph + one WAL record per ApplyOps call

    catchup_s = wait_until(
        lambda: tenant_state(primary).get("applied_lsn", 0) >= tip
        and tenant_state(primary).get("lag_records", 1) == 0,
        catchup_timeout_s,
    )
    steady = tenant_state(primary)
    steady_digest_equal = (
        primary.call(TENANT, "digest") == replica.call(TENANT, "digest")
    )

    # -- injected divergence -> detect, quarantine, auto re-seed ----------
    applier = replica.service.applier
    follower = applier.tenant(TENANT)
    with follower.lock:
        graph_name = [
            n for n in follower.session.Objects() if n.startswith("graph")
        ][0]
        follower.session.GetObject(graph_name).add_edge(999_999, 999_998)
    reseed_started = time.perf_counter()
    reseed_writes = 0
    reseed_s = None
    deadline = reseed_started + catchup_timeout_s
    while time.perf_counter() < deadline:
        primary.call(
            TENANT, "ApplyOps", graph={"$ref": graph["$ref"]},
            ops=[["add_edge", 5000 + reseed_writes, 5001 + reseed_writes]],
        )
        reseed_writes += 1
        state = tenant_state(primary)
        if state.get("reseeds", 0) >= 1 and state.get("lag_records", 1) == 0:
            reseed_s = time.perf_counter() - reseed_started
            break
        time.sleep(0.02)
    # The last write of the loop may still be in flight: wait for the
    # stream to fully drain before comparing catalogs.
    final_tip = tip + reseed_writes
    wait_until(
        lambda: tenant_state(primary).get("applied_lsn", 0) >= final_tip
        and tenant_state(primary).get("lag_records", 1) == 0,
        catchup_timeout_s,
    )
    reseed_state = tenant_state(primary)
    reseed_digest_equal = (
        primary.call(TENANT, "digest") == replica.call(TENANT, "digest")
    )

    # -- failover ---------------------------------------------------------
    reference_digest = primary.call(TENANT, "digest")
    primary.stop()
    failover_started = time.perf_counter()
    report = replica.call(
        TENANT, "promote", fence_spool=str(root / "primary")
    )
    replica.call(TENANT, "TableFromColumns", data={"post": [1, 2, 3]})
    failover_s = time.perf_counter() - failover_started
    promoted_digest_matches = (
        replica.call(TENANT, "digest_at")["digest"] != {}  # liveness
        and report["tenants"][TENANT]["epoch"] == report["epoch"]
    )
    # The pre-failover catalog must be reproduced exactly (the new table
    # was written after the reference digest was taken).
    promoted_digest = {
        name: value
        for name, value in replica.call(TENANT, "digest").items()
        if name in reference_digest
    }
    fenced = False
    try:
        revived = Ringo.recover(root / "primary" / TENANT, workers=1)
        with revived:
            try:
                revived.TableFromColumns({"zombie": [1]})
            except FencedError:
                fenced = True
    except FencedError:
        fenced = True
    replica.stop()

    return {
        "benchmark": "replication",
        "config": {
            "batches": batches,
            "ship_interval_s": 0.02,
            "digest_every_batches": 4,
            "catchup_timeout_s": catchup_timeout_s,
        },
        "steady_state": {
            "write_window_s": write_window_s,
            "writes_per_second": (2 + batches) / write_window_s,
            "lag_records": {
                "p50": percentile(lag_records_samples, 0.50),
                "p95": percentile(lag_records_samples, 0.95),
                "max": max(lag_records_samples, default=None),
            },
            "lag_bytes_max": max(lag_bytes_samples, default=None),
            "catchup_s": catchup_s,
            "digests_exchanged": steady.get("digests_exchanged", 0),
            "reseeds_during_steady_state": steady.get("reseeds", 0),
            "digest_equal": steady_digest_equal,
        },
        "reseed": {
            "detected_and_reseeded_s": reseed_s,
            "writes_until_reseed": reseed_writes,
            "reseeds": reseed_state.get("reseeds", 0),
            "digest_equal_after": reseed_digest_equal,
        },
        "failover": {
            "promote_to_first_served_write_s": failover_s,
            "epoch": report["epoch"],
            "drained_records": report["drained_records"],
            "adopted": report["adopted"],
            "epoch_consistent": promoted_digest_matches,
            "committed_state_preserved": promoted_digest == reference_digest,
            "old_primary_fenced": fenced,
        },
    }


def check(payload: dict) -> None:
    """The acceptance gates CI enforces."""
    steady = payload["steady_state"]
    assert steady["reseeds_during_steady_state"] == 0, (
        "divergence detected while both sides were healthy"
    )
    assert steady["catchup_s"] is not None, (
        "replica never fully caught up after the write stream stopped"
    )
    assert steady["digest_equal"], "steady-state digests diverged"
    reseed = payload["reseed"]
    assert reseed["detected_and_reseeded_s"] is not None, (
        "injected divergence was never detected + re-seeded"
    )
    assert reseed["digest_equal_after"], (
        "digest equality not restored after re-seed"
    )
    failover = payload["failover"]
    assert failover["committed_state_preserved"], (
        "promoted catalog does not match the primary's committed state"
    )
    assert failover["old_primary_fenced"], "deposed primary was not fenced"
    assert TENANT in failover["adopted"], "follower session was not adopted"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--batches", type=int, default=200)
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller stream for CI smoke (50 batches)",
    )
    parser.add_argument("--catchup-timeout-s", type=float, default=60.0)
    args = parser.parse_args()
    batches = 50 if args.quick else args.batches

    payload = run_benchmark(batches, args.catchup_timeout_s)
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(payload, indent=2))
    try:
        check(payload)
    except AssertionError as err:
        print(f"FAIL: {err}", file=sys.stderr)
        return 1
    steady = payload["steady_state"]
    print(
        f"OK: lag p95 {steady['lag_records']['p95']} records over "
        f"{batches} write batches, catch-up "
        f"{steady['catchup_s'] * 1000:.0f} ms, re-seed "
        f"{payload['reseed']['detected_and_reseeded_s']:.2f} s, failover "
        f"{payload['failover']['promote_to_first_served_write_s'] * 1000:.0f}"
        f" ms to first served write"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
