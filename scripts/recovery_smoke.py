"""CI recovery smoke: SIGKILL a durable session mid-run, recover, diff.

Drives the full crash-consistency loop as a black box, the way the CI
``recovery-smoke`` job runs it:

1. spawn a child interpreter that runs a representative durable session
   (loads, selects, a join, a graph build, a checkpoint, post-checkpoint
   ops) and SIGKILLs itself at a scripted point;
2. ``Ringo.recover()`` the directory;
3. rerun the committed op sequence in a clean in-process session and
   assert the recovered catalog's digests match the rerun's exactly;
4. repeat with a checkpoint whose artifact was silently corrupted
   (the ``recovery.checkpoint.bit_flip`` fault) and assert the artifact
   is quarantined — never silently loaded — and rebuilt from the WAL.

Exit code 0 means every scenario passed.

Run:  python scripts/recovery_smoke.py [workdir]
"""

import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src"
sys.path.insert(0, str(SRC))

from repro.core.engine import Ringo  # noqa: E402
from repro.recovery.digest import catalog_digest  # noqa: E402

CHILD = """
import os, signal, sys
sys.path.insert(0, {src!r})
from repro.core.engine import Ringo
from repro.exceptions import InjectedFaultError
from repro.faults import inject_faults

session = Ringo(workers=1, durability=sys.argv[1])
posts = session.TableFromColumns(
    {{
        "user": [1, 2, 3, 4, 2, 1, 5, 3],
        "score": [5.0, 1.0, 3.5, 2.0, 4.0, 0.5, 3.0, 2.5],
        "tag": ["java", "py", "java", "go", "py", "java", "go", "java"],
    }}
)
java = session.Select(posts, "tag=java")
joined = session.Join(java, posts, "user")
graph = session.ToGraph(joined, "user-1", "user-2")
scenario = sys.argv[2]
if scenario == "bit-flip":
    with inject_faults({{"recovery.checkpoint.bit_flip": {{"rate": 1.0, "max_triggers": 1}}}}):
        session.checkpoint()
else:
    session.checkpoint()
session.OrderBy(java, "score", in_place=True)
session.GenRMat(4, 10, seed=5)
if scenario == "torn-wal":
    # Die exactly mid-append: half a frame lands on disk, then SIGKILL.
    with inject_faults({{"recovery.wal.torn_write": 1.0}}):
        try:
            session.Distinct(posts)
        except InjectedFaultError:
            os.kill(os.getpid(), signal.SIGKILL)
os.kill(os.getpid(), signal.SIGKILL)
"""


def committed_reference():
    """The committed op sequence, rerun cleanly in-process."""
    with Ringo(workers=1) as session:
        posts = session.TableFromColumns(
            {
                "user": [1, 2, 3, 4, 2, 1, 5, 3],
                "score": [5.0, 1.0, 3.5, 2.0, 4.0, 0.5, 3.0, 2.5],
                "tag": ["java", "py", "java", "go", "py", "java", "go", "java"],
            }
        )
        java = session.Select(posts, "tag=java")
        joined = session.Join(java, posts, "user")
        graph = session.ToGraph(joined, "user-1", "user-2")
        session.OrderBy(java, "score", in_place=True)
        rmat = session.GenRMat(4, 10, seed=5)
        from repro.recovery.digest import object_digest

        return {
            "table-1": object_digest(posts),
            "table-2": object_digest(java),
            "table-3": object_digest(joined),
            "graph-4": object_digest(graph),
            "graph-5": object_digest(rmat),
        }


def crash_child(state: Path, scenario: str) -> None:
    result = subprocess.run(
        [sys.executable, "-c", CHILD.format(src=str(SRC)), str(state), scenario],
        capture_output=True,
        text=True,
        timeout=300,
    )
    if result.returncode != -signal.SIGKILL:
        raise SystemExit(
            f"child for {scenario!r} exited {result.returncode}, expected "
            f"SIGKILL\n{result.stderr}"
        )


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SystemExit(f"FAIL: {message}")


def run_scenario(workdir: Path, scenario: str, expected: dict) -> None:
    state = workdir / scenario
    crash_child(state, scenario)
    with Ringo.recover(state, workers=1) as recovered:
        report = recovered.health()["recovery"]["last_recovery"]
        digests = catalog_digest(recovered)
        check(digests == expected, f"{scenario}: recovered catalog diverged")
        check(report["unrecovered"] == [], f"{scenario}: unrecovered objects")
        if scenario == "torn-wal":
            check(report["wal_torn_tail"], "torn-wal: tail not detected")
        if scenario == "bit-flip":
            check(
                len(report["quarantined"]) == 1,
                "bit-flip: corrupt artifact was not quarantined",
            )
            moved = Path(report["quarantined"][0]["moved_to"])
            check(moved.exists(), "bit-flip: quarantined artifact missing")
    print(
        f"  {scenario}: checkpoint={report['checkpoint']} "
        f"restored={report['restored_objects']} "
        f"replayed={report['replayed_ops']} "
        f"quarantined={len(report['quarantined'])} ... OK"
    )


def main() -> None:
    workdir = Path(
        sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(prefix="recovery-smoke-")
    )
    expected = committed_reference()
    print("recovery smoke: SIGKILL -> recover -> diff against clean rerun")
    for scenario in ("clean-kill", "torn-wal", "bit-flip"):
        run_scenario(workdir, scenario, expected)
    print("recovery smoke: all scenarios passed")


if __name__ == "__main__":
    main()
