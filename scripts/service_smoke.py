"""CI service smoke: real server process, real SIGTERM, zero loss.

Black-box drill of the multi-tenant session service the way an operator
would meet it:

1. spawn ``python -m repro serve`` as a child process and read the
   bound port off its startup line;
2. two tenants commit real work over TCP (load -> graph -> PageRank)
   and record their catalog digests;
3. start a background load of read requests, then SIGTERM the server
   mid-load;
4. assert the server drains instead of dying: exit code 0, a drain
   summary on stdout, every in-flight client answered with either a
   result or a typed ``draining`` rejection — never a hang;
5. assert zero committed loss: each tenant's spool directory alone
   (``Ringo.recover``) reproduces the digest recorded in step 2.

Exit code 0 means every check passed.

Run:  python scripts/service_smoke.py [workdir]
"""

import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src"
sys.path.insert(0, str(SRC))

from repro.core.engine import Ringo  # noqa: E402
from repro.exceptions import RingoError  # noqa: E402
from repro.recovery.digest import catalog_digest  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402
from repro.service.protocol import RemoteError  # noqa: E402

SCHEMA = [["src", "int"], ["dst", "int"]]


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SystemExit(f"FAIL: {message}")


def start_server(spool: Path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    process = subprocess.Popen(
        [
            sys.executable, "-u", "-m", "repro", "serve",
            "--spool", str(spool), "--port", "0",
            "--tick-s", "0.02", "--idle-evict-s", "2.0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    line = process.stdout.readline()
    check("listening on" in line, f"unexpected startup line: {line!r}")
    port = int(line.split("listening on")[1].split()[0].rsplit(":", 1)[1])
    return process, port


def commit_workload(port: int, tenant: str, edges: str) -> dict:
    with ServiceClient("127.0.0.1", port, tenant=tenant) as client:
        table = client.call("LoadTableTSV", path=edges, schema=SCHEMA)
        graph = client.call(
            "ToGraph", table={"$ref": table["$ref"]},
            src_col="src", dst_col="dst",
        )
        client.call("GetPageRank", graph={"$ref": graph["$ref"]})
        return client.call("digest")


def background_load(port: int, tenant: str, outcomes: list) -> None:
    """Hammer reads until the drain cuts us off; record how it ended."""
    try:
        with ServiceClient("127.0.0.1", port, tenant=tenant) as client:
            while True:
                try:
                    client.call("digest")
                    outcomes.append("ok")
                except RemoteError as error:
                    # The only acceptable refusals are typed drain-path
                    # rejections; anything else is a smoke failure.
                    outcomes.append(f"typed:{error.error_type}")
                    if "RequestRejected" in error.error_type:
                        return
    except (RingoError, OSError):
        outcomes.append("disconnected")  # server finished its drain


def main() -> None:
    workdir = Path(
        sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(prefix="service-smoke-")
    )
    spool = workdir / "spool"
    edges = workdir / "edges.tsv"
    workdir.mkdir(parents=True, exist_ok=True)
    with open(edges, "w") as fh:
        for i in range(500):
            fh.write(f"{i}\t{(i * 17 + 3) % 500}\n")

    print("service smoke: serve -> commit -> SIGTERM mid-load -> verify spool")
    process, port = start_server(spool)
    try:
        digests = {
            tenant: commit_workload(port, tenant, str(edges))
            for tenant in ("alice", "bob")
        }
        print(f"  committed workloads for {sorted(digests)} on port {port}")

        outcomes: list = []
        threads = [
            threading.Thread(
                target=background_load, args=(port, tenant, outcomes), daemon=True
            )
            for tenant in ("alice", "bob", "alice", "bob")
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.5)  # the load is genuinely in flight
        process.send_signal(signal.SIGTERM)
        for thread in threads:
            thread.join(timeout=60)
            check(not thread.is_alive(), "a client hung through the drain")

        stdout, stderr = process.communicate(timeout=60)
        check(process.returncode == 0, f"server exited {process.returncode}: {stderr}")
        check("drained" in stdout, f"no drain summary in stdout: {stdout!r}")
        completed = sum(1 for o in outcomes if o == "ok")
        check(completed > 0, "background load never completed a request")
        bad = [
            o for o in outcomes
            if o not in ("ok", "disconnected")
            and o != "typed:RequestRejected"
        ]
        check(bad == [], f"untyped drain responses: {bad}")
        print(
            f"  SIGTERM drain: {completed} completed, "
            f"{sum(1 for o in outcomes if o != 'ok')} cut off cleanly"
        )
        print(f"  server said: {stdout.strip().splitlines()[-1]}")
    finally:
        if process.poll() is None:
            process.kill()

    # The server is gone; the spool alone must reproduce every digest.
    for tenant, expected in digests.items():
        with Ringo.recover(spool / tenant, workers=1) as revived:
            check(
                catalog_digest(revived) == expected,
                f"{tenant}: spool diverged from committed state",
            )
    print("  spool verified: committed state intact for both tenants")
    print("service smoke: all checks passed")


if __name__ == "__main__":
    main()
