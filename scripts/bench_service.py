"""Service benchmark: concurrent tenants, request latency, density.

Measures the multi-tenant session service on three axes and writes the
JSON artifact ``BENCH_service.json`` at the repo root for CI to archive:

* **throughput under concurrency** — N tenant threads drive the
  service at once (setup: load -> graph -> PageRank, then a stream of
  catalog reads), requests/second over the whole run;
* **request latency** — client-observed p50/p95 per request class
  (setup vs steady-state reads), plus the server's own latency
  histogram for cross-checking;
* **session density** — sessions hosted per GiB of admission ledger.
  The ledger is sized so only a fraction of tenants fit in memory at
  once; eviction-to-checkpoint + lazy revival is what makes
  ``known_sessions`` exceed the resident ceiling, which is the paper's
  many-analysts-one-machine story applied to sessions.

Gates (CI fails on either): every request ends in a result or a typed
service error, and steady-state read p95 stays under one second.

Run:  python scripts/bench_service.py [--tenants N] [--reads M]
"""

import argparse
import json
import sys
import tempfile
import threading
import time
from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src"
sys.path.insert(0, str(SRC))

from repro.service import ServiceConfig, ServiceHandle  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_service.json"
SCHEMA = [["src", "int"], ["dst", "int"]]
TENANT_BUDGET = 32 << 20
LEDGER_BYTES = 256 << 20  # 8 resident x 32 MiB; the rest live evicted


def percentile(samples, q):
    if not samples:
        return None
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


class TenantThread(threading.Thread):
    """One tenant: committed setup, then a stream of catalog reads."""

    def __init__(self, handle, tenant, edges, reads):
        super().__init__(name=f"bench-{tenant}")
        self.handle = handle
        self.tenant = tenant
        self.edges = edges
        self.reads = reads
        self.setup_latencies = []
        self.read_latencies = []
        self.failures = []

    def _timed(self, bucket, op, **args):
        started = time.perf_counter()
        try:
            result = self.handle.call(self.tenant, op, **args)
        except Exception as error:
            self.failures.append(f"{op}: {type(error).__name__}: {error}")
            return None
        bucket.append(time.perf_counter() - started)
        return result

    def run(self):
        table = self._timed(
            self.setup_latencies, "LoadTableTSV",
            path=self.edges, schema=SCHEMA,
        )
        if table is None:
            return
        graph = self._timed(
            self.setup_latencies, "ToGraph",
            table={"$ref": table["$ref"]}, src_col="src", dst_col="dst",
        )
        if graph is None:
            return
        self._timed(
            self.setup_latencies, "GetPageRank", graph={"$ref": graph["$ref"]}
        )
        for n in range(self.reads):
            self._timed(
                self.read_latencies, "objects" if n % 2 else "digest"
            )


def run_benchmark(tenants: int, reads: int) -> dict:
    workdir = Path(tempfile.mkdtemp(prefix="bench-service-"))
    edges = workdir / "edges.tsv"
    with open(edges, "w") as fh:
        for i in range(2000):
            fh.write(f"{i}\t{(i * 31 + 5) % 2000}\n")

    config = ServiceConfig(
        spool_dir=str(workdir / "spool"),
        global_budget_bytes=LEDGER_BYTES,
        default_tenant_budget_bytes=TENANT_BUDGET,
        max_queue_depth=32,
        default_deadline_s=120.0,
        idle_evict_s=1.0,
        tick_s=0.02,
    )
    handle = ServiceHandle(config).start()
    try:
        workers = [
            TenantThread(handle, f"tenant-{n:02d}", str(edges), reads)
            for n in range(tenants)
        ]
        started = time.perf_counter()
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        elapsed = time.perf_counter() - started
        health = handle.health()["service"]
    finally:
        report = handle.stop()

    setup = [s for w in workers for s in w.setup_latencies]
    read = [s for w in workers for s in w.read_latencies]
    failures = [f for w in workers for f in w.failures]
    total_requests = len(setup) + len(read)
    ledger_gib = LEDGER_BYTES / float(1 << 30)
    return {
        "config": {
            "tenants": tenants,
            "reads_per_tenant": reads,
            "tenant_budget_bytes": TENANT_BUDGET,
            "ledger_bytes": LEDGER_BYTES,
            "resident_ceiling": LEDGER_BYTES // TENANT_BUDGET,
        },
        "throughput": {
            "requests": total_requests,
            "seconds": elapsed,
            "requests_per_second": total_requests / elapsed,
        },
        "latency_s": {
            "setup": {
                "p50": percentile(setup, 0.50),
                "p95": percentile(setup, 0.95),
                "max": max(setup, default=None),
            },
            "read": {
                "p50": percentile(read, 0.50),
                "p95": percentile(read, 0.95),
                "max": max(read, default=None),
            },
            "server_histogram": health["latency"],
        },
        "density": {
            "known_sessions": health["known_sessions"],
            "resident_at_end": health["resident_sessions"],
            "sessions_per_gib": health["known_sessions"] / ledger_gib,
            "evictions": sum(
                t["evictions"] for t in health["tenants"].values()
            ),
            "revivals": sum(
                t["revivals"] for t in health["tenants"].values()
            ),
        },
        "drain": report,
        "failures": failures,
    }


def check(payload: dict) -> None:
    """The acceptance gates CI enforces."""
    assert payload["failures"] == [], (
        f"untyped or unexpected failures: {payload['failures'][:5]}"
    )
    p95 = payload["latency_s"]["read"]["p95"]
    assert p95 is not None and p95 < 1.0, f"steady-state read p95 {p95}s >= 1s"
    density = payload["density"]
    assert density["known_sessions"] > density["resident_at_end"], (
        "no session was ever evicted: density story untested"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tenants", type=int, default=24)
    parser.add_argument("--reads", type=int, default=20)
    args = parser.parse_args()

    payload = run_benchmark(args.tenants, args.reads)
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(payload, indent=2))
    try:
        check(payload)
    except AssertionError as err:
        print(f"FAIL: {err}", file=sys.stderr)
        return 1
    print(
        f"OK: {payload['throughput']['requests_per_second']:.0f} req/s across "
        f"{payload['config']['tenants']} tenants, read p95 "
        f"{payload['latency_s']['read']['p95'] * 1000:.1f} ms, "
        f"{payload['density']['sessions_per_gib']:.0f} sessions/GiB "
        f"(resident ceiling {payload['config']['resident_ceiling']})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
