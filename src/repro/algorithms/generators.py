"""Graph generators (SNAP's generator family).

These supply every synthetic workload in the benchmark harness; in
particular :func:`rmat` generates the scaled stand-ins for LiveJournal
and Twitter2010 (see DESIGN.md substitutions) with the skewed degree
distributions that drive the paper's measured behaviour.

All generators are deterministic for a fixed ``seed``.
"""

from __future__ import annotations

import numpy as np

from repro.convert.table_to_graph import graph_from_edge_arrays
from repro.exceptions import AlgorithmError
from repro.graphs.directed import DirectedGraph
from repro.graphs.undirected import UndirectedGraph
from repro.util.validation import check_fraction, check_non_negative, check_positive

DEFAULT_RMAT = (0.57, 0.19, 0.19, 0.05)
"""The standard Graph500 R-MAT partition probabilities (a, b, c, d)."""


def complete_graph(num_nodes: int, directed: bool = False):
    """Every ordered (directed) or unordered (undirected) pair is an edge."""
    check_non_negative(num_nodes, "num_nodes")
    graph = DirectedGraph() if directed else UndirectedGraph()
    for node in range(num_nodes):
        graph.add_node(node)
    for u in range(num_nodes):
        for v in range(num_nodes):
            if u != v and (directed or u < v):
                graph.add_edge(u, v)
    return graph


def star_graph(num_leaves: int) -> UndirectedGraph:
    """Node 0 connected to ``num_leaves`` leaves."""
    check_non_negative(num_leaves, "num_leaves")
    graph = UndirectedGraph()
    graph.add_node(0)
    for leaf in range(1, num_leaves + 1):
        graph.add_edge(0, leaf)
    return graph


def ring_graph(num_nodes: int) -> UndirectedGraph:
    """A cycle of ``num_nodes`` nodes (a path for n=2, an edgeless dot for n=1)."""
    check_non_negative(num_nodes, "num_nodes")
    graph = UndirectedGraph()
    for node in range(num_nodes):
        graph.add_node(node)
    if num_nodes >= 2:
        for node in range(num_nodes):
            graph.add_edge(node, (node + 1) % num_nodes)
    return graph


def grid_graph(rows: int, cols: int) -> UndirectedGraph:
    """A rows × cols lattice (4-neighbour)."""
    check_positive(rows, "rows")
    check_positive(cols, "cols")
    graph = UndirectedGraph()
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            graph.add_node(node)
            if c + 1 < cols:
                graph.add_edge(node, node + 1)
            if r + 1 < rows:
                graph.add_edge(node, node + cols)
    return graph


def balanced_tree(branching: int, depth: int) -> UndirectedGraph:
    """A complete ``branching``-ary tree of the given depth."""
    check_positive(branching, "branching")
    check_non_negative(depth, "depth")
    graph = UndirectedGraph()
    graph.add_node(0)
    frontier = [0]
    next_id = 1
    for _ in range(depth):
        new_frontier = []
        for parent in frontier:
            for _ in range(branching):
                graph.add_edge(parent, next_id)
                new_frontier.append(next_id)
                next_id += 1
        frontier = new_frontier
    return graph


def erdos_renyi_gnm(
    num_nodes: int, num_edges: int, directed: bool = False, seed: int = 0
):
    """G(n, m): ``num_edges`` distinct edges chosen uniformly (no loops)."""
    check_positive(num_nodes, "num_nodes")
    check_non_negative(num_edges, "num_edges")
    max_edges = num_nodes * (num_nodes - 1)
    if not directed:
        max_edges //= 2
    if num_edges > max_edges:
        raise AlgorithmError(
            f"cannot place {num_edges} edges in a {num_nodes}-node "
            f"{'directed' if directed else 'undirected'} simple graph"
        )
    rng = np.random.default_rng(seed)
    chosen: set[tuple[int, int]] = set()
    while len(chosen) < num_edges:
        need = num_edges - len(chosen)
        src = rng.integers(0, num_nodes, size=2 * need + 8)
        dst = rng.integers(0, num_nodes, size=2 * need + 8)
        for u, v in zip(src.tolist(), dst.tolist()):
            if u == v:
                continue
            key = (u, v) if directed or u < v else (v, u)
            if key not in chosen:
                chosen.add(key)
                if len(chosen) == num_edges:
                    break
    graph = DirectedGraph() if directed else UndirectedGraph()
    for node in range(num_nodes):
        graph.add_node(node)
    for u, v in chosen:
        graph.add_edge(u, v)
    return graph


def erdos_renyi_gnp(
    num_nodes: int, probability: float, directed: bool = False, seed: int = 0
):
    """G(n, p): each possible edge present independently with ``probability``."""
    check_positive(num_nodes, "num_nodes")
    check_fraction(probability, "probability")
    rng = np.random.default_rng(seed)
    graph = DirectedGraph() if directed else UndirectedGraph()
    for node in range(num_nodes):
        graph.add_node(node)
    mask = rng.random((num_nodes, num_nodes)) < probability
    np.fill_diagonal(mask, False)
    if not directed:
        mask = np.triu(mask)
    src, dst = np.nonzero(mask)
    for u, v in zip(src.tolist(), dst.tolist()):
        graph.add_edge(u, v)
    return graph


def barabasi_albert(num_nodes: int, edges_per_node: int, seed: int = 0) -> UndirectedGraph:
    """Preferential attachment: each new node attaches to ``edges_per_node``
    existing nodes sampled proportionally to degree."""
    check_positive(num_nodes, "num_nodes")
    check_positive(edges_per_node, "edges_per_node")
    if num_nodes <= edges_per_node:
        raise AlgorithmError("num_nodes must exceed edges_per_node")
    rng = np.random.default_rng(seed)
    graph = UndirectedGraph()
    # Seed clique keeps early attachment well-defined.
    for node in range(edges_per_node + 1):
        graph.add_node(node)
    for u in range(edges_per_node + 1):
        for v in range(u + 1, edges_per_node + 1):
            graph.add_edge(u, v)
    # Repeated-endpoint list implements degree-proportional sampling.
    endpoint_pool: list[int] = []
    for u, v in graph.edges():
        endpoint_pool.extend((u, v))
    for node in range(edges_per_node + 1, num_nodes):
        targets: set[int] = set()
        while len(targets) < edges_per_node:
            targets.add(endpoint_pool[rng.integers(0, len(endpoint_pool))])
        for target in targets:
            graph.add_edge(node, target)
            endpoint_pool.extend((node, target))
    return graph


def watts_strogatz(
    num_nodes: int, nearest: int, rewire_probability: float, seed: int = 0
) -> UndirectedGraph:
    """Small-world model: ring lattice with random rewiring."""
    check_positive(num_nodes, "num_nodes")
    check_positive(nearest, "nearest")
    check_fraction(rewire_probability, "rewire_probability")
    if nearest % 2 != 0:
        raise AlgorithmError("nearest must be even (k/2 links each side)")
    if nearest >= num_nodes:
        raise AlgorithmError("nearest must be below num_nodes")
    rng = np.random.default_rng(seed)
    graph = UndirectedGraph()
    for node in range(num_nodes):
        graph.add_node(node)
    half = nearest // 2
    for node in range(num_nodes):
        for offset in range(1, half + 1):
            graph.add_edge(node, (node + offset) % num_nodes)
    for node in range(num_nodes):
        for offset in range(1, half + 1):
            if rng.random() < rewire_probability:
                old = (node + offset) % num_nodes
                if not graph.has_edge(node, old):
                    continue
                candidates = rng.integers(0, num_nodes, size=16).tolist()
                for candidate in candidates:
                    if candidate != node and not graph.has_edge(node, candidate):
                        graph.del_edge(node, old)
                        graph.add_edge(node, candidate)
                        break
    return graph


def configuration_model(
    degrees: "list[int] | np.ndarray", seed: int = 0
) -> UndirectedGraph:
    """Random simple graph approximating a target degree sequence.

    Stub matching with rejection of self-loops and duplicate edges, so
    realised degrees are <= the targets (equal for most nodes on sparse
    sequences). The degree sum must be even.

    >>> graph = configuration_model([2, 2, 2, 2], seed=1)
    >>> all(graph.degree(n) <= 2 for n in graph.nodes())
    True
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    if len(degrees) == 0:
        return UndirectedGraph()
    if degrees.min() < 0:
        raise AlgorithmError("degrees must be non-negative")
    if int(degrees.sum()) % 2 != 0:
        raise AlgorithmError("degree sequence must have an even sum")
    rng = np.random.default_rng(seed)
    stubs = np.repeat(np.arange(len(degrees), dtype=np.int64), degrees)
    rng.shuffle(stubs)
    graph = UndirectedGraph()
    for node in range(len(degrees)):
        graph.add_node(node)
    for u, v in zip(stubs[0::2].tolist(), stubs[1::2].tolist()):
        if u != v:
            graph.add_edge(u, v)
    return graph


def rewire(
    graph: UndirectedGraph, swaps: int | None = None, seed: int = 0
) -> UndirectedGraph:
    """Degree-preserving randomisation by double-edge swaps.

    The standard null model for motif/community significance: repeatedly
    pick two edges (a, b) and (c, d) and exchange endpoints to (a, d),
    (c, b), rejecting swaps that would create loops or duplicates. The
    degree sequence is exactly preserved. ``swaps`` defaults to 10 x the
    edge count.

    >>> from repro.algorithms.generators import ring_graph
    >>> original = ring_graph(12)
    >>> shuffled = rewire(original, seed=2)
    >>> sorted(shuffled.degree(n) for n in shuffled.nodes()) == [2] * 12
    True
    """
    if graph.is_directed:
        raise AlgorithmError("rewire operates on undirected graphs")
    result = graph.copy()
    edges = [list(edge) for edge in result.edges() if edge[0] != edge[1]]
    if len(edges) < 2:
        return result
    if swaps is None:
        swaps = 10 * len(edges)
    check_non_negative(swaps, "swaps")
    rng = np.random.default_rng(seed)
    for _ in range(swaps):
        i, j = rng.integers(0, len(edges), size=2)
        if i == j:
            continue
        a, b = edges[i]
        c, d = edges[j]
        if len({a, b, c, d}) < 4:
            continue
        if result.has_edge(a, d) or result.has_edge(c, b):
            continue
        result.del_edge(a, b)
        result.del_edge(c, d)
        result.add_edge(a, d)
        result.add_edge(c, b)
        edges[i] = [a, d]
        edges[j] = [c, b]
    return result


def planted_partition(
    num_communities: int,
    community_size: int,
    p_in: float,
    p_out: float,
    seed: int = 0,
) -> UndirectedGraph:
    """Planted-partition model: dense blocks, sparse cross-block edges.

    Node ``i`` belongs to community ``i // community_size``. Within a
    community each pair is connected with probability ``p_in``, across
    communities with ``p_out``. The standard testbed for community
    detection (``p_in >> p_out`` makes the planted blocks recoverable).
    """
    check_positive(num_communities, "num_communities")
    check_positive(community_size, "community_size")
    check_fraction(p_in, "p_in")
    check_fraction(p_out, "p_out")
    rng = np.random.default_rng(seed)
    total = num_communities * community_size
    graph = UndirectedGraph()
    for node in range(total):
        graph.add_node(node)
    community = np.arange(total) // community_size
    draws = rng.random((total, total))
    same = community[:, None] == community[None, :]
    mask = np.where(same, draws < p_in, draws < p_out)
    np.fill_diagonal(mask, False)
    mask = np.triu(mask)
    for u, v in zip(*np.nonzero(mask)):
        graph.add_edge(int(u), int(v))
    return graph


def rmat_edges(
    scale: int,
    num_edges: int,
    probabilities: tuple[float, float, float, float] = DEFAULT_RMAT,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Raw R-MAT edge arrays over ``2**scale`` node ids (may repeat).

    Recursive quadrant descent, fully vectorised: each of ``scale``
    levels draws one quadrant choice per edge.
    """
    check_positive(scale, "scale")
    check_non_negative(num_edges, "num_edges")
    a, b, c, d = probabilities
    total = a + b + c + d
    if not np.isclose(total, 1.0):
        raise AlgorithmError(f"R-MAT probabilities must sum to 1, got {total}")
    rng = np.random.default_rng(seed)
    sources = np.zeros(num_edges, dtype=np.int64)
    targets = np.zeros(num_edges, dtype=np.int64)
    thresholds = np.cumsum([a, b, c])
    for _ in range(scale):
        draws = rng.random(num_edges)
        quadrant = np.searchsorted(thresholds, draws)
        sources = (sources << 1) | (quadrant >> 1)
        targets = (targets << 1) | (quadrant & 1)
    return sources, targets


def rmat(
    scale: int,
    num_edges: int,
    probabilities: tuple[float, float, float, float] = DEFAULT_RMAT,
    seed: int = 0,
    directed: bool = True,
):
    """R-MAT graph (power-law, community-structured — the LJ/TW stand-in).

    Duplicate edges and self-loops from the generator are deduplicated by
    the sort-first builder, so the edge count is approximately
    ``num_edges``.
    """
    sources, targets = rmat_edges(scale, num_edges, probabilities, seed)
    return graph_from_edge_arrays(sources, targets, directed=directed)
