"""Approximate Neighbourhood Function (SNAP's ``GetAnf``).

ANF estimates, for each distance h, how many node pairs are within h
hops — without running a BFS per node. Each node keeps a small set of
Flajolet–Martin bitstrings; one synchronous round ORs every node's
strings with its neighbours', so after h rounds a node's strings sketch
its h-hop neighbourhood. Cardinalities come from the classic
``2^(mean lowest-zero-bit) / 0.77351`` estimator.

This is how SNAP computes effective diameters of billion-edge graphs;
here it complements :mod:`repro.algorithms.diameter`'s exact/sampled
estimators and is validated against them in the tests.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.common import as_csr
from repro.util.validation import check_fraction, check_positive

_PHI = 0.77351
_BITS = 64


def _fm_sketches(count: int, approximations: int, rng: np.random.Generator) -> np.ndarray:
    """Initial one-bit-per-node sketches, geometric bit positions."""
    # P(bit i) = 2^-(i+1), the Flajolet-Martin initialisation.
    uniform = rng.random((count, approximations))
    positions = np.minimum(
        np.floor(-np.log2(np.maximum(uniform, 1e-18))).astype(np.int64), _BITS - 2
    )
    return np.left_shift(np.uint64(1), positions.astype(np.uint64))


def _estimate(sketches: np.ndarray) -> np.ndarray:
    """Per-node cardinality estimates from the OR-ed sketches."""
    # Lowest zero bit per sketch (== lowest set bit of the inverse),
    # averaged over the approximations.
    inverted = ~sketches
    saturated = inverted == 0
    isolated = inverted & (~inverted + np.uint64(1))
    isolated = np.where(saturated, np.uint64(1), isolated)
    lowest_zero = np.log2(isolated.astype(np.float64))
    lowest_zero[saturated] = _BITS
    mean_bits = lowest_zero.mean(axis=1)
    return np.power(2.0, mean_bits) / _PHI


def neighbourhood_function(
    graph,
    max_distance: int = 32,
    approximations: int = 32,
    seed: int = 0,
) -> list[float]:
    """Estimated number of reachable pairs within h hops, h = 0..H.

    Index h holds the estimate of ``sum_v |{u : dist(v,u) <= h}|``.
    Iteration stops early once the estimate plateaus (the sketches stop
    changing), so H may be below ``max_distance``.

    >>> from repro.graphs.undirected import UndirectedGraph
    >>> g = UndirectedGraph()
    >>> for u, v in [(0, 1), (1, 2)]:
    ...     _ = g.add_edge(u, v)
    >>> anf = neighbourhood_function(g, seed=1)
    >>> anf[-1] >= anf[0]
    True
    """
    check_positive(max_distance, "max_distance")
    check_positive(approximations, "approximations")
    csr = as_csr(graph)
    count = csr.num_nodes
    if count == 0:
        return [0.0]
    rng = np.random.default_rng(seed)
    sketches = _fm_sketches(count, approximations, rng)
    edge_src = csr.edge_sources()
    edge_dst = csr.out_indices
    totals = [float(_estimate(sketches).sum())]
    for _ in range(max_distance):
        updated = sketches.copy()
        # OR every source's sketch into its targets (message round).
        np.bitwise_or.at(updated, edge_dst, sketches[edge_src])
        if np.array_equal(updated, sketches):
            break
        sketches = updated
        totals.append(float(_estimate(sketches).sum()))
    return totals


def anf_effective_diameter(
    graph,
    percentile: float = 0.9,
    approximations: int = 64,
    seed: int = 0,
) -> float:
    """Effective diameter estimated from the neighbourhood function.

    The smallest h (linearly interpolated) at which the neighbourhood
    function reaches ``percentile`` of its final value.
    """
    check_fraction(percentile, "percentile")
    totals = neighbourhood_function(graph, approximations=approximations, seed=seed)
    final = totals[-1]
    if final <= 0:
        return 0.0
    target = percentile * final
    for h, value in enumerate(totals):
        if value >= target:
            if h == 0:
                return 0.0
            prev = totals[h - 1]
            span = value - prev
            fraction = (target - prev) / span if span > 0 else 0.0
            return (h - 1) + fraction
    return float(len(totals) - 1)
