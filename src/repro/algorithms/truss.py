"""k-truss decomposition — the triangle-based relative of the k-core.

An edge belongs to the k-truss when it participates in at least k-2
triangles *within* the truss. Peeling proceeds like the core
decomposition but over edges and their triangle supports; the maximal k
for which an edge survives is its trussness. Denser and more cohesive
than the k-core, and built on the same sorted-adjacency intersections
as the triangle counter.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.triangles import _undirected_csr
from repro.graphs.directed import DirectedGraph
from repro.graphs.ops import subgraph
from repro.graphs.undirected import UndirectedGraph
from repro.util.validation import require


def edge_trussness(graph) -> dict[tuple[int, int], int]:
    """Trussness per undirected edge (as ``(min, max)`` original-id pairs).

    Edges in no triangle have trussness 2 (every edge is in the
    2-truss), matching the networkx convention where ``k_truss(G, k)``
    keeps edges with at least ``k - 2`` supports.

    >>> from repro.graphs.undirected import UndirectedGraph
    >>> g = UndirectedGraph()
    >>> for u, v in [(1, 2), (2, 3), (3, 1), (3, 4)]:
    ...     _ = g.add_edge(u, v)
    >>> trussness = edge_trussness(g)
    >>> trussness[(1, 2)], trussness[(3, 4)]
    (3, 2)
    """
    sym = _undirected_csr(graph)
    node_ids = sym.node_ids

    # Live adjacency as neighbour sets (edges are removed during peel).
    neighbors: list[set[int]] = [
        set(sym.out_neighbors(node).tolist()) for node in range(sym.num_nodes)
    ]
    support: dict[tuple[int, int], int] = {}
    for u in range(sym.num_nodes):
        for v in neighbors[u]:
            if v > u:
                support[(u, v)] = len(neighbors[u] & neighbors[v])

    trussness: dict[tuple[int, int], int] = {}
    k = 2
    remaining = set(support)
    while remaining:
        # Peel every edge whose support is below k - 2 at this level.
        queue = [edge for edge in remaining if support[edge] < k - 1]
        while queue:
            edge = queue.pop()
            if edge not in remaining:
                continue
            remaining.discard(edge)
            trussness[edge] = k
            u, v = edge
            common = neighbors[u] & neighbors[v]
            neighbors[u].discard(v)
            neighbors[v].discard(u)
            for w in common:
                for other in ((u, w) if u < w else (w, u), (v, w) if v < w else (w, v)):
                    if other in remaining:
                        support[other] -= 1
                        if support[other] < k - 1:
                            queue.append(other)
        if remaining:
            k += 1

    def original(edge: tuple[int, int]) -> tuple[int, int]:
        a = int(node_ids[edge[0]])
        b = int(node_ids[edge[1]])
        return (a, b) if a < b else (b, a)

    return {original(edge): level for edge, level in trussness.items()}


def k_truss(graph, k: int) -> "DirectedGraph | UndirectedGraph":
    """The maximal subgraph whose edges each have >= k-2 triangle supports.

    Matches networkx semantics: the result keeps edges with trussness
    >= k and drops nodes left isolated. ``k >= 2``.

    >>> from repro.algorithms.generators import complete_graph
    >>> k_truss(complete_graph(5), 5).num_nodes
    5
    """
    require(k >= 2, f"k must be at least 2, got {k}")
    trussness = edge_trussness(graph)
    keep_nodes = {
        node
        for (u, v), level in trussness.items()
        if level >= k
        for node in (u, v)
    }
    result = subgraph(graph, keep_nodes)
    # Remove surviving edges below the threshold (subgraph keeps all
    # induced edges; the truss is edge-defined, not node-defined).
    # Self-loops are never part of any truss.
    for u, v in list(result.edges()):
        key = (min(u, v), max(u, v))
        if u == v or trussness.get(key, 2) < k:
            result.del_edge(u, v)
    return result


def max_trussness(graph) -> int:
    """The largest k with a non-empty k-truss (2 for any graph with edges)."""
    trussness = edge_trussness(graph)
    return max(trussness.values(), default=0)
