"""Minimum spanning tree / forest (Kruskal with union-find)."""

from __future__ import annotations

from typing import Callable, Iterable

from repro.algorithms.sssp import _resolve_weight
from repro.graphs.undirected import UndirectedGraph


class UnionFind:
    """Disjoint sets with path compression and union by size.

    >>> uf = UnionFind()
    >>> uf.union(1, 2)
    True
    >>> uf.find(1) == uf.find(2)
    True
    """

    def __init__(self) -> None:
        self._parent: dict[int, int] = {}
        self._size: dict[int, int] = {}

    def find(self, item: int) -> int:
        """Representative of ``item``'s set (item auto-registered)."""
        parent = self._parent
        if item not in parent:
            parent[item] = item
            self._size[item] = 1
            return item
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; False if already joined."""
        root_a = self.find(a)
        root_b = self.find(b)
        if root_a == root_b:
            return False
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        return True

    def connected(self, a: int, b: int) -> bool:
        """Whether ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)


def minimum_spanning_forest(
    graph, weight: "str | Callable[[int, int], float] | None" = None
) -> tuple[UndirectedGraph, float]:
    """Kruskal's MSF over the undirected projection.

    Returns ``(forest, total_weight)``; the forest spans every node (one
    tree per connected component).

    >>> from repro.graphs.undirected import UndirectedGraph as UG
    >>> g = UG()
    >>> for u, v in [(1, 2), (2, 3), (1, 3)]:
    ...     _ = g.add_edge(u, v)
    >>> forest, total = minimum_spanning_forest(g)
    >>> forest.num_edges, total
    (2, 2.0)
    """
    weight_fn = _resolve_weight(graph, weight)
    if graph.is_directed:
        undirected = graph.to_undirected()
    else:
        undirected = graph
    weighted_edges = sorted(
        ((weight_fn(u, v), u, v) for u, v in undirected.edges() if u != v),
        key=lambda edge: edge[0],
    )
    forest = UndirectedGraph()
    for node in undirected.nodes():
        forest.add_node(node)
    union_find = UnionFind()
    total = 0.0
    for edge_weight, u, v in weighted_edges:
        if union_find.union(u, v):
            forest.add_edge(u, v)
            total += edge_weight
    return forest, total


def spanning_forest_from_edges(
    edges: Iterable[tuple[int, int, float]]
) -> tuple[UndirectedGraph, float]:
    """Kruskal over an explicit weighted edge list ``(u, v, w)``."""
    forest = UndirectedGraph()
    union_find = UnionFind()
    total = 0.0
    for edge_weight, u, v in sorted((w, u, v) for u, v, w in edges):
        forest.add_node(u)
        forest.add_node(v)
        if u != v and union_find.union(u, v):
            forest.add_edge(u, v)
            total += edge_weight
    return forest, total
