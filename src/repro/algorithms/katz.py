"""Katz centrality (the damped path-counting centrality).

``x = alpha * A^T x + beta`` iterated to a fixed point; converges for
``alpha`` below the reciprocal of the adjacency spectral radius. Unlike
eigenvector centrality it is well-defined on DAGs, which is why it joins
the suite alongside :func:`repro.algorithms.centrality.eigenvector_centrality`.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.common import as_csr, scores_to_dict
from repro.exceptions import ConvergenceError
from repro.util.validation import check_positive


def katz_centrality(
    graph,
    alpha: float = 0.1,
    beta: float = 1.0,
    max_iterations: int = 1000,
    tolerance: float = 1e-10,
    normalized: bool = True,
) -> dict[int, float]:
    """Katz centrality per node.

    Raises :class:`ConvergenceError` when ``alpha`` is at or above the
    reciprocal spectral radius (the series diverges).

    >>> from repro.graphs.directed import DirectedGraph
    >>> g = DirectedGraph()
    >>> _ = g.add_edge(1, 3); _ = g.add_edge(2, 3)
    >>> scores = katz_centrality(g)
    >>> scores[3] > scores[1]
    True
    """
    check_positive(alpha, "alpha")
    check_positive(max_iterations, "max_iterations")
    csr = as_csr(graph)
    count = csr.num_nodes
    if count == 0:
        return {}
    edge_src = csr.edge_sources()
    edge_dst = csr.out_indices
    values = np.zeros(count, dtype=np.float64)
    for iteration in range(max_iterations):
        spread = np.bincount(edge_dst, weights=values[edge_src], minlength=count)
        new_values = alpha * spread + beta
        delta = float(np.abs(new_values - values).sum())
        values = new_values
        if not np.isfinite(delta) or delta > 1e12:
            raise ConvergenceError("katz_centrality", iteration + 1, delta)
        if delta < tolerance * count:
            break
    else:
        raise ConvergenceError("katz_centrality", max_iterations, delta)
    if normalized:
        norm = np.linalg.norm(values)
        if norm > 0:
            values = values / norm
    return scores_to_dict(csr, values)
