"""Random walks and walk-based estimation.

Walk machinery used for sampling-based analytics (approximate
personalised PageRank) and for generating realistic access patterns in
the interactive-exploration examples.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.common import as_csr
from repro.exceptions import AlgorithmError
from repro.util.validation import check_fraction, check_positive


def random_walk(
    graph, start: int, length: int, seed: int = 0, restart_probability: float = 0.0
) -> list[int]:
    """A random walk of ``length`` steps from ``start`` (original ids).

    Dead ends (and restarts, with the given probability) teleport back to
    ``start``. The returned list includes the start node, so it has
    ``length + 1`` entries.

    >>> from repro.graphs.directed import DirectedGraph
    >>> g = DirectedGraph()
    >>> _ = g.add_edge(1, 2); _ = g.add_edge(2, 1)
    >>> walk = random_walk(g, 1, 4)
    >>> len(walk), walk[0]
    (5, 1)
    """
    check_positive(length, "length")
    check_fraction(restart_probability, "restart_probability")
    csr = as_csr(graph)
    current = csr.dense_of(start)
    start_dense = current
    rng = np.random.default_rng(seed)
    node_ids = csr.node_ids
    walk = [int(node_ids[current])]
    for _ in range(length):
        nbrs = csr.out_neighbors(current)
        if len(nbrs) == 0 or rng.random() < restart_probability:
            current = start_dense
        else:
            current = int(nbrs[rng.integers(0, len(nbrs))])
        walk.append(int(node_ids[current]))
    return walk


def approximate_ppr(
    graph,
    source: int,
    num_walks: int = 1000,
    walk_length: int = 20,
    restart_probability: float = 0.15,
    seed: int = 0,
) -> dict[int, float]:
    """Personalised PageRank estimated by walk visit frequencies.

    Monte-Carlo estimator: frequencies of node visits over restarting
    walks converge to the PPR vector of ``source``.
    """
    check_positive(num_walks, "num_walks")
    check_positive(walk_length, "walk_length")
    csr = as_csr(graph)
    start_dense = csr.dense_of(source)
    rng = np.random.default_rng(seed)
    visits = np.zeros(csr.num_nodes, dtype=np.int64)
    for _ in range(num_walks):
        current = start_dense
        visits[current] += 1
        for _ in range(walk_length):
            nbrs = csr.out_neighbors(current)
            if len(nbrs) == 0 or rng.random() < restart_probability:
                current = start_dense
            else:
                current = int(nbrs[rng.integers(0, len(nbrs))])
            visits[current] += 1
    total = float(visits.sum())
    node_ids = csr.node_ids
    return {
        int(node_ids[dense]): visits[dense] / total
        for dense in np.flatnonzero(visits)
    }


def sample_nodes(graph, count: int, seed: int = 0) -> list[int]:
    """Uniform sample of ``count`` distinct node ids."""
    check_positive(count, "count")
    csr = as_csr(graph)
    if count > csr.num_nodes:
        raise AlgorithmError(
            f"cannot sample {count} nodes from a {csr.num_nodes}-node graph"
        )
    rng = np.random.default_rng(seed)
    chosen = rng.choice(csr.num_nodes, size=count, replace=False)
    return [int(csr.node_ids[dense]) for dense in chosen]
