"""Diameter and effective diameter (SNAP-style BFS estimation).

Exact diameter runs a BFS per node — fine for small graphs; large graphs
use the sampled estimator SNAP popularised: BFS from random sources and
read the distance distribution's maximum / 90th percentile.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.bfs import UNREACHED, bfs_level_array
from repro.algorithms.common import as_csr
from repro.exceptions import AlgorithmError
from repro.util.validation import check_fraction, check_positive


def _sample_levels(graph, samples: int | None, seed: int, direction: str):
    csr = as_csr(graph)
    count = csr.num_nodes
    if count == 0:
        raise AlgorithmError("diameter is undefined on an empty graph")
    if samples is None:
        sources = np.arange(count)
    else:
        check_positive(samples, "samples")
        rng = np.random.default_rng(seed)
        sources = rng.choice(count, size=min(samples, count), replace=False)
    for source in sources.tolist():
        yield bfs_level_array(csr, source, direction=direction)


def diameter(
    graph, samples: int | None = None, seed: int = 0, direction: str = "both"
) -> int:
    """Longest shortest path observed (exact if ``samples`` is None).

    Distances default to the undirected interpretation (``direction=
    'both'``), matching how diameters of directed social graphs are
    conventionally reported.

    >>> from repro.graphs.undirected import UndirectedGraph
    >>> g = UndirectedGraph()
    >>> for u, v in [(0, 1), (1, 2), (2, 3)]:
    ...     _ = g.add_edge(u, v)
    >>> diameter(g)
    3
    """
    best = 0
    for levels in _sample_levels(graph, samples, seed, direction):
        reached = levels[levels != UNREACHED]
        if len(reached):
            best = max(best, int(reached.max()))
    return best


def double_sweep_lower_bound(graph, seed: int = 0, sweeps: int = 4) -> int:
    """Fast diameter lower bound by repeated double sweeps.

    Each sweep BFSes from a start node, then BFSes again from the
    farthest node found; the second eccentricity lower-bounds the
    diameter (and is exact on trees). Several random restarts tighten
    the bound at the cost of ``2 * sweeps`` BFS runs — the standard
    cheap estimator before paying for an exact diameter.

    >>> from repro.graphs.undirected import UndirectedGraph
    >>> g = UndirectedGraph()
    >>> for u, v in [(0, 1), (1, 2), (2, 3)]:
    ...     _ = g.add_edge(u, v)
    >>> double_sweep_lower_bound(g)
    3
    """
    check_positive(sweeps, "sweeps")
    csr = as_csr(graph)
    if csr.num_nodes == 0:
        raise AlgorithmError("diameter is undefined on an empty graph")
    rng = np.random.default_rng(seed)
    best = 0
    for _ in range(sweeps):
        start = int(rng.integers(0, csr.num_nodes))
        first = bfs_level_array(csr, start, direction="both")
        reached = np.flatnonzero(first != UNREACHED)
        far = int(reached[np.argmax(first[reached])])
        second = bfs_level_array(csr, far, direction="both")
        reachable = second[second != UNREACHED]
        if len(reachable):
            best = max(best, int(reachable.max()))
    return best


def effective_diameter(
    graph,
    percentile: float = 0.9,
    samples: int | None = None,
    seed: int = 0,
    direction: str = "both",
) -> float:
    """Distance within which ``percentile`` of reachable pairs fall.

    Linear interpolation between integer hop counts, as SNAP reports it.
    """
    check_fraction(percentile, "percentile")
    max_hops = 0
    histogram = np.zeros(1, dtype=np.int64)
    for levels in _sample_levels(graph, samples, seed, direction):
        reached = levels[(levels != UNREACHED) & (levels > 0)]
        if len(reached) == 0:
            continue
        top = int(reached.max())
        if top > max_hops:
            grown = np.zeros(top + 1, dtype=np.int64)
            grown[: len(histogram)] = histogram
            histogram = grown
            max_hops = top
        histogram[: top + 1] += np.bincount(reached, minlength=top + 1)[: top + 1]
    total = int(histogram.sum())
    if total == 0:
        return 0.0
    cumulative = np.cumsum(histogram) / total
    for hops in range(len(cumulative)):
        if cumulative[hops] >= percentile:
            if hops == 0:
                return 0.0
            prev = float(cumulative[hops - 1])
            span = float(cumulative[hops]) - prev
            fraction = (percentile - prev) / span if span > 0 else 0.0
            return (hops - 1) + fraction
    return float(len(cumulative) - 1)
