"""Spectral graph analysis: Laplacian, Fiedler vector, spectral bisection.

Uses scipy's sparse eigensolver over the undirected projection. The
Fiedler vector (second-smallest Laplacian eigenvector) yields the
classic spectral bisection; its eigenvalue is the algebraic
connectivity (0 iff the graph is disconnected).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.algorithms.triangles import _undirected_csr
from repro.exceptions import AlgorithmError


def laplacian_matrix(graph) -> sp.csr_matrix:
    """Sparse combinatorial Laplacian ``L = D - A`` of the undirected
    projection (dense-index node order, see ``CSRGraph.node_ids``)."""
    sym = _undirected_csr(graph)
    count = sym.num_nodes
    if count == 0:
        raise AlgorithmError("Laplacian is undefined on an empty graph")
    indptr = np.asarray(sym.out_indptr)
    indices = np.asarray(sym.out_indices)
    adjacency = sp.csr_matrix(
        (np.ones(len(indices)), indices, indptr), shape=(count, count)
    )
    degrees = sp.diags(np.asarray(sym.out_degrees(), dtype=np.float64))
    return (degrees - adjacency).tocsr()


def fiedler_vector(graph, seed: int = 0) -> tuple[float, dict[int, float]]:
    """``(algebraic_connectivity, {node: fiedler_value})``.

    Requires at least three nodes (eigensolver constraint); smaller
    graphs raise :class:`AlgorithmError`.

    >>> from repro.algorithms.generators import ring_graph
    >>> lam, vec = fiedler_vector(ring_graph(8))
    >>> lam > 0
    True
    """
    sym = _undirected_csr(graph)
    if sym.num_nodes < 3:
        raise AlgorithmError("Fiedler vector needs at least three nodes")
    laplacian = laplacian_matrix(graph)
    rng = np.random.default_rng(seed)
    v0 = rng.random(sym.num_nodes)
    values, vectors = spla.eigsh(
        laplacian.astype(np.float64), k=2, sigma=-1e-5, which="LM", v0=v0
    )
    order = np.argsort(values)
    lam = float(values[order[1]])
    vec = vectors[:, order[1]]
    return lam, dict(zip(sym.node_ids.tolist(), vec.tolist()))


def spectral_bisection(graph, seed: int = 0) -> tuple[set[int], set[int]]:
    """Two-way partition by the sign of the Fiedler vector.

    Zero entries join the non-negative side. On a graph with two loosely
    coupled clusters this recovers them.

    >>> from repro.algorithms.generators import planted_partition
    >>> g = planted_partition(2, 10, p_in=1.0, p_out=0.02, seed=3)
    >>> left, right = spectral_bisection(g)
    >>> {len(left), len(right)}
    {10}
    """
    _, vec = fiedler_vector(graph, seed=seed)
    left = {node for node, value in vec.items() if value < 0}
    right = {node for node, value in vec.items() if value >= 0}
    return left, right


def algebraic_connectivity(graph, seed: int = 0) -> float:
    """The second-smallest Laplacian eigenvalue (0 iff disconnected)."""
    lam, _ = fiedler_vector(graph, seed=seed)
    return max(lam, 0.0)
