"""Topological ordering and DAG checks (Kahn's algorithm)."""

from __future__ import annotations

import numpy as np

from repro.algorithms.common import as_csr
from repro.exceptions import AlgorithmError


def topological_sort(graph) -> list[int]:
    """Nodes in a topological order (original ids); raises on cycles.

    Ties (multiple in-degree-zero candidates) resolve lowest-id first,
    so the order is deterministic.

    >>> from repro.graphs.directed import DirectedGraph
    >>> g = DirectedGraph()
    >>> _ = g.add_edge(1, 2); _ = g.add_edge(1, 3); _ = g.add_edge(3, 2)
    >>> topological_sort(g)
    [1, 3, 2]
    """
    import heapq

    csr = as_csr(graph)
    in_degree = csr.in_degrees().copy()
    heap = [int(node) for node in np.flatnonzero(in_degree == 0)]
    heapq.heapify(heap)
    order: list[int] = []
    while heap:
        node = heapq.heappop(heap)
        order.append(int(csr.node_ids[node]))
        for nbr in csr.out_neighbors(node).tolist():
            in_degree[nbr] -= 1
            if in_degree[nbr] == 0:
                heapq.heappush(heap, nbr)
    if len(order) != csr.num_nodes:
        raise AlgorithmError("graph has a cycle; topological order undefined")
    return order


def is_dag(graph) -> bool:
    """Whether the directed graph has no cycles."""
    try:
        topological_sort(graph)
    except AlgorithmError:
        return False
    return True


def longest_path_length(graph) -> int:
    """Edges on the longest path in a DAG; raises on cycles."""
    order = topological_sort(graph)
    csr = as_csr(graph)
    longest: dict[int, int] = {node: 0 for node in order}
    for node in order:
        dense = csr.dense_of(node)
        for nbr_dense in csr.out_neighbors(dense).tolist():
            nbr = int(csr.node_ids[nbr_dense])
            candidate = longest[node] + 1
            if candidate > longest[nbr]:
                longest[nbr] = candidate
    return max(longest.values(), default=0)
