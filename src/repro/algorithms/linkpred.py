"""Link-prediction scores (SNAP's neighbourhood-similarity family).

Classic local similarity indices over the undirected projection:
common neighbours, Jaccard, Adamic–Adar, preferential attachment, and
resource allocation. Each scorer takes explicit node pairs (the usual
evaluation protocol) or generates candidate pairs at distance two.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator

import numpy as np

from repro.algorithms.triangles import _undirected_csr
from repro.exceptions import AlgorithmError
from repro.graphs.csr import CSRGraph


class _Projection:
    """Shared undirected-projection context for the scorers."""

    def __init__(self, graph) -> None:
        self.csr: CSRGraph = _undirected_csr(graph)
        self.degrees = self.csr.out_degrees()

    def dense_pair(self, u: int, v: int) -> tuple[int, int]:
        return self.csr.dense_of(u), self.csr.dense_of(v)

    def common(self, du: int, dv: int) -> np.ndarray:
        return np.intersect1d(
            self.csr.out_neighbors(du), self.csr.out_neighbors(dv), assume_unique=True
        )


def _score_pairs(graph, pairs, kernel) -> dict[tuple[int, int], float]:
    projection = _Projection(graph)
    pair_list = list(pairs)
    if not pair_list:
        return {}
    # One vectorised dense-id translation for all pairs instead of two
    # binary searches per pair.
    endpoints = np.asarray(pair_list, dtype=np.int64)
    dense_u = projection.csr.dense_of_array(endpoints[:, 0])
    dense_v = projection.csr.dense_of_array(endpoints[:, 1])
    scores: dict[tuple[int, int], float] = {}
    for (u, v), du, dv in zip(pair_list, dense_u.tolist(), dense_v.tolist()):
        scores[(u, v)] = kernel(projection, du, dv)
    return scores


def common_neighbors(graph, pairs: Iterable[tuple[int, int]]) -> dict[tuple[int, int], float]:
    """Number of shared neighbours per pair.

    >>> from repro.graphs.undirected import UndirectedGraph
    >>> g = UndirectedGraph()
    >>> for u, v in [(1, 2), (1, 3), (4, 2), (4, 3)]:
    ...     _ = g.add_edge(u, v)
    >>> common_neighbors(g, [(1, 4)])[(1, 4)]
    2.0
    """
    return _score_pairs(
        graph, pairs, lambda p, du, dv: float(len(p.common(du, dv)))
    )


def jaccard_coefficient(graph, pairs: Iterable[tuple[int, int]]) -> dict[tuple[int, int], float]:
    """|N(u) ∩ N(v)| / |N(u) ∪ N(v)| per pair (0 when both isolated)."""

    def kernel(p: _Projection, du: int, dv: int) -> float:
        shared = len(p.common(du, dv))
        union = int(p.degrees[du]) + int(p.degrees[dv]) - shared
        return shared / union if union else 0.0

    return _score_pairs(graph, pairs, kernel)


def adamic_adar(graph, pairs: Iterable[tuple[int, int]]) -> dict[tuple[int, int], float]:
    """Sum over shared neighbours of ``1 / log(degree)``.

    Shared neighbours of degree 1 cannot occur (they touch both
    endpoints); degree-1 guards exist anyway for self-loop corner cases.
    """

    def kernel(p: _Projection, du: int, dv: int) -> float:
        total = 0.0
        for shared in p.common(du, dv).tolist():
            degree = int(p.degrees[shared])
            if degree > 1:
                total += 1.0 / math.log(degree)
        return total

    return _score_pairs(graph, pairs, kernel)


def resource_allocation(graph, pairs: Iterable[tuple[int, int]]) -> dict[tuple[int, int], float]:
    """Sum over shared neighbours of ``1 / degree``."""

    def kernel(p: _Projection, du: int, dv: int) -> float:
        total = 0.0
        for shared in p.common(du, dv).tolist():
            degree = int(p.degrees[shared])
            if degree > 0:
                total += 1.0 / degree
        return total

    return _score_pairs(graph, pairs, kernel)


def preferential_attachment(graph, pairs: Iterable[tuple[int, int]]) -> dict[tuple[int, int], float]:
    """``degree(u) * degree(v)`` per pair."""
    return _score_pairs(
        graph, pairs, lambda p, du, dv: float(p.degrees[du]) * float(p.degrees[dv])
    )


def candidate_pairs(graph, max_pairs: int | None = None) -> Iterator[tuple[int, int]]:
    """Non-adjacent node pairs at distance exactly two (original ids).

    The standard link-prediction candidate set: pairs that share at
    least one neighbour but are not yet connected. Yields each unordered
    pair once, ``u < v`` in original-id order.
    """
    if max_pairs is not None and max_pairs <= 0:
        raise AlgorithmError("max_pairs must be positive when given")
    projection = _Projection(graph)
    csr = projection.csr
    emitted = 0
    seen: set[tuple[int, int]] = set()
    for du in range(csr.num_nodes):
        first_hop = csr.out_neighbors(du)
        for mid in first_hop.tolist():
            for dv in csr.out_neighbors(mid).tolist():
                if dv <= du:
                    continue
                key = (du, dv)
                if key in seen:
                    continue
                seen.add(key)
                # Exclude already-adjacent pairs.
                nbrs = csr.out_neighbors(du)
                position = int(np.searchsorted(nbrs, dv))
                if position < len(nbrs) and nbrs[position] == dv:
                    continue
                u = int(csr.node_ids[du])
                v = int(csr.node_ids[dv])
                yield (u, v) if u < v else (v, u)
                emitted += 1
                if max_pairs is not None and emitted >= max_pairs:
                    return


def top_predicted_links(
    graph, scorer=jaccard_coefficient, k: int = 10, max_candidates: int = 100_000
) -> list[tuple[tuple[int, int], float]]:
    """The ``k`` highest-scoring candidate links under ``scorer``."""
    pairs = list(candidate_pairs(graph, max_pairs=max_candidates))
    scores = scorer(graph, pairs)
    ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
    return ranked[:k]
