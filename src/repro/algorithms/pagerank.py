"""PageRank (paper §3, Table 3 — the headline parallel benchmark).

Two implementations, matching the paper's framing:

* :func:`pagerank` — the bulk engine: power iteration over the CSR
  snapshot with all per-edge work in numpy (``bincount`` scatter-add over
  the edge list). This is the analogue of Ringo's OpenMP loop, and what
  Table 3 / the PowerGraph comparison measure.
* :func:`pagerank_sequential` — a straightforward per-node Python loop,
  the "sequential implementation" counterpart (§3, Table 6 discussion).

Both use the standard damping formulation with dangling-mass
redistribution, so ranks sum to 1.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.common import as_csr, scores_to_dict
from repro.exceptions import AlgorithmError
from repro.parallel.executor import kernel_dispatcher
from repro.util.validation import check_fraction, check_positive


def _pagerank_spread_partition(arrays, lo, hi, share):
    """One power-iteration spread over the dense node span ``[lo, hi)``.

    Gather formulation: each destination sums ``share`` over its
    in-neighbours, so partitions write disjoint output spans (R006's
    safe-write discipline) and the result is independent of the
    partition count. Within one destination the in-adjacency is
    src-ascending — the same accumulation order as the full-vector
    ``bincount`` scatter in :func:`pagerank_array`, so both
    formulations agree bitwise.
    """
    in_indptr = arrays["in_indptr"]
    in_indices = arrays["in_indices"]
    width = hi - lo
    base, stop = int(in_indptr[lo]), int(in_indptr[hi])
    if base == stop:
        return np.zeros(width, dtype=np.float64)
    counts = np.diff(in_indptr[lo:hi + 1])
    local_dst = np.repeat(np.arange(width, dtype=np.int64), counts)
    contrib = share[in_indices[base:stop]]
    return np.bincount(local_dst, weights=contrib, minlength=width)


def _pagerank_python_partition(arrays, lo, hi, share):
    """Pure-Python spread over ``[lo, hi)`` — deliberately GIL-bound.

    The multicore benchmark's demonstration kernel: per-edge Python
    bytecode that thread workers serialize on the GIL but process
    workers run truly concurrently. Numerically it matches
    :func:`_pagerank_spread_partition` (same src-ascending per-node
    accumulation order).
    """
    row = arrays["in_indptr"][lo:hi + 1].tolist()
    base = row[0]
    neighbors = arrays["in_indices"][base:row[-1]].tolist()
    shares = share.tolist()
    out = [0.0] * (hi - lo)
    for node in range(hi - lo):
        total = 0.0
        for position in range(row[node] - base, row[node + 1] - base):
            total += shares[neighbors[position]]
        out[node] = total
    return np.asarray(out, dtype=np.float64)


def pagerank(
    graph,
    damping: float = 0.85,
    max_iterations: int = 100,
    tolerance: float = 1e-9,
    iterations: int | None = None,
    personalize: dict[int, float] | None = None,
) -> dict[int, float]:
    """PageRank scores per node (sums to 1).

    With ``iterations`` set, exactly that many power iterations run with
    no convergence check — the paper times "10 iterations" this way.
    Otherwise iteration stops when the L1 change drops below
    ``tolerance`` (or after ``max_iterations``).

    >>> from repro.graphs.directed import DirectedGraph
    >>> g = DirectedGraph()
    >>> _ = g.add_edge(1, 2); _ = g.add_edge(3, 2)
    >>> ranks = pagerank(g)
    >>> ranks[2] > ranks[1]
    True
    """
    check_fraction(damping, "damping")
    if iterations is None and personalize is None:
        from repro.incremental.algorithms import incremental_pagerank

        warm = incremental_pagerank(
            graph,
            damping=damping,
            max_iterations=max_iterations,
            tolerance=tolerance,
        )
        if warm is not None:
            return warm
    csr = as_csr(graph)
    if csr.num_nodes == 0:
        return {}
    values = pagerank_array(
        csr,
        damping=damping,
        max_iterations=max_iterations,
        tolerance=tolerance,
        iterations=iterations,
        personalize_dense=_dense_personalization(csr, personalize),
    )
    return scores_to_dict(csr, values)


def _dense_personalization(csr, personalize: dict[int, float] | None):
    if personalize is None:
        return None
    weights = np.zeros(csr.num_nodes, dtype=np.float64)
    dense = csr.dense_of_array(np.fromiter(personalize.keys(), dtype=np.int64))
    weights[dense] = np.fromiter(personalize.values(), dtype=np.float64)
    total = weights.sum()
    if total <= 0:
        raise AlgorithmError("personalization weights must sum to a positive value")
    return weights / total


def pagerank_array(
    csr,
    damping: float = 0.85,
    max_iterations: int = 100,
    tolerance: float = 1e-9,
    iterations: int | None = None,
    personalize_dense: np.ndarray | None = None,
    pool=None,
    backend: str | None = None,
    start: np.ndarray | None = None,
) -> np.ndarray:
    """Dense-index PageRank over a CSR snapshot (the vectorised kernel).

    The spread step has two formulations that agree bitwise: a
    full-vector ``bincount`` scatter (fastest in a single process, the
    default) and the partitioned gather kernel
    :func:`_pagerank_spread_partition`, used when the kernel dispatcher
    routes this snapshot to the process backend (``backend=`` overrides
    the configured default).

    ``start`` warm-starts the iteration from a previous rank vector
    (the incremental path); the stopping criterion is unchanged, so the
    converged answer satisfies the same fixed-point bound as a cold run.
    """
    count = csr.num_nodes
    if iterations is not None:
        check_positive(iterations, "iterations")
    check_positive(max_iterations, "max_iterations")
    # Hoisted once: the degree vector feeds both the dangling mask and
    # (via the cached edge_sources) the scatter index.
    out_deg = csr.out_degrees().astype(np.float64)
    dangling = out_deg == 0
    dispatcher = kernel_dispatcher()
    dispatch = (
        count > 0
        and dispatcher.decide(csr.num_edges, backend) == "processes"
    )
    if not dispatch:
        # Edge list grouped by source: contribution scatter via bincount.
        edge_src = csr.edge_sources()
        edge_dst = csr.out_indices
    base = (
        personalize_dense
        if personalize_dense is not None
        else np.full(count, 1.0 / count, dtype=np.float64)
    )
    ranks = (
        base.copy()
        if start is None
        else np.ascontiguousarray(start, dtype=np.float64)
    )
    safe_deg = np.where(dangling, 1.0, out_deg)
    rounds = iterations if iterations is not None else max_iterations
    for _ in range(rounds):
        share = ranks / safe_deg
        if dispatch:
            spread = np.concatenate(
                dispatcher.run_kernel(
                    csr,
                    _pagerank_spread_partition,
                    arrays=("in_indptr", "in_indices"),
                    total=count,
                    extra=(share,),
                    pool=pool,
                    backend=backend,
                )
            )
        else:
            spread = np.bincount(edge_dst, weights=share[edge_src], minlength=count)
        dangling_mass = float(ranks[dangling].sum())
        new_ranks = (1.0 - damping) * base + damping * (spread + dangling_mass * base)
        delta = float(np.abs(new_ranks - ranks).sum())
        ranks = new_ranks
        if iterations is None and delta < tolerance:
            break
    return ranks


def pagerank_python_array(
    csr,
    damping: float = 0.85,
    iterations: int = 10,
    pool=None,
    backend: str | None = None,
) -> np.ndarray:
    """Dense-index PageRank with the pure-Python per-edge spread kernel.

    The backend-comparison workload: identical numerics to
    :func:`pagerank_array` with ``iterations`` fixed, but every edge is
    visited by Python bytecode, so the thread backend serializes on the
    GIL while the process backend scales with cores. Used by
    ``scripts/bench_multicore.py`` and the digest-equality tests.
    """
    check_fraction(damping, "damping")
    check_positive(iterations, "iterations")
    count = csr.num_nodes
    if count == 0:
        return np.zeros(0, dtype=np.float64)
    dispatcher = kernel_dispatcher()
    out_deg = csr.out_degrees().astype(np.float64)
    dangling = out_deg == 0
    safe_deg = np.where(dangling, 1.0, out_deg)
    base = np.full(count, 1.0 / count, dtype=np.float64)
    ranks = base.copy()
    for _ in range(iterations):
        share = ranks / safe_deg
        spread = np.concatenate(
            dispatcher.run_kernel(
                csr,
                _pagerank_python_partition,
                arrays=("in_indptr", "in_indices"),
                total=count,
                extra=(share,),
                pool=pool,
                backend=backend,
            )
        )
        dangling_mass = float(ranks[dangling].sum())
        ranks = (1.0 - damping) * base + damping * (spread + dangling_mass * base)
    return ranks


def pagerank_weighted(
    network,
    weight_attr: str,
    damping: float = 0.85,
    max_iterations: int = 100,
    tolerance: float = 1e-9,
    default_weight: float = 1.0,
) -> dict[int, float]:
    """PageRank with edge weights from a Network attribute.

    Each node distributes its rank proportionally to outgoing edge
    weights (non-positive totals are treated as dangling). Ranks sum
    to 1, like :func:`pagerank`.

    >>> from repro.graphs.network import Network
    >>> net = Network()
    >>> _ = net.add_edge(1, 2); _ = net.add_edge(1, 3)
    >>> net.set_edge_attr(1, 2, "w", 9.0)
    >>> net.set_edge_attr(1, 3, "w", 1.0)
    >>> ranks = pagerank_weighted(net, "w")
    >>> ranks[2] > ranks[3]
    True
    """
    from repro.graphs.network import Network

    check_fraction(damping, "damping")
    check_positive(max_iterations, "max_iterations")
    if not isinstance(network, Network):
        raise AlgorithmError(
            f"weighted PageRank needs a Network, got {type(network).__name__}"
        )
    csr = as_csr(network)
    count = csr.num_nodes
    if count == 0:
        return {}
    edge_src = csr.edge_sources()
    edge_dst = csr.out_indices
    node_ids = csr.node_ids
    weights = np.fromiter(
        (
            float(
                network.edge_attr(
                    int(node_ids[s]), int(node_ids[d]), weight_attr,
                    default=default_weight,
                )
            )
            for s, d in zip(edge_src.tolist(), edge_dst.tolist())
        ),
        dtype=np.float64,
        count=len(edge_src),
    )
    if len(weights) and weights.min() < 0:
        raise AlgorithmError("edge weights must be non-negative")
    out_totals = np.bincount(edge_src, weights=weights, minlength=count)
    dangling = out_totals <= 0
    safe_totals = np.where(dangling, 1.0, out_totals)
    base = np.full(count, 1.0 / count, dtype=np.float64)
    ranks = base.copy()
    for _ in range(max_iterations):
        share = ranks / safe_totals
        spread = np.bincount(
            edge_dst, weights=share[edge_src] * weights, minlength=count
        )
        dangling_mass = float(ranks[dangling].sum())
        new_ranks = (1.0 - damping) * base + damping * (spread + dangling_mass * base)
        delta = float(np.abs(new_ranks - ranks).sum())
        ranks = new_ranks
        if delta < tolerance:
            break
    return scores_to_dict(csr, ranks)


def pagerank_sequential(
    graph,
    damping: float = 0.85,
    iterations: int = 10,
) -> dict[int, float]:
    """Pure-Python per-node PageRank (the sequential reference).

    Same numerics as :func:`pagerank` with a fixed iteration count;
    kept loop-structured so the A3 ablation can compare the bulk kernel
    against honest per-node Python execution.
    """
    check_fraction(damping, "damping")
    check_positive(iterations, "iterations")
    csr = as_csr(graph)
    count = csr.num_nodes
    if count == 0:
        return {}
    ranks = [1.0 / count] * count
    out_degrees = csr.out_degrees().tolist()
    for _ in range(iterations):
        spread = [0.0] * count
        dangling_mass = 0.0
        for node in range(count):
            degree = out_degrees[node]
            if degree == 0:
                dangling_mass += ranks[node]
                continue
            share = ranks[node] / degree
            for nbr in csr.out_neighbors(node).tolist():
                spread[nbr] += share
        uniform = (1.0 - damping) / count
        dangling_share = damping * dangling_mass / count
        ranks = [uniform + damping * spread[node] + dangling_share for node in range(count)]
    return scores_to_dict(csr, np.asarray(ranks))
