"""The graph algorithm suite (paper §2.2: SNAP's "more than two hundred
out-of-the-box graph constructs and algorithms").

Every public function here is registered in
:mod:`repro.core.registry`, which is how the engine exposes and counts
its analytics surface.
"""

from repro.algorithms.bfs import (
    bfs_edges,
    bfs_levels,
    dfs_preorder,
    reachable_set,
    shortest_path,
    shortest_path_length,
)
from repro.algorithms.centrality import (
    betweenness_centrality,
    closeness_centrality,
    degree_centrality,
    eigenvector_centrality,
)
from repro.algorithms.community import (
    community_sizes,
    label_propagation,
    modularity,
)
from repro.algorithms.components import (
    component_sizes,
    condensation,
    count_components,
    is_weakly_connected,
    largest_component_nodes,
    strongly_connected_components,
    weakly_connected_components,
)
from repro.algorithms.cores import core_numbers, degeneracy, k_core
from repro.algorithms.diameter import (
    diameter,
    double_sweep_lower_bound,
    effective_diameter,
)
from repro.algorithms.generators import (
    balanced_tree,
    barabasi_albert,
    complete_graph,
    erdos_renyi_gnm,
    erdos_renyi_gnp,
    configuration_model,
    grid_graph,
    planted_partition,
    rewire,
    ring_graph,
    rmat,
    rmat_edges,
    star_graph,
    watts_strogatz,
)
from repro.algorithms.anf import anf_effective_diameter, neighbourhood_function
from repro.algorithms.coloring import (
    bipartite_sides,
    chromatic_upper_bound,
    greedy_coloring,
    is_bipartite,
)
from repro.algorithms.connectivity import (
    articulation_points,
    biconnected_components,
    bridges,
    is_biconnected,
)
from repro.algorithms.spectral import (
    algebraic_connectivity,
    fiedler_vector,
    laplacian_matrix,
    spectral_bisection,
)
from repro.algorithms.cycles import find_cycle, girth, has_cycle
from repro.algorithms.flow import max_flow, min_cut_partition, min_cut_value
from repro.algorithms.hits import hits
from repro.algorithms.katz import katz_centrality
from repro.algorithms.matching import (
    greedy_maximal_matching,
    hopcroft_karp,
    matching_size,
)
from repro.algorithms.linkpred import (
    adamic_adar,
    candidate_pairs,
    common_neighbors,
    jaccard_coefficient,
    preferential_attachment,
    resource_allocation,
    top_predicted_links,
)
from repro.algorithms.motifs import (
    TRIAD_NAMES,
    closed_triads,
    transitive_triads,
    triad_census,
)
from repro.algorithms.mst import (
    UnionFind,
    minimum_spanning_forest,
    spanning_forest_from_edges,
)
from repro.algorithms.ordering import is_dag, longest_path_length, topological_sort
from repro.algorithms.pagerank import pagerank, pagerank_sequential, pagerank_weighted
from repro.algorithms.randomwalk import approximate_ppr, random_walk, sample_nodes
from repro.algorithms.sssp import bellman_ford, dijkstra, dijkstra_path
from repro.algorithms.statistics import (
    GraphSummary,
    degree_assortativity,
    degree_distribution,
    reciprocity,
    summarize,
)
from repro.algorithms.truss import edge_trussness, k_truss, max_trussness
from repro.algorithms.triangles import (
    average_clustering,
    clustering_coefficients,
    global_clustering,
    total_triangles,
    triangle_counts,
)

__all__ = [
    "GraphSummary",
    "TRIAD_NAMES",
    "UnionFind",
    "adamic_adar",
    "anf_effective_diameter",
    "approximate_ppr",
    "algebraic_connectivity",
    "articulation_points",
    "average_clustering",
    "biconnected_components",
    "bipartite_sides",
    "bridges",
    "candidate_pairs",
    "chromatic_upper_bound",
    "closed_triads",
    "common_neighbors",
    "greedy_coloring",
    "greedy_maximal_matching",
    "hopcroft_karp",
    "is_biconnected",
    "is_bipartite",
    "jaccard_coefficient",
    "katz_centrality",
    "preferential_attachment",
    "resource_allocation",
    "top_predicted_links",
    "transitive_triads",
    "triad_census",
    "balanced_tree",
    "barabasi_albert",
    "bellman_ford",
    "betweenness_centrality",
    "bfs_edges",
    "bfs_levels",
    "dfs_preorder",
    "closeness_centrality",
    "clustering_coefficients",
    "community_sizes",
    "complete_graph",
    "component_sizes",
    "condensation",
    "configuration_model",
    "core_numbers",
    "count_components",
    "degeneracy",
    "degree_assortativity",
    "degree_centrality",
    "degree_distribution",
    "diameter",
    "dijkstra",
    "double_sweep_lower_bound",
    "dijkstra_path",
    "effective_diameter",
    "edge_trussness",
    "eigenvector_centrality",
    "erdos_renyi_gnm",
    "erdos_renyi_gnp",
    "fiedler_vector",
    "find_cycle",
    "girth",
    "has_cycle",
    "global_clustering",
    "grid_graph",
    "hits",
    "is_dag",
    "is_weakly_connected",
    "k_core",
    "k_truss",
    "label_propagation",
    "laplacian_matrix",
    "largest_component_nodes",
    "longest_path_length",
    "matching_size",
    "max_flow",
    "max_trussness",
    "min_cut_partition",
    "min_cut_value",
    "minimum_spanning_forest",
    "modularity",
    "neighbourhood_function",
    "pagerank",
    "pagerank_sequential",
    "pagerank_weighted",
    "planted_partition",
    "random_walk",
    "reachable_set",
    "reciprocity",
    "rewire",
    "ring_graph",
    "rmat",
    "rmat_edges",
    "sample_nodes",
    "shortest_path",
    "shortest_path_length",
    "spectral_bisection",
    "spanning_forest_from_edges",
    "star_graph",
    "strongly_connected_components",
    "summarize",
    "topological_sort",
    "total_triangles",
    "triangle_counts",
    "watts_strogatz",
]

# Observability seam (repro.obs): rebind every public function to a
# traced wrapper. One call instruments the whole suite — classes and
# constants in __all__ are skipped, and intra-module calls keep the raw
# functions, so exactly the user-facing entry points produce spans.
from repro.algorithms.common import instrument_namespace as _instrument_namespace

_instrument_namespace(globals(), __all__)
del _instrument_namespace
