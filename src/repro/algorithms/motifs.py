"""Triad census — the 16 directed three-node motif classes.

Batagelj–Mrvar subquadratic census: connected triples are enumerated
through neighbourhoods; the vast majority of triples (empty or
single-dyad) are counted analytically. Class names follow the standard
MAN (mutual/asymmetric/null) notation: 003 … 300.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.common import as_csr

TRIAD_NAMES = (
    "003", "012", "102", "021D", "021U", "021C", "111D", "111U",
    "030T", "030C", "201", "120D", "120U", "120C", "210", "300",
)

# Maps the 6-bit link code of a triple to its triad class (1-based),
# from Batagelj & Mrvar, "A subquadratic triad census algorithm".
_TRICODES = (
    1, 2, 2, 3, 2, 4, 6, 8, 2, 6, 5, 7, 3, 8, 7, 11,
    2, 6, 4, 8, 5, 9, 9, 13, 6, 10, 9, 14, 7, 14, 12, 15,
    2, 5, 6, 7, 6, 9, 10, 14, 4, 9, 9, 12, 8, 13, 14, 15,
    3, 7, 8, 11, 7, 12, 14, 15, 8, 14, 13, 15, 11, 15, 15, 16,
)


def _tricode(out_sets, u: int, v: int, w: int) -> int:
    code = 0
    if v in out_sets[u]:
        code += 1
    if u in out_sets[v]:
        code += 2
    if w in out_sets[u]:
        code += 4
    if u in out_sets[w]:
        code += 8
    if w in out_sets[v]:
        code += 16
    if v in out_sets[w]:
        code += 32
    return code


def triad_census(graph) -> dict[str, int]:
    """Count of each of the 16 triad classes over all node triples.

    Self-loops are ignored (a triple is three *distinct* nodes).

    >>> from repro.graphs.directed import DirectedGraph
    >>> g = DirectedGraph()
    >>> _ = g.add_edge(1, 2); _ = g.add_edge(2, 3); _ = g.add_edge(1, 3)
    >>> triad_census(g)["030T"]
    1
    """
    csr = as_csr(graph)
    count = csr.num_nodes
    census = [0] * 16
    if count < 3:
        return dict(zip(TRIAD_NAMES, census))

    out_sets: list[set[int]] = [set() for _ in range(count)]
    all_nbrs: list[set[int]] = [set() for _ in range(count)]
    for node in range(count):
        outs = set(csr.out_neighbors(node).tolist())
        ins = set(csr.in_neighbors(node).tolist())
        outs.discard(node)
        ins.discard(node)
        out_sets[node] = outs
        all_nbrs[node] = outs | ins

    for v in range(count):
        for u in all_nbrs[v]:
            if u <= v:
                continue
            third = (all_nbrs[u] | all_nbrs[v]) - {u, v}
            # Triples where (u, v) is the only dyad: class depends only
            # on whether the dyad is mutual or asymmetric.
            if u in out_sets[v] and v in out_sets[u]:
                lone_class = 2  # "102"
            else:
                lone_class = 1  # "012"
            census[lone_class] += count - len(third) - 2
            for w in third:
                # Count each connected triple once: at its (v, u) pair
                # with the smallest v, tie-broken as in Batagelj-Mrvar.
                if u < w or (v < w < u and v not in all_nbrs[w]):
                    census[_TRICODES[_tricode(out_sets, u, v, w)] - 1] += 1

    total_triples = count * (count - 1) * (count - 2) // 6
    census[0] = total_triples - sum(census[1:])
    return dict(zip(TRIAD_NAMES, census))


def closed_triads(graph) -> int:
    """Triples whose three nodes are mutually connected in some direction.

    The sum of the census classes where all three dyads are present
    (030T, 030C, 120D, 120U, 120C, 210, 300).
    """
    census = triad_census(graph)
    return sum(census[name] for name in ("030T", "030C", "120D", "120U", "120C", "210", "300"))


def transitive_triads(graph) -> int:
    """Count of transitive (030T) triads."""
    return triad_census(graph)["030T"]
