"""Articulation points and bridges (undirected connectivity structure).

Iterative Hopcroft–Tarjan lowlink computation over the undirected
projection — recursion-free, like the SCC implementation, so deep
graphs don't hit Python's stack limit.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.triangles import _undirected_csr


def _lowlink_dfs(csr):
    """Shared DFS skeleton: discovery times, lowlinks, parents, children.

    Returns ``(disc, low, parent, root_children, tree_edges)`` where
    ``tree_edges`` maps child → parent for each DFS tree edge.
    """
    count = csr.num_nodes
    indptr = csr.out_indptr
    indices = csr.out_indices
    disc = np.full(count, -1, dtype=np.int64)
    low = np.zeros(count, dtype=np.int64)
    parent = np.full(count, -1, dtype=np.int64)
    root_children = np.zeros(count, dtype=np.int64)
    articulation = np.zeros(count, dtype=bool)
    bridges: list[tuple[int, int]] = []
    clock = 0
    for root in range(count):
        if disc[root] != -1:
            continue
        stack = [(root, int(indptr[root]))]
        disc[root] = low[root] = clock
        clock += 1
        while stack:
            node, cursor = stack[-1]
            if cursor < indptr[node + 1]:
                stack[-1] = (node, cursor + 1)
                child = int(indices[cursor])
                if child == node:
                    continue  # self-loop
                if disc[child] == -1:
                    parent[child] = node
                    if node == root:
                        root_children[root] += 1
                    disc[child] = low[child] = clock
                    clock += 1
                    stack.append((child, int(indptr[child])))
                elif child != parent[node]:
                    if disc[child] < low[node]:
                        low[node] = disc[child]
            else:
                stack.pop()
                if stack:
                    up = stack[-1][0]
                    if low[node] < low[up]:
                        low[up] = low[node]
                    if up != root and low[node] >= disc[up]:
                        articulation[up] = True
                    if low[node] > disc[up]:
                        bridges.append((up, node))
        if root_children[root] > 1:
            articulation[root] = True
    return articulation, bridges


def articulation_points(graph) -> set[int]:
    """Nodes whose removal disconnects their component (original ids).

    >>> from repro.graphs.undirected import UndirectedGraph
    >>> g = UndirectedGraph()
    >>> for u, v in [(1, 2), (2, 3)]:
    ...     _ = g.add_edge(u, v)
    >>> articulation_points(g)
    {2}
    """
    csr = _undirected_csr(graph)
    flags, _ = _lowlink_dfs(csr)
    return {int(csr.node_ids[dense]) for dense in np.flatnonzero(flags)}


def bridges(graph) -> set[tuple[int, int]]:
    """Edges whose removal disconnects their component.

    Returned as ``(min, max)`` original-id pairs. Parallel-path edges
    (inside any cycle) are never bridges.
    """
    csr = _undirected_csr(graph)
    _, tree_bridges = _lowlink_dfs(csr)
    result = set()
    for up, node in tree_bridges:
        u = int(csr.node_ids[up])
        v = int(csr.node_ids[node])
        result.add((min(u, v), max(u, v)))
    return result


def biconnected_components(graph) -> list[set[tuple[int, int]]]:
    """Edge partition into biconnected components (undirected projection).

    Each component is a set of ``(min, max)`` edges; bridges form
    singleton components. Iterative Hopcroft–Tarjan with an edge stack.

    >>> from repro.graphs.undirected import UndirectedGraph
    >>> g = UndirectedGraph()
    >>> for u, v in [(1, 2), (2, 3), (3, 1), (3, 4)]:
    ...     _ = g.add_edge(u, v)
    >>> sorted(len(c) for c in biconnected_components(g))
    [1, 3]
    """
    csr = _undirected_csr(graph)
    count = csr.num_nodes
    indptr = csr.out_indptr
    indices = csr.out_indices
    node_ids = csr.node_ids
    disc = np.full(count, -1, dtype=np.int64)
    low = np.zeros(count, dtype=np.int64)
    parent = np.full(count, -1, dtype=np.int64)
    components: list[set[tuple[int, int]]] = []
    edge_stack: list[tuple[int, int]] = []
    clock = 0

    def canonical(u: int, v: int) -> tuple[int, int]:
        a = int(node_ids[u])
        b = int(node_ids[v])
        return (a, b) if a < b else (b, a)

    for root in range(count):
        if disc[root] != -1:
            continue
        stack = [(root, int(indptr[root]))]
        disc[root] = low[root] = clock
        clock += 1
        while stack:
            node, cursor = stack[-1]
            if cursor < indptr[node + 1]:
                stack[-1] = (node, cursor + 1)
                child = int(indices[cursor])
                if child == node:
                    continue
                if disc[child] == -1:
                    parent[child] = node
                    edge_stack.append((node, child))
                    disc[child] = low[child] = clock
                    clock += 1
                    stack.append((child, int(indptr[child])))
                elif child != parent[node] and disc[child] < disc[node]:
                    # Back edge to an ancestor, recorded once.
                    edge_stack.append((node, child))
                    if disc[child] < low[node]:
                        low[node] = disc[child]
            else:
                stack.pop()
                if stack:
                    up = stack[-1][0]
                    if low[node] < low[up]:
                        low[up] = low[node]
                    if low[node] >= disc[up]:
                        # up is a cut vertex (or the root): pop one
                        # biconnected component off the edge stack.
                        component: set[tuple[int, int]] = set()
                        while edge_stack:
                            edge = edge_stack.pop()
                            component.add(canonical(*edge))
                            if edge == (up, node):
                                break
                        if component:
                            components.append(component)
    return components


def is_biconnected(graph) -> bool:
    """Whether the graph is connected with no articulation points.

    Follows the usual convention: graphs with fewer than three nodes are
    biconnected iff they are connected (a single edge counts).
    """
    from repro.algorithms.components import is_weakly_connected

    if not is_weakly_connected(graph):
        return False
    csr = _undirected_csr(graph)
    if csr.num_nodes < 3:
        return True
    flags, _ = _lowlink_dfs(csr)
    return not bool(flags.any())
