"""Maximum flow / minimum cut (Dinic's algorithm, fully iterative).

Unit capacities by default (so the value is edge connectivity for unit
graphs), or capacities from a callable / Network edge attribute — the
same weight plumbing as SSSP. The augmenting DFS is an explicit-stack
walk, so long paths cannot hit Python's recursion limit.
"""

from __future__ import annotations

from collections import deque

from repro.algorithms.common import as_csr
from repro.algorithms.sssp import _resolve_weight
from repro.exceptions import AlgorithmError

_EPS = 1e-12


class _ResidualGraph:
    """Adjacency-list residual network with paired forward/back arcs.

    Arc ``2k`` is a forward arc and ``2k ^ 1`` its reverse, so pushing
    flow is two array updates.
    """

    def __init__(self) -> None:
        self.adjacency: dict[int, list[int]] = {}
        self.targets: list[int] = []
        self.capacities: list[float] = []

    def add_node(self, node: int) -> None:
        self.adjacency.setdefault(node, [])

    def add_edge(self, src: int, dst: int, capacity: float) -> None:
        self.add_node(src)
        self.add_node(dst)
        self.adjacency[src].append(len(self.targets))
        self.targets.append(dst)
        self.capacities.append(capacity)
        self.adjacency[dst].append(len(self.targets))
        self.targets.append(src)
        self.capacities.append(0.0)

    def arcs_from(self, node: int) -> list[int]:
        return self.adjacency.get(node, [])

    def reachable_from(self, source: int) -> set[int]:
        """Nodes reachable through positive-capacity residual arcs."""
        seen = {source}
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for arc in self.arcs_from(node):
                target = self.targets[arc]
                if self.capacities[arc] > _EPS and target not in seen:
                    seen.add(target)
                    queue.append(target)
        return seen


def _build_residual(graph, capacity) -> _ResidualGraph:
    weight_fn = _resolve_weight(graph, capacity) if capacity is not None else None
    csr = as_csr(graph)
    node_ids = csr.node_ids
    residual = _ResidualGraph()
    for dense in range(csr.num_nodes):
        src = int(node_ids[dense])
        residual.add_node(src)
        for nbr in csr.out_neighbors(dense).tolist():
            dst = int(node_ids[nbr])
            cap = 1.0 if weight_fn is None else float(weight_fn(src, dst))
            if cap < 0:
                raise AlgorithmError("capacities must be non-negative")
            residual.add_edge(src, dst, cap)
    return residual


def _level_map(residual: _ResidualGraph, source: int) -> dict[int, int]:
    levels = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for arc in residual.arcs_from(node):
            target = residual.targets[arc]
            if residual.capacities[arc] > _EPS and target not in levels:
                levels[target] = levels[node] + 1
                queue.append(target)
    return levels


def _blocking_flow(
    residual: _ResidualGraph, levels: dict[int, int], source: int, sink: int
) -> float:
    """Push a blocking flow in the level graph; returns the amount pushed."""
    cursors = {node: 0 for node in residual.adjacency}
    total = 0.0
    path_nodes = [source]
    path_arcs: list[int] = []
    while path_nodes:
        node = path_nodes[-1]
        if node == sink:
            bottleneck = min(residual.capacities[arc] for arc in path_arcs)
            for arc in path_arcs:
                residual.capacities[arc] -= bottleneck
                residual.capacities[arc ^ 1] += bottleneck
            total += bottleneck
            # Retreat to just after the first saturated arc.
            for index, arc in enumerate(path_arcs):
                if residual.capacities[arc] <= _EPS:
                    del path_nodes[index + 1:]
                    del path_arcs[index:]
                    break
            continue
        arcs = residual.arcs_from(node)
        advanced = False
        while cursors[node] < len(arcs):
            arc = arcs[cursors[node]]
            target = residual.targets[arc]
            if (
                residual.capacities[arc] > _EPS
                and levels.get(target, -1) == levels[node] + 1
            ):
                path_nodes.append(target)
                path_arcs.append(arc)
                advanced = True
                break
            cursors[node] += 1
        if not advanced:
            # Dead end: remove the node from the level graph and retreat.
            levels.pop(node, None)
            path_nodes.pop()
            if path_arcs:
                path_arcs.pop()
                cursors[path_nodes[-1]] += 1
    return total


def max_flow(graph, source: int, sink: int, capacity=None) -> float:
    """Maximum flow value from ``source`` to ``sink`` (Dinic).

    ``capacity`` follows the SSSP weight convention: ``None`` (unit
    capacities), a callable ``(src, dst) -> float``, or a Network edge
    attribute name.

    >>> from repro.graphs.directed import DirectedGraph
    >>> g = DirectedGraph()
    >>> for u, v in [(0, 1), (0, 2), (1, 3), (2, 3)]:
    ...     _ = g.add_edge(u, v)
    >>> max_flow(g, 0, 3)
    2.0
    """
    if source == sink:
        raise AlgorithmError("source and sink must differ")
    csr = as_csr(graph)
    csr.dense_of(source)
    csr.dense_of(sink)
    residual = _build_residual(graph, capacity)
    total = 0.0
    while True:
        levels = _level_map(residual, source)
        if sink not in levels:
            return total
        total += _blocking_flow(residual, levels, source, sink)


def min_cut_value(graph, source: int, sink: int, capacity=None) -> float:
    """Minimum s-t cut capacity (== max flow, by duality)."""
    return max_flow(graph, source, sink, capacity=capacity)


def min_cut_partition(
    graph, source: int, sink: int, capacity=None
) -> tuple[set[int], set[int]]:
    """The (source side, sink side) node partition of a minimum cut."""
    if source == sink:
        raise AlgorithmError("source and sink must differ")
    csr = as_csr(graph)
    csr.dense_of(source)
    csr.dense_of(sink)
    residual = _build_residual(graph, capacity)
    while True:
        levels = _level_map(residual, source)
        if sink not in levels:
            break
        _blocking_flow(residual, levels, source, sink)
    source_side = residual.reachable_from(source)
    all_nodes = set(residual.adjacency)
    return source_side, all_nodes - source_side
