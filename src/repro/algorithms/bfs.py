"""Breadth-first search and unweighted shortest paths.

The frontier loop is vectorised over CSR: each level expands all frontier
nodes' adjacency slices at once (``repeat``/``concatenate``), which is
the numpy analogue of Ringo's parallel level-synchronous BFS.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.common import as_csr
from repro.exceptions import AlgorithmError
from repro.graphs.csr import CSRGraph

UNREACHED = -1


def _frontier_expand(
    indptr: np.ndarray, indices: np.ndarray, frontier: np.ndarray
) -> np.ndarray:
    """All neighbours of the frontier, concatenated (duplicates included)."""
    counts = indptr[frontier + 1] - indptr[frontier]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    starts = indptr[frontier]
    nonzero = counts > 0
    counts_nz = counts[nonzero]
    starts_nz = starts[nonzero]
    steps = np.ones(total, dtype=np.int64)
    run_starts = np.concatenate(([0], np.cumsum(counts_nz)[:-1]))
    prev_last = np.concatenate(([0], starts_nz[:-1] + counts_nz[:-1] - 1))
    steps[run_starts] = starts_nz - prev_last
    return indices[np.cumsum(steps)]


def bfs_levels(
    graph, source: int, direction: str = "out"
) -> dict[int, int]:
    """Hop distance from ``source`` to every reachable node.

    ``direction`` is ``out`` (follow edges), ``in`` (reverse), or
    ``both`` (treat edges as undirected).

    >>> from repro.graphs.directed import DirectedGraph
    >>> g = DirectedGraph()
    >>> _ = g.add_edge(1, 2); _ = g.add_edge(2, 3)
    >>> bfs_levels(g, 1)
    {1: 0, 2: 1, 3: 2}
    """
    csr = as_csr(graph)
    source_dense = int(csr.dense_of_array([source])[0])
    levels = bfs_level_array(csr, source_dense, direction=direction)
    reached = levels != UNREACHED
    return dict(
        zip(
            csr.node_ids[reached].tolist(),
            levels[reached].tolist(),
        )
    )


def bfs_level_array(
    csr: CSRGraph, source_dense: int, direction: str = "out"
) -> np.ndarray:
    """Dense-index variant of :func:`bfs_levels` (-1 for unreached)."""
    if direction not in ("out", "in", "both"):
        raise AlgorithmError(f"unknown BFS direction {direction!r}")
    levels = np.full(csr.num_nodes, UNREACHED, dtype=np.int64)
    levels[source_dense] = 0
    frontier = np.array([source_dense], dtype=np.int64)
    level = 0
    while len(frontier):
        level += 1
        candidates: list[np.ndarray] = []
        if direction in ("out", "both"):
            candidates.append(_frontier_expand(csr.out_indptr, csr.out_indices, frontier))
        if direction in ("in", "both"):
            candidates.append(_frontier_expand(csr.in_indptr, csr.in_indices, frontier))
        merged = np.concatenate(candidates) if len(candidates) > 1 else candidates[0]
        if len(merged) == 0:
            break
        merged = np.unique(merged)
        fresh = merged[levels[merged] == UNREACHED]
        levels[fresh] = level
        frontier = fresh
    return levels


def shortest_path_length(graph, source: int, target: int) -> int:
    """Fewest hops from ``source`` to ``target``; raises if unreachable."""
    csr = as_csr(graph)
    source_dense, target_dense = csr.dense_of_array([source, target]).tolist()
    levels = bfs_level_array(csr, source_dense)
    if levels[target_dense] == UNREACHED:
        raise AlgorithmError(f"node {target} is unreachable from {source}")
    return int(levels[target_dense])


def shortest_path(graph, source: int, target: int) -> list[int]:
    """One shortest hop path from ``source`` to ``target`` (inclusive)."""
    csr = as_csr(graph)
    source_dense, target_dense = csr.dense_of_array([source, target]).tolist()
    levels = bfs_level_array(csr, source_dense)
    if levels[target_dense] == UNREACHED:
        raise AlgorithmError(f"node {target} is unreachable from {source}")
    # Walk backwards: a predecessor is any in-neighbour one level closer.
    path_dense = [target_dense]
    current = target_dense
    while current != source_dense:
        nbrs = csr.in_neighbors(current)
        closer = nbrs[levels[nbrs] == levels[current] - 1]
        current = int(closer[0])
        path_dense.append(current)
    return [int(csr.node_ids[dense]) for dense in reversed(path_dense)]


def reachable_set(graph, source: int, direction: str = "out") -> set[int]:
    """Original ids of all nodes reachable from ``source``."""
    return set(bfs_levels(graph, source, direction=direction))


def bfs_edges(graph, source: int):
    """Yield BFS tree edges ``(parent, child)`` in discovery order.

    >>> from repro.graphs.directed import DirectedGraph
    >>> g = DirectedGraph()
    >>> _ = g.add_edge(1, 2); _ = g.add_edge(2, 3)
    >>> list(bfs_edges(g, 1))
    [(1, 2), (2, 3)]
    """
    csr = as_csr(graph)
    node_ids = csr.node_ids
    source_dense = csr.dense_of(source)
    seen = {source_dense}
    queue = [source_dense]
    head = 0
    while head < len(queue):
        node = queue[head]
        head += 1
        for nbr in csr.out_neighbors(node).tolist():
            if nbr not in seen:
                seen.add(nbr)
                queue.append(nbr)
                yield int(node_ids[node]), int(node_ids[nbr])


def dfs_preorder(graph, source: int) -> list[int]:
    """Nodes in depth-first preorder from ``source`` (iterative).

    Children are visited in ascending id order (the adjacency vectors
    are sorted), so the order is deterministic.

    >>> from repro.graphs.directed import DirectedGraph
    >>> g = DirectedGraph()
    >>> _ = g.add_edge(1, 2); _ = g.add_edge(1, 3); _ = g.add_edge(2, 4)
    >>> dfs_preorder(g, 1)
    [1, 2, 4, 3]
    """
    csr = as_csr(graph)
    node_ids = csr.node_ids
    source_dense = csr.dense_of(source)
    seen = {source_dense}
    order = [int(node_ids[source_dense])]
    stack = [(source_dense, 0)]
    while stack:
        node, cursor = stack[-1]
        nbrs = csr.out_neighbors(node)
        if cursor < len(nbrs):
            stack[-1] = (node, cursor + 1)
            child = int(nbrs[cursor])
            if child not in seen:
                seen.add(child)
                order.append(int(node_ids[child]))
                stack.append((child, 0))
        else:
            stack.pop()
    return order
