"""Community detection and modularity.

Label propagation (near-linear, the SNAP workhorse for big graphs) plus
Newman modularity for scoring a partition, both over the undirected
projection.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.triangles import _undirected_csr
from repro.util.validation import check_positive


def label_propagation(
    graph, max_iterations: int = 100, seed: int = 0
) -> dict[int, int]:
    """Communities via synchronous-free (sequential, shuffled) label
    propagation.

    Each node repeatedly adopts the most frequent label among its
    neighbours (ties broken by smallest label) until no label changes or
    ``max_iterations`` passes complete. Deterministic for a fixed seed.

    >>> from repro.graphs.undirected import UndirectedGraph
    >>> g = UndirectedGraph()
    >>> for u, v in [(0, 1), (1, 2), (0, 2), (5, 6), (6, 7), (5, 7)]:
    ...     _ = g.add_edge(u, v)
    >>> communities = label_propagation(g)
    >>> communities[0] == communities[1], communities[0] == communities[5]
    (True, False)
    """
    check_positive(max_iterations, "max_iterations")
    sym = _undirected_csr(graph)
    count = sym.num_nodes
    labels = np.arange(count, dtype=np.int64)
    rng = np.random.default_rng(seed)
    indptr = sym.out_indptr
    indices = sym.out_indices
    order = np.arange(count)
    for _ in range(max_iterations):
        rng.shuffle(order)
        changed = 0
        for node in order.tolist():
            nbrs = indices[indptr[node]:indptr[node + 1]]
            if len(nbrs) == 0:
                continue
            nbr_labels = labels[nbrs]
            values, counts = np.unique(nbr_labels, return_counts=True)
            best = values[counts == counts.max()].min()
            if best != labels[node]:
                labels[node] = best
                changed += 1
        if changed == 0:
            break
    # Renumber labels densely by first appearance.
    _, first, inverse = np.unique(labels, return_index=True, return_inverse=True)
    appearance = np.argsort(np.argsort(first))
    dense = appearance[inverse]
    return dict(zip(sym.node_ids.tolist(), dense.tolist()))


def modularity(graph, communities: dict[int, int]) -> float:
    """Newman modularity Q of a partition over the undirected projection.

    Q = sum_c [ m_c / m  - (d_c / 2m)^2 ] where m_c is the number of
    intra-community edges and d_c the total degree of community c.
    """
    sym = _undirected_csr(graph)
    count = sym.num_nodes
    if count == 0 or sym.num_edges == 0:
        return 0.0
    labels = np.asarray(
        [communities[int(node)] for node in sym.node_ids], dtype=np.int64
    )
    edge_src = sym.edge_sources()
    edge_dst = sym.out_indices
    # Symmetrised CSR holds each undirected edge twice.
    two_m = float(len(edge_src))
    intra = float(np.sum(labels[edge_src] == labels[edge_dst]))
    degrees = sym.out_degrees().astype(np.float64)
    label_degree = np.bincount(labels, weights=degrees)
    return intra / two_m - float(np.sum((label_degree / two_m) ** 2))


def community_sizes(communities: dict[int, int]) -> dict[int, int]:
    """Size of each community, keyed by label."""
    sizes: dict[int, int] = {}
    for label in communities.values():
        sizes[label] = sizes.get(label, 0) + 1
    return sizes
