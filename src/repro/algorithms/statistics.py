"""Descriptive graph statistics (SNAP's ``PrintInfo`` family).

Summaries used throughout the examples and the Table 1/2 benchmarks:
degree distributions (as Ringo tables, so they flow back into the
relational layer per Figure 2), density, reciprocity, assortativity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.common import as_csr
from repro.graphs.csr import CSRGraph
from repro.tables.schema import ColumnType, Schema
from repro.tables.table import Table


@dataclass(frozen=True)
class GraphSummary:
    """Headline numbers for a graph (the ``PrintInfo`` block)."""

    num_nodes: int
    num_edges: int
    is_directed: bool
    density: float
    self_loops: int
    max_in_degree: int
    max_out_degree: int

    def __str__(self) -> str:
        kind = "directed" if self.is_directed else "undirected"
        return (
            f"{kind} graph: {self.num_nodes} nodes, {self.num_edges} edges, "
            f"density {self.density:.3e}, {self.self_loops} self-loops, "
            f"max in/out degree {self.max_in_degree}/{self.max_out_degree}"
        )


def summarize(graph) -> GraphSummary:
    """Compute a :class:`GraphSummary` for any graph object."""
    csr = as_csr(graph)
    directed = getattr(graph, "is_directed", True)
    count = csr.num_nodes
    edges = csr.num_edges if directed else getattr(graph, "num_edges", csr.num_edges)
    possible = count * (count - 1) if directed else count * (count - 1) / 2
    density = edges / possible if possible else 0.0
    loops = _count_self_loops(csr)
    in_deg = csr.in_degrees()
    out_deg = csr.out_degrees()
    return GraphSummary(
        num_nodes=count,
        num_edges=edges,
        is_directed=directed,
        density=density,
        self_loops=loops,
        max_in_degree=int(in_deg.max()) if count else 0,
        max_out_degree=int(out_deg.max()) if count else 0,
    )


def _count_self_loops(csr: CSRGraph) -> int:
    return csr.num_self_loops()


def degree_distribution(graph, mode: str = "total") -> Table:
    """Degree histogram as a table (``Degree``, ``Count``), ascending.

    ``mode`` is ``in``, ``out``, or ``total``.
    """
    csr = as_csr(graph)
    if mode == "in":
        degrees = csr.in_degrees()
    elif mode == "out":
        degrees = csr.out_degrees()
    elif mode == "total":
        degrees = csr.in_degrees() + csr.out_degrees()
    else:
        raise ValueError(f"unknown degree mode {mode!r}")
    values, counts = (
        np.unique(degrees, return_counts=True)
        if len(degrees)
        else (np.empty(0, np.int64), np.empty(0, np.int64))
    )
    schema = Schema([("Degree", ColumnType.INT), ("Count", ColumnType.INT)])
    return Table(schema, {"Degree": values.astype(np.int64), "Count": counts.astype(np.int64)})


def reciprocity(graph) -> float:
    """Fraction of directed edges whose reverse edge also exists."""
    csr = as_csr(graph)
    if csr.num_edges == 0:
        return 0.0
    src = csr.edge_sources()
    dst = csr.out_indices
    forward = set(zip(src.tolist(), dst.tolist()))
    mutual = sum(1 for u, v in forward if (v, u) in forward)
    return mutual / len(forward)


def degree_assortativity(graph) -> float:
    """Pearson correlation of endpoint total degrees over edges.

    Returns 0.0 when undefined (no edges, or zero variance).
    """
    csr = as_csr(graph)
    if csr.num_edges == 0:
        return 0.0
    total_deg = (csr.in_degrees() + csr.out_degrees()).astype(np.float64)
    src = csr.edge_sources()
    dst = csr.out_indices
    x = total_deg[src]
    y = total_deg[dst]
    if np.isclose(x.std(), 0.0) or np.isclose(y.std(), 0.0):
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


def edge_count_in_buckets(edge_counts: "list[int]", bounds: "list[int]") -> list[int]:
    """Histogram of graph sizes into edge-count buckets (Table 1 helper).

    ``bounds`` are the upper-exclusive bucket edges; a final overflow
    bucket catches everything above the last bound.

    >>> edge_count_in_buckets([5, 50, 500], [10, 100])
    [1, 1, 1]
    """
    counts = [0] * (len(bounds) + 1)
    for value in edge_counts:
        for index, bound in enumerate(bounds):
            if value < bound:
                counts[index] += 1
                break
        else:
            counts[-1] += 1
    return counts
