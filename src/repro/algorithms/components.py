"""Connected components: weak (WCC), strong (SCC), and sizes.

SCC is one of the paper's Table 6 single-threaded benchmarks. The
implementation is Tarjan's algorithm made iterative (recursion-free, so
million-node graphs don't hit Python's stack limit); WCC is
level-synchronous BFS over the symmetrised CSR.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.bfs import UNREACHED, _frontier_expand
from repro.algorithms.common import as_csr
from repro.graphs.csr import CSRGraph
from repro.parallel.executor import kernel_dispatcher


def _wcc_min_label_partition(arrays, lo: int, hi: int, labels) -> np.ndarray:
    """One hash-min round over the dense node span ``[lo, hi)``.

    Each node's new label is the minimum over its own label and the
    labels of its out- and in-neighbours — a gather, so partitions
    write only their own output slice and the result is independent of
    the partition count (the property the threads-vs-processes digest
    tests rely on).
    """
    width = hi - lo
    new = labels[lo:hi].copy()
    for direction in ("out", "in"):
        indptr = arrays[direction + "_indptr"]
        indices = arrays[direction + "_indices"]
        base, stop = int(indptr[lo]), int(indptr[hi])
        if base == stop:
            continue
        counts = np.diff(indptr[lo:hi + 1])
        local = np.repeat(np.arange(width, dtype=np.int64), counts)
        np.minimum.at(new, local, labels[indices[base:stop]])
    return new


def _wcc_labels_parallel(csr: CSRGraph, pool=None, backend=None) -> np.ndarray:
    """Hash-min label propagation with pointer jumping, partitioned.

    Converges each component to its minimum dense node id, then
    relabels representatives in ascending order — exactly the label
    assignment of the sequential BFS in :func:`_wcc_labels` (which
    hands out labels in seed order, i.e. ascending min dense id), so
    the two paths agree element-for-element.
    """
    count = csr.num_nodes
    if count == 0:
        return np.zeros(0, dtype=np.int64)
    dispatcher = kernel_dispatcher()
    labels = np.arange(count, dtype=np.int64)
    while True:
        gathered = np.concatenate(
            dispatcher.run_kernel(
                csr,
                _wcc_min_label_partition,
                arrays=("out_indptr", "out_indices", "in_indptr", "in_indices"),
                total=count,
                extra=(labels,),
                pool=pool,
                backend=backend,
            )
        )
        # Pointer jumping: hop to the label's own label, which
        # collapses long propagation chains logarithmically.
        gathered = gathered[gathered]
        if np.array_equal(gathered, labels):
            break
        labels = gathered
    return np.searchsorted(np.unique(labels), labels)


def _wcc_labels_dispatch(csr: CSRGraph) -> np.ndarray:
    """Route WCC to the parallel kernel when the dispatcher picks
    processes for this snapshot; sequential BFS otherwise (both paths
    produce identical labels)."""
    if csr.num_nodes and kernel_dispatcher().decide(csr.num_edges) == "processes":
        return _wcc_labels_parallel(csr)
    return _wcc_labels(csr)


def weakly_connected_components(graph) -> dict[int, int]:
    """Component label per node (labels dense from 0, edges undirected)."""
    if not isinstance(graph, CSRGraph):
        from repro.incremental.algorithms import incremental_wcc

        warm = incremental_wcc(graph)
        if warm is not None:
            return warm
    csr = as_csr(graph)
    labels = _wcc_labels_dispatch(csr)
    return dict(zip(csr.node_ids.tolist(), labels.tolist()))


def _wcc_labels(csr: CSRGraph) -> np.ndarray:
    labels = np.full(csr.num_nodes, UNREACHED, dtype=np.int64)
    next_label = 0
    for seed in range(csr.num_nodes):
        if labels[seed] != UNREACHED:
            continue
        labels[seed] = next_label
        frontier = np.array([seed], dtype=np.int64)
        while len(frontier):
            out_nbrs = _frontier_expand(csr.out_indptr, csr.out_indices, frontier)
            in_nbrs = _frontier_expand(csr.in_indptr, csr.in_indices, frontier)
            merged = np.unique(np.concatenate([out_nbrs, in_nbrs]))
            fresh = merged[labels[merged] == UNREACHED]
            labels[fresh] = next_label
            frontier = fresh
        next_label += 1
    return labels


def strongly_connected_components(graph) -> dict[int, int]:
    """SCC label per node (iterative Tarjan; labels dense from 0).

    >>> from repro.graphs.directed import DirectedGraph
    >>> g = DirectedGraph()
    >>> _ = g.add_edge(1, 2); _ = g.add_edge(2, 1); _ = g.add_edge(2, 3)
    >>> labels = strongly_connected_components(g)
    >>> labels[1] == labels[2], labels[1] == labels[3]
    (True, False)
    """
    csr = as_csr(graph)
    labels = _scc_labels(csr)
    return dict(zip(csr.node_ids.tolist(), labels.tolist()))


def _scc_labels(csr: CSRGraph) -> np.ndarray:
    count = csr.num_nodes
    indptr = csr.out_indptr
    indices = csr.out_indices
    index_of = np.full(count, -1, dtype=np.int64)
    lowlink = np.zeros(count, dtype=np.int64)
    on_stack = np.zeros(count, dtype=bool)
    labels = np.full(count, -1, dtype=np.int64)
    stack: list[int] = []
    next_index = 0
    next_label = 0

    for root in range(count):
        if index_of[root] != -1:
            continue
        # Each work-stack frame is (node, position in its adjacency run).
        work = [(root, int(indptr[root]))]
        index_of[root] = lowlink[root] = next_index
        next_index += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, cursor = work[-1]
            if cursor < indptr[node + 1]:
                work[-1] = (node, cursor + 1)
                child = int(indices[cursor])
                if index_of[child] == -1:
                    index_of[child] = lowlink[child] = next_index
                    next_index += 1
                    stack.append(child)
                    on_stack[child] = True
                    work.append((child, int(indptr[child])))
                elif on_stack[child]:
                    if index_of[child] < lowlink[node]:
                        lowlink[node] = index_of[child]
            else:
                work.pop()
                if lowlink[node] == index_of[node]:
                    while True:
                        member = stack.pop()
                        on_stack[member] = False
                        labels[member] = next_label
                        if member == node:
                            break
                    next_label += 1
                if work:
                    parent = work[-1][0]
                    if lowlink[node] < lowlink[parent]:
                        lowlink[parent] = lowlink[node]
    return labels


def component_sizes(labels: dict[int, int]) -> dict[int, int]:
    """Size of each component, keyed by label."""
    sizes: dict[int, int] = {}
    for label in labels.values():
        sizes[label] = sizes.get(label, 0) + 1
    return sizes


def largest_component_nodes(labels: dict[int, int]) -> set[int]:
    """Node ids of the largest component (ties broken by lowest label)."""
    if not labels:
        return set()
    sizes = component_sizes(labels)
    best = min(sizes, key=lambda label: (-sizes[label], label))
    return {node for node, label in labels.items() if label == best}


def is_weakly_connected(graph) -> bool:
    """Whether the graph has exactly one weak component (False if empty)."""
    csr = as_csr(graph)
    if csr.num_nodes == 0:
        return False
    labels = _wcc_labels_dispatch(csr)
    return int(labels.max()) == 0


def count_components(labels: dict[int, int]) -> int:
    """Number of distinct components in a label map."""
    return len(set(labels.values()))


def condensation(graph, labels: "dict[int, int] | None" = None):
    """The condensation DAG: one node per SCC, edges between SCCs.

    ``labels`` defaults to a fresh SCC computation. The result is always
    acyclic (each SCC's internal edges collapse away), with node ids
    equal to the SCC labels.

    >>> from repro.graphs.directed import DirectedGraph
    >>> g = DirectedGraph()
    >>> for u, v in [(1, 2), (2, 1), (2, 3)]:
    ...     _ = g.add_edge(u, v)
    >>> dag = condensation(g)
    >>> dag.num_nodes, dag.num_edges
    (2, 1)
    """
    from repro.graphs.directed import DirectedGraph

    if labels is None:
        labels = strongly_connected_components(graph)
    result = DirectedGraph()
    for label in set(labels.values()):
        result.add_node(label)
    for src, dst in graph.edges():
        src_label = labels[src]
        dst_label = labels[dst]
        if src_label != dst_label:
            result.add_edge(src_label, dst_label)
    return result
