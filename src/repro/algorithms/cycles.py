"""Cycle utilities: directed cycle finding and undirected girth."""

from __future__ import annotations

import numpy as np

from repro.algorithms.common import as_csr
from repro.algorithms.triangles import _undirected_csr

WHITE, GRAY, BLACK = 0, 1, 2


def find_cycle(graph) -> "list[int] | None":
    """One directed cycle as a node list (closed: first == last), or None.

    Iterative colour DFS; self-loops count as length-one cycles.

    >>> from repro.graphs.directed import DirectedGraph
    >>> g = DirectedGraph()
    >>> _ = g.add_edge(1, 2); _ = g.add_edge(2, 3); _ = g.add_edge(3, 1)
    >>> cycle = find_cycle(g)
    >>> cycle[0] == cycle[-1], len(cycle)
    (True, 4)
    """
    csr = as_csr(graph)
    count = csr.num_nodes
    indptr = csr.out_indptr
    indices = csr.out_indices
    node_ids = csr.node_ids
    color = np.zeros(count, dtype=np.int8)
    parent = np.full(count, -1, dtype=np.int64)
    for root in range(count):
        if color[root] != WHITE:
            continue
        stack = [(root, int(indptr[root]))]
        color[root] = GRAY
        while stack:
            node, cursor = stack[-1]
            if cursor < indptr[node + 1]:
                stack[-1] = (node, cursor + 1)
                child = int(indices[cursor])
                if color[child] == GRAY:
                    # Back edge: unwind the gray path child .. node.
                    cycle = [node]
                    walker = node
                    while walker != child:
                        walker = int(parent[walker])
                        cycle.append(walker)
                    cycle.reverse()
                    cycle.append(cycle[0])
                    return [int(node_ids[dense]) for dense in cycle]
                if color[child] == WHITE:
                    color[child] = GRAY
                    parent[child] = node
                    stack.append((child, int(indptr[child])))
            else:
                color[node] = BLACK
                stack.pop()
    return None


def has_cycle(graph) -> bool:
    """Whether the directed graph contains any cycle."""
    return find_cycle(graph) is not None


def girth(graph) -> "int | None":
    """Length of the shortest cycle of the undirected projection, or None.

    BFS from every node; the first cross/back edge at each root bounds
    the girth. Self-loops (girth 1) are detected first. O(V·E) — fine
    for the analysis sizes this library targets.

    >>> from repro.algorithms.generators import ring_graph
    >>> girth(ring_graph(7))
    7
    """
    original = as_csr(graph)
    if original.num_self_loops():
        return 1
    sym = _undirected_csr(graph)
    count = sym.num_nodes
    indptr = sym.out_indptr
    indices = sym.out_indices
    best: "int | None" = None
    for root in range(count):
        dist = np.full(count, -1, dtype=np.int64)
        parent = np.full(count, -1, dtype=np.int64)
        dist[root] = 0
        queue = [root]
        head = 0
        while head < len(queue):
            node = queue[head]
            head += 1
            if best is not None and dist[node] * 2 >= best:
                break
            for nbr in indices[indptr[node]:indptr[node + 1]].tolist():
                if nbr == parent[node]:
                    continue
                if dist[nbr] == -1:
                    dist[nbr] = dist[node] + 1
                    parent[nbr] = node
                    queue.append(nbr)
                else:
                    # A non-tree edge closes a cycle through the root's
                    # BFS tree of length dist[u] + dist[v] + 1 (an upper
                    # bound that is tight for some root on the shortest
                    # cycle).
                    length = int(dist[node] + dist[nbr] + 1)
                    if best is None or length < best:
                        best = length
    return best
