"""Triangle counting and clustering coefficients (paper §3, Table 3).

"Triangle counting is directly related to relational joins"; Ringo's
implementation is "a straightforward approach, similar to [PATRIC],
parallelizing the execution with a few OpenMP statements". The same
structure here: the *forward* node-iterator — each node intersects the
sorted adjacency of its higher-ordered neighbours — with the per-node
work distributed over a worker pool using degree-balanced chunks (degree
skew makes equal-count partitions badly unbalanced).

Directed input is treated as its undirected projection, matching the
paper's "undirected triangle counting".
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.common import as_csr, counts_to_dict
from repro.graphs.csr import CSRGraph
from repro.parallel.executor import WorkerPool, serial_pool
from repro.parallel.partition import split_range


def _undirected_csr(graph) -> CSRGraph:
    """Symmetrised, loop-free CSR projection for triangle work."""
    csr = as_csr(graph)
    src = np.repeat(np.arange(csr.num_nodes, dtype=np.int64), csr.out_degrees())
    dst = csr.out_indices
    keep = src != dst
    src, dst = src[keep], dst[keep]
    sym_src = np.concatenate([src, dst])
    sym_dst = np.concatenate([dst, src])
    pairs = np.unique(np.stack([sym_src, sym_dst], axis=1), axis=0)
    return CSRGraph._from_dense_edges(csr.node_ids, pairs[:, 0], pairs[:, 1])


def triangle_counts(graph, pool: WorkerPool | None = None) -> dict[int, int]:
    """Number of triangles through each node.

    >>> from repro.graphs.undirected import UndirectedGraph
    >>> g = UndirectedGraph()
    >>> for u, v in [(1, 2), (2, 3), (3, 1), (3, 4)]:
    ...     _ = g.add_edge(u, v)
    >>> triangle_counts(g)[3]
    1
    """
    sym = _undirected_csr(graph)
    counts = triangle_count_array(sym, pool=pool)
    return counts_to_dict(sym, counts)


def triangle_count_array(sym: CSRGraph, pool: WorkerPool | None = None) -> np.ndarray:
    """Per-node triangle counts over a symmetrised, loop-free CSR.

    Forward algorithm with degree-rank ordering: every node keeps only
    its higher-ranked neighbours, so each triangle is closed exactly once
    (at its lowest-ranked vertex) and hub work collapses from O(d^2) to
    the O(m^1.5) bound — the "straightforward approach, similar to
    PATRIC" the paper cites.
    """
    pool = pool if pool is not None else serial_pool()
    count = sym.num_nodes
    indptr = sym.out_indptr
    indices = sym.out_indices
    degrees = sym.out_degrees()
    # Rank nodes by (degree, id); "forward" neighbours are higher-ranked.
    rank = np.empty(count, dtype=np.int64)
    rank[np.lexsort((np.arange(count), degrees))] = np.arange(count)
    forward: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * count
    for node in range(count):
        nbrs = indices[indptr[node]:indptr[node + 1]]
        forward[node] = nbrs[rank[nbrs] > rank[node]]
    totals = np.zeros(count, dtype=np.int64)

    def count_partition(lo: int, hi: int) -> np.ndarray:
        partial = np.zeros(count, dtype=np.int64)
        for node in range(lo, hi):
            fwd = forward[node]
            for nbr in fwd.tolist():
                # w in forward[node] ∩ forward[nbr] closes triangle
                # (node, nbr, w) with rank(node) < rank(nbr) < rank(w).
                shared = np.intersect1d(fwd, forward[nbr], assume_unique=True)
                wedges = len(shared)
                if wedges:
                    partial[node] += wedges
                    partial[nbr] += wedges
                    np.add.at(partial, shared, 1)
        return partial

    for partial in pool.map_range(count, count_partition):
        totals += partial
    return totals


def total_triangles(graph, pool: WorkerPool | None = None) -> int:
    """Total number of distinct triangles in the graph."""
    sym = _undirected_csr(graph)
    counts = triangle_count_array(sym, pool=pool)
    return int(counts.sum()) // 3


def clustering_coefficients(graph) -> dict[int, float]:
    """Local clustering coefficient per node (0 for degree < 2)."""
    sym = _undirected_csr(graph)
    counts = triangle_count_array(sym)
    degrees = sym.out_degrees().astype(np.float64)
    possible = degrees * (degrees - 1) / 2.0
    with np.errstate(divide="ignore", invalid="ignore"):
        local = np.where(possible > 0, counts / possible, 0.0)
    return dict(zip(sym.node_ids.tolist(), local.tolist()))


def average_clustering(graph) -> float:
    """Mean local clustering coefficient (0.0 for the empty graph)."""
    coefficients = clustering_coefficients(graph)
    if not coefficients:
        return 0.0
    return sum(coefficients.values()) / len(coefficients)


def global_clustering(graph) -> float:
    """Transitivity: ``3 * triangles / wedges`` (0.0 if no wedges)."""
    sym = _undirected_csr(graph)
    counts = triangle_count_array(sym)
    degrees = sym.out_degrees().astype(np.float64)
    wedges = float((degrees * (degrees - 1) / 2.0).sum())
    if wedges == 0:
        return 0.0
    return 3.0 * (float(counts.sum()) / 3.0) / wedges
