"""Triangle counting and clustering coefficients (paper §3, Table 3).

"Triangle counting is directly related to relational joins"; Ringo's
implementation is "a straightforward approach, similar to [PATRIC],
parallelizing the execution with a few OpenMP statements". The same
structure here: the *forward* node-iterator — each node intersects the
sorted adjacency of its higher-ordered neighbours — with the per-node
work distributed over a worker pool using degree-balanced chunks (degree
skew makes equal-count partitions badly unbalanced).

Directed input is treated as its undirected projection, matching the
paper's "undirected triangle counting".
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.common import as_csr, counts_to_dict
from repro.graphs.csr import CSRGraph
from repro.parallel.executor import WorkerPool, kernel_dispatcher


def _triangle_partition(arrays, lo: int, hi: int) -> np.ndarray:
    """Forward-algorithm triangle counts for wedges rooted in ``[lo, hi)``.

    Returns a full-length per-node partial (a wedge at ``u`` closes a
    triangle whose credit lands on ``u``, ``v``, *and* ``w``, which may
    lie outside the span); the caller sums the partials, so partitions
    never write shared state. Module-level and array-dict-driven so the
    process backend can dispatch it by reference over a shared-memory
    export — the thread backend runs the very same function.
    """
    findptr = arrays["forward_indptr"]
    findices = arrays["forward_indices"]
    edge_keys = arrays["forward_edge_keys"]
    count = len(findptr) - 1
    fdeg = np.diff(findptr)
    base, stop = int(findptr[lo]), int(findptr[hi])
    partial = np.zeros(count, dtype=np.int64)
    if base == stop:
        return partial
    # Wedges at u: for each forward edge (u, v), every w in
    # forward[u]. Triangle (u, v, w) closes iff (v, w) is itself a
    # forward edge (rank u < rank v < rank w by construction).
    e_src = np.repeat(np.arange(lo, hi, dtype=np.int64), fdeg[lo:hi])
    e_dst = findices[base:stop]
    cand_counts = fdeg[e_src]
    total = int(cand_counts.sum())
    if total == 0:
        return partial
    starts = np.repeat(findptr[e_src], cand_counts)
    group_offsets = np.repeat(
        np.cumsum(cand_counts) - cand_counts, cand_counts
    )
    w = findices[starts + (np.arange(total) - group_offsets)]
    v = np.repeat(e_dst, cand_counts)
    u = np.repeat(e_src, cand_counts)
    query = v * count + w
    position = np.searchsorted(edge_keys, query)
    position = np.minimum(position, len(edge_keys) - 1)
    closed = edge_keys[position] == query
    partial += np.bincount(u[closed], minlength=count)
    partial += np.bincount(v[closed], minlength=count)
    partial += np.bincount(w[closed], minlength=count)
    return partial


def _undirected_csr(graph) -> CSRGraph:
    """Symmetrised, loop-free CSR projection for triangle work.

    Delegates to the snapshot's cached projection, so the whole
    triangle/clustering/community family shares one symmetrisation per
    snapshot instead of redoing it per call.
    """
    return as_csr(graph).undirected_projection()


def triangle_counts(graph, pool: WorkerPool | None = None) -> dict[int, int]:
    """Number of triangles through each node.

    >>> from repro.graphs.undirected import UndirectedGraph
    >>> g = UndirectedGraph()
    >>> for u, v in [(1, 2), (2, 3), (3, 1), (3, 4)]:
    ...     _ = g.add_edge(u, v)
    >>> triangle_counts(g)[3]
    1
    """
    if not isinstance(graph, CSRGraph):
        from repro.incremental.algorithms import incremental_triangle_counts

        warm = incremental_triangle_counts(graph, pool=pool)
        if warm is not None:
            return warm
    sym = _undirected_csr(graph)
    counts = triangle_count_array(sym, pool=pool)
    return counts_to_dict(sym, counts)


def triangle_count_array(
    sym: CSRGraph,
    pool: WorkerPool | None = None,
    backend: str | None = None,
) -> np.ndarray:
    """Per-node triangle counts over a symmetrised, loop-free CSR.

    Forward algorithm with degree-rank ordering: every node keeps only
    its higher-ranked neighbours, so each triangle is closed exactly once
    (at its lowest-ranked vertex) and hub work collapses from O(d^2) to
    the O(m^1.5) bound — the "straightforward approach, similar to
    PATRIC" the paper cites. The partitioned wedge-closure kernel
    :func:`_triangle_partition` runs through the kernel dispatcher:
    thread workers share the snapshot's cached forward adjacency
    in-process, process workers map its shared-memory export, and the
    per-partition integer partials sum identically either way.
    """
    count = sym.num_nodes
    totals = np.zeros(count, dtype=np.int64)
    if count == 0:
        return totals
    partials = kernel_dispatcher().run_kernel(
        sym,
        _triangle_partition,
        arrays=("forward_indptr", "forward_indices", "forward_edge_keys"),
        total=count,
        pool=pool,
        backend=backend,
    )
    for partial in partials:
        totals += partial
    return totals


def total_triangles(graph, pool: WorkerPool | None = None) -> int:
    """Total number of distinct triangles in the graph."""
    if not isinstance(graph, CSRGraph):
        from repro.incremental.algorithms import incremental_triangle_counts

        warm = incremental_triangle_counts(graph, pool=pool)
        if warm is not None:
            return sum(warm.values()) // 3
    sym = _undirected_csr(graph)
    counts = triangle_count_array(sym, pool=pool)
    return int(counts.sum()) // 3


def clustering_coefficients(graph) -> dict[int, float]:
    """Local clustering coefficient per node (0 for degree < 2)."""
    sym = _undirected_csr(graph)
    counts = triangle_count_array(sym)
    degrees = sym.out_degrees().astype(np.float64)
    possible = degrees * (degrees - 1) / 2.0
    with np.errstate(divide="ignore", invalid="ignore"):
        local = np.where(possible > 0, counts / possible, 0.0)
    return dict(zip(sym.node_ids.tolist(), local.tolist()))


def average_clustering(graph) -> float:
    """Mean local clustering coefficient (0.0 for the empty graph)."""
    coefficients = clustering_coefficients(graph)
    if not coefficients:
        return 0.0
    return sum(coefficients.values()) / len(coefficients)


def global_clustering(graph) -> float:
    """Transitivity: ``3 * triangles / wedges`` (0.0 if no wedges)."""
    sym = _undirected_csr(graph)
    counts = triangle_count_array(sym)
    degrees = sym.out_degrees().astype(np.float64)
    wedges = float((degrees * (degrees - 1) / 2.0).sum())
    if wedges == 0:
        return 0.0
    return 3.0 * (float(counts.sum()) / 3.0) / wedges
