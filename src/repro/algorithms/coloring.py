"""Greedy colouring and bipartiteness testing."""

from __future__ import annotations

import numpy as np

from repro.algorithms.triangles import _undirected_csr
from repro.exceptions import AlgorithmError

_STRATEGIES = ("degree", "id")


def greedy_coloring(graph, strategy: str = "degree") -> dict[int, int]:
    """Proper node colouring via greedy assignment.

    ``strategy`` orders the nodes: ``degree`` (largest first — the
    Welsh–Powell heuristic) or ``id`` (ascending original id). Colours
    are dense ints from 0; adjacent nodes always differ.

    >>> from repro.algorithms.generators import complete_graph
    >>> colors = greedy_coloring(complete_graph(4))
    >>> len(set(colors.values()))
    4
    """
    if strategy not in _STRATEGIES:
        raise AlgorithmError(f"unknown strategy {strategy!r}; use one of {_STRATEGIES}")
    csr = _undirected_csr(graph)
    count = csr.num_nodes
    if strategy == "degree":
        order = np.lexsort((np.arange(count), -csr.out_degrees()))
    else:
        order = np.arange(count)
    colors = np.full(count, -1, dtype=np.int64)
    for node in order.tolist():
        used = {int(colors[nbr]) for nbr in csr.out_neighbors(node).tolist()}
        color = 0
        while color in used:
            color += 1
        colors[node] = color
    return dict(zip(csr.node_ids.tolist(), colors.tolist()))


def chromatic_upper_bound(graph, strategy: str = "degree") -> int:
    """Colours used by :func:`greedy_coloring` (0 for the empty graph)."""
    colors = greedy_coloring(graph, strategy)
    return max(colors.values()) + 1 if colors else 0


def is_bipartite(graph) -> bool:
    """Whether the undirected projection is 2-colourable."""
    return bipartite_sides(graph) is not None


def bipartite_sides(graph) -> "tuple[set[int], set[int]] | None":
    """The two sides of a bipartition, or ``None`` if an odd cycle exists.

    A self-loop is a length-one odd cycle, so any looped graph returns
    ``None``. Isolated nodes land on the first side. BFS 2-colouring
    per component.
    """
    from repro.algorithms.common import as_csr

    original = as_csr(graph)
    if original.num_self_loops():
        return None
    csr = _undirected_csr(graph)
    count = csr.num_nodes
    side = np.full(count, -1, dtype=np.int64)
    for root in range(count):
        if side[root] != -1:
            continue
        side[root] = 0
        queue = [root]
        head = 0
        while head < len(queue):
            node = queue[head]
            head += 1
            for nbr in csr.out_neighbors(node).tolist():
                if side[nbr] == -1:
                    side[nbr] = 1 - side[node]
                    queue.append(nbr)
                elif side[nbr] == side[node]:
                    return None
    node_ids = csr.node_ids
    left = {int(node_ids[i]) for i in np.flatnonzero(side == 0)}
    right = {int(node_ids[i]) for i in np.flatnonzero(side == 1)}
    return left, right
