"""k-core decomposition (paper §3, Table 6 — "3-core" benchmark).

Linear-time peeling (Batagelj–Zaveršnik bucket algorithm) over the
undirected projection: repeatedly remove the minimum-degree node and
record the largest k at which each node survives.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.common import as_csr, counts_to_dict
from repro.algorithms.triangles import _undirected_csr
from repro.graphs.directed import DirectedGraph
from repro.graphs.ops import subgraph
from repro.graphs.undirected import UndirectedGraph
from repro.util.validation import check_positive


def core_numbers(graph) -> dict[int, int]:
    """Core number per node (max k such that the node is in the k-core).

    >>> from repro.graphs.undirected import UndirectedGraph
    >>> g = UndirectedGraph()
    >>> for u, v in [(1, 2), (2, 3), (3, 1), (3, 4)]:
    ...     _ = g.add_edge(u, v)
    >>> core_numbers(g)[1], core_numbers(g)[4]
    (2, 1)
    """
    sym = _undirected_csr(graph)
    cores = _core_number_array(sym)
    return counts_to_dict(sym, cores)


def _core_number_array(sym) -> np.ndarray:
    count = sym.num_nodes
    if count == 0:
        return np.empty(0, dtype=np.int64)
    indptr = sym.out_indptr
    indices = sym.out_indices
    degrees = sym.out_degrees().copy()
    max_degree = int(degrees.max()) if count else 0

    # Bucket sort nodes by degree: pos[v] is v's slot in `order`,
    # bucket_start[d] the first slot of degree-d nodes.
    bucket_start = np.zeros(max_degree + 2, dtype=np.int64)
    np.add.at(bucket_start, degrees + 1, 1)
    bucket_start = np.cumsum(bucket_start)
    cursor = bucket_start[:-1].copy()
    order = np.empty(count, dtype=np.int64)
    pos = np.empty(count, dtype=np.int64)
    for node in range(count):
        slot = cursor[degrees[node]]
        order[slot] = node
        pos[node] = slot
        cursor[degrees[node]] += 1
    bucket_start = bucket_start[:-1]

    cores = degrees.copy()
    for index in range(count):
        node = order[index]
        node_degree = cores[node]
        for nbr in indices[indptr[node]:indptr[node + 1]].tolist():
            if cores[nbr] > node_degree:
                # Move nbr one bucket down: swap it with the first node
                # of its current bucket, then shrink the bucket.
                deg_nbr = cores[nbr]
                first_slot = bucket_start[deg_nbr]
                first_node = order[first_slot]
                if first_node != nbr:
                    slot_nbr = pos[nbr]
                    order[first_slot], order[slot_nbr] = nbr, first_node
                    pos[nbr], pos[first_node] = first_slot, slot_nbr
                bucket_start[deg_nbr] += 1
                cores[nbr] -= 1
    return cores


def k_core(graph, k: int) -> "DirectedGraph | UndirectedGraph":
    """The maximal induced subgraph whose nodes all have core number >= k.

    The paper's Table 6 benchmarks ``3-core``; that is ``k_core(g, 3)``.
    """
    check_positive(k, "k")
    numbers = core_numbers(graph)
    keep = [node for node, core in numbers.items() if core >= k]
    return subgraph(graph, keep)


def degeneracy(graph) -> int:
    """The graph's degeneracy: the largest k with a non-empty k-core."""
    numbers = core_numbers(graph)
    if not numbers:
        return 0
    return max(numbers.values())
