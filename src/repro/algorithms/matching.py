"""Matchings: greedy maximal (any graph) and Hopcroft–Karp maximum
(bipartite graphs).
"""

from __future__ import annotations

from collections import deque

from repro.algorithms.coloring import bipartite_sides
from repro.algorithms.triangles import _undirected_csr
from repro.exceptions import AlgorithmError

_INF = float("inf")


def greedy_maximal_matching(graph) -> set[tuple[int, int]]:
    """A maximal matching (no extendable edge remains), greedy by edge order.

    Maximal, not maximum: at least half the maximum matching's size —
    the classic 2-approximation.

    >>> from repro.graphs.undirected import UndirectedGraph
    >>> g = UndirectedGraph()
    >>> for u, v in [(1, 2), (2, 3), (3, 4)]:
    ...     _ = g.add_edge(u, v)
    >>> len(greedy_maximal_matching(g))
    2
    """
    csr = _undirected_csr(graph)
    matched: set[int] = set()
    matching: set[tuple[int, int]] = set()
    node_ids = csr.node_ids
    for dense in range(csr.num_nodes):
        if dense in matched:
            continue
        for nbr in csr.out_neighbors(dense).tolist():
            if nbr not in matched and nbr != dense:
                matched.add(dense)
                matched.add(nbr)
                u = int(node_ids[dense])
                v = int(node_ids[nbr])
                matching.add((min(u, v), max(u, v)))
                break
    return matching


def hopcroft_karp(graph, left: "set[int] | None" = None) -> dict[int, int]:
    """Maximum matching of a bipartite graph, as a symmetric node map.

    ``left`` optionally fixes the left side; otherwise a bipartition is
    computed (raises :class:`AlgorithmError` for non-bipartite input).
    Returns ``{u: v, v: u}`` for every matched pair.

    >>> from repro.graphs.undirected import UndirectedGraph
    >>> g = UndirectedGraph()
    >>> for u, v in [(1, 10), (1, 11), (2, 10)]:
    ...     _ = g.add_edge(u, v)
    >>> match = hopcroft_karp(g)
    >>> len(match) // 2
    2
    """
    if left is None:
        sides = bipartite_sides(graph)
        if sides is None:
            raise AlgorithmError("Hopcroft-Karp requires a bipartite graph")
        left = sides[0]
    csr = _undirected_csr(graph)
    node_ids = csr.node_ids
    left_dense = [d for d in range(csr.num_nodes) if int(node_ids[d]) in left]

    match_left: dict[int, int] = {}
    match_right: dict[int, int] = {}

    def bfs() -> bool:
        distances: dict[int, float] = {}
        queue = deque()
        for u in left_dense:
            if u not in match_left:
                distances[u] = 0
                queue.append(u)
        found_free = False
        while queue:
            u = queue.popleft()
            for v in csr.out_neighbors(u).tolist():
                partner = match_right.get(v)
                if partner is None:
                    found_free = True
                elif partner not in distances:
                    distances[partner] = distances[u] + 1
                    queue.append(partner)
        bfs.distances = distances  # type: ignore[attr-defined]
        return found_free

    def dfs(u: int) -> bool:
        distances = bfs.distances  # type: ignore[attr-defined]
        for v in csr.out_neighbors(u).tolist():
            partner = match_right.get(v)
            if partner is None or (
                distances.get(partner) == distances.get(u, _INF) + 1 and dfs(partner)
            ):
                match_left[u] = v
                match_right[v] = u
                return True
        distances.pop(u, None)
        return False

    while bfs():
        for u in left_dense:
            if u not in match_left:
                dfs(u)

    result: dict[int, int] = {}
    for u, v in match_left.items():
        a = int(node_ids[u])
        b = int(node_ids[v])
        result[a] = b
        result[b] = a
    return result


def matching_size(matching: "dict[int, int] | set[tuple[int, int]]") -> int:
    """Number of edges in a matching in either representation."""
    if isinstance(matching, dict):
        return len(matching) // 2
    return len(matching)
