"""Single-source shortest paths (paper §3, Table 6 — "SSSP").

Unweighted SSSP is BFS (see :mod:`repro.algorithms.bfs`); this module
adds the weighted algorithms: binary-heap Dijkstra and Bellman–Ford
(which also detects negative cycles). Weights come from a callable or an
edge-attribute name on a :class:`~repro.graphs.network.Network`; absent
both, every edge weighs 1 and Dijkstra degenerates to BFS ordering —
exactly the configuration the Table 6 benchmark uses.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.algorithms.common import as_csr
from repro.exceptions import AlgorithmError
from repro.graphs.network import Network

WeightFn = Callable[[int, int], float]


def _resolve_weight(graph, weight) -> WeightFn:
    if weight is None:
        return lambda src, dst: 1.0
    if callable(weight):
        return weight
    if isinstance(weight, str):
        if not isinstance(graph, Network):
            raise AlgorithmError(
                "edge-attribute weights need a Network; got "
                f"{type(graph).__name__}"
            )
        name = weight
        return lambda src, dst: float(graph.edge_attr(src, dst, name, default=1.0))
    raise AlgorithmError(f"cannot interpret weight {weight!r}")


def dijkstra(
    graph,
    source: int,
    weight: "str | WeightFn | None" = None,
) -> dict[int, float]:
    """Shortest-path distance from ``source`` to every reachable node.

    Edge weights must be non-negative (checked during relaxation).

    >>> from repro.graphs.directed import DirectedGraph
    >>> g = DirectedGraph()
    >>> _ = g.add_edge(1, 2); _ = g.add_edge(2, 3)
    >>> dijkstra(g, 1)
    {1: 0.0, 2: 1.0, 3: 2.0}
    """
    weight_fn = _resolve_weight(graph, weight)
    csr = as_csr(graph)
    source_dense = int(csr.dense_of_array([source])[0])
    node_ids = csr.node_ids
    distances: dict[int, float] = {}
    heap: list[tuple[float, int]] = [(0.0, source_dense)]
    settled = set()
    best = {source_dense: 0.0}
    while heap:
        dist, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        distances[int(node_ids[node])] = dist
        for nbr in csr.out_neighbors(node).tolist():
            if nbr in settled:
                continue
            edge_weight = weight_fn(int(node_ids[node]), int(node_ids[nbr]))
            if edge_weight < 0:
                raise AlgorithmError(
                    f"Dijkstra requires non-negative weights; edge "
                    f"({node_ids[node]} -> {node_ids[nbr]}) weighs {edge_weight}"
                )
            candidate = dist + edge_weight
            if candidate < best.get(nbr, float("inf")):
                best[nbr] = candidate
                heapq.heappush(heap, (candidate, nbr))
    return distances


def dijkstra_path(
    graph,
    source: int,
    target: int,
    weight: "str | WeightFn | None" = None,
) -> tuple[list[int], float]:
    """One shortest path and its length; raises if unreachable."""
    weight_fn = _resolve_weight(graph, weight)
    csr = as_csr(graph)
    source_dense, target_dense = csr.dense_of_array([source, target]).tolist()
    node_ids = csr.node_ids
    parent: dict[int, int] = {}
    heap: list[tuple[float, int]] = [(0.0, source_dense)]
    best = {source_dense: 0.0}
    settled = set()
    while heap:
        dist, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        if node == target_dense:
            path = [node]
            while path[-1] != source_dense:
                path.append(parent[path[-1]])
            return [int(node_ids[n]) for n in reversed(path)], dist
        for nbr in csr.out_neighbors(node).tolist():
            edge_weight = weight_fn(int(node_ids[node]), int(node_ids[nbr]))
            if edge_weight < 0:
                raise AlgorithmError("Dijkstra requires non-negative weights")
            candidate = dist + edge_weight
            if candidate < best.get(nbr, float("inf")):
                best[nbr] = candidate
                parent[nbr] = node
                heapq.heappush(heap, (candidate, nbr))
    raise AlgorithmError(f"node {target} is unreachable from {source}")


def bellman_ford(
    graph,
    source: int,
    weight: "str | WeightFn | None" = None,
) -> dict[int, float]:
    """Shortest distances allowing negative weights.

    Raises :class:`AlgorithmError` when a negative cycle is reachable
    from ``source``.
    """
    weight_fn = _resolve_weight(graph, weight)
    csr = as_csr(graph)
    csr.dense_of_array([source])  # validate
    node_ids = csr.node_ids.tolist()
    edges = [
        (node_ids[src], node_ids[dst], weight_fn(node_ids[src], node_ids[dst]))
        for src in range(csr.num_nodes)
        for dst in csr.out_neighbors(src).tolist()
    ]
    distances = {source: 0.0}
    for _ in range(max(csr.num_nodes - 1, 0)):
        changed = False
        for src, dst, edge_weight in edges:
            if src in distances:
                candidate = distances[src] + edge_weight
                if candidate < distances.get(dst, float("inf")):
                    distances[dst] = candidate
                    changed = True
        if not changed:
            break
    else:
        for src, dst, edge_weight in edges:
            if src in distances and distances[src] + edge_weight < distances.get(dst, float("inf")):
                raise AlgorithmError("graph contains a negative cycle reachable from source")
    return distances
