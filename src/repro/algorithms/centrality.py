"""Node centrality measures (§4.1: "PageRank, Hits, and various other
node centrality measures").

Degree, closeness (exact or sampled), betweenness (Brandes, exact or
pivot-sampled), and eigenvector centrality.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.bfs import UNREACHED, bfs_level_array
from repro.algorithms.common import as_csr, scores_to_dict
from repro.exceptions import AlgorithmError
from repro.util.validation import check_positive


def degree_centrality(graph, mode: str = "total") -> dict[int, float]:
    """Degree / (n - 1) per node; ``mode`` is ``in``, ``out``, or ``total``.

    >>> from repro.graphs.directed import DirectedGraph
    >>> g = DirectedGraph()
    >>> _ = g.add_edge(1, 2); _ = g.add_edge(1, 3)
    >>> degree_centrality(g, "out")[1]
    1.0
    """
    csr = as_csr(graph)
    if mode == "in":
        degrees = csr.in_degrees()
    elif mode == "out":
        degrees = csr.out_degrees()
    elif mode == "total":
        degrees = csr.in_degrees() + csr.out_degrees()
    else:
        raise AlgorithmError(f"unknown degree mode {mode!r}")
    scale = 1.0 / max(csr.num_nodes - 1, 1)
    return scores_to_dict(csr, degrees.astype(np.float64) * scale)


def closeness_centrality(
    graph, samples: int | None = None, seed: int = 0
) -> dict[int, float]:
    """Closeness per node (Wasserman–Faust component-size correction).

    Exact when ``samples`` is None: one BFS per node. With ``samples``,
    distances are estimated from that many random BFS sources — the
    standard approximation for large graphs.
    """
    csr = as_csr(graph)
    count = csr.num_nodes
    if count == 0:
        return {}
    if samples is None:
        sources = np.arange(count)
    else:
        check_positive(samples, "samples")
        rng = np.random.default_rng(seed)
        sources = rng.choice(count, size=min(samples, count), replace=False)
    distance_sum = np.zeros(count, dtype=np.float64)
    reach_count = np.zeros(count, dtype=np.int64)
    for source in sources.tolist():
        levels = bfs_level_array(csr, source, direction="in")
        reached = levels != UNREACHED
        distance_sum[reached] += levels[reached]
        reach_count[reached] += 1
    scores = np.zeros(count, dtype=np.float64)
    sampled = len(sources)
    positive = (reach_count > 1) & (distance_sum > 0)
    # closeness(v) = ((r-1)/(n-1)) * ((r-1)/sum_d), with r scaled up from
    # the sample fraction when sampling.
    scale = count / sampled
    reached_est = np.maximum(reach_count * scale, 1.0)
    scores[positive] = (
        (reached_est[positive] - 1)
        / max(count - 1, 1)
        * (reach_count[positive] - 1)
        / distance_sum[positive]
    )
    return scores_to_dict(csr, scores)


def betweenness_centrality(
    graph, samples: int | None = None, seed: int = 0, normalized: bool = True
) -> dict[int, float]:
    """Betweenness per node via Brandes' algorithm.

    Exact when ``samples`` is None; otherwise estimated from that many
    random pivot sources (rescaled).
    """
    csr = as_csr(graph)
    count = csr.num_nodes
    if count == 0:
        return {}
    if samples is None:
        sources = np.arange(count)
    else:
        check_positive(samples, "samples")
        rng = np.random.default_rng(seed)
        sources = rng.choice(count, size=min(samples, count), replace=False)
    scores = np.zeros(count, dtype=np.float64)
    indptr = csr.out_indptr
    indices = csr.out_indices
    for source in sources.tolist():
        scores += _brandes_single_source(count, indptr, indices, source)
    if samples is not None and len(sources) < count:
        scores *= count / len(sources)
    if normalized and count > 2:
        scores /= (count - 1) * (count - 2)
    return scores_to_dict(csr, scores)


def _brandes_single_source(
    count: int, indptr: np.ndarray, indices: np.ndarray, source: int
) -> np.ndarray:
    sigma = np.zeros(count, dtype=np.float64)
    sigma[source] = 1.0
    dist = np.full(count, -1, dtype=np.int64)
    dist[source] = 0
    order: list[int] = [source]
    predecessors: dict[int, list[int]] = {source: []}
    queue = [source]
    head = 0
    while head < len(queue):
        node = queue[head]
        head += 1
        for nbr in indices[indptr[node]:indptr[node + 1]].tolist():
            if dist[nbr] == -1:
                dist[nbr] = dist[node] + 1
                queue.append(nbr)
                order.append(nbr)
                predecessors[nbr] = []
            if dist[nbr] == dist[node] + 1:
                sigma[nbr] += sigma[node]
                predecessors[nbr].append(node)
    delta = np.zeros(count, dtype=np.float64)
    for node in reversed(order):
        for pred in predecessors[node]:
            delta[pred] += sigma[pred] / sigma[node] * (1.0 + delta[node])
    delta[source] = 0.0
    return delta


def eigenvector_centrality(
    graph, max_iterations: int = 200, tolerance: float = 1e-8
) -> dict[int, float]:
    """Eigenvector centrality by power iteration on the in-adjacency.

    A node is central when central nodes point at it. L2-normalised;
    raises :class:`AlgorithmError` if iteration collapses to zero
    (e.g. a DAG where no cycle sustains the principal eigenvector).
    """
    check_positive(max_iterations, "max_iterations")
    csr = as_csr(graph)
    count = csr.num_nodes
    if count == 0:
        return {}
    edge_src = csr.edge_sources()
    edge_dst = csr.out_indices
    vector = np.full(count, 1.0 / np.sqrt(count), dtype=np.float64)
    for _ in range(max_iterations):
        spread = np.bincount(edge_dst, weights=vector[edge_src], minlength=count)
        norm = np.linalg.norm(spread)
        if norm == 0:
            raise AlgorithmError(
                "eigenvector centrality failed: iteration collapsed to zero"
            )
        spread /= norm
        if float(np.abs(spread - vector).sum()) < tolerance:
            vector = spread
            break
        vector = spread
    return scores_to_dict(csr, vector)
