"""HITS hubs and authorities (mentioned in §4.1's algorithm menu).

Standard iterative mutual reinforcement over the CSR snapshot with L2
normalisation each round.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.common import as_csr, scores_to_dict
from repro.util.validation import check_positive


def hits(
    graph,
    max_iterations: int = 100,
    tolerance: float = 1e-9,
) -> tuple[dict[int, float], dict[int, float]]:
    """Return ``(hubs, authorities)`` score maps.

    >>> from repro.graphs.directed import DirectedGraph
    >>> g = DirectedGraph()
    >>> _ = g.add_edge(1, 3); _ = g.add_edge(2, 3)
    >>> hubs, auths = hits(g)
    >>> auths[3] > auths[1]
    True
    """
    check_positive(max_iterations, "max_iterations")
    csr = as_csr(graph)
    count = csr.num_nodes
    if count == 0:
        return {}, {}
    edge_src = csr.edge_sources()
    edge_dst = csr.out_indices
    hubs_vec = np.full(count, 1.0 / np.sqrt(count), dtype=np.float64)
    auth_vec = hubs_vec.copy()
    for _ in range(max_iterations):
        new_auth = np.bincount(edge_dst, weights=hubs_vec[edge_src], minlength=count)
        auth_norm = np.linalg.norm(new_auth)
        if auth_norm > 0:
            new_auth /= auth_norm
        new_hubs = np.bincount(edge_src, weights=new_auth[edge_dst], minlength=count)
        hub_norm = np.linalg.norm(new_hubs)
        if hub_norm > 0:
            new_hubs /= hub_norm
        delta = float(np.abs(new_auth - auth_vec).sum() + np.abs(new_hubs - hubs_vec).sum())
        auth_vec = new_auth
        hubs_vec = new_hubs
        if delta < tolerance:
            break
    return scores_to_dict(csr, hubs_vec), scores_to_dict(csr, auth_vec)
