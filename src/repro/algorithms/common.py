"""Shared plumbing for the algorithm suite.

Algorithms accept any of the dynamic graph classes or a pre-built
:class:`~repro.graphs.csr.CSRGraph`. Bulk (vectorised) kernels snapshot
to CSR first — the same pattern as Ringo, whose C++ loops stream over
contiguous adjacency while the Python surface holds the dynamic object.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import AlgorithmError
from repro.graphs.csr import CSRGraph
from repro.graphs.directed import DirectedGraph
from repro.graphs.snapshot import csr_snapshot
from repro.graphs.undirected import UndirectedGraph

AnyGraph = "DirectedGraph | UndirectedGraph | CSRGraph"


def as_csr(
    graph: "DirectedGraph | UndirectedGraph | CSRGraph", pool=None
) -> CSRGraph:
    """Snapshot ``graph`` to CSR (no-op if it already is one).

    Dynamic graphs go through the process-wide versioned snapshot cache
    (:mod:`repro.graphs.snapshot`): back-to-back algorithm calls on an
    unchanged graph reuse one conversion, and any mutation rebuilds it
    automatically. ``pool`` parallelises the build on a cache miss.
    """
    if isinstance(graph, CSRGraph):
        return graph
    if isinstance(graph, (DirectedGraph, UndirectedGraph)):
        return csr_snapshot(graph, pool=pool)
    raise AlgorithmError(f"expected a graph, got {type(graph).__name__}")


def scores_to_dict(csr: CSRGraph, values: np.ndarray) -> dict[int, float]:
    """Map a dense result vector back to ``{original_node_id: value}``."""
    return dict(zip(csr.node_ids.tolist(), values.tolist()))


def counts_to_dict(csr: CSRGraph, values: np.ndarray) -> dict[int, int]:
    """Integer-valued variant of :func:`scores_to_dict`."""
    return dict(zip(csr.node_ids.tolist(), (int(v) for v in values)))


def require_nodes(csr: CSRGraph, context: str) -> None:
    """Raise for the empty graph, which most algorithms cannot define."""
    if csr.num_nodes == 0:
        raise AlgorithmError(f"{context} is undefined on an empty graph")
