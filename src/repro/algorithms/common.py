"""Shared plumbing for the algorithm suite.

Algorithms accept any of the dynamic graph classes or a pre-built
:class:`~repro.graphs.csr.CSRGraph`. Bulk (vectorised) kernels snapshot
to CSR first — the same pattern as Ringo, whose C++ loops stream over
contiguous adjacency while the Python surface holds the dynamic object.
"""

from __future__ import annotations

import functools
import time
import types

import numpy as np

from repro.exceptions import AlgorithmError
from repro.graphs.csr import CSRGraph
from repro.graphs.directed import DirectedGraph
from repro.graphs.snapshot import csr_snapshot
from repro.graphs.undirected import UndirectedGraph
from repro.obs.metrics import registry as _metrics_registry
from repro.obs.spans import enabled as _tracing_enabled
from repro.obs.spans import trace as _obs_trace

AnyGraph = "DirectedGraph | UndirectedGraph | CSRGraph"


def instrument_entry_point(func):
    """Wrap one algorithm entry point in an ``alg.<name>`` span.

    The wrapper checks the tracer per call, so the untraced path costs
    one module-global read; when tracing is armed each call produces a
    span plus an ``alg.<name>.seconds`` latency histogram sample.
    ``functools.wraps`` keeps the public name/docstring, which is what
    the function registry and ``repro doc`` surface.
    """
    name = func.__name__

    @functools.wraps(func)
    def wrapper(*args, **kwargs):
        if not _tracing_enabled():
            return func(*args, **kwargs)
        start = time.perf_counter()
        with _obs_trace(f"alg.{name}"):
            result = func(*args, **kwargs)
        _metrics_registry().histogram(f"alg.{name}.seconds").observe(
            time.perf_counter() - start
        )
        return result

    return wrapper


def instrument_namespace(namespace: dict, names: "list[str]") -> None:
    """Apply :func:`instrument_entry_point` over a module namespace.

    The single observability seam for the whole suite:
    ``repro.algorithms.__init__`` calls this over ``__all__`` once at
    import, so every public *function* entry point is traced without
    touching the ~25 algorithm modules. Classes and constants (e.g.
    ``UnionFind``, ``TRIAD_NAMES``) are skipped; calls between algorithm
    modules bypass the wrappers (they bind the raw functions), so only
    user-facing entry points produce spans.
    """
    for name in names:
        obj = namespace.get(name)
        if isinstance(obj, types.FunctionType):
            namespace[name] = instrument_entry_point(obj)


def as_csr(
    graph: "DirectedGraph | UndirectedGraph | CSRGraph", pool=None
) -> CSRGraph:
    """Snapshot ``graph`` to CSR (no-op if it already is one).

    Dynamic graphs go through the process-wide versioned snapshot cache
    (:mod:`repro.graphs.snapshot`): back-to-back algorithm calls on an
    unchanged graph reuse one conversion, and any mutation rebuilds it
    automatically. ``pool`` parallelises the build on a cache miss.
    """
    if isinstance(graph, CSRGraph):
        return graph
    if isinstance(graph, (DirectedGraph, UndirectedGraph)):
        return csr_snapshot(graph, pool=pool)
    raise AlgorithmError(f"expected a graph, got {type(graph).__name__}")


def scores_to_dict(csr: CSRGraph, values: np.ndarray) -> dict[int, float]:
    """Map a dense result vector back to ``{original_node_id: value}``."""
    return dict(zip(csr.node_ids.tolist(), values.tolist()))


def counts_to_dict(csr: CSRGraph, values: np.ndarray) -> dict[int, int]:
    """Integer-valued variant of :func:`scores_to_dict`."""
    return dict(zip(csr.node_ids.tolist(), (int(v) for v in values)))


def require_nodes(csr: CSRGraph, context: str) -> None:
    """Raise for the empty graph, which most algorithms cannot define."""
    if csr.num_nodes == 0:
        raise AlgorithmError(f"{context} is undefined on an empty graph")
