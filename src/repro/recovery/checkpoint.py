"""Atomic, checksummed catalog checkpoints.

A checkpoint materialises every object in a session's catalog to disk —
tables as ``.npz`` snapshots (:mod:`repro.tables.io_npz`), graphs
through :mod:`repro.graphs.serialize` — together with a manifest that
records, per object, the artifact's whole-file CRC32 and a CRC32 per
constituent array. Everything is written into a hidden temp directory
and committed by a single ``os.replace`` rename, so a crash at any
point mid-checkpoint leaves either the previous state or the new one —
never a readable-but-wrong directory.

Layout under the durability directory::

    <dir>/
      wal.jsonl                  the provenance WAL (never truncated)
      checkpoints/
        ckpt-000001/
          MANIFEST.json          self-checksummed commit record
          objects/<name>.npz     one artifact per catalog object

Verification failures at load time never pass silently: the damaged
artifact is renamed aside (``*.quarantined``) and reported as a typed
:class:`~repro.exceptions.CorruptionError`; recovery then re-derives
the object from its WAL lineage.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path

import numpy as np

from repro.exceptions import CorruptionError, InjectedFaultError, RecoveryError
from repro.faults import fault_point
from repro.graphs.directed import DirectedGraph
from repro.graphs.serialize import load_graph, save_graph
from repro.graphs.undirected import UndirectedGraph
from repro.obs.spans import trace as _obs_trace
from repro.tables.io_npz import load_table_npz, save_table_npz
from repro.tables.table import Table

MANIFEST_NAME = "MANIFEST.json"
CHECKPOINT_SUBDIR = "checkpoints"
CHECKPOINT_PREFIX = "ckpt-"
MANIFEST_FORMAT = 1


def array_crc(array: np.ndarray) -> int:
    """CRC32 of an array's contiguous little-endian bytes."""
    return zlib.crc32(np.ascontiguousarray(array).tobytes())


def file_crc(path: "str | os.PathLike[str]") -> int:
    """CRC32 of a file's raw bytes (streamed)."""
    crc = 0
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            crc = zlib.crc32(chunk, crc)
    return crc


def _canonical(payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _flip_byte(path: Path) -> None:
    """Corrupt one byte mid-file (the ``recovery.checkpoint.bit_flip``
    fault's payload — simulated disk rot)."""
    size = path.stat().st_size
    if size == 0:
        return
    offset = size // 2
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0xFF]))


def table_digests(table: Table) -> dict:
    """Per-array CRC32 digests of a table's persisted arrays."""
    digests = {"row_ids": array_crc(np.asarray(table.row_ids))}
    for name, _ in table.schema:
        digests[f"col_{name}"] = array_crc(table.column(name))
    return digests


def graph_digests(graph) -> dict:
    """Per-array CRC32 digests of a graph's persisted arrays."""
    sources, targets = graph.edge_arrays()
    return {
        "nodes": array_crc(graph.node_array()),
        "sources": array_crc(sources),
        "targets": array_crc(targets),
    }


def checkpoint_root(directory: "str | os.PathLike[str]") -> Path:
    """The ``checkpoints/`` directory under a durability directory."""
    return Path(directory) / CHECKPOINT_SUBDIR


def find_checkpoints(directory: "str | os.PathLike[str]") -> list[Path]:
    """Committed checkpoint directories, newest first."""
    root = checkpoint_root(directory)
    if not root.is_dir():
        return []
    found = [
        entry
        for entry in root.iterdir()
        if entry.is_dir() and entry.name.startswith(CHECKPOINT_PREFIX)
    ]
    return sorted(found, key=lambda p: p.name, reverse=True)


def _next_sequence(root: Path) -> int:
    highest = 0
    if root.is_dir():
        for entry in root.iterdir():
            name = entry.name.lstrip(".")
            if name.startswith("tmp-"):
                name = name[len("tmp-"):]
            if name.startswith(CHECKPOINT_PREFIX):
                try:
                    highest = max(highest, int(name[len(CHECKPOINT_PREFIX):]))
                except ValueError:
                    continue
    return highest + 1


def write_checkpoint(session, directory: "str | os.PathLike[str]") -> dict:
    """Write one atomic checkpoint of ``session``'s catalog; returns the manifest.

    Serialises every published object with per-array digests, writes the
    self-checksummed manifest, then commits the whole directory with one
    rename. Fault sites: ``recovery.checkpoint.write`` fires per object
    (an abort removes the partial ``.tmp-*`` directory before the
    exception propagates, so nothing uncommitted survives);
    ``recovery.checkpoint.bit_flip`` silently corrupts a just-written
    artifact so recovery-time verification can be exercised.
    """
    directory = Path(directory)
    root = checkpoint_root(directory)
    root.mkdir(parents=True, exist_ok=True)
    sequence = _next_sequence(root)
    final_dir = root / f"{CHECKPOINT_PREFIX}{sequence:06d}"
    tmp_dir = root / f".tmp-{CHECKPOINT_PREFIX}{sequence:06d}"
    objects_dir = tmp_dir / "objects"
    with _obs_trace("recovery.checkpoint", objects=len(session.Objects())):
        if tmp_dir.exists():
            _remove_tree(tmp_dir)
        objects_dir.mkdir(parents=True)
        try:
            entries: dict[str, dict] = {}
            for name in session.Objects():
                obj = session.GetObject(name)
                fault_point("recovery.checkpoint.write")
                entry = _write_object(objects_dir, name, obj)
                if entry is not None:
                    entries[name] = entry
            wal = getattr(session, "_durability", None)
            manifest = {
                "format": MANIFEST_FORMAT,
                "checkpoint": sequence,
                "wal_lsn": 0 if wal is None else wal.wal.last_lsn,
                "epoch": 0 if wal is None else wal.wal.epoch,
                "publish_counter": session._publish_counter,
                "objects": entries,
            }
            manifest["manifest_crc"] = zlib.crc32(_canonical(manifest))
            manifest_tmp = tmp_dir / (MANIFEST_NAME + ".tmp")
            with open(manifest_tmp, "w", encoding="utf-8") as handle:
                json.dump(manifest, handle, sort_keys=True, indent=1)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(manifest_tmp, tmp_dir / MANIFEST_NAME)
            os.replace(tmp_dir, final_dir)
        except BaseException:
            # An aborted write must not strand the temp directory: the
            # next writer would reuse the sequence number and readers
            # could mistake stale bytes for progress.
            _remove_tree(tmp_dir)
            raise
        _fsync_dir(root)
    return manifest


def _write_object(objects_dir: Path, name: str, obj) -> "dict | None":
    """Serialise one catalog object; returns its manifest entry."""
    path = objects_dir / f"{name}.npz"
    if isinstance(obj, Table):
        kind = "table"
        save_table_npz(obj, path)
        arrays = table_digests(obj)
    elif isinstance(obj, (DirectedGraph, UndirectedGraph)):
        kind = "graph"
        save_graph(obj, path)
        arrays = graph_digests(obj)
    else:
        # Not serialisable to NPZ — recovery re-derives it from the WAL.
        return {"kind": type(obj).__name__, "stored": False}
    crc = file_crc(path)
    try:
        fault_point("recovery.checkpoint.bit_flip")
    except InjectedFaultError:
        # Silent corruption: the checkpoint still commits; only
        # recovery-time verification can catch the damage.
        _flip_byte(path)
    return {
        "kind": kind,
        "stored": True,
        "file": f"objects/{name}.npz",
        "file_crc": crc,
        "arrays": arrays,
    }


def load_manifest(checkpoint_dir: Path) -> dict:
    """Parse and verify a checkpoint manifest.

    Raises :class:`CorruptionError` if the manifest is unreadable,
    unparsable, or fails its self-CRC — the whole checkpoint is then
    considered invalid and recovery falls back to an older one.
    """
    path = checkpoint_dir / MANIFEST_NAME
    try:
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except FileNotFoundError:
        raise CorruptionError(str(path), "manifest missing (checkpoint never committed?)")
    except (OSError, ValueError, UnicodeDecodeError) as error:
        raise CorruptionError(str(path), f"manifest unreadable: {error}")
    if not isinstance(manifest, dict) or "manifest_crc" not in manifest:
        raise CorruptionError(str(path), "manifest is not a checksummed object")
    expected = manifest.pop("manifest_crc")
    if zlib.crc32(_canonical(manifest)) != expected:
        raise CorruptionError(str(path), "manifest CRC mismatch")
    if manifest.get("format") != MANIFEST_FORMAT:
        raise CorruptionError(str(path), f"unsupported manifest format {manifest.get('format')!r}")
    return manifest


def verify_and_load_object(checkpoint_dir: Path, name: str, entry: dict, pool):
    """Verify one artifact's checksums and load it.

    Checks the whole-file CRC first (catches torn/garbled archives
    cheaply), parses the artifact, then re-derives every per-array
    digest and compares against the manifest. Any mismatch raises
    :class:`CorruptionError` naming the artifact and offending array.
    """
    path = checkpoint_dir / entry["file"]
    if not path.exists():
        raise CorruptionError(str(path), "artifact missing from checkpoint")
    if file_crc(path) != entry["file_crc"]:
        raise CorruptionError(str(path), "file CRC mismatch (artifact corrupted on disk)")
    try:
        if entry["kind"] == "table":
            obj = load_table_npz(path, pool=pool)
            digests = table_digests(obj)
        elif entry["kind"] == "graph":
            obj = load_graph(path)
            digests = graph_digests(obj)
        else:
            raise CorruptionError(str(path), f"unknown artifact kind {entry['kind']!r}")
    except CorruptionError:
        raise
    except Exception as error:  # typed load errors still mean a bad artifact here
        raise CorruptionError(str(path), f"artifact failed to parse: {error}")
    for array_name, expected in entry.get("arrays", {}).items():
        actual = digests.get(array_name)
        if actual != expected:
            raise CorruptionError(
                str(path), "array CRC mismatch", array=array_name
            )
    return obj


def quarantine(path: Path) -> Path:
    """Rename a corrupt artifact aside (``<name>.quarantined[.N]``)."""
    target = path.with_name(path.name + ".quarantined")
    counter = 0
    while target.exists():
        counter += 1
        target = path.with_name(f"{path.name}.quarantined.{counter}")
    os.replace(path, target)
    return target


def _remove_tree(path: Path) -> None:
    """Recursively delete a directory (stdlib-only, no shutil import cost)."""
    for entry in path.iterdir():
        if entry.is_dir() and not entry.is_symlink():
            _remove_tree(entry)
        else:
            entry.unlink()
    path.rmdir()


def _fsync_dir(path: Path) -> None:
    """Best-effort fsync of a directory entry (rename durability)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def durability_state(directory: "str | os.PathLike[str]") -> dict:
    """What durable state exists under ``directory`` (for arming checks)."""
    directory = Path(directory)
    wal = directory / "wal.jsonl"
    return {
        "wal_exists": wal.exists() and wal.stat().st_size > 0,
        "checkpoints": len(find_checkpoints(directory)),
    }


def ensure_fresh(directory: "str | os.PathLike[str]") -> None:
    """Refuse to arm a *new* session over an existing durable state.

    A fresh WAL appended after an old one would collide on LSNs and
    catalog names; the safe paths are :meth:`Ringo.recover` (resume) or
    pointing the session at an empty directory.
    """
    state = durability_state(directory)
    if state["wal_exists"] or state["checkpoints"]:
        raise RecoveryError(
            f"durability directory {directory} already holds a WAL or "
            f"checkpoints; use Ringo.recover({str(directory)!r}) to resume "
            f"it, or choose an empty directory"
        )
