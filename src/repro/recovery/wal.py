"""The provenance write-ahead log (WAL).

Ringo's provenance idea — record the full derivation of every object so
it can be regenerated rather than kept — doubles as a durability
mechanism (GraphX uses the same lineage trick for fault tolerance):
if every catalog-mutating operation is logged *before* its result is
published, a crashed session can be reconstructed by replaying the log.

Format: one JSON object per line (JSONL), CRC32-framed. Each record
carries a monotonically increasing ``lsn``, the operation name, its
JSON-encoded arguments, the catalog ids of its inputs, the catalog id
its output committed under, and a ``crc`` field — the CRC32 of the
canonical (sorted-keys, compact) JSON of the record *without* the crc
field. Appends are flushed and ``fsync``'d before the caller may
publish the result, so a record on disk is the commit point.

The reader tolerates a torn tail: a final line that fails to parse,
fails its CRC, or breaks LSN monotonicity ends the readable prefix
(everything after an invalid frame is untrusted, because later
operations may depend on the lost one).
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.exceptions import FencedError, InjectedFaultError, RecoveryError
from repro.faults import fault_point
from repro.recovery.epoch import EpochState, epoch_path, read_epoch
from repro.obs.metrics import registry as _metrics_registry
from repro.obs.spans import enabled as _tracing_enabled


def _count(name: str, amount: int = 1) -> None:
    """Bump a recovery.* counter — only while tracing is armed, so the
    metrics registry stays empty for untraced sessions."""
    if _tracing_enabled():
        _metrics_registry().counter(name).inc(amount)

WAL_FILENAME = "wal.jsonl"


def _canonical(payload: dict) -> bytes:
    """The byte string the frame CRC is computed over."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def frame_record(payload: dict) -> bytes:
    """Serialise one record payload into a CRC32-framed JSONL line."""
    crc = zlib.crc32(_canonical(payload))
    framed = dict(payload)
    framed["crc"] = crc
    return json.dumps(framed, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    ) + b"\n"


@dataclass(frozen=True)
class WalRecord:
    """One committed operation: op name, arguments, and object lineage."""

    lsn: int
    op: str
    args: dict
    inputs: tuple[str, ...]
    output: str
    #: Replication term the writer committed this record under. Plain
    #: (never-replicated) sessions stay at epoch 0 and omit the field
    #: from their frames, so pre-replication logs read back unchanged.
    epoch: int = 0

    @property
    def mutates(self) -> bool:
        """Whether this record mutates an existing object in place.

        In-place operations (``Select(..., in_place=True)``,
        ``OrderBy(..., in_place=True)``) log their target as both input
        and output; replay re-applies them to the already-catalogued
        object instead of publishing a new one.
        """
        return self.output in self.inputs


@dataclass
class WalTail:
    """Diagnostics about where (and why) a WAL scan stopped."""

    records: int = 0
    valid_bytes: int = 0
    torn: bool = False
    reason: "str | None" = None
    quarantined_lines: int = 0
    errors: list = field(default_factory=list)


def decode_line(line: bytes, expected_lsn: int) -> WalRecord:
    """Decode and verify one framed line; raises ``ValueError`` on damage."""
    obj = json.loads(line.decode("utf-8"))
    if not isinstance(obj, dict) or "crc" not in obj:
        raise ValueError("frame is not a CRC-framed record object")
    crc = obj.pop("crc")
    if zlib.crc32(_canonical(obj)) != crc:
        raise ValueError("CRC mismatch")
    lsn = obj["lsn"]
    if lsn != expected_lsn:
        raise ValueError(f"LSN {lsn} breaks monotonic sequence (expected {expected_lsn})")
    return WalRecord(
        lsn=lsn,
        op=str(obj["op"]),
        args=obj.get("args") or {},
        inputs=tuple(obj.get("inputs") or ()),
        output=str(obj["output"]),
        epoch=int(obj.get("epoch", 0)),
    )


def read_wal(path: "str | os.PathLike[str]") -> tuple[list[WalRecord], WalTail]:
    """Read the valid prefix of a WAL file.

    Returns ``(records, tail)``. A missing file reads as empty. The
    scan stops at the first unparsable, CRC-failing, or out-of-sequence
    frame; ``tail`` records how many bytes were valid and why the scan
    stopped, so a writer reopening the log can truncate the torn suffix.
    """
    path = Path(path)
    tail = WalTail()
    records: list[WalRecord] = []
    if not path.exists():
        return records, tail
    offset = 0
    with open(path, "rb") as handle:
        for raw in handle:
            line = raw.rstrip(b"\n")
            if raw[-1:] != b"\n":
                # No terminator: a torn final write.
                tail.torn = True
                tail.reason = "unterminated final frame"
                break
            if not line:
                offset += len(raw)
                continue
            try:
                record = decode_line(line, expected_lsn=len(records) + 1)
            except (ValueError, KeyError, TypeError, UnicodeDecodeError) as error:
                tail.torn = True
                tail.reason = f"invalid frame after LSN {len(records)}: {error}"
                break
            records.append(record)
            offset += len(raw)
    tail.records = len(records)
    tail.valid_bytes = offset
    return records, tail


class WriteAheadLog:
    """An append-only, fsync'd, CRC32-framed JSONL operation log.

    Thread-safe; one instance per durable session. Opening an existing
    file scans it, resumes the LSN sequence after the last valid
    record, and truncates any torn tail (the torn suffix was never
    committed — its operation raised or the process died mid-write).
    """

    def __init__(self, path: "str | os.PathLike[str]", fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._lock = threading.Lock()
        # The writer's replication term is fixed at open: the epoch the
        # directory held when this session armed. Promotion advances the
        # on-disk epoch (or fences it outright); ``append`` notices via
        # a cheap stat and refuses to commit at a superseded term.
        state = read_epoch(self.path.parent)
        self.epoch = state.epoch
        self._epoch_state = state
        self._epoch_stat: "tuple[int, int] | None" = None
        records, tail = read_wal(self.path)
        self._last_lsn = len(records)
        self.recovered_torn_tail = tail.torn
        if tail.torn:
            # Drop the torn suffix so new frames append after the valid
            # prefix instead of after garbage.
            with open(self.path, "r+b") as handle:
                handle.truncate(tail.valid_bytes)
        self._handle = open(self.path, "ab")
        self.appends = 0

    @property
    def last_lsn(self) -> int:
        """LSN of the newest committed record (0 for an empty log)."""
        return self._last_lsn

    def _check_fence(self) -> None:
        """Refuse to append once this directory's epoch has moved on.

        A missing ``EPOCH.json`` (the never-replicated common case) is
        one failed ``stat`` — the file's contents are only re-read when
        its stat signature changes.
        """
        path = epoch_path(self.path.parent)
        try:
            stat = os.stat(path)
        except FileNotFoundError:
            if self.epoch > 0:
                # The epoch file vanished out from under an epoch>0
                # writer — treat as unreadable state, not as epoch 0.
                raise FencedError(str(self.path), self.epoch, self.epoch)
            return
        signature = (stat.st_mtime_ns, stat.st_size)
        if signature != self._epoch_stat:
            self._epoch_state = read_epoch(self.path.parent)
            self._epoch_stat = signature
        state: EpochState = self._epoch_state
        if state.fenced or state.epoch > self.epoch:
            raise FencedError(str(self.path), self.epoch, state.epoch)

    def append(self, op: str, args: dict, inputs: Iterable[str], output: str) -> int:
        """Commit one operation record; returns its LSN.

        The frame is written, flushed, and (by default) ``fsync``'d
        before returning — callers publish the operation's result to
        the catalog only after this returns, making the on-disk record
        the commit point. Fault sites: ``recovery.wal.append`` fails
        the append cleanly; ``recovery.wal.torn_write`` writes half a
        frame first (a simulated crash mid-``write``).
        """
        if self._handle.closed:
            raise RecoveryError(f"write-ahead log {self.path} was used after close()")
        with self._lock:
            self._check_fence()
            fault_point("recovery.wal.append")
            lsn = self._last_lsn + 1
            payload = {
                "lsn": lsn,
                "op": op,
                "args": args,
                "inputs": list(inputs),
                "output": output,
            }
            if self.epoch > 0:
                payload["epoch"] = self.epoch
            data = frame_record(payload)
            try:
                fault_point("recovery.wal.torn_write")
            except InjectedFaultError:
                self._handle.write(data[: max(1, len(data) // 2)])
                self._handle.flush()
                os.fsync(self._handle.fileno())
                raise
            self._handle.write(data)
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())
            self._last_lsn = lsn
            self.appends += 1
        _count("recovery.wal.appends")
        return lsn

    def close(self) -> None:
        """Flush and close the underlying file handle."""
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()

    def stats(self) -> dict:
        """Append/LSN counters for ``Ringo.health()["recovery"]``."""
        return {
            "path": str(self.path),
            "appends": self.appends,
            "last_lsn": self._last_lsn,
            "recovered_torn_tail": self.recovered_torn_tail,
            "epoch": self.epoch,
        }


class SessionDurability:
    """The durable state one armed session owns: its directory and WAL."""

    def __init__(self, directory: "str | os.PathLike[str]") -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.wal = WriteAheadLog(self.directory / WAL_FILENAME)
        self.checkpoints_written = 0

    def close(self) -> None:
        """Close the WAL handle."""
        self.wal.close()

    def stats(self) -> dict:
        """The ``health()["recovery"]`` view of this session's durability."""
        return {
            "directory": str(self.directory),
            "wal": self.wal.stats(),
            "checkpoints_written": self.checkpoints_written,
        }
