"""Content digests for recovery equivalence checks.

Crash-recovery tests (and the CI ``recovery-smoke`` job) need to assert
"the recovered catalog equals the reference run's" without comparing
live Python objects. These helpers reduce each catalog object to a
stable SHA-256 over its logical content — schema, persistent row ids,
and decoded column values for tables; directedness, node set, and edge
multiset for graphs — so two sessions match iff their catalogs are
semantically identical.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np

from repro.graphs.directed import DirectedGraph
from repro.graphs.undirected import UndirectedGraph
from repro.tables.schema import ColumnType
from repro.tables.table import Table


def _feed(hasher, label: str, data: bytes) -> None:
    hasher.update(label.encode("utf-8"))
    hasher.update(str(len(data)).encode("utf-8"))
    hasher.update(data)


def table_digest(table: Table) -> str:
    """SHA-256 of a table's schema, row ids, and decoded columns."""
    hasher = hashlib.sha256()
    schema = [[name, col_type.value] for name, col_type in table.schema]
    _feed(hasher, "schema", json.dumps(schema).encode("utf-8"))
    _feed(hasher, "row_ids", np.ascontiguousarray(table.row_ids).tobytes())
    for name, col_type in table.schema:
        if col_type is ColumnType.STRING:
            # Decode through the pool: digests must not depend on which
            # StringPool (or code assignment) a session happened to use.
            payload = json.dumps(list(table.values(name))).encode("utf-8")
        else:
            payload = np.ascontiguousarray(table.column(name)).tobytes()
        _feed(hasher, f"col:{name}", payload)
    return hasher.hexdigest()


def graph_digest(graph) -> str:
    """SHA-256 of a graph's directedness, node set, and edge multiset."""
    hasher = hashlib.sha256()
    sources, targets = graph.edge_arrays()
    edges = np.stack(
        [np.asarray(sources, dtype=np.int64), np.asarray(targets, dtype=np.int64)]
    ).T
    if not graph.is_directed:
        edges = np.sort(edges, axis=1)
    order = np.lexsort((edges[:, 1], edges[:, 0]))
    _feed(hasher, "directed", b"1" if graph.is_directed else b"0")
    _feed(hasher, "nodes", np.sort(graph.node_array()).tobytes())
    _feed(hasher, "edges", np.ascontiguousarray(edges[order]).tobytes())
    return hasher.hexdigest()


def object_digest(obj) -> str:
    """Digest one catalog object (tables and graphs)."""
    if isinstance(obj, Table):
        return "table:" + table_digest(obj)
    if isinstance(obj, (DirectedGraph, UndirectedGraph)):
        return "graph:" + graph_digest(obj)
    raise TypeError(f"no digest for {type(obj).__name__} objects")


def catalog_digest(session) -> dict[str, str]:
    """Digest every object in a session's catalog, keyed by catalog name."""
    return {
        name: object_digest(session.GetObject(name)) for name in session.Objects()
    }
