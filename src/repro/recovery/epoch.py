"""Epoch fencing state for one durability directory.

Replication (:mod:`repro.replication`) needs a way to depose a primary
that can no longer be trusted to stop writing on its own — the classic
split-brain hazard after a failover. The mechanism is a monotonic
*epoch* (a Raft-style term) persisted next to the WAL as a small
atomic ``EPOCH.json``::

    {"epoch": 3, "fenced": false}

* Sessions read the epoch when they arm durability and stamp it into
  every WAL frame (and checkpoint manifest) they commit.
* Promotion bumps the epoch in the promoted replica's directory and
  writes ``{"epoch": N+1, "fenced": true}`` into the old primary's.
* :class:`~repro.recovery.wal.WriteAheadLog` re-checks this file on
  every append; a fenced directory — or a file whose epoch has moved
  past the writer's — raises a typed
  :class:`~repro.exceptions.FencedError` instead of committing.

A directory with no ``EPOCH.json`` is epoch 0 and unfenced, which keeps
plain (never-replicated) durable sessions entirely unaffected: the
per-append check is a single ``stat`` that fails fast.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.exceptions import RecoveryError

EPOCH_FILENAME = "EPOCH.json"


@dataclass(frozen=True)
class EpochState:
    """The fencing state of one durability directory."""

    epoch: int = 0
    fenced: bool = False


def epoch_path(directory: "str | os.PathLike[str]") -> Path:
    """Where a durability directory keeps its epoch file."""
    return Path(directory) / EPOCH_FILENAME


def read_epoch(directory: "str | os.PathLike[str]") -> EpochState:
    """The directory's current epoch state (absent file = epoch 0).

    A present-but-unreadable file is treated as *fenced*: an operator
    half-wrote it or the disk is lying, and the safe reading of either
    is "do not let this writer commit".
    """
    path = epoch_path(directory)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        return EpochState(
            epoch=int(payload["epoch"]), fenced=bool(payload.get("fenced", False))
        )
    except FileNotFoundError:
        return EpochState()
    except (OSError, ValueError, KeyError, TypeError):
        return EpochState(epoch=0, fenced=True)


def write_epoch(
    directory: "str | os.PathLike[str]", epoch: int, fenced: bool = False
) -> EpochState:
    """Atomically persist an epoch state (tmp file + ``os.replace``).

    Refuses to move the epoch backwards — the term is monotonic by
    construction, and a rollback would un-fence a deposed writer.
    """
    if epoch < 0:
        raise RecoveryError(f"epoch must be non-negative, got {epoch}")
    current = read_epoch(directory)
    if epoch < current.epoch:
        raise RecoveryError(
            f"epoch for {directory} cannot move backwards "
            f"({current.epoch} -> {epoch})"
        )
    path = epoch_path(directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump({"epoch": int(epoch), "fenced": bool(fenced)}, handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return EpochState(epoch=int(epoch), fenced=bool(fenced))


def fence(directory: "str | os.PathLike[str]", epoch: int) -> EpochState:
    """Fence a directory at ``epoch`` (never lowering an existing term).

    Used by promotion against the *old primary's* durability directory:
    any session still holding (or later reopening) that WAL fails its
    next append with :class:`~repro.exceptions.FencedError`.
    """
    current = read_epoch(directory)
    return write_epoch(directory, max(int(epoch), current.epoch), fenced=True)
