"""Replayable-operation registry: encoding and re-execution of WAL records.

Every durable (catalog-mutating) session operation has one entry here:
the engine encodes its arguments into JSON-safe form before appending
the WAL record, and recovery replays the record by dispatching to the
matching ``_replay_*`` function with the already-resolved input
objects. Replay calls the same underlying operator implementations the
engine methods call (``repro.tables``, ``repro.convert``,
``repro.algorithms``), so a replayed catalog is bit-identical to the
original — including persistent row ids, which every producing
operator assigns deterministically, and seeded generator output.

Two pseudo-ops carry *inline* state rather than a derivation:
``__adopt_table__`` / ``__adopt_graph__`` snapshot an input object that
was built outside the session's recorded surface (for example a table
passed in from user code), making the log self-contained.
"""

from __future__ import annotations

import numpy as np

from repro import algorithms as alg
from repro import convert, tables
from repro.exceptions import RecoveryError, ReplayError
from repro.tables.schema import ColumnType, Schema
from repro.tables.table import Table

# ----------------------------------------------------------------------
# JSON-safe encoding helpers
# ----------------------------------------------------------------------


def encode_value(value):
    """Encode one argument value into JSON-safe form."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return {"__ndarray__": value.tolist(), "dtype": str(value.dtype)}
    if isinstance(value, (list, tuple)):
        return [encode_value(v) for v in value]
    if isinstance(value, dict):
        return {str(k): encode_value(v) for k, v in value.items()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise RecoveryError(
        f"cannot encode {type(value).__name__} value into a WAL record"
    )


def decode_value(value):
    """Invert :func:`encode_value`."""
    if isinstance(value, dict):
        if "__ndarray__" in value:
            return np.asarray(value["__ndarray__"], dtype=np.dtype(value["dtype"]))
        return {k: decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    return value


def encode_schema(schema) -> "list | None":
    """``Schema`` (or schema-shaped sequence) → ``[[name, type], ...]``."""
    if schema is None:
        return None
    if not isinstance(schema, Schema):
        schema = Schema(schema)
    return [[name, col_type.value] for name, col_type in schema]


def decode_schema(encoded) -> "Schema | None":
    """Invert :func:`encode_schema`."""
    if encoded is None:
        return None
    return Schema([(name, ColumnType.parse(type_name)) for name, type_name in encoded])


def encode_predicate(predicate, table) -> dict:
    """Encode a Select predicate for faithful replay.

    Predicate strings are logged as-is (readable provenance). Any other
    predicate form — a boolean mask or a pre-built ``Predicate`` — is
    materialised against the input table *before* the operation runs
    and logged as an explicit mask, which replays identically.
    """
    if isinstance(predicate, str):
        return {"expr": predicate}
    from repro.tables.expressions import as_predicate

    mask = as_predicate(predicate).mask(table)
    return {"mask": np.asarray(mask, dtype=bool).tolist()}


def decode_predicate(encoded: dict):
    """Invert :func:`encode_predicate`."""
    if "expr" in encoded:
        return encoded["expr"]
    return np.asarray(encoded["mask"], dtype=bool)


def encode_table_payload(table: Table) -> dict:
    """Snapshot a table's full contents inline (adoption records)."""
    columns: dict[str, object] = {}
    for name, col_type in table.schema:
        if col_type is ColumnType.STRING:
            columns[name] = list(table.values(name))
        else:
            columns[name] = table.column(name).tolist()
    return {
        "schema": encode_schema(table.schema),
        "columns": columns,
        "row_ids": table.row_ids.tolist(),
    }


def decode_table_payload(payload: dict, pool) -> Table:
    """Rebuild a table from an inline snapshot, row ids included."""
    schema = decode_schema(payload["schema"])
    table = Table.from_columns(payload["columns"], schema=schema, pool=pool)
    table._replace_columns(
        {name: table._raw_column(name) for name in schema.names},
        np.asarray(payload["row_ids"], dtype=np.int64),
    )
    return table


def encode_graph_payload(graph) -> dict:
    """Snapshot a graph's edges and nodes inline (adoption records)."""
    sources, targets = graph.edge_arrays()
    return {
        "directed": bool(graph.is_directed),
        "nodes": graph.node_array().tolist(),
        "sources": sources.tolist(),
        "targets": targets.tolist(),
    }


def decode_graph_payload(payload: dict, pool):
    """Rebuild a graph from an inline snapshot, isolated nodes included."""
    graph = convert.graph_from_edge_arrays(
        np.asarray(payload["sources"], dtype=np.int64),
        np.asarray(payload["targets"], dtype=np.int64),
        directed=payload["directed"],
        pool=pool,
    )
    for node_id in payload["nodes"]:
        graph.add_node(int(node_id))
    return graph


# ----------------------------------------------------------------------
# Replay dispatch
# ----------------------------------------------------------------------


def _one(inputs, lsn, op):
    if len(inputs) < 1:
        raise ReplayError(lsn, op, "record names no input object")
    return inputs[0]


def _two(inputs, lsn, op):
    if len(inputs) < 2:
        raise ReplayError(lsn, op, "record names fewer than two input objects")
    return inputs[0], inputs[1]


def _replay_load_table_tsv(session, args, inputs, lsn):
    """Re-run ``LoadTableTSV`` from its source path."""
    return tables.load_table_tsv(
        decode_schema(args["schema"]), args["path"], pool=session.pool,
        **decode_value(args.get("kwargs") or {}),
    )


def _replay_load_table_npz(session, args, inputs, lsn):
    """Re-run ``LoadTableBinary`` from its source path."""
    return tables.load_table_npz(args["path"], pool=session.pool)


def _replay_table_from_columns(session, args, inputs, lsn):
    """Rebuild a ``TableFromColumns`` result from its inline payload."""
    return decode_table_payload(args["payload"], session.pool)


def _replay_table_from_hashmap(session, args, inputs, lsn):
    """Rebuild a ``TableFromHashMap`` result from its inline items."""
    mapping = {decode_value(k): decode_value(v) for k, v in args["items"]}
    return convert.table_from_hashmap(
        mapping, args["key_col"], args["value_col"], pool=session.pool
    )


def _replay_select(session, args, inputs, lsn):
    """Re-apply a Select (functional or in-place)."""
    return tables.select(
        _one(inputs, lsn, "Select"),
        decode_predicate(args["predicate"]),
        in_place=args["in_place"],
    )


def _replay_join(session, args, inputs, lsn):
    left, right = _two(inputs, lsn, "Join")
    return tables.join(
        left, right, args["left_on"], args["right_on"],
        **decode_value(args.get("kwargs") or {}),
    )


def _replay_project(session, args, inputs, lsn):
    return tables.project(_one(inputs, lsn, "Project"), args["columns"])


def _replay_rename(session, args, inputs, lsn):
    return tables.rename(_one(inputs, lsn, "Rename"), args["mapping"])


def _replay_group_by(session, args, inputs, lsn):
    aggregations = args["aggregations"]
    if aggregations is not None:
        aggregations = {out: tuple(spec) for out, spec in aggregations.items()}
    return tables.group_by(_one(inputs, lsn, "GroupBy"), args["keys"], aggregations)


def _replay_order_by(session, args, inputs, lsn):
    return tables.order_by(
        _one(inputs, lsn, "OrderBy"), args["keys"],
        ascending=args["ascending"], in_place=args["in_place"],
    )


def _replay_union(session, args, inputs, lsn):
    left, right = _two(inputs, lsn, "Union")
    return tables.union(left, right, distinct=args["distinct"])


def _replay_intersect(session, args, inputs, lsn):
    left, right = _two(inputs, lsn, "Intersect")
    return tables.intersect(left, right)


def _replay_minus(session, args, inputs, lsn):
    left, right = _two(inputs, lsn, "Minus")
    return tables.minus(left, right)


def _replay_sim_join(session, args, inputs, lsn):
    left, right = _two(inputs, lsn, "SimJoin")
    return tables.sim_join(
        left, right, args["on"], args["threshold"],
        **decode_value(args.get("kwargs") or {}),
    )


def _replay_next_k(session, args, inputs, lsn):
    return tables.next_k(
        _one(inputs, lsn, "NextK"), args["order_col"], args["k"],
        group_col=args["group_col"],
    )


def _replay_distinct(session, args, inputs, lsn):
    return tables.distinct(_one(inputs, lsn, "Distinct"), args["columns"])


def _replay_limit(session, args, inputs, lsn):
    return tables.limit(_one(inputs, lsn, "Limit"), args["count"])


def _replay_top_k(session, args, inputs, lsn):
    return tables.top_k(
        _one(inputs, lsn, "TopK"), args["column"], args["k"],
        ascending=args["ascending"],
    )


def _replay_value_counts(session, args, inputs, lsn):
    return tables.value_counts(_one(inputs, lsn, "ValueCounts"), args["column"])


def _replay_with_column(session, args, inputs, lsn):
    return tables.with_column(
        _one(inputs, lsn, "WithColumn"), args["name"], args["expression"],
        as_int=args["as_int"],
    )


def _replay_sample(session, args, inputs, lsn):
    return tables.sample_rows(
        _one(inputs, lsn, "Sample"), args["count"], seed=args["seed"]
    )


def _replay_to_graph(session, args, inputs, lsn):
    """Rebuild a graph from its source edge table (sort-first path)."""
    return convert.to_graph(
        _one(inputs, lsn, "ToGraph"), args["src_col"], args["dst_col"],
        directed=args["directed"], pool=session.workers,
    )


def _replay_edge_table(session, args, inputs, lsn):
    return convert.to_edge_table(
        _one(inputs, lsn, "GetEdgeTable"),
        pool=session.workers, string_pool=session.pool,
    )


def _replay_node_table(session, args, inputs, lsn):
    return convert.to_node_table(
        _one(inputs, lsn, "GetNodeTable"),
        include_degrees=args["include_degrees"],
        pool=session.workers, string_pool=session.pool,
    )


def _replay_gen_rmat(session, args, inputs, lsn):
    return alg.rmat(
        args["scale"], args["num_edges"], seed=args["seed"],
        directed=args["directed"],
    )


def _replay_gen_pref_attach(session, args, inputs, lsn):
    return alg.barabasi_albert(
        args["num_nodes"], args["edges_per_node"], seed=args["seed"]
    )


def _replay_gen_erdos_renyi(session, args, inputs, lsn):
    return alg.erdos_renyi_gnm(
        args["num_nodes"], args["num_edges"],
        directed=args["directed"], seed=args["seed"],
    )


def _replay_gen_planted_partition(session, args, inputs, lsn):
    return alg.planted_partition(
        args["num_communities"], args["community_size"],
        args["p_in"], args["p_out"], seed=args["seed"],
    )


def _replay_gen_configuration_model(session, args, inputs, lsn):
    return alg.configuration_model(args["degrees"], seed=args["seed"])


def _replay_rewire(session, args, inputs, lsn):
    return alg.rewire(
        _one(inputs, lsn, "Rewire"), swaps=args["swaps"], seed=args["seed"]
    )


def _replay_apply_ops(session, args, inputs, lsn):
    """Re-fold an op stream into the already-reconstructed graph.

    Crash replay and live streaming (``Ringo.TailWal``) share
    :func:`repro.incremental.ingest.apply_graph_ops`, so a recovered
    graph's mutation log advances exactly as the original session's did.
    """
    from repro.incremental.ingest import apply_graph_ops

    graph = _one(inputs, lsn, "ApplyOps")
    apply_graph_ops(graph, args["ops"])
    return graph


def _replay_adopt_table(session, args, inputs, lsn):
    """Rebuild an adopted (externally built) table from its snapshot."""
    return decode_table_payload(args["payload"], session.pool)


def _replay_adopt_graph(session, args, inputs, lsn):
    """Rebuild an adopted (externally built) graph from its snapshot."""
    return decode_graph_payload(args["payload"], session.workers)


#: op name → replay function(session, args, resolved_inputs, lsn) → object.
REPLAY = {
    "LoadTableTSV": _replay_load_table_tsv,
    "LoadTableBinary": _replay_load_table_npz,
    "TableFromColumns": _replay_table_from_columns,
    "TableFromHashMap": _replay_table_from_hashmap,
    "Select": _replay_select,
    "Join": _replay_join,
    "Project": _replay_project,
    "Rename": _replay_rename,
    "GroupBy": _replay_group_by,
    "OrderBy": _replay_order_by,
    "Union": _replay_union,
    "Intersect": _replay_intersect,
    "Minus": _replay_minus,
    "SimJoin": _replay_sim_join,
    "NextK": _replay_next_k,
    "Distinct": _replay_distinct,
    "Limit": _replay_limit,
    "TopK": _replay_top_k,
    "ValueCounts": _replay_value_counts,
    "WithColumn": _replay_with_column,
    "Sample": _replay_sample,
    "ToGraph": _replay_to_graph,
    "GetEdgeTable": _replay_edge_table,
    "GetNodeTable": _replay_node_table,
    "GenRMat": _replay_gen_rmat,
    "GenPrefAttach": _replay_gen_pref_attach,
    "GenErdosRenyi": _replay_gen_erdos_renyi,
    "GenPlantedPartition": _replay_gen_planted_partition,
    "GenConfigurationModel": _replay_gen_configuration_model,
    "Rewire": _replay_rewire,
    "ApplyOps": _replay_apply_ops,
    "__adopt_table__": _replay_adopt_table,
    "__adopt_graph__": _replay_adopt_graph,
}


def replay_record(session, record, resolved_inputs):
    """Re-execute one WAL record; returns the reconstructed object."""
    replay = REPLAY.get(record.op)
    if replay is None:
        raise ReplayError(record.lsn, record.op, "unknown operation in WAL")
    return replay(session, record.args, resolved_inputs, record.lsn)
