"""Replay recovery: checkpoint restore + WAL-suffix re-execution.

:func:`recover_session` reconstructs a crashed session's catalog in
three stages:

1. **Checkpoint selection** — scan ``checkpoints/`` newest-first; the
   first checkpoint whose manifest parses and passes its self-CRC wins.
   Invalid checkpoints are quarantined (renamed aside) and counted.
2. **Verified restore** — every artifact in the chosen checkpoint is
   checksum-verified (whole file + per array) before it enters the
   catalog. A corrupt artifact is quarantined with a typed
   :class:`~repro.exceptions.CorruptionError` — never loaded silently —
   and its object falls through to stage 3.
3. **Replay** — WAL records are re-executed in LSN order through the
   same operator implementations the live session used
   (:mod:`repro.recovery.ops`): records newer than the checkpoint's
   watermark rebuild the suffix; older records rebuild objects the
   checkpoint lost to quarantine (provenance as fault tolerance, the
   GraphX lineage idea). Determinism of the operators — persistent row
   ids included — guarantees the replayed catalog matches the original.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.exceptions import CorruptionError, RecoveryError, ReplayError
from repro.obs.metrics import registry as _metrics_registry
from repro.obs.spans import enabled as _tracing_enabled
from repro.obs.spans import trace as _obs_trace
from repro.recovery import ops as _ops
from repro.recovery.checkpoint import (
    MANIFEST_NAME,
    find_checkpoints,
    load_manifest,
    quarantine,
    verify_and_load_object,
)
from repro.recovery.wal import WAL_FILENAME, read_wal


def _count(name: str, amount: int = 1) -> None:
    if _tracing_enabled():
        _metrics_registry().counter(name).inc(amount)


def _name_suffix(name: str) -> int:
    """The numeric suffix of a catalog name (``table-12`` → 12)."""
    try:
        return int(name.rsplit("-", 1)[1])
    except (IndexError, ValueError):
        return 0


def recover_session(
    ringo_cls,
    directory: "str | os.PathLike[str]",
    strict: bool = False,
    arm: bool = True,
    **session_kwargs,
):
    """Reconstruct a session from ``directory``; returns a new armed session.

    See the module docstring for the three recovery stages. With
    ``strict=True`` any object that can be neither checksum-verified
    nor re-derived from the WAL raises; the default records it under
    ``health()["recovery"]["last_recovery"]["unrecovered"]`` instead.

    ``arm=False`` reconstructs the catalog but leaves the session
    *unarmed* — it holds no WAL handle and commits nothing. Replication
    followers use this: the replica applies shipped records to the
    on-disk WAL itself and keeps the in-memory session as a read-only
    mirror, arming it only at promotion.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise RecoveryError(f"no durability directory at {directory}")
    session = ringo_cls(**session_kwargs)
    report: dict = {
        "directory": str(directory),
        "checkpoint": None,
        "invalid_checkpoints": 0,
        "restored_objects": 0,
        "replayed_ops": 0,
        "wal_records": 0,
        "wal_torn_tail": False,
        "quarantined": [],
        "unrecovered": [],
    }
    with _obs_trace("recovery.recover", directory=str(directory)):
        try:
            _recover_into(session, directory, report, strict=strict, arm=arm)
        except BaseException:
            session.close()
            raise
    session._recovery_report = report
    return session


def _recover_into(
    session, directory: Path, report: dict, strict: bool, arm: bool = True
) -> None:
    manifest = None
    chosen: "Path | None" = None
    from_checkpoint: set[str] = set()
    for candidate in find_checkpoints(directory):
        try:
            manifest = load_manifest(candidate)
        except CorruptionError as error:
            moved = quarantine(candidate)
            report["invalid_checkpoints"] += 1
            report["quarantined"].append(
                {
                    "artifact": str(candidate / MANIFEST_NAME),
                    "moved_to": str(moved),
                    "error": str(error),
                }
            )
            _count("recovery.quarantined_objects")
            continue
        chosen = candidate
        break

    if chosen is not None:
        report["checkpoint"] = chosen.name
        for name in sorted(manifest["objects"], key=_name_suffix):
            entry = manifest["objects"][name]
            if not entry.get("stored", False):
                continue  # replay-only object; stage 3 rebuilds it
            try:
                obj = verify_and_load_object(chosen, name, entry, session.pool)
            except CorruptionError as error:
                artifact = chosen / entry["file"]
                moved = quarantine(artifact) if artifact.exists() else None
                report["quarantined"].append(
                    {
                        "artifact": str(artifact),
                        "moved_to": None if moved is None else str(moved),
                        "object": name,
                        "error": str(error),
                    }
                )
                _count("recovery.quarantined_objects")
                continue
            session._publish_as(name, obj)
            from_checkpoint.add(name)
            report["restored_objects"] += 1

    watermark = 0 if manifest is None else int(manifest.get("wal_lsn", 0))
    records, tail = read_wal(directory / WAL_FILENAME)
    report["wal_records"] = len(records)
    report["wal_torn_tail"] = tail.torn

    unavailable: set[str] = set()
    for record in records:
        if record.mutates:
            # Mutations baked into the checkpointed artifact must not
            # be re-applied; mutations newer than the watermark — or
            # targeting an object the checkpoint lost — must be.
            if record.output in from_checkpoint and record.lsn <= watermark:
                continue
        elif record.output in session._catalog:
            continue
        if any(name in unavailable for name in record.inputs):
            unavailable.add(record.output)
            report["unrecovered"].append(
                {"object": record.output, "lsn": record.lsn,
                 "error": "an input object could not be recovered"}
            )
            continue
        try:
            resolved = [session._catalog[name] for name in record.inputs]
        except KeyError as missing:
            raise ReplayError(record.lsn, record.op, f"input {missing} not in catalog")
        try:
            obj = _ops.replay_record(session, record, resolved)
        except ReplayError:
            raise
        except Exception as error:
            if strict:
                raise ReplayError(record.lsn, record.op, f"replay failed: {error}")
            unavailable.add(record.output)
            report["unrecovered"].append(
                {"object": record.output, "lsn": record.lsn, "error": str(error)}
            )
            continue
        if not record.mutates:
            session._publish_as(record.output, obj)
        report["replayed_ops"] += 1
        _count("recovery.replayed_ops")

    counter = 0 if manifest is None else int(manifest.get("publish_counter", 0))
    for name in session._catalog:
        counter = max(counter, _name_suffix(name))
    session._publish_counter = counter

    # A quarantined artifact whose object never made it back (no WAL
    # lineage to replay it from) is permanently lost — say so.
    for entry in report["quarantined"]:
        name = entry.get("object")
        if name and name not in session._catalog and not any(
            lost["object"] == name for lost in report["unrecovered"]
        ):
            report["unrecovered"].append(
                {"object": name, "lsn": None,
                 "error": "quarantined and no WAL lineage to replay"}
            )

    if strict and report["unrecovered"]:
        raise CorruptionError(
            str(directory),
            f"strict recovery: {len(report['unrecovered'])} object(s) unrecovered",
        )

    if arm:
        session._arm_durability(directory, resume=True)
