"""repro.recovery — crash-consistent session durability.

Three cooperating pieces give an interactive session restart
resilience (see ``docs/recovery.md`` for formats and a walkthrough):

* **provenance WAL** (:mod:`repro.recovery.wal`) — every
  catalog-mutating operation appends a CRC32-framed, ``fsync``'d JSONL
  record of the op, its arguments, and its input/output object ids
  *before* the result is published; the on-disk record is the commit
  point.
* **checksummed checkpoints** (:mod:`repro.recovery.checkpoint`) —
  ``Ringo.checkpoint()`` materialises the catalog with per-array CRC32
  digests and commits it with one atomic rename, so a crash
  mid-checkpoint never leaves a readable-but-wrong state.
* **replay recovery** (:mod:`repro.recovery.recover`) —
  ``Ringo.recover(dir)`` restores the newest *valid* checkpoint
  (quarantining anything that fails verification, typed
  :class:`~repro.exceptions.CorruptionError`) and re-executes the WAL
  through the normal operator dispatch to reconstruct everything else —
  the paper's provenance records doubling as a fault-tolerance
  mechanism, as in GraphX's lineage-based recovery.

Arm durability with ``Ringo(durability="state/")`` or the
``RINGO_DURABILITY`` environment variable.
"""

from repro.recovery.checkpoint import (
    array_crc,
    file_crc,
    find_checkpoints,
    load_manifest,
    quarantine,
    verify_and_load_object,
    write_checkpoint,
)
from repro.recovery.digest import (
    catalog_digest,
    graph_digest,
    object_digest,
    table_digest,
)
from repro.recovery.ops import REPLAY, replay_record
from repro.recovery.recover import recover_session
from repro.recovery.wal import (
    SessionDurability,
    WAL_FILENAME,
    WalRecord,
    WalTail,
    WriteAheadLog,
    read_wal,
)

__all__ = [
    "REPLAY",
    "SessionDurability",
    "WAL_FILENAME",
    "WalRecord",
    "WalTail",
    "WriteAheadLog",
    "array_crc",
    "catalog_digest",
    "file_crc",
    "find_checkpoints",
    "graph_digest",
    "load_manifest",
    "object_digest",
    "quarantine",
    "read_wal",
    "recover_session",
    "replay_record",
    "table_digest",
    "verify_and_load_object",
    "write_checkpoint",
]
