"""Exception hierarchy for the Ringo reproduction.

Every error raised deliberately by this package derives from
:class:`RingoError`, so callers embedding the engine can catch one type.
"""

from __future__ import annotations


class RingoError(Exception):
    """Base class for all errors raised by this package."""


class SchemaError(RingoError):
    """A table schema is malformed or an operation violates it."""


class ColumnNotFoundError(SchemaError):
    """A referenced column does not exist in the table."""

    def __init__(self, name: str, available: tuple[str, ...] = ()):
        self.name = name
        self.available = tuple(available)
        hint = f"; available columns: {', '.join(self.available)}" if available else ""
        super().__init__(f"column {name!r} not found{hint}")


class TypeMismatchError(SchemaError):
    """An operation combined columns or values of incompatible types."""


class GraphError(RingoError):
    """A graph structure was used incorrectly."""


class NodeNotFoundError(GraphError):
    """A referenced node id is not present in the graph."""

    def __init__(self, node_id: int):
        self.node_id = node_id
        super().__init__(f"node {node_id} not in graph")


class EdgeNotFoundError(GraphError):
    """A referenced edge is not present in the graph."""

    def __init__(self, src: int, dst: int):
        self.src = src
        self.dst = dst
        super().__init__(f"edge ({src} -> {dst}) not in graph")


class ExpressionError(RingoError):
    """A selection predicate string could not be parsed or evaluated."""


class ConversionError(RingoError):
    """A table/graph conversion was requested with invalid inputs."""


class AlgorithmError(RingoError):
    """A graph algorithm was invoked with invalid parameters or input."""


class ConvergenceError(AlgorithmError):
    """An iterative algorithm failed to converge within its iteration cap."""

    def __init__(self, algorithm: str, iterations: int, residual: float):
        self.algorithm = algorithm
        self.iterations = iterations
        self.residual = residual
        super().__init__(
            f"{algorithm} did not converge after {iterations} iterations "
            f"(residual {residual:.3e})"
        )
