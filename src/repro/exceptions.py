"""Exception hierarchy for the Ringo reproduction.

Every error raised deliberately by this package derives from
:class:`RingoError`, so callers embedding the engine can catch one type.
"""

from __future__ import annotations


class RingoError(Exception):
    """Base class for all errors raised by this package."""


class SchemaError(RingoError):
    """A table schema is malformed or an operation violates it."""


class ColumnNotFoundError(SchemaError):
    """A referenced column does not exist in the table."""

    def __init__(self, name: str, available: tuple[str, ...] = ()):
        self.name = name
        self.available = tuple(available)
        hint = f"; available columns: {', '.join(self.available)}" if available else ""
        super().__init__(f"column {name!r} not found{hint}")


class TypeMismatchError(SchemaError):
    """An operation combined columns or values of incompatible types."""


class GraphError(RingoError):
    """A graph structure was used incorrectly."""


class NodeNotFoundError(GraphError):
    """A referenced node id is not present in the graph."""

    def __init__(self, node_id: int):
        self.node_id = node_id
        super().__init__(f"node {node_id} not in graph")


class EdgeNotFoundError(GraphError):
    """A referenced edge is not present in the graph."""

    def __init__(self, src: int, dst: int):
        self.src = src
        self.dst = dst
        super().__init__(f"edge ({src} -> {dst}) not in graph")


class ExpressionError(RingoError):
    """A selection predicate string could not be parsed or evaluated."""


class ExecutionError(RingoError):
    """Parallel or resilient execution failed (pool, retry, deadline)."""


class PoolClosedError(ExecutionError):
    """A :class:`WorkerPool` was used after ``close()``."""

    def __init__(self, workers: int):
        self.workers = workers
        super().__init__(
            f"worker pool ({workers} workers) was used after close()"
        )


class WorkerTimeoutError(ExecutionError):
    """A pool call exceeded its deadline; outstanding work was cancelled."""

    def __init__(self, timeout: float, pending: int, cancelled: int):
        self.timeout = timeout
        self.pending = pending
        self.cancelled = cancelled
        super().__init__(
            f"parallel call exceeded {timeout:.3f}s deadline; "
            f"{pending} partition(s) unfinished, {cancelled} cancelled"
        )


class WorkerCrashedError(ExecutionError):
    """A process-pool worker died mid-kernel (signal, OOM kill, hard exit).

    Raised parent-side when the process backend's executor reports a
    broken pool; the kernel dispatcher treats it as a cue to rebuild the
    pool and re-run the call on the thread backend. Single string
    argument by design: instances cross process boundaries and must
    survive a pickle round-trip.
    """


class TransientError(ExecutionError):
    """A retryable failure — a :class:`RetryPolicy` may re-attempt it."""


class InjectedFaultError(TransientError):
    """A fault deliberately raised by :mod:`repro.faults` at a fault site."""

    def __init__(self, site: str, trigger: int):
        self.site = site
        self.trigger = trigger
        super().__init__(f"injected fault at site {site!r} (trigger #{trigger})")


class RetryExhaustedError(ExecutionError):
    """A retried operation kept failing through all allowed attempts."""

    def __init__(self, attempts: int, last_error: BaseException):
        self.attempts = attempts
        self.last_error = last_error
        super().__init__(
            f"operation failed after {attempts} attempt(s); "
            f"last error: {type(last_error).__name__}: {last_error}"
        )


class MemoryBudgetError(RingoError):
    """An operation's estimated allocation exceeds the session budget."""

    def __init__(self, operation: str, estimated: int, limit: int):
        self.operation = operation
        self.estimated = estimated
        self.limit = limit
        super().__init__(
            f"{operation} estimated at {estimated} bytes exceeds the "
            f"session memory budget of {limit} bytes"
        )


class AnalysisError(RingoError):
    """The static-analysis / runtime-checking subsystem found a problem.

    Base class for the correctness tooling in :mod:`repro.analysis`:
    lint-framework failures, detected data races, and snapshot-sanitizer
    violations all derive from it, so a session embedding the checkers
    can catch one type.
    """


class RaceDetected(AnalysisError):
    """The lockset race detector observed an unsynchronized shared access.

    Carries both conflicting access stacks so the report pinpoints the
    two code paths that touched the object without a common lock.
    """

    def __init__(
        self,
        label: str,
        first_thread: str,
        second_thread: str,
        first_stack: str = "",
        second_stack: str = "",
    ):
        self.label = label
        self.first_thread = first_thread
        self.second_thread = second_thread
        self.first_stack = first_stack
        self.second_stack = second_stack
        super().__init__(
            f"race on {label}: written by {first_thread} and {second_thread} "
            f"with no common lock held"
        )


class SanitizerError(AnalysisError):
    """A CSR snapshot violated a structural invariant after conversion."""

    def __init__(self, check: str, detail: str):
        self.check = check
        self.detail = detail
        super().__init__(f"snapshot sanitizer: {check} failed — {detail}")


class CorruptionError(RingoError):
    """A persisted artifact failed integrity verification.

    Raised (or reported through ``Ringo.health()["recovery"]``) when a
    checksum does not match the bytes on disk: a bit-flipped checkpoint
    array, a torn write-ahead-log frame, or a garbled snapshot file.
    Carries the artifact path and a human-readable reason so operators
    can find the quarantined file.
    """

    def __init__(self, path: str, reason: str, array: "str | None" = None):
        self.path = str(path)
        self.array = array
        self.reason = reason
        where = f" (array {array!r})" if array else ""
        super().__init__(f"{path}{where}: {reason}")


class CorruptInputError(CorruptionError):
    """An input file (NPZ/TSV snapshot) is truncated or garbled.

    The typed replacement for the raw ``zipfile``/``numpy`` exceptions a
    damaged binary snapshot used to leak, and for the generic schema
    error a mid-row-truncated TSV used to raise. ``path`` names the
    file and ``array`` (when known) the offending member.
    """


class RecoveryError(RingoError):
    """The durability layer was misused or could not make progress."""


class ReplayError(RecoveryError):
    """Replaying a write-ahead-log record did not reproduce the catalog.

    Raised when a logged operation cannot be re-executed (unknown op,
    missing input object) or re-executes to a different catalog name
    than the one the log committed.
    """

    def __init__(self, lsn: int, op: str, reason: str):
        self.lsn = lsn
        self.op = op
        self.reason = reason
        super().__init__(f"WAL record {lsn} ({op}): {reason}")


class ServiceError(RingoError):
    """The multi-tenant session service refused or failed a request.

    Base class for the typed rejections :mod:`repro.service` returns in
    place of crashes: admission denials, shed requests, and expired
    deadlines all derive from it, so a client can catch one type.
    """


class AdmissionRejected(ServiceError):
    """The service's byte ledger cannot admit another resident session.

    The typed replacement for an OOM: a tenant whose budget does not fit
    the machine (even after evicting every idle session) is refused at
    the front door rather than allowed to take the server down.
    """

    def __init__(self, tenant: str, requested: int, available: int):
        self.tenant = tenant
        self.requested = requested
        self.available = available
        super().__init__(
            f"tenant {tenant!r} needs {requested} bytes but only "
            f"{available} bytes of the service memory ledger are free"
        )


class AdmissionContention(AdmissionRejected, TransientError):
    """Admission denied by *current* contention, not by capacity.

    The tenant's budget would fit an empty ledger, but every charged
    byte belongs to a busy session right now. Sessions go idle and get
    evicted, so this clears on its own — hence transient: clients (and
    the service's retry machinery) may back off and retry, where a
    plain :class:`AdmissionRejected` (budget exceeds total capacity,
    can never fit) must not be retried.
    """


class RequestRejected(ServiceError):
    """A request was shed (queue saturation) or refused (server draining).

    ``reason`` distinguishes ``"shed"`` (load shedding dropped it,
    oldest-deadline-first) from ``"draining"`` (the server is shutting
    down and no longer accepts work).
    """

    def __init__(self, request_id: object, reason: str):
        self.request_id = request_id
        self.reason = reason
        super().__init__(f"request {request_id!r} rejected: {reason}")


class DeadlineExceededError(ServiceError):
    """A request's deadline expired before (or while) it executed.

    ``phase`` records where the deadline hit: ``"queued"`` (the request
    never started — cooperative cancellation) or ``"running"`` (the
    engine call outlived its budget; its session-side effects may still
    have committed, as with any RPC timeout).
    """

    def __init__(self, request_id: object, deadline_s: float, phase: str):
        self.request_id = request_id
        self.deadline_s = deadline_s
        self.phase = phase
        super().__init__(
            f"request {request_id!r} exceeded its {deadline_s:.3f}s "
            f"deadline while {phase}"
        )


class ReplicationError(RingoError):
    """The hot-standby replication layer refused or failed an operation.

    Base class for the typed failures :mod:`repro.replication` raises
    instead of silently serving wrong answers: fenced writers, detected
    divergence, and stale replicas all derive from it.
    """


class FencedError(ReplicationError):
    """A deposed writer tried to append at a superseded epoch.

    Epoch fencing is the split-brain guard: promotion bumps a monotonic
    term stamped into every WAL frame and checkpoint manifest, and
    writes the new term (with a fence marker) into the old primary's
    durability directory. A revived or still-running old primary sees
    the fence on its next append and gets this error instead of
    committing a record the promoted service will never see.
    """

    def __init__(self, path: str, writer_epoch: int, current_epoch: int):
        self.path = str(path)
        self.writer_epoch = writer_epoch
        self.current_epoch = current_epoch
        super().__init__(
            f"writer at epoch {writer_epoch} is fenced: {path} has been "
            f"promoted to epoch {current_epoch}; this session must not "
            f"commit further writes"
        )


class DivergenceError(ReplicationError):
    """A replica's catalog digest stopped matching its primary's.

    Raised when the periodic digest exchange at a ship watermark finds a
    mismatch (or the shipped op stream can no longer be applied). The
    replica quarantines its state and waits for a re-seed from the
    primary's latest checkpoint — it never keeps serving answers it
    knows to be wrong.
    """

    def __init__(self, tenant: str, lsn: int, reason: str):
        self.tenant = tenant
        self.lsn = lsn
        self.reason = reason
        super().__init__(
            f"replica state for tenant {tenant!r} diverged at LSN {lsn}: "
            f"{reason}"
        )


class ReplicaLagError(ReplicationError, TransientError):
    """A replica refused a read because it has fallen too far behind.

    Transient by design: replication catches up (or a promotion makes
    the replica authoritative), so clients — and the shared
    :class:`RetryPolicy` machinery — may back off and retry rather than
    accept a stale answer past the configured lag threshold.
    """

    def __init__(self, tenant: str, lag_records: int, threshold: int):
        self.tenant = tenant
        self.lag_records = lag_records
        self.threshold = threshold
        super().__init__(
            f"replica is {lag_records} record(s) behind for tenant "
            f"{tenant!r} (degrade threshold {threshold}); retry after it "
            f"catches up"
        )


class ConversionError(RingoError):
    """A table/graph conversion was requested with invalid inputs."""


class AlgorithmError(RingoError):
    """A graph algorithm was invoked with invalid parameters or input."""


class ConvergenceError(AlgorithmError):
    """An iterative algorithm failed to converge within its iteration cap."""

    def __init__(self, algorithm: str, iterations: int, residual: float):
        self.algorithm = algorithm
        self.iterations = iterations
        self.residual = residual
        super().__init__(
            f"{algorithm} did not converge after {iterations} iterations "
            f"(residual {residual:.3e})"
        )
