"""Synthetic graph-collection catalog (paper Table 1).

Table 1 classifies the 71 public graphs of the Stanford Large Network
Collection by edge count. The real collection isn't available offline,
so the catalog here draws 71 edge counts log-uniformly *within the
paper's published buckets* — by construction the bucket histogram
matches Table 1 exactly, and the per-graph sizes are plausible stand-ins
for the derived statistics (median size, RAM estimates).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.statistics import edge_count_in_buckets
from repro.tables.schema import ColumnType, Schema
from repro.tables.table import Table

BUCKET_BOUNDS = [100_000, 1_000_000, 10_000_000, 100_000_000, 1_000_000_000]
BUCKET_LABELS = ["<0.1M", "0.1M - 1M", "1M - 10M", "10M - 100M", "100M - 1B", ">1B"]
PAPER_BUCKET_COUNTS = [16, 25, 17, 7, 5, 1]
BYTES_PER_EDGE = 20
"""The paper's storage assumption: "Assuming 20 bytes of storage per edge"."""


@dataclass(frozen=True)
class CatalogEntry:
    """One graph in the synthetic collection."""

    name: str
    num_edges: int

    @property
    def estimated_ram_bytes(self) -> int:
        """RAM estimate at the paper's 20 bytes/edge."""
        return self.num_edges * BYTES_PER_EDGE


def generate_catalog(seed: int = 0) -> list[CatalogEntry]:
    """71 synthetic graphs whose sizes match Table 1's histogram."""
    rng = np.random.default_rng(seed)
    bounds = [1] + BUCKET_BOUNDS + [7_000_000_000]  # >1B capped near Yahoo-web
    entries: list[CatalogEntry] = []
    index = 0
    for bucket, count in enumerate(PAPER_BUCKET_COUNTS):
        low = np.log10(bounds[bucket])
        high = np.log10(bounds[bucket + 1])
        sizes = np.power(10.0, rng.uniform(low, high, size=count)).astype(np.int64)
        sizes = np.clip(sizes, bounds[bucket], bounds[bucket + 1] - 1)
        for size in sizes.tolist():
            entries.append(CatalogEntry(name=f"graph-{index:02d}", num_edges=size))
            index += 1
    return entries


def catalog_histogram(entries: list[CatalogEntry]) -> list[int]:
    """Bucket counts for a catalog (comparable to Table 1's rows)."""
    return edge_count_in_buckets([e.num_edges for e in entries], BUCKET_BOUNDS)


def catalog_table(entries: list[CatalogEntry]) -> Table:
    """The catalog as a Ringo table (``Name``, ``Edges``, ``RamBytes``)."""
    schema = Schema(
        [("Name", ColumnType.STRING), ("Edges", ColumnType.INT), ("RamBytes", ColumnType.INT)]
    )
    return Table.from_columns(
        {
            "Name": [e.name for e in entries],
            "Edges": [e.num_edges for e in entries],
            "RamBytes": [e.estimated_ram_bytes for e in entries],
        },
        schema=schema,
    )


def fraction_fitting_in_ram(entries: list[CatalogEntry], ram_bytes: int) -> float:
    """Fraction of catalog graphs whose RAM estimate fits in ``ram_bytes``.

    The paper's conclusion — "90% of graphs have less than 100M edges"
    and even the largest fits a 1TB machine — is checked against this.
    """
    if not entries:
        return 0.0
    fitting = sum(1 for e in entries if e.estimated_ram_bytes <= ram_bytes)
    return fitting / len(entries)
