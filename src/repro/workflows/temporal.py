"""Temporal snapshots — graphs from time-windowed event tables.

The paper's intro motivates "tracing the propagation of information in a
social network"; the natural tool is a sequence of graph snapshots, one
per time window, built from an interaction event table. Each snapshot is
constructed with the sort-first path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.convert.table_to_graph import graph_from_edge_arrays
from repro.exceptions import ConversionError
from repro.graphs.directed import DirectedGraph
from repro.tables.schema import ColumnType
from repro.tables.table import Table
from repro.util.validation import check_positive


@dataclass(frozen=True)
class Snapshot:
    """One time window's interaction graph."""

    start: float
    stop: float
    graph: DirectedGraph

    @property
    def num_edges(self) -> int:
        """Edges in this window's graph."""
        return self.graph.num_edges


def temporal_snapshots(
    table: Table,
    time_col: str,
    src_col: str,
    dst_col: str,
    window: float,
    cumulative: bool = False,
) -> list[Snapshot]:
    """Split an event table into fixed-width windows, one graph each.

    Windows tile ``[min_time, max_time]``; empty windows produce empty
    graphs so the timeline stays regular. ``cumulative=True`` makes each
    snapshot include all events up to its window's end (the growing-
    network view).

    >>> events = Table.from_columns(
    ...     {"t": [0, 5, 12], "a": [1, 2, 3], "b": [2, 3, 4]})
    >>> snaps = temporal_snapshots(events, "t", "a", "b", window=10)
    >>> [s.num_edges for s in snaps]
    [2, 1]
    """
    check_positive(window, "window")
    for name in (src_col, dst_col):
        if table.schema.require(name) is not ColumnType.INT:
            raise ConversionError(f"endpoint column {name!r} must be integer")
    if table.schema.require(time_col) is ColumnType.STRING:
        raise ConversionError(f"time column {time_col!r} must be numeric")
    if table.num_rows == 0:
        return []
    times = table.column(time_col).astype(np.float64)
    sources = table.column(src_col)
    targets = table.column(dst_col)
    first = float(times.min())
    last = float(times.max())
    snapshots: list[Snapshot] = []
    start = first
    while start <= last:
        stop = start + window
        if cumulative:
            mask = times < stop
        else:
            mask = (times >= start) & (times < stop)
        graph = graph_from_edge_arrays(sources[mask], targets[mask], directed=True)
        snapshots.append(Snapshot(start=start, stop=stop, graph=graph))
        start = stop
    return snapshots


def growth_curve(snapshots: "list[Snapshot]") -> list[tuple[float, int, int]]:
    """Per-snapshot ``(window_start, nodes, edges)`` series."""
    return [
        (snap.start, snap.graph.num_nodes, snap.graph.num_edges)
        for snap in snapshots
    ]
