"""Benchmark datasets — the scaled LiveJournal / Twitter2010 stand-ins.

The paper benchmarks on LiveJournal (4.8M nodes / 69M edges) and
Twitter2010 (42M nodes / 1.5B edges), neither of which is available
offline — and a pure-Python engine would need hours, not seconds, at
those sizes. Per DESIGN.md, each is replaced by an R-MAT graph with the
standard skew parameters, scaled down ~100×/~1000× while preserving the
contrast the paper's tables rely on (Twitter2010 several times larger
than LiveJournal, both heavy-tailed).

``REPRO_SCALE_FACTOR`` multiplies the edge budget for users who want to
push the harness closer to paper scale.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.algorithms.generators import DEFAULT_RMAT, rmat_edges
from repro.convert.table_to_graph import graph_from_edge_arrays
from repro.graphs.directed import DirectedGraph
from repro.tables.schema import ColumnType, Schema
from repro.tables.strings import StringPool
from repro.tables.table import Table

SRC_COLUMN = "SrcId"
DST_COLUMN = "DstId"


@dataclass(frozen=True)
class DatasetSpec:
    """A synthetic benchmark dataset definition."""

    name: str
    paper_name: str
    scale: int
    num_edges: int
    seed: int
    paper_nodes: str
    paper_edges: str

    @property
    def scaled_edges(self) -> int:
        """Edge budget after the ``REPRO_SCALE_FACTOR`` multiplier."""
        factor = float(os.environ.get("REPRO_SCALE_FACTOR", "1"))
        return max(int(self.num_edges * factor), 1)


LJ_SCALED = DatasetSpec(
    name="lj-scaled",
    paper_name="LiveJournal",
    scale=14,
    num_edges=200_000,
    seed=42,
    paper_nodes="4.8M",
    paper_edges="69M",
)

TW_SCALED = DatasetSpec(
    name="tw-scaled",
    paper_name="Twitter2010",
    scale=16,
    num_edges=800_000,
    seed=43,
    paper_nodes="42M",
    paper_edges="1.5B",
)

BENCHMARK_DATASETS = (LJ_SCALED, TW_SCALED)


@lru_cache(maxsize=8)
def _cached_edges(name: str, scale: int, edges: int, seed: int):
    sources, targets = rmat_edges(scale, edges, DEFAULT_RMAT, seed)
    return sources, targets


def edge_arrays(spec: DatasetSpec) -> tuple[np.ndarray, np.ndarray]:
    """The dataset's raw edge arrays (cached per process)."""
    return _cached_edges(spec.name, spec.scale, spec.scaled_edges, spec.seed)


def make_edge_table(spec: DatasetSpec, pool: StringPool | None = None) -> Table:
    """The dataset as a Ringo edge table (``SrcId``, ``DstId``)."""
    sources, targets = edge_arrays(spec)
    schema = Schema([(SRC_COLUMN, ColumnType.INT), (DST_COLUMN, ColumnType.INT)])
    return Table(
        schema,
        {SRC_COLUMN: sources.copy(), DST_COLUMN: targets.copy()},
        pool=pool,
    )


def make_graph(spec: DatasetSpec) -> DirectedGraph:
    """The dataset as a Ringo directed graph (sort-first build)."""
    sources, targets = edge_arrays(spec)
    return graph_from_edge_arrays(sources, targets, directed=True)


def write_text_file(spec: DatasetSpec, path) -> int:
    """Write the dataset as a tab-separated edge text file.

    This is Table 2's "Text File" representation; returns bytes written.
    """
    sources, targets = edge_arrays(spec)
    with open(path, "w", encoding="utf-8") as handle:
        for src, dst in zip(sources.tolist(), targets.tolist()):
            handle.write(f"{src}\t{dst}\n")
    return os.path.getsize(path)
