"""Synthetic StackOverflow dataset (paper §4.1).

The demo "starts with complete StackOverflow data (8M questions, 14M
answers, 34M comments)" and finds top Java experts. The real dump is not
available offline; this generator produces a posts table with the same
schema and the statistical structure the demo pipeline depends on:

* users have per-tag expertise; a small planted-expert group answers far
  more often and is accepted far more often,
* questions are asked by ordinary users, each carrying one tag,
* every question has several answers and (usually) one accepted answer.

Running the paper's pipeline — select tag, select type, join accepted
answers, build the asker→answerer graph, PageRank — should surface the
planted experts, which is what the example and its tests check.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.tables.schema import ColumnType, Schema
from repro.tables.strings import StringPool
from repro.tables.table import Table

POSTS_SCHEMA = Schema(
    [
        ("PostId", ColumnType.INT),
        ("Type", ColumnType.STRING),
        ("UserId", ColumnType.INT),
        ("AnswerId", ColumnType.INT),
        ("ParentId", ColumnType.INT),
        ("Tag", ColumnType.STRING),
    ]
)
"""The demo's posts table: questions carry the accepted answer's PostId
in ``AnswerId`` (0 when no answer was accepted); answers carry their
question's PostId in ``ParentId`` (0 on question rows) — as real
StackExchange dumps do, which is what enables the paper's alternative
construction "connect users who answered the same question"."""

QUESTION_TYPE = "question"
ANSWER_TYPE = "answer"
NO_ACCEPTED_ANSWER = 0
DEFAULT_TAGS = ("Java", "Python", "SQL", "C++", "JavaScript")


@dataclass(frozen=True)
class StackOverflowConfig:
    """Knobs for the synthetic forum."""

    num_users: int = 500
    num_questions: int = 2000
    mean_answers: float = 1.75
    experts_per_tag: int = 10
    expert_answer_share: float = 0.7
    accept_probability: float = 0.8
    tags: tuple[str, ...] = DEFAULT_TAGS
    seed: int = 0


@dataclass
class StackOverflowData:
    """The generated dataset plus its ground truth."""

    posts: Table
    experts: dict[str, list[int]] = field(default_factory=dict)

    def experts_for(self, tag: str) -> list[int]:
        """Planted expert user ids for ``tag``."""
        return list(self.experts.get(tag, []))


def generate_stackoverflow(
    config: StackOverflowConfig | None = None,
    pool: StringPool | None = None,
) -> StackOverflowData:
    """Generate the synthetic forum.

    Deterministic for a fixed config. Post ids are dense from 1;
    user ids are dense from 0.

    >>> data = generate_stackoverflow(StackOverflowConfig(
    ...     num_users=100, num_questions=40, seed=1))
    >>> data.posts.num_rows > 40
    True
    """
    config = config if config is not None else StackOverflowConfig()
    rng = np.random.default_rng(config.seed)
    num_tags = len(config.tags)
    if config.num_users <= config.experts_per_tag * num_tags:
        raise ValueError("num_users must exceed total planted experts")

    # Plant disjoint expert groups: tag t owns users [t*k, (t+1)*k).
    experts = {
        tag: list(
            range(index * config.experts_per_tag, (index + 1) * config.experts_per_tag)
        )
        for index, tag in enumerate(config.tags)
    }
    first_regular = config.experts_per_tag * num_tags

    post_ids: list[int] = []
    types: list[str] = []
    user_ids: list[int] = []
    answer_ids: list[int] = []
    parent_ids: list[int] = []
    tags: list[str] = []
    next_post_id = 1

    for _ in range(config.num_questions):
        tag = config.tags[int(rng.integers(0, num_tags))]
        asker = int(rng.integers(first_regular, config.num_users))
        question_id = next_post_id
        next_post_id += 1
        num_answers = int(rng.poisson(config.mean_answers))
        answer_posts: list[tuple[int, int, bool]] = []
        used_answerers = {asker}
        for _ in range(num_answers):
            if rng.random() < config.expert_answer_share:
                pool_ids = experts[tag]
                answerer = pool_ids[int(rng.integers(0, len(pool_ids)))]
                is_expert = True
            else:
                answerer = int(rng.integers(first_regular, config.num_users))
                is_expert = False
            if answerer in used_answerers:
                continue
            used_answerers.add(answerer)
            answer_posts.append((next_post_id, answerer, is_expert))
            next_post_id += 1

        accepted = NO_ACCEPTED_ANSWER
        if answer_posts and rng.random() < config.accept_probability:
            expert_answers = [p for p in answer_posts if p[2]]
            candidates = expert_answers if expert_answers else answer_posts
            accepted = candidates[int(rng.integers(0, len(candidates)))][0]

        post_ids.append(question_id)
        types.append(QUESTION_TYPE)
        user_ids.append(asker)
        answer_ids.append(accepted)
        parent_ids.append(0)
        tags.append(tag)
        for answer_post_id, answerer, _ in answer_posts:
            post_ids.append(answer_post_id)
            types.append(ANSWER_TYPE)
            user_ids.append(answerer)
            answer_ids.append(NO_ACCEPTED_ANSWER)
            parent_ids.append(question_id)
            tags.append(tag)

    posts = Table.from_columns(
        {
            "PostId": post_ids,
            "Type": types,
            "UserId": user_ids,
            "AnswerId": answer_ids,
            "ParentId": parent_ids,
            "Tag": tags,
        },
        schema=POSTS_SCHEMA,
        pool=pool,
    )
    return StackOverflowData(posts=posts, experts=experts)


def write_posts_tsv(data: StackOverflowData, path) -> int:
    """Write the posts table as the demo's ``posts.tsv``; returns rows."""
    from repro.tables.io_tsv import save_table_tsv

    return save_table_tsv(data.posts, path)
