"""Benchmark datasets and demo scenarios (paper §3 and §4)."""

from repro.workflows.catalog import (
    BUCKET_LABELS,
    PAPER_BUCKET_COUNTS,
    CatalogEntry,
    catalog_histogram,
    catalog_table,
    fraction_fitting_in_ram,
    generate_catalog,
)
from repro.workflows.datasets import (
    BENCHMARK_DATASETS,
    LJ_SCALED,
    TW_SCALED,
    DatasetSpec,
    edge_arrays,
    make_edge_table,
    make_graph,
    write_text_file,
)
from repro.workflows.temporal import Snapshot, growth_curve, temporal_snapshots
from repro.workflows.stackoverflow import (
    POSTS_SCHEMA,
    StackOverflowConfig,
    StackOverflowData,
    generate_stackoverflow,
    write_posts_tsv,
)

__all__ = [
    "BENCHMARK_DATASETS",
    "BUCKET_LABELS",
    "CatalogEntry",
    "DatasetSpec",
    "LJ_SCALED",
    "PAPER_BUCKET_COUNTS",
    "POSTS_SCHEMA",
    "Snapshot",
    "StackOverflowConfig",
    "StackOverflowData",
    "TW_SCALED",
    "catalog_histogram",
    "catalog_table",
    "edge_arrays",
    "fraction_fitting_in_ram",
    "generate_catalog",
    "generate_stackoverflow",
    "growth_curve",
    "make_edge_table",
    "temporal_snapshots",
    "make_graph",
    "write_posts_tsv",
    "write_text_file",
]
