"""repro — a pure-Python reproduction of *Ringo: Interactive Graph
Analytics on Big-Memory Machines* (Perez et al., SIGMOD 2015).

The one import most users need::

    from repro import Ringo

    ringo = Ringo()
    posts = ringo.LoadTableTSV(schema, "posts.tsv")
    java = ringo.Select(posts, "Tag=Java")
    graph = ringo.ToGraph(qa, "UserId-1", "UserId-2")
    ranks = ringo.GetPageRank(graph)

Subpackages: :mod:`repro.tables` (column-store relational engine),
:mod:`repro.graphs` (dynamic graph objects + CSR snapshots),
:mod:`repro.convert` (sort-first table↔graph conversions),
:mod:`repro.algorithms` (the analytics suite), :mod:`repro.parallel`
(worker pool and concurrent containers), :mod:`repro.workflows`
(benchmark datasets and demo scenarios), :mod:`repro.memory`
(object-size and footprint accounting).
"""

from repro.core.engine import Ringo
from repro.exceptions import (
    AnalysisError,
    CorruptInputError,
    CorruptionError,
    DivergenceError,
    ExecutionError,
    FencedError,
    MemoryBudgetError,
    PoolClosedError,
    RaceDetected,
    RecoveryError,
    ReplayError,
    ReplicaLagError,
    ReplicationError,
    RetryExhaustedError,
    RingoError,
    SanitizerError,
    TransientError,
    WorkerTimeoutError,
)
from repro.faults import inject_faults
from repro.graphs.directed import DirectedGraph
from repro.graphs.undirected import UndirectedGraph
from repro.memory.budget import MemoryBudget
from repro.parallel.resilience import RetryPolicy
from repro.tables.schema import ColumnType, Schema
from repro.tables.table import Table

__version__ = "1.0.0"

__all__ = [
    "AnalysisError",
    "ColumnType",
    "CorruptInputError",
    "CorruptionError",
    "DirectedGraph",
    "DivergenceError",
    "ExecutionError",
    "FencedError",
    "MemoryBudget",
    "MemoryBudgetError",
    "PoolClosedError",
    "RaceDetected",
    "RecoveryError",
    "ReplayError",
    "ReplicaLagError",
    "ReplicationError",
    "RetryExhaustedError",
    "RetryPolicy",
    "Ringo",
    "RingoError",
    "SanitizerError",
    "Schema",
    "Table",
    "TransientError",
    "UndirectedGraph",
    "WorkerTimeoutError",
    "inject_faults",
    "__version__",
]
