"""Incremental view maintenance over CSR snapshots (ROADMAP item 3).

Ringo's interactivity story (paper §4.1: pipelines re-run as analysts
iterate) breaks down the moment a graph mutates — before this package a
1-edge change invalidated the whole ``(graph id, version)`` snapshot and
the next query paid a full O(V+E) rebuild. ``repro.incremental`` closes
that gap with three cooperating layers:

* :mod:`repro.incremental.delta` — a per-graph mutation log plus the
  sorted-merge kernel that folds a consolidated edge/node delta into an
  existing CSR base, producing the snapshot a full rebuild would have
  produced (bitwise) at O(delta + E/word) numpy cost instead of the
  per-node Python conversion loop;
* :mod:`repro.incremental.engine` — the process-wide policy object:
  enablement (``RINGO_INCREMENTAL``), the compaction threshold, the
  ``incremental.*`` counters surfaced in ``Ringo.health()``, and the
  per-graph warm algorithm states behind dynamic PageRank / WCC /
  triangle counting;
* :mod:`repro.incremental.ingest` — the ``Ringo.apply_ops()`` /
  ``tail_wal()`` ingestion path that folds recovery's LSN-ordered op
  stream into live graphs, making crash replay and streaming ingestion
  the same code path.

Equivalence with the batch path is not argued, it is *tested*: the
trace-differential harness (``tests/test_incremental_differential.py``)
replays seeded random mutation traces and asserts the incremental
answers match a from-scratch rebuild at every step — exact for WCC and
triangles, ε-bounded for PageRank (see :data:`PAGERANK_EPSILON_FACTOR`).
"""

from repro.incremental.delta import (
    DeltaError,
    EdgeDelta,
    MutationLog,
    apply_delta,
    consolidate,
)
from repro.incremental.engine import (
    PAGERANK_EPSILON_FACTOR,
    IncrementalEngine,
    incremental_engine,
    pagerank_epsilon,
)
from repro.incremental.ingest import apply_graph_ops

__all__ = [
    "DeltaError",
    "EdgeDelta",
    "MutationLog",
    "IncrementalEngine",
    "PAGERANK_EPSILON_FACTOR",
    "apply_delta",
    "apply_graph_ops",
    "consolidate",
    "incremental_engine",
    "pagerank_epsilon",
]
