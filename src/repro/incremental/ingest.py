"""Op-stream ingestion — folding mutation streams into live graphs.

One code path serves two callers:

* **crash replay** — :func:`repro.recovery.ops.replay_record` routes
  ``ApplyOps`` WAL records here, so a recovered session re-applies the
  exact op stream the original session committed;
* **live streaming** — ``Ringo.TailWal`` tails another session's WAL
  and feeds committed ``ApplyOps`` records through the same function,
  keeping a follower graph (and its delta overlay, and its warm
  incremental analytics) fresh without a rebuild.

Ops are JSON-safe lists — ``["add_node", id]``, ``["del_node", id]``,
``["add_edge", src, dst]``, ``["del_edge", src, dst]`` — because they
ride inside WAL records. Mutations go through the graph's public
mutators, so the per-graph :class:`~repro.incremental.delta.MutationLog`
observes every one of them and the snapshot cache can advance by delta
instead of rebuilding.
"""

from __future__ import annotations

from repro.exceptions import GraphError

#: op kind -> expected operand count
_OP_ARITY = {
    "add_node": 1,
    "del_node": 1,
    "add_edge": 2,
    "del_edge": 2,
}


def validate_ops(ops) -> "list[tuple]":
    """Normalize an op list; raises :class:`GraphError` on malformed input.

    >>> validate_ops([["add_edge", 1, 2], ("del_node", 7)])
    [('add_edge', 1, 2), ('del_node', 7)]
    """
    if not isinstance(ops, (list, tuple)):
        raise GraphError(f"ops must be a list, got {type(ops).__name__}")
    normalized = []
    for position, op in enumerate(ops):
        if not isinstance(op, (list, tuple)) or not op:
            raise GraphError(f"op #{position} is not a [kind, ...] list: {op!r}")
        kind = op[0]
        arity = _OP_ARITY.get(kind)
        if arity is None:
            raise GraphError(
                f"op #{position} has unknown kind {kind!r} "
                f"(expected one of {sorted(_OP_ARITY)})"
            )
        operands = op[1:]
        if len(operands) != arity:
            raise GraphError(
                f"op #{position} ({kind}) takes {arity} operand(s), "
                f"got {len(operands)}"
            )
        try:
            operands = tuple(int(value) for value in operands)
        except (TypeError, ValueError):
            raise GraphError(
                f"op #{position} ({kind}) has non-integer operands: {operands!r}"
            ) from None
        normalized.append((kind,) + operands)
    return normalized


def apply_graph_ops(graph, ops) -> dict:
    """Apply an op stream to ``graph`` through its public mutators.

    Idempotent-friendly semantics: adding an existing node/edge is a
    no-op (counted under ``skipped``), deleting a missing node/edge
    raises — a delete of something that never existed means the stream
    and the graph have diverged, which must not pass silently.

    Returns a JSON-safe summary: ``{"applied": int, "skipped": int,
    "version": int, "nodes": int, "edges": int}``.

    >>> from repro.graphs.directed import DirectedGraph
    >>> graph = DirectedGraph()
    >>> apply_graph_ops(graph, [["add_edge", 1, 2], ["add_edge", 1, 2]])
    {'applied': 1, 'skipped': 1, 'version': 3, 'nodes': 2, 'edges': 1}
    """
    applied = 0
    skipped = 0
    for kind, *operands in validate_ops(ops):
        if kind == "add_node":
            if graph.add_node(operands[0]):
                applied += 1
            else:
                skipped += 1
        elif kind == "del_node":
            graph.del_node(operands[0])
            applied += 1
        elif kind == "add_edge":
            if graph.add_edge(operands[0], operands[1]):
                applied += 1
            else:
                skipped += 1
        else:  # del_edge
            graph.del_edge(operands[0], operands[1])
            applied += 1
    return {
        "applied": applied,
        "skipped": skipped,
        "version": graph.version,
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
    }
