"""Dynamic algorithm variants — PageRank, WCC, and triangles by delta.

Each entry point mirrors a batch twin in :mod:`repro.algorithms` and is
dispatched from it: the batch function calls in here first and falls
through to its own kernel when we return ``None`` (engine disabled, or
the input is not a dynamic graph). When we *do* run, the result is
either **warm** (advanced from the previous answer by the mutation
delta), **seed** (computed by the batch kernel because no warm state or
log window covers the gap — and stored so the next call can be warm),
or **cached** (the graph has not mutated since the stored answer).

Equivalence contracts, asserted by the trace-differential harness:

* **WCC / triangles** — exact: warm answers equal a from-scratch batch
  run bit for bit (WCC labels are canonicalised to the batch labelling:
  a component's label is the rank of its minimum dense node id).
* **PageRank** — ε-bounded: the warm path re-runs the *same* power
  iteration with the *same* stopping criterion, just started from the
  previous ranks instead of uniform. Both runs therefore land within
  ``damping/(1-damping) * tolerance`` (L1) of the fixed point, so they
  differ by at most :func:`~repro.incremental.engine.pagerank_epsilon`.

Batch modules are imported lazily inside functions — they import the
snapshot cache, which imports the incremental engine, and a module-level
import here would close that loop.
"""

from __future__ import annotations

import numpy as np

from repro.incremental.engine import incremental_engine

_EMPTY = np.empty(0, dtype=np.int64)


def _is_dynamic(graph) -> bool:
    """Whether ``graph`` is a dynamic class the delta machinery covers."""
    from repro.graphs.directed import DirectedGraph
    from repro.graphs.undirected import UndirectedGraph

    return isinstance(graph, (DirectedGraph, UndirectedGraph))


# ----------------------------------------------------------------------
# PageRank
# ----------------------------------------------------------------------


def _remap_ranks(
    prev_ids: np.ndarray, prev_ranks: np.ndarray, new_ids: np.ndarray
) -> np.ndarray:
    """Previous ranks carried onto a new node set, renormalised to 1.

    Surviving nodes keep their old rank; new nodes start at the uniform
    1/n a cold run would give them; deleted nodes' mass is recovered by
    the renormalisation.
    """
    count = len(new_ids)
    start = np.full(count, 1.0 / count, dtype=np.float64)
    if len(prev_ids):
        positions = np.minimum(
            np.searchsorted(prev_ids, new_ids), len(prev_ids) - 1
        )
        known = prev_ids[positions] == new_ids
        start[known] = prev_ranks[positions[known]]
    total = float(start.sum())
    if total > 0:
        start /= total
    return start


def incremental_pagerank(
    graph,
    damping: float = 0.85,
    max_iterations: int = 100,
    tolerance: float = 1e-9,
) -> "dict[int, float] | None":
    """Warm-started PageRank, or ``None`` when not applicable.

    The warm path needs no mutation log: the previous rank vector is
    remapped onto the current node set and handed to the unchanged
    batch kernel as its starting point. Convergence is checked by the
    same L1-under-``tolerance`` criterion as a cold run, so the answer
    satisfies the same fixed-point bound — it just gets there in far
    fewer iterations after small churn.
    """
    engine = incremental_engine()
    if not engine.enabled or not _is_dynamic(graph):
        return None
    from repro.algorithms.common import as_csr, scores_to_dict
    from repro.algorithms.pagerank import pagerank_array

    version = graph.version
    csr = as_csr(graph)
    if csr.num_nodes == 0:
        return {}
    params_key = (damping, max_iterations, tolerance)
    state = engine.state_for(graph)
    start = None
    mode = "seed"
    warm = state.pagerank
    if warm is not None and warm[0] == params_key:
        _, prev_version, prev_ids, prev_ranks = warm
        if prev_version == version:
            engine.record_algo("pagerank", "cached")
            return scores_to_dict(csr, prev_ranks)
        start = _remap_ranks(prev_ids, prev_ranks, csr.node_ids)
        mode = "warm"
    ranks = pagerank_array(
        csr,
        damping=damping,
        max_iterations=max_iterations,
        tolerance=tolerance,
        start=start,
    )
    state.pagerank = (params_key, version, csr.node_ids, ranks)
    engine.record_algo("pagerank", mode)
    return scores_to_dict(csr, ranks)


# ----------------------------------------------------------------------
# Weakly connected components
# ----------------------------------------------------------------------


def _find(parent: list, x: int) -> int:
    root = x
    while parent[root] != root:
        root = parent[root]
    while parent[x] != root:
        parent[x], x = root, parent[x]
    return root


def _union(parent: list, a: int, b: int) -> None:
    root_a = _find(parent, a)
    root_b = _find(parent, b)
    if root_a != root_b:
        if root_a < root_b:
            parent[root_b] = root_a
        else:
            parent[root_a] = root_b


def _neighbor_pairs(
    indptr: np.ndarray, indices: np.ndarray, nodes: np.ndarray
) -> "tuple[np.ndarray, np.ndarray]":
    """All ``(node, neighbor)`` dense pairs for the given dense nodes."""
    counts = indptr[nodes + 1] - indptr[nodes]
    total = int(counts.sum())
    if total == 0:
        return _EMPTY, _EMPTY
    sources = np.repeat(nodes, counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    targets = indices[np.repeat(indptr[nodes], counts) + offsets]
    return sources, targets


def _canonical_labels(roots: np.ndarray) -> np.ndarray:
    """Relabel union-find roots to the batch WCC labelling.

    Batch BFS hands out labels in seed order — ascending minimum dense
    node id per component — which equals ranking components by the
    first dense position their root appears at.
    """
    unique_roots, first_seen, inverse = np.unique(
        roots, return_index=True, return_inverse=True
    )
    rank = np.empty(len(unique_roots), dtype=np.int64)
    rank[np.argsort(first_seen, kind="stable")] = np.arange(
        len(unique_roots), dtype=np.int64
    )
    return rank[inverse]


def _advance_wcc(csr, prev_ids, prev_labels, delta) -> np.ndarray:
    """Labels for the merged snapshot, advanced from the previous run.

    Super-node union-find: every *unaffected* previous component is one
    super node (it cannot split — none of its edges or members were
    deleted), every affected or new node is a singleton. Unions come
    from (a) surviving adjacency among affected nodes and (b) net-added
    edges; the result is canonicalised to the batch labelling.
    """
    new_ids = csr.node_ids
    count = csr.num_nodes
    if count == 0:
        return np.zeros(0, dtype=np.int64)
    if len(prev_ids):
        positions = np.minimum(
            np.searchsorted(prev_ids, new_ids), len(prev_ids) - 1
        )
        known = prev_ids[positions] == new_ids
        old_label = np.where(known, prev_labels[positions], -1)
    else:
        old_label = np.full(count, -1, dtype=np.int64)

    # A deletion can only split the components it touched: mark the old
    # labels of every net-deleted edge endpoint and net-deleted node.
    affected_labels: set[int] = set()

    def mark(orig: int) -> None:
        if len(prev_ids):
            position = int(np.searchsorted(prev_ids, orig))
            if position < len(prev_ids) and prev_ids[position] == orig:
                affected_labels.add(int(prev_labels[position]))

    for u, v in delta.edges_deleted:
        mark(u)
        mark(v)
    for node in delta.nodes_deleted:
        mark(node)

    affected = old_label == -1
    if affected_labels:
        affected |= np.isin(
            old_label, np.fromiter(affected_labels, dtype=np.int64)
        )

    label_count = int(prev_labels.max()) + 1 if len(prev_labels) else 0
    parent = list(range(count + label_count))
    node_super = np.where(affected, np.arange(count), count + old_label)

    # (a) surviving adjacency among affected nodes. Base edges never
    # cross previous components, so an affected-to-unaffected edge in
    # the merged view can only be a net-added edge — handled in (b).
    affected_dense = np.flatnonzero(affected)
    if len(affected_dense):
        for indptr, indices in (
            (csr.out_indptr, csr.out_indices),
            (csr.in_indptr, csr.in_indices),
        ):
            sources, targets = _neighbor_pairs(indptr, indices, affected_dense)
            if len(sources):
                linked = affected[targets]
                for a, b in zip(
                    sources[linked].tolist(), targets[linked].tolist()
                ):
                    _union(parent, a, b)

    # (b) net-added edges, in original-id space.
    for u, v in delta.edges_added:
        if u == v:
            continue
        position_u = int(np.searchsorted(new_ids, u))
        position_v = int(np.searchsorted(new_ids, v))
        if (
            position_u < count
            and position_v < count
            and new_ids[position_u] == u
            and new_ids[position_v] == v
        ):
            _union(
                parent,
                int(node_super[position_u]),
                int(node_super[position_v]),
            )

    parent_array = np.asarray(parent, dtype=np.int64)
    roots = parent_array[node_super]
    while True:
        hop = parent_array[roots]
        if np.array_equal(hop, roots):
            break
        roots = hop
    return _canonical_labels(roots)


def incremental_wcc(graph) -> "dict[int, int] | None":
    """Delta-advanced WCC labels, or ``None`` when not applicable.

    Exact: labels equal :func:`repro.algorithms.components.weakly_connected_components`
    on the same graph, element for element.
    """
    engine = incremental_engine()
    if not engine.enabled or not _is_dynamic(graph):
        return None
    from repro.algorithms.common import as_csr
    from repro.algorithms.components import _wcc_labels_dispatch

    version = graph.version
    csr = as_csr(graph)
    state = engine.state_for(graph)
    warm = state.wcc
    if warm is not None and warm[0] == version:
        engine.record_algo("wcc", "cached")
        return dict(zip(csr.node_ids.tolist(), warm[2].tolist()))
    labels = None
    if warm is not None:
        prev_version, prev_ids, prev_labels = warm
        window = engine.delta_between(graph, prev_version, version)
        if window is not None:
            labels = _advance_wcc(csr, prev_ids, prev_labels, window[0])
    mode = "warm"
    if labels is None:
        labels = _wcc_labels_dispatch(csr)
        mode = "seed"
    state.wcc = (version, csr.node_ids, labels)
    engine.record_algo("wcc", mode)
    return dict(zip(csr.node_ids.tolist(), labels.tolist()))


# ----------------------------------------------------------------------
# Triangles
# ----------------------------------------------------------------------


def _sym_row(sym, orig_id: int) -> np.ndarray:
    """A node's projection neighbours in *original* id space (sorted)."""
    ids = sym.node_ids
    position = int(np.searchsorted(ids, orig_id))
    if position >= len(ids) or ids[position] != orig_id:
        return _EMPTY
    lo = int(sym.out_indptr[position])
    hi = int(sym.out_indptr[position + 1])
    return ids[sym.out_indices[lo:hi]]


def _sym_has(sym, u: int, v: int) -> bool:
    row = _sym_row(sym, u)
    position = int(np.searchsorted(row, v))
    return position < len(row) and int(row[position]) == v


def _key(u: int, v: int) -> "tuple[int, int]":
    return (u, v) if u <= v else (v, u)


def _advance_triangles(old_sym, new_sym, delta) -> "dict[int, int]":
    """Per-node triangle-count *changes* keyed by original node id.

    Changed projection edges are replayed one at a time — deletions
    against the shrinking old projection, then additions against the
    grown new projection — so each destroyed/created triangle is
    counted exactly once (at its first deleted / last added edge).
    """
    candidates: set[tuple[int, int]] = set()
    for pairs in (delta.edges_added, delta.edges_deleted):
        for u, v in pairs:
            if u != v:
                candidates.add(_key(u, v))
    deleted = []
    added = []
    for pair in sorted(candidates):
        in_old = _sym_has(old_sym, *pair)
        in_new = _sym_has(new_sym, *pair)
        if in_old and not in_new:
            deleted.append(pair)
        elif in_new and not in_old:
            added.append(pair)
    changes: dict[int, int] = {}

    def bump(node: int, amount: int) -> None:
        changes[node] = changes.get(node, 0) + amount

    removed: set[tuple[int, int]] = set()
    for u, v in deleted:
        common = np.intersect1d(
            _sym_row(old_sym, u), _sym_row(old_sym, v), assume_unique=True
        )
        for w in common.tolist():
            if _key(u, w) in removed or _key(v, w) in removed:
                continue
            bump(u, -1)
            bump(v, -1)
            bump(w, -1)
        removed.add((u, v))
    pending = set(added)
    for u, v in added:
        pending.discard((u, v))
        common = np.intersect1d(
            _sym_row(new_sym, u), _sym_row(new_sym, v), assume_unique=True
        )
        for w in common.tolist():
            if _key(u, w) in pending or _key(v, w) in pending:
                continue
            bump(u, 1)
            bump(v, 1)
            bump(w, 1)
    return changes


def incremental_triangle_counts(graph, pool=None) -> "dict[int, int] | None":
    """Delta-advanced per-node triangle counts, or ``None``.

    Exact: equals :func:`repro.algorithms.triangles.triangle_counts` on
    the same graph. The warm state keeps the previous symmetrised
    projection alongside the counts — membership and common-neighbour
    queries against the *old* edge set need it. ``pool`` only matters
    on the seeding (batch) pass; warm advances are serial by design.
    """
    engine = incremental_engine()
    if not engine.enabled or not _is_dynamic(graph):
        return None
    from repro.algorithms.common import as_csr, counts_to_dict
    from repro.algorithms.triangles import triangle_count_array

    version = graph.version
    sym = as_csr(graph).undirected_projection()
    state = engine.state_for(graph)
    warm = state.triangles
    if warm is not None and warm[0] == version:
        engine.record_algo("triangles", "cached")
        return counts_to_dict(sym, warm[2])
    counts = None
    if warm is not None:
        prev_version, prev_ids, prev_counts, prev_sym = warm
        window = engine.delta_between(graph, prev_version, version)
        if window is not None and window[1] <= engine.compact_threshold(
            max(prev_sym.num_edges, 1)
        ):
            changes = _advance_triangles(prev_sym, sym, window[0])
            new_ids = sym.node_ids
            counts = np.zeros(sym.num_nodes, dtype=np.int64)
            if len(prev_ids):
                positions = np.minimum(
                    np.searchsorted(prev_ids, new_ids), len(prev_ids) - 1
                )
                known = prev_ids[positions] == new_ids
                counts[known] = prev_counts[positions[known]]
            for orig, amount in changes.items():
                position = int(np.searchsorted(new_ids, orig))
                if position < len(new_ids) and new_ids[position] == orig:
                    counts[position] += amount
    mode = "warm"
    if counts is None:
        counts = triangle_count_array(sym, pool=pool)
        mode = "seed"
    state.triangles = (version, sym.node_ids, counts, sym)
    engine.record_algo("triangles", mode)
    return counts_to_dict(sym, counts)
