"""Per-graph mutation logs and the CSR delta-merge kernel.

The dynamic graph classes append one record per structural mutation to
an attached :class:`MutationLog` (see ``GraphBase._record_delta``).
When the snapshot cache finds a stale entry it slices the log between
the cached version and the live version, consolidates the op run into a
net :class:`EdgeDelta`, and calls :func:`apply_delta` to merge it into
the cached CSR — a sorted-key merge in numpy instead of the per-node
Python conversion loop a full rebuild pays.

Correctness hinges on the *net* form of the delta:

* an edge appears in at most one of ``edges_added`` / ``edges_deleted``
  (an add cancels a pending delete and vice versa), so every net-deleted
  edge exists in the base and every net-added edge is absent from it;
* ``del_node`` is recorded as explicit per-incident-edge deletes
  followed by the node delete, so a net-deleted node never has a
  surviving edge and the merge needs no implicit cascade;
* the log poisons itself on anything it cannot replay (bulk adjacency
  installs, version gaps, overflow), and a poisoned or gapped slice
  makes the cache fall back to a full rebuild — degraded performance,
  never a wrong answer.

:func:`apply_delta` produces a snapshot that is **bitwise identical** to
``CSRGraph.from_graph`` on the mutated graph (the property the
trace-differential harness pins down), including the undirected
representation detail that the out- and in-orientations share one
physical array pair.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.exceptions import RingoError
from repro.graphs.csr import CSRGraph

#: A log that outgrows this many retained ops poisons itself — the
#: consumer has stopped draining it and unbounded growth would quietly
#: become a leak attached to the graph object.
MAX_LOG_OPS = 1 << 20

#: Node-count ceiling for the keyed merge: edge keys are ``row * n +
#: col`` in int64, so ``n`` must stay below 2**31 for the product to be
#: overflow-free. Graphs beyond this fall back to a full rebuild.
MAX_MERGE_NODES = 1 << 31


class DeltaError(RingoError):
    """A delta could not be applied to its base snapshot.

    Raised by :func:`apply_delta` when an invariant fails (a dangling
    delete, a duplicate add, a node-set mismatch). The snapshot cache
    treats it as a signal to fall back to a full rebuild.
    """


class MutationLog:
    """Version-stamped structural mutation log attached to one graph.

    Records are ``(version, kind, a, b)`` tuples appended by the graph
    mutators after each version bump. The log is *contiguous*: a record
    must carry the current ``contiguous_until`` version (several records
    may share one bump — ``del_node`` emits one per incident edge) or
    advance it by exactly one; any larger jump means a mutation went
    unrecorded and the log poisons itself.

    ``slice(v0, v1)`` returns the ops in ``(v0, v1]`` only when the log
    can prove it observed every mutation in that window; otherwise it
    returns ``None`` and the caller rebuilds from scratch.
    """

    __slots__ = (
        "_lock", "start_version", "contiguous_until", "_ops",
        "poison_reason",
    )

    def __init__(self, version: int) -> None:
        self._lock = threading.Lock()
        self.start_version = int(version)
        self.contiguous_until = int(version)
        self._ops: list[tuple[int, str, int, int]] = []
        self.poison_reason: "str | None" = None

    def record(self, version: int, kind: str, a: int, b: int) -> None:
        """Append one mutation record (called by the graph mutators)."""
        with self._lock:
            if self.poison_reason is not None:
                return
            if version == self.contiguous_until + 1:
                self.contiguous_until = version
            elif version != self.contiguous_until:
                self.poison_reason = (
                    f"version gap: recorded v{version} after v{self.contiguous_until}"
                )
                self._ops.clear()
                return
            self._ops.append((version, kind, int(a), int(b)))
            if len(self._ops) > MAX_LOG_OPS:
                self.poison_reason = f"log overflow past {MAX_LOG_OPS} ops"
                self._ops.clear()

    def poison(self, reason: str) -> None:
        """Mark the log unusable (bulk install, unrecordable mutation)."""
        with self._lock:
            if self.poison_reason is None:
                self.poison_reason = reason
            self._ops.clear()

    def usable_at(self, version: int) -> bool:
        """Whether the log can serve slices ending at ``version``."""
        with self._lock:
            return (
                self.poison_reason is None and self.contiguous_until == version
            )

    def slice(self, v0: int, v1: int) -> "list[tuple[str, int, int]] | None":
        """The ``(kind, a, b)`` ops in ``(v0, v1]``, or ``None``.

        ``None`` means the log cannot prove completeness over the window
        (poisoned, anchored after ``v0``, or not yet caught up to
        ``v1``) and the caller must rebuild.
        """
        with self._lock:
            if (
                self.poison_reason is not None
                or v0 < self.start_version
                or self.contiguous_until < v1
            ):
                return None
            return [
                (kind, a, b)
                for version, kind, a, b in self._ops
                if v0 < version <= v1
            ]

    def drop_before(self, floor: int) -> None:
        """Discard ops at or below ``floor`` (no consumer needs them)."""
        with self._lock:
            if floor <= self.start_version:
                return
            self.start_version = min(floor, self.contiguous_until)
            self._ops = [op for op in self._ops if op[0] > floor]

    def __len__(self) -> int:
        with self._lock:
            return len(self._ops)


class EdgeDelta:
    """The net effect of an op run: node and edge add/delete sets.

    Edge keys are ``(src, dst)`` original-id pairs for directed graphs
    and ``(min, max)`` pairs for undirected ones. The consolidation
    guarantees the add and delete sets are disjoint.
    """

    __slots__ = ("nodes_added", "nodes_deleted", "edges_added", "edges_deleted")

    def __init__(self) -> None:
        self.nodes_added: set[int] = set()
        self.nodes_deleted: set[int] = set()
        self.edges_added: set[tuple[int, int]] = set()
        self.edges_deleted: set[tuple[int, int]] = set()

    def empty(self) -> bool:
        """True when the run cancelled out to a structural no-op."""
        return not (
            self.nodes_added or self.nodes_deleted
            or self.edges_added or self.edges_deleted
        )

    def size(self) -> int:
        """Total number of net node/edge changes."""
        return (
            len(self.nodes_added) + len(self.nodes_deleted)
            + len(self.edges_added) + len(self.edges_deleted)
        )


def consolidate(ops, directed: bool) -> EdgeDelta:
    """Fold an ordered op run into its net :class:`EdgeDelta`.

    Later ops cancel earlier ones: re-adding a deleted edge removes it
    from the delete set instead of entering the add set (the edge exists
    in both base and target, so the merge must not touch it), and
    deleting a node added within the window erases it entirely.

    >>> delta = consolidate(
    ...     [("add_edge", 1, 2), ("del_edge", 1, 2), ("del_edge", 3, 4)],
    ...     directed=True,
    ... )
    >>> delta.edges_added, delta.edges_deleted
    (set(), {(3, 4)})
    """
    delta = EdgeDelta()
    for kind, a, b in ops:
        if kind == "add_node":
            if a in delta.nodes_deleted:
                delta.nodes_deleted.discard(a)
            else:
                delta.nodes_added.add(a)
        elif kind == "del_node":
            if a in delta.nodes_added:
                delta.nodes_added.discard(a)
            else:
                delta.nodes_deleted.add(a)
        elif kind in ("add_edge", "del_edge"):
            key = (a, b) if directed or a <= b else (b, a)
            if kind == "add_edge":
                if key in delta.edges_deleted:
                    delta.edges_deleted.discard(key)
                else:
                    delta.edges_added.add(key)
            else:
                if key in delta.edges_added:
                    delta.edges_added.discard(key)
                else:
                    delta.edges_deleted.add(key)
        else:
            raise DeltaError(f"unknown mutation kind {kind!r}")
    return delta


def _pair_arrays(pairs: "set[tuple[int, int]]") -> tuple[np.ndarray, np.ndarray]:
    """Split a pair set into parallel (first, second) int64 arrays."""
    if not pairs:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    array = np.asarray(sorted(pairs), dtype=np.int64)
    return array[:, 0], array[:, 1]


def _exact_positions(
    haystack: np.ndarray, needles: np.ndarray, what: str
) -> np.ndarray:
    """Positions of ``needles`` in sorted ``haystack``; all must match."""
    positions = np.searchsorted(haystack, needles)
    if len(needles):
        if positions.max(initial=0) >= len(haystack) or np.any(
            haystack[np.minimum(positions, len(haystack) - 1)] != needles
        ):
            raise DeltaError(f"dangling {what}: key not present in base")
    return positions


def _merge_orientation(
    n_old: int,
    n_new: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    del_rows: np.ndarray,
    del_cols: np.ndarray,
    add_rows: np.ndarray,
    add_cols: np.ndarray,
    old_to_new: np.ndarray,
    row_alive: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge one CSR orientation: delete, remap, insert — all on sorted keys.

    Rows/cols are dense ids; deletes come in *old* dense space, adds in
    *new* dense space. Returns the merged ``(indptr, indices)``.
    """
    degrees = np.diff(indptr)
    rows = np.repeat(np.arange(n_old, dtype=np.int64), degrees)
    keys = rows * n_old + indices
    keep = np.ones(len(keys), dtype=bool)
    if len(del_rows):
        del_keys = np.sort(del_rows * n_old + del_cols)
        keep[_exact_positions(keys, del_keys, "delete")] = False
    kept_rows = rows[keep]
    kept_cols = indices[keep]
    if not bool(np.all(row_alive[kept_rows]) and np.all(row_alive[kept_cols])):
        raise DeltaError("a deleted node still has retained edges")
    # Monotone densify old → new: both endpoints survive, and the remap
    # preserves order, so the kept key sequence stays strictly ascending.
    merged_keys = old_to_new[kept_rows] * n_new + old_to_new[kept_cols]
    if len(add_rows):
        add_keys = np.sort(add_rows * n_new + add_cols)
        merged_keys = np.insert(
            merged_keys, np.searchsorted(merged_keys, add_keys), add_keys
        )
    if len(merged_keys) > 1 and int(np.diff(merged_keys).min()) <= 0:
        raise DeltaError("merged edge keys are not strictly increasing")
    new_rows = merged_keys // n_new if n_new else merged_keys
    new_cols = merged_keys % n_new if n_new else merged_keys
    new_indptr = np.concatenate(
        ([0], np.cumsum(np.bincount(new_rows, minlength=n_new)))
    ).astype(np.int64)
    return new_indptr, new_cols.astype(np.int64)


def apply_delta(base: CSRGraph, delta: EdgeDelta, directed: bool) -> CSRGraph:
    """Merge a net delta into a base CSR; raises :class:`DeltaError`.

    The result matches ``CSRGraph.from_graph`` on the mutated graph
    array-for-array. Undirected bases expand each delta edge into both
    orientations and keep the from_graph property that out- and
    in-adjacency share one physical array pair.

    >>> base = CSRGraph.from_edges([1, 2], [2, 3])
    >>> delta = EdgeDelta(); delta.edges_added.add((3, 1))
    >>> apply_delta(base, delta, directed=True).num_edges
    3
    """
    base_ids = base.node_ids
    n_old = len(base_ids)
    del_nodes = np.fromiter(
        sorted(delta.nodes_deleted), dtype=np.int64, count=len(delta.nodes_deleted)
    )
    add_nodes = np.fromiter(
        sorted(delta.nodes_added), dtype=np.int64, count=len(delta.nodes_added)
    )
    del_dense = _exact_positions(base_ids, del_nodes, "node delete")
    if len(add_nodes) and n_old:
        probe = np.clip(np.searchsorted(base_ids, add_nodes), 0, n_old - 1)
        if np.any(base_ids[probe] == add_nodes):
            raise DeltaError("added node already present in base")
    row_alive = np.ones(n_old, dtype=bool)
    row_alive[del_dense] = False
    new_node_ids = np.union1d(base_ids[row_alive], add_nodes)
    n_new = len(new_node_ids)
    if n_new >= MAX_MERGE_NODES or n_old >= MAX_MERGE_NODES:
        raise DeltaError(f"graph too large for keyed merge ({n_new} nodes)")
    old_to_new = np.searchsorted(new_node_ids, base_ids)

    del_src, del_dst = _pair_arrays(delta.edges_deleted)
    add_src, add_dst = _pair_arrays(delta.edges_added)
    del_src = _exact_positions(base_ids, del_src, "edge-delete endpoint")
    del_dst = _exact_positions(base_ids, del_dst, "edge-delete endpoint")
    add_src = _exact_positions(new_node_ids, add_src, "edge-add endpoint")
    add_dst = _exact_positions(new_node_ids, add_dst, "edge-add endpoint")

    if directed:
        out_indptr, out_indices = _merge_orientation(
            n_old, n_new, base.out_indptr, base.out_indices,
            del_src, del_dst, add_src, add_dst, old_to_new, row_alive,
        )
        in_indptr, in_indices = _merge_orientation(
            n_old, n_new, base.in_indptr, base.in_indices,
            del_dst, del_src, add_dst, add_src, old_to_new, row_alive,
        )
        return CSRGraph(
            new_node_ids, out_indptr, out_indices, in_indptr, in_indices
        )
    # Undirected: the symmetric representation stores {u, v} as (u, v)
    # and (v, u) — a self-loop once — so expand the delta the same way
    # and merge the single shared orientation.
    loops = del_src == del_dst
    sym_del_src = np.concatenate([del_src, del_dst[~loops]])
    sym_del_dst = np.concatenate([del_dst, del_src[~loops]])
    loops = add_src == add_dst
    sym_add_src = np.concatenate([add_src, add_dst[~loops]])
    sym_add_dst = np.concatenate([add_dst, add_src[~loops]])
    indptr, indices = _merge_orientation(
        n_old, n_new, base.out_indptr, base.out_indices,
        sym_del_src, sym_del_dst, sym_add_src, sym_add_dst,
        old_to_new, row_alive,
    )
    return CSRGraph(new_node_ids, indptr, indices, indptr, indices)
