"""Process-wide incremental-maintenance policy, counters, and warm states.

One :class:`IncrementalEngine` per process, mirroring the snapshot
cache's deployment model (one interactive session per process). It owns:

* **enablement** — on by default, disabled with ``RINGO_INCREMENTAL=0``
  or ``Ringo(incremental=False)``;
* **compaction policy** — a delta run longer than
  ``max(min_compact_ops, compact_fraction * base_edges)`` is cheaper to
  rebuild than to merge, so the cache compacts (full-rebuilds) instead;
* **counters** — ``delta_applied`` / ``compactions`` / ``fallback_full``
  plus per-algorithm warm/seed tallies, surfaced through
  ``Ringo.health()["incremental"]`` and mirrored to the obs metrics
  registry as ``incremental.*`` when tracing is armed;
* **warm algorithm states** — per-graph (weakref-keyed) PageRank rank
  vectors, WCC labels, and triangle counts that the dynamic variants in
  :mod:`repro.incremental.algorithms` advance by delta instead of
  recomputing from scratch.

The module deliberately imports neither :mod:`repro.algorithms` nor
:mod:`repro.graphs.snapshot` at module scope — both import *us* (the
cache for the delta path, the algorithms for dispatch), so the engine
stays at the bottom of the import graph.
"""

from __future__ import annotations

import os
import threading
import weakref

from repro.incremental.delta import EdgeDelta, MutationLog, consolidate

_ENV_VAR = "RINGO_INCREMENTAL"

#: PageRank stops when the L1 step change drops below ``tolerance``;
#: the standard power-iteration bound then caps the distance to the
#: fixed point at ``damping / (1 - damping) * tolerance``. Incremental
#: and batch runs each sit inside that ball, so they differ by at most
#: twice it — the ε the differential harness asserts.
PAGERANK_EPSILON_FACTOR = 2.0


def pagerank_epsilon(damping: float, tolerance: float) -> float:
    """The documented incremental-vs-batch PageRank L1 bound.

    >>> round(pagerank_epsilon(0.85, 1e-9) / 1e-8, 3)
    1.133
    """
    return PAGERANK_EPSILON_FACTOR * damping / (1.0 - damping) * tolerance


def _env_enabled() -> bool:
    value = os.environ.get(_ENV_VAR, "").strip().lower()
    return value not in ("0", "false", "off", "no")


_DEFAULT_COMPACT_FRACTION = 0.1
_DEFAULT_MIN_COMPACT_OPS = 64


class _GraphState:
    """Warm per-graph algorithm states (versions + dense results)."""

    __slots__ = ("pagerank", "wcc", "triangles")

    def __init__(self) -> None:
        # pagerank: (params_key, version, node_ids, ranks)
        self.pagerank: "tuple | None" = None
        # wcc: (version, node_ids, labels)
        self.wcc: "tuple | None" = None
        # triangles: (version, node_ids, counts, sym_projection)
        self.triangles: "tuple | None" = None

    def versions(self) -> "list[int]":
        versions = []
        if self.pagerank is not None:
            versions.append(self.pagerank[1])
        if self.wcc is not None:
            versions.append(self.wcc[0])
        if self.triangles is not None:
            versions.append(self.triangles[0])
        return versions


class IncrementalEngine:
    """Enablement, compaction policy, counters, and warm states.

    >>> engine = IncrementalEngine()
    >>> engine.compact_threshold(10_000)
    1000
    >>> engine.record_fallback("demo")
    >>> engine.stats()["fallback_full"], engine.stats()["last_fallback_reason"]
    (1, 'demo')
    """

    def __init__(
        self,
        compact_fraction: float = _DEFAULT_COMPACT_FRACTION,
        min_compact_ops: int = _DEFAULT_MIN_COMPACT_OPS,
    ) -> None:
        self._lock = threading.Lock()
        self._forced: "bool | None" = None
        self.compact_fraction = float(compact_fraction)
        self.min_compact_ops = int(min_compact_ops)
        self._states: dict[int, _GraphState] = {}
        self._refs: dict[int, weakref.ref] = {}
        self._delta_applied = 0
        self._compactions = 0
        self._fallback_full = 0
        self._last_fallback_reason: "str | None" = None
        self._algo: dict[str, dict[str, int]] = {}

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether delta maintenance is active (override beats env)."""
        forced = self._forced
        if forced is not None:
            return forced
        return _env_enabled()

    def configure(
        self,
        enabled: "bool | None" = None,
        compact_fraction: "float | None" = None,
        min_compact_ops: "int | None" = None,
    ) -> None:
        """Adjust the toggle and compaction policy in place."""
        with self._lock:
            if enabled is not None:
                self._forced = bool(enabled)
            if compact_fraction is not None:
                self.compact_fraction = float(compact_fraction)
            if min_compact_ops is not None:
                self.min_compact_ops = int(min_compact_ops)

    def reset(self) -> None:
        """Drop warm states and counters, return every knob to defaults."""
        with self._lock:
            self._forced = None
            self.compact_fraction = _DEFAULT_COMPACT_FRACTION
            self.min_compact_ops = _DEFAULT_MIN_COMPACT_OPS
            self._states.clear()
            self._refs.clear()
            self._delta_applied = 0
            self._compactions = 0
            self._fallback_full = 0
            self._last_fallback_reason = None
            self._algo.clear()

    def compact_threshold(self, base_edges: int) -> int:
        """Op-run length beyond which rebuilding beats merging."""
        return max(self.min_compact_ops, int(self.compact_fraction * base_edges))

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------

    def record_delta_applied(self) -> None:
        """Count one stale snapshot refreshed by delta merge."""
        with self._lock:
            self._delta_applied += 1

    def record_compaction(self) -> None:
        """Count one overlay compacted into a fresh full build."""
        with self._lock:
            self._compactions += 1

    def record_fallback(self, reason: str) -> None:
        """Count one delta path abandoned for a full rebuild."""
        with self._lock:
            self._fallback_full += 1
            self._last_fallback_reason = reason

    def record_algo(self, name: str, mode: str) -> None:
        """Tally one dynamic-algorithm outcome (``warm`` / ``seed``)."""
        with self._lock:
            entry = self._algo.setdefault(name, {})
            entry[mode] = entry.get(mode, 0) + 1

    def stats(self) -> dict:
        """Counter snapshot for ``Ringo.health()["incremental"]``."""
        with self._lock:
            return {
                "enabled": self.enabled,
                "compact_fraction": self.compact_fraction,
                "min_compact_ops": self.min_compact_ops,
                "delta_applied": self._delta_applied,
                "compactions": self._compactions,
                "fallback_full": self._fallback_full,
                "last_fallback_reason": self._last_fallback_reason,
                "graph_states": len(self._states),
                "algorithms": {
                    name: dict(entry) for name, entry in self._algo.items()
                },
            }

    # ------------------------------------------------------------------
    # Mutation-log lifecycle (called by the snapshot cache)
    # ------------------------------------------------------------------

    def ensure_log(self, graph, version: int) -> None:
        """Anchor a mutation log at ``version`` if none can serve it.

        A healthy log that has observed every mutation up to ``version``
        is kept as-is — re-anchoring would discard history other
        consumers (warm algorithm states, a second cache) still need.
        """
        log = graph._delta_log
        if log is None or not log.usable_at(version):
            graph._delta_log = MutationLog(version)

    def trim_log(self, graph, base_version: int) -> None:
        """Drop ops no consumer can still ask for.

        The floor is the oldest version any consumer is anchored at:
        the cache's freshly stored base and every warm algorithm state.
        """
        log = graph._delta_log
        if log is None:
            return
        floor = base_version
        state = self._states.get(id(graph))
        if state is not None:
            for version in state.versions():
                floor = min(floor, version)
        log.drop_before(floor)

    def delta_between(
        self, graph, v0: int, v1: int
    ) -> "tuple[EdgeDelta, int] | None":
        """The consolidated net delta over ``(v0, v1]``, or ``None``.

        Returns ``(delta, op_count)``; ``None`` means the log cannot
        prove completeness over the window.
        """
        log = graph._delta_log
        if log is None:
            return None
        ops = log.slice(v0, v1)
        if ops is None:
            return None
        return consolidate(ops, graph.is_directed), len(ops)

    # ------------------------------------------------------------------
    # Warm algorithm states
    # ------------------------------------------------------------------

    def state_for(self, graph) -> _GraphState:
        """The warm-state slot for ``graph`` (created on first use)."""
        key = id(graph)
        with self._lock:
            state = self._states.get(key)
            if state is None:
                state = _GraphState()
                self._states[key] = state
                self._refs[key] = weakref.ref(graph, self._make_cleanup(key))
            return state

    def _make_cleanup(self, key: int):
        def cleanup(_ref) -> None:
            with self._lock:
                self._states.pop(key, None)
                self._refs.pop(key, None)

        return cleanup


_DEFAULT_ENGINE = IncrementalEngine()


def incremental_engine() -> IncrementalEngine:
    """The process-wide incremental engine."""
    return _DEFAULT_ENGINE
